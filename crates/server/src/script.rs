//! Client-side dialog scripts derived from trace connection specs.

use spamaware_smtp::{Command, MailAddr};
use spamaware_trace::{ConnectionKind, ConnectionSpec, MailboxId};
use std::collections::VecDeque;

/// One client action in an SMTP dialog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Send a command and await the reply.
    Cmd(Command),
    /// Stream `n` bytes of message content (after a 354).
    Body(u64),
}

/// Renders a mailbox id as the recipient address the client sends.
pub fn rcpt_addr(id: MailboxId) -> MailAddr {
    // lint:allow(panic): template-generated address; validity pinned by unit test
    id.address().parse().expect("generated address is valid")
}

/// An invalid (random-guessing) recipient address.
pub fn guess_addr(n: u32) -> MailAddr {
    format!("guess{n}@dept.example")
        .parse()
        // lint:allow(panic): template-generated address; validity pinned by unit test
        .expect("generated address is valid")
}

/// Builds the full client dialog for one connection spec.
///
/// Random-guessing attempts are sent before valid recipients, matching the
/// harvesting behaviour of §4.1 (and ensuring the hybrid master is not
/// trusted prematurely).
pub fn build_script(spec: &ConnectionSpec) -> VecDeque<Step> {
    let mut s = VecDeque::new();
    s.push_back(Step::Cmd(Command::helo("client.example")));
    match &spec.kind {
        ConnectionKind::Mail(mails) => {
            for (i, m) in mails.iter().enumerate() {
                let sender: MailAddr = format!("sender{i}@remote.example")
                    .parse()
                    // lint:allow(panic): template-generated address; validity pinned by unit test
                    .expect("generated address is valid");
                s.push_back(Step::Cmd(Command::mail_from(Some(sender))));
                for g in 0..m.invalid_rcpts {
                    s.push_back(Step::Cmd(Command::rcpt_to(guess_addr(g as u32))));
                }
                for r in &m.valid_rcpts {
                    s.push_back(Step::Cmd(Command::rcpt_to(rcpt_addr(*r))));
                }
                s.push_back(Step::Cmd(Command::Data));
                s.push_back(Step::Body(m.size as u64));
            }
            s.push_back(Step::Cmd(Command::Quit));
        }
        ConnectionKind::Bounce { rcpt_attempts } => {
            s.push_back(Step::Cmd(Command::mail_from(None)));
            for g in 0..*rcpt_attempts {
                s.push_back(Step::Cmd(Command::rcpt_to(guess_addr(g as u32))));
            }
            s.push_back(Step::Cmd(Command::Quit));
        }
        ConnectionKind::Unfinished { handshake_commands } => {
            // 0 = the client silently drops the connection right after the
            // greeting (no QUIT) — the script ends and the engine models a
            // disconnect. Otherwise a few handshake commands, then QUIT.
            if *handshake_commands == 0 {
                s.clear();
            } else {
                if *handshake_commands >= 2 {
                    s.push_back(Step::Cmd(Command::mail_from(None)));
                }
                s.push_back(Step::Cmd(Command::Quit));
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use spamaware_netaddr::Ipv4;
    use spamaware_sim::Nanos;
    use spamaware_trace::MailSpec;

    fn spec(kind: ConnectionKind) -> ConnectionSpec {
        ConnectionSpec {
            arrival: Nanos::ZERO,
            client_ip: Ipv4::new(1, 2, 3, 4),
            kind,
        }
    }

    #[test]
    fn mail_script_shape() {
        let s = build_script(&spec(ConnectionKind::Mail(vec![MailSpec {
            valid_rcpts: vec![MailboxId(0), MailboxId(1)],
            invalid_rcpts: 1,
            size: 2048,
            spam: true,
        }])));
        let verbs: Vec<String> = s
            .iter()
            .map(|st| match st {
                Step::Cmd(c) => c.verb().to_string(),
                Step::Body(n) => format!("BODY({n})"),
            })
            .collect();
        assert_eq!(
            verbs,
            vec![
                "HELO",
                "MAIL",
                "RCPT",
                "RCPT",
                "RCPT",
                "DATA",
                "BODY(2048)",
                "QUIT"
            ]
        );
        // Invalid guess precedes valid recipients.
        match &s[2] {
            Step::Cmd(Command::RcptTo(a)) => assert!(a.local_part().starts_with("guess")),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Backs the `lint:allow(panic)` waivers above: every address template
    /// used by script construction parses for a representative id range.
    #[test]
    fn generated_addresses_are_always_valid() {
        for n in [0u32, 1, 7, 499, 10_000, u32::MAX] {
            assert_eq!(guess_addr(n).domain(), "dept.example");
            let sender: Result<MailAddr, _> = format!("sender{n}@remote.example").parse();
            assert!(sender.is_ok(), "sender template failed for {n}");
        }
        for id in [MailboxId(0), MailboxId(14), MailboxId(1_000_000)] {
            assert_eq!(rcpt_addr(id).domain(), "dept.example");
        }
    }

    #[test]
    fn bounce_script_never_reaches_data() {
        let s = build_script(&spec(ConnectionKind::Bounce { rcpt_attempts: 2 }));
        assert!(s.iter().all(|st| !matches!(st, Step::Body(_))));
        assert!(s.iter().all(|st| !matches!(st, Step::Cmd(Command::Data))));
        assert_eq!(s.len(), 5); // HELO MAIL RCPT RCPT QUIT
    }

    #[test]
    fn unfinished_scripts_scale_with_handshake() {
        let s0 = build_script(&spec(ConnectionKind::Unfinished {
            handshake_commands: 0,
        }));
        assert_eq!(s0.len(), 0); // silent drop, no QUIT
        let s1 = build_script(&spec(ConnectionKind::Unfinished {
            handshake_commands: 1,
        }));
        assert_eq!(s1.len(), 2); // HELO QUIT
        let s2 = build_script(&spec(ConnectionKind::Unfinished {
            handshake_commands: 2,
        }));
        assert_eq!(s2.len(), 3); // HELO MAIL QUIT
    }

    #[test]
    fn multi_transaction_connections_chain_mails() {
        let mail = MailSpec {
            valid_rcpts: vec![MailboxId(0)],
            invalid_rcpts: 0,
            size: 100,
            spam: false,
        };
        let s = build_script(&spec(ConnectionKind::Mail(vec![mail.clone(), mail])));
        let mails = s
            .iter()
            .filter(|st| matches!(st, Step::Cmd(Command::MailFrom(_))))
            .count();
        assert_eq!(mails, 2);
        let quits = s
            .iter()
            .filter(|st| matches!(st, Step::Cmd(Command::Quit)))
            .count();
        assert_eq!(quits, 1);
    }

    #[test]
    fn generated_addresses_parse() {
        assert_eq!(rcpt_addr(MailboxId(3)).local_part(), "user3");
        assert_eq!(guess_addr(9).local_part(), "guess9");
    }
}
