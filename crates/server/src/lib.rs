//! The simulated mail server: vanilla process-per-connection and hybrid
//! fork-after-trust architectures (paper §5) over the DES kernel, with
//! integrated DNSBL lookups (§7) and pluggable mailbox storage (§6).
//!
//! # Example
//!
//! ```
//! use spamaware_server::{run, ClientModel, ServerConfig};
//! use spamaware_sim::Nanos;
//! use spamaware_trace::bounce_sweep_trace;
//!
//! let trace = bounce_sweep_trace(1, 500, 0.5, 400);
//! let report = run(
//!     &trace,
//!     ServerConfig::hybrid(),
//!     ClientModel::Closed { concurrency: 50 },
//!     Nanos::from_secs(10),
//! );
//! assert!(report.mails > 0);
//! assert!(report.bounces > 0);
//! ```

mod cost;
mod engine;
mod script;
mod storage;

pub use cost::CostModel;
pub use engine::{
    run, Architecture, ClientModel, DnsConfig, DnsReport, RunReport, ServerConfig, TrustPoint,
};
pub use script::{build_script, guess_addr, rcpt_addr, Step};
pub use storage::SimStore;
