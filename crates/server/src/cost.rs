//! The CPU/network cost model of the simulated mail server.

use spamaware_sim::Nanos;

/// Per-operation virtual-time costs charged by the simulated server.
///
/// Defaults are calibrated so the vanilla process-per-connection server
/// peaks near the paper's ~180 mails/s on the Univ-like workload (§3,
/// "the throughput of postfix peaks at about 180 mails/sec with the
/// process limit configured at 500"). Costs are coarse stand-ins for whole
/// postfix pipelines (smtpd + cleanup + queue manager), not syscall-level
/// measurements; the experiments depend on their *ratios*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Forking a new smtpd process (charged only when the recycled-process
    /// pool grows).
    pub fork: Nanos,
    /// Context-switch penalty charged by the CPU between jobs of different
    /// processes.
    pub context_switch: Nanos,
    /// accept() plus connection bookkeeping in the master.
    pub accept_cpu: Nanos,
    /// Bringing an smtpd process up on a fresh connection: process wakeup,
    /// configuration, access-database open. Charged per connection in the
    /// process-per-connection architecture; the fork-after-trust master
    /// skips it for connections that never earn trust.
    pub session_setup_cpu: Nanos,
    /// Parsing one SMTP command and producing its reply in an smtpd
    /// process.
    pub command_cpu: Nanos,
    /// Processing one `RCPT TO` (access-database lookup + reply); cheaper
    /// than the general command path and paid once per recipient.
    pub rcpt_cpu: Nanos,
    /// Handling one SMTP command inside the master's event loop (cheaper:
    /// no process wakeup, shared buffers).
    pub event_loop_cpu: Nanos,
    /// Master-side cost of delegating a trusted connection to a worker
    /// (vector-send share plus fd transfer).
    pub delegation_cpu: Nanos,
    /// Per-KiB CPU for receiving and scanning message content.
    pub per_kib_cpu: Nanos,
    /// Post-DATA pipeline CPU per mail (cleanup, queue manager, local
    /// delivery bookkeeping).
    pub delivery_cpu: Nanos,
    /// CPU consumed issuing one DNSBL query and processing its answer
    /// (stub-resolver work, UDP stack, wakeups). Cache hits skip this.
    pub dns_query_cpu: Nanos,
    /// Round-trip time to the client (the paper emulates 30 ms).
    pub rtt: Nanos,
    /// Client-to-server bandwidth (paper: gigabit switch).
    pub bytes_per_sec: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            fork: Nanos::from_micros(300),
            context_switch: Nanos::from_micros(30),
            accept_cpu: Nanos::from_micros(25),
            session_setup_cpu: Nanos::from_micros(1_200),
            command_cpu: Nanos::from_micros(350),
            rcpt_cpu: Nanos::from_micros(60),
            event_loop_cpu: Nanos::from_micros(12),
            delegation_cpu: Nanos::from_micros(1_000),
            per_kib_cpu: Nanos::from_micros(25),
            delivery_cpu: Nanos::from_micros(1_800),
            dns_query_cpu: Nanos::from_micros(7_000),
            rtt: Nanos::from_millis(30),
            bytes_per_sec: 125_000_000,
        }
    }
}

impl CostModel {
    /// One-way network latency.
    pub fn half_rtt(&self) -> Nanos {
        self.rtt / 2
    }

    /// Wire time for `bytes` of message content.
    pub fn transfer_time(&self, bytes: u64) -> Nanos {
        Nanos::from_secs_f64(bytes as f64 / self.bytes_per_sec as f64)
    }

    /// CPU to process `bytes` of received message content.
    pub fn body_cpu(&self, bytes: u64) -> Nanos {
        self.per_kib_cpu * bytes.div_ceil(1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ratios_support_the_experiments() {
        let c = CostModel::default();
        // Fork-after-trust only pays off if event-loop handling is much
        // cheaper than a dedicated process handling the same command.
        assert!(c.command_cpu > c.event_loop_cpu * 5);
        // Session setup dominates a bounce connection's cost in the
        // vanilla architecture.
        assert!(c.session_setup_cpu > c.command_cpu * 2);
        // The DNS query CPU is paid per miss, and is material relative to
        // per-connection cost (the Fig. 14 mechanism).
        assert!(c.dns_query_cpu > c.command_cpu);
    }

    #[test]
    fn transfer_time_scales() {
        let c = CostModel::default();
        assert_eq!(c.transfer_time(125_000_000), Nanos::from_secs(1));
        assert!(c.transfer_time(4096) < Nanos::from_millis(1));
    }

    #[test]
    fn body_cpu_rounds_up_to_kib() {
        let c = CostModel::default();
        assert_eq!(c.body_cpu(1), c.per_kib_cpu);
        assert_eq!(c.body_cpu(4096), c.per_kib_cpu * 4);
    }

    #[test]
    fn half_rtt_is_half() {
        let c = CostModel::default();
        assert_eq!(c.half_rtt() * 2, c.rtt);
    }
}
