//! The simulated mail server: both concurrency architectures driven by
//! trace workloads through closed- or open-system clients.
//!
//! One [`World`] instance models the whole testbed of paper §3: the server
//! CPU (a FIFO resource with context-switch accounting), the disk (a FIFO
//! resource fed by the storage layout's metered costs), the 30 ms-RTT
//! network, the DNSBL resolver path, and the client population. The two
//! architectures differ only in who executes each connection's server-side
//! work:
//!
//! * **Vanilla** (Fig. 6): every accepted connection gets a dedicated
//!   (recycled) smtpd process; every command runs under that process id,
//!   so consecutive CPU jobs almost always context-switch.
//! * **Hybrid fork-after-trust** (Fig. 7): the master's event loop carries
//!   every connection through `HELO`/`MAIL`/`RCPT` under one process id;
//!   only connections that produce a valid recipient are delegated
//!   (batched, round-robin, bounded worker queues) to smtpd workers.

use crate::script::{build_script, Step};
use crate::{CostModel, SimStore};
use rand::rngs::StdRng;
use rand::Rng;
use spamaware_dnsbl::{CacheScheme, CachingResolver, DnsblServer, ResolverStats};
use spamaware_mfs::{DiskProfile, Layout, OpCounts};
use spamaware_sim::metrics::Histogram;
use spamaware_sim::{
    det_rng, run_until, FifoResource, Nanos, ProcId, Scheduler, ServiceJob, World as SimWorld,
};
use spamaware_smtp::{Command, MailAddr, ServerSession, SessionConfig, SessionOutcome};
use spamaware_trace::Trace;
use std::collections::VecDeque;

/// Which concurrency architecture the server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Architecture {
    /// Process-per-connection (paper Fig. 6).
    Vanilla,
    /// Fork-after-trust (paper Fig. 7).
    Hybrid,
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Architecture::Vanilla => "Vanilla",
            Architecture::Hybrid => "Hybrid",
        })
    }
}

/// When the hybrid master delegates a connection to a worker — the
/// ablation axis for the fork-after-trust design point. The paper's
/// architecture is [`TrustPoint::AfterValidRcpt`]; [`TrustPoint::AfterAccept`]
/// degenerates to process-per-connection with an accepting master, and
/// [`TrustPoint::AfterHelo`] trusts anyone who completes a greeting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TrustPoint {
    /// Delegate as soon as the connection is accepted.
    AfterAccept,
    /// Delegate after HELO/EHLO.
    AfterHelo,
    /// Delegate after the first valid `RCPT TO` (the paper's design).
    #[default]
    AfterValidRcpt,
}

/// DNSBL integration for a run.
#[derive(Debug)]
pub struct DnsConfig {
    /// Caching granularity.
    pub scheme: CacheScheme,
    /// Cache TTL (paper: 24 h).
    pub ttl: Nanos,
    /// The authoritative DNSBL server.
    pub server: DnsblServer,
}

/// Full server configuration for one simulated run.
#[derive(Debug)]
pub struct ServerConfig {
    /// Concurrency architecture.
    pub arch: Architecture,
    /// Vanilla: smtpd process limit (paper tunes 500 for peak throughput).
    /// Hybrid: number of smtpd worker processes.
    pub process_limit: usize,
    /// Hybrid: the master's socket-list capacity (paper: 700).
    pub socket_limit: usize,
    /// Hybrid: delegated tasks a worker's UNIX-domain socket holds (paper
    /// estimates ≈28 for a 64 KiB buffer at 7 recipients/mail).
    pub worker_queue_limit: usize,
    /// CPU/network cost model.
    pub cost: CostModel,
    /// Mailbox storage layout.
    pub layout: Layout,
    /// Disk cost profile.
    pub disk: DiskProfile,
    /// DNSBL lookups (None = disabled).
    pub dns: Option<DnsConfig>,
    /// SMTP session policy.
    pub session: SessionConfig,
    /// Hybrid only: when connections are delegated to workers.
    pub trust_point: TrustPoint,
    /// Connections an smtpd process serves before terminating itself and
    /// being re-forked (postfix `max_use`, default 100; paper §2: a
    /// process "has served a pre-configured number of requests,
    /// it terminates itself").
    pub smtpd_max_requests: u64,
}

impl ServerConfig {
    /// The paper's tuned vanilla server: 500 smtpd processes, mbox
    /// mailboxes on Ext3, no DNSBL.
    pub fn vanilla() -> ServerConfig {
        ServerConfig {
            arch: Architecture::Vanilla,
            process_limit: 500,
            socket_limit: 700,
            worker_queue_limit: 28,
            cost: CostModel::default(),
            layout: Layout::Mbox,
            disk: DiskProfile::ext3(),
            dns: None,
            session: SessionConfig::default(),
            trust_point: TrustPoint::default(),
            smtpd_max_requests: 100,
        }
    }

    /// The paper's hybrid server: 700 master sockets, recycled workers.
    pub fn hybrid() -> ServerConfig {
        ServerConfig {
            arch: Architecture::Hybrid,
            process_limit: 64,
            ..ServerConfig::vanilla()
        }
    }

    /// A qmail-like process-per-connection server: qmail-smtpd is spawned
    /// fresh by tcpserver for every connection (no process recycling) and
    /// runs a leaner per-command path. Used by the `generality_qmail`
    /// bench to back the paper's §10 claim that the optimizations "are
    /// general and applicable to other popular mail servers such as
    /// qmail".
    pub fn qmail_like() -> ServerConfig {
        let cost = CostModel {
            // Fresh exec per connection: heavier setup, no recycling —
            // but a simpler smtpd with a leaner command path.
            fork: Nanos::from_micros(900),
            command_cpu: Nanos::from_micros(280),
            ..CostModel::default()
        };
        ServerConfig {
            smtpd_max_requests: 1,
            cost,
            ..ServerConfig::vanilla()
        }
    }
}

/// The client population driving the server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClientModel {
    /// Client program 1 (paper §3): a fixed number of concurrent
    /// connections; each client reconnects as soon as its connection ends
    /// (closed-system model).
    Closed {
        /// Concurrent client connections maintained.
        concurrency: usize,
    },
    /// Client program 2: new connections at a fixed average rate,
    /// regardless of completions (open-system model).
    Open {
        /// Mean connection arrival rate (Poisson).
        rate_per_sec: f64,
    },
}

/// Snapshot of DNSBL resolver statistics for a report.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DnsReport {
    /// Lookups performed.
    pub lookups: u64,
    /// Cache hits.
    pub hits: u64,
    /// Queries issued to the DNSBL.
    pub queries_issued: u64,
    /// Lookup-latency distribution (ms).
    pub latency_ms: Histogram,
}

impl DnsReport {
    fn from_stats(s: &ResolverStats) -> DnsReport {
        DnsReport {
            lookups: s.lookups,
            hits: s.hits,
            queries_issued: s.queries_issued,
            latency_ms: s.latency_ms.clone(),
        }
    }

    /// Cache hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Fraction of lookups that issued a DNS query.
    pub fn query_fraction(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.queries_issued as f64 / self.lookups as f64
        }
    }
}

/// Results of one simulated run.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RunReport {
    /// Architecture that ran.
    pub arch: Architecture,
    /// Storage layout that ran.
    pub layout: Layout,
    /// Wall-clock (virtual) duration.
    pub duration: Nanos,
    /// Connections fully completed.
    pub connections: u64,
    /// Completed connections that delivered mail.
    pub delivered_connections: u64,
    /// Completed bounce connections.
    pub bounces: u64,
    /// Completed unfinished connections.
    pub unfinished: u64,
    /// Mails accepted (transactions).
    pub mails: u64,
    /// Mailbox deliveries (mails × recipients).
    pub deliveries: u64,
    /// Deliveries the store rejected with an error (0 for the in-memory
    /// backends; counted instead of panicking).
    pub store_failures: u64,
    /// CPU context switches.
    pub context_switches: u64,
    /// Processes forked (pool growth).
    pub forks: u64,
    /// CPU busy time.
    pub cpu_busy: Nanos,
    /// CPU consumed by connections that delivered mail.
    pub cpu_delivering: Nanos,
    /// CPU consumed by bounce connections — the waste the fork-after-trust
    /// architecture eliminates (paper §4.1 "can waste significant server
    /// resources in case of bounces").
    pub cpu_bounce: Nanos,
    /// CPU consumed by unfinished connections.
    pub cpu_unfinished: Nanos,
    /// Disk busy time.
    pub disk_busy: Nanos,
    /// Backend operation counts.
    pub disk_ops: OpCounts,
    /// DNSBL statistics, when enabled.
    pub dns: Option<DnsReport>,
    /// Session duration distribution (ms), completed connections.
    pub session_ms: Histogram,
}

impl RunReport {
    /// Good mails accepted per second (the paper's goodput, Fig. 8).
    pub fn goodput(&self) -> f64 {
        self.mails as f64 / self.duration.as_secs_f64()
    }

    /// Mailbox deliveries per second (the paper's "mails written/sec",
    /// Figs. 10/11).
    pub fn delivery_throughput(&self) -> f64 {
        self.deliveries as f64 / self.duration.as_secs_f64()
    }

    /// Completed connections per second (Fig. 14's throughput).
    pub fn connection_throughput(&self) -> f64 {
        self.connections as f64 / self.duration.as_secs_f64()
    }

    /// CPU utilization over the run.
    pub fn cpu_utilization(&self) -> f64 {
        self.cpu_busy.as_secs_f64() / self.duration.as_secs_f64()
    }
}

/// Runs `trace` against a server `cfg` with the given client model for
/// `duration` of virtual time (the paper uses 5-minute runs).
///
/// The trace is treated as a pool of connection specs consumed cyclically,
/// so any horizon can be simulated from any trace length.
///
/// # Panics
///
/// Panics if the trace is empty or the configuration is degenerate
/// (zero process/socket limits).
pub fn run(trace: &Trace, cfg: ServerConfig, client: ClientModel, duration: Nanos) -> RunReport {
    assert!(!trace.connections.is_empty(), "trace has no connections");
    assert!(cfg.process_limit > 0, "need at least one process");
    assert!(cfg.socket_limit > 0, "need at least one socket");
    let mut sched: Scheduler<Ev> = Scheduler::new();
    let mut world = World::new(trace, cfg, client, duration);
    world.bootstrap(&mut sched);
    run_until(&mut sched, &mut world, duration);
    world.into_report(duration)
}

const MASTER: ProcId = ProcId(0);

type ConnId = usize;

#[derive(Debug)]
enum Ev {
    /// A client initiates a connection (spec drawn cyclically).
    Arrive,
    /// Accept/setup CPU finished for the connection.
    AcceptDone(ConnId),
    /// The DNSBL answer arrived.
    DnsAnswer(ConnId),
    /// CPU spent processing the DNS answer finished.
    DnsCpuDone(ConnId),
    /// A command (or body) arrived at the server.
    AtServer(ConnId, Step),
    /// Command-processing CPU finished.
    CmdCpuDone(ConnId),
    /// Body-processing CPU finished.
    BodyCpuDone(ConnId),
    /// Disk write for the queued mail finished.
    DiskDone(ConnId),
    /// Master finished the delegation vector-send.
    DelegCpuDone(ConnId),
    /// The server's reply reached the client.
    ReplyAtClient(ConnId),
    /// The connection is fully closed.
    Closed(ConnId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Backlogged,
    Setup,
    Dialog,
    Done,
}

struct Conn {
    session: ServerSession,
    script: VecDeque<Step>,
    pid: ProcId,
    phase: Phase,
    delegated: bool,
    worker_active: bool,
    worker: Option<usize>,
    buffered: Option<Step>,
    pending: Option<Step>,
    started: Nanos,
    mails_recorded: u64,
    dns_was_miss: bool,
    needs_worker_setup: bool,
    cpu_used: Nanos,
}

struct WorkerState {
    pid: ProcId,
    current: Option<ConnId>,
    queue: VecDeque<ConnId>,
}

struct World<'a> {
    trace: &'a Trace,
    arch: Architecture,
    cost: CostModel,
    session_cfg: SessionConfig,
    cpu: FifoResource<Ev>,
    disk_load: Nanos,
    store: SimStore,
    resolver: Option<CachingResolver>,
    dns_server: Option<DnsblServer>,
    rng: StdRng,
    conns: Vec<Conn>,
    next_spec: usize,
    backlog: VecDeque<ConnId>,
    // Vanilla state.
    process_limit: usize,
    procs_in_use: usize,
    free_procs: Vec<ProcId>,
    next_proc: u32,
    forks: u64,
    // Hybrid state.
    smtpd_max_requests: u64,
    proc_served: std::collections::HashMap<ProcId, u64>,
    socket_limit: usize,
    master_sockets: usize,
    workers: Vec<WorkerState>,
    worker_queue_limit: usize,
    pending_delegation: VecDeque<ConnId>,
    rr_worker: usize,
    // Client.
    client: ClientModel,
    trust_point: TrustPoint,
    horizon: Nanos,
    // Metrics.
    connections: u64,
    delivered_connections: u64,
    bounces: u64,
    unfinished: u64,
    mails: u64,
    deliveries: u64,
    store_failures: u64,
    cpu_delivering: Nanos,
    cpu_bounce: Nanos,
    cpu_unfinished: Nanos,
    session_ms: Histogram,
    layout: Layout,
    /// Trace-spec index of each connection (for client IP lookups).
    spec_of: Vec<usize>,
}

impl<'a> World<'a> {
    fn new(trace: &'a Trace, cfg: ServerConfig, client: ClientModel, horizon: Nanos) -> World<'a> {
        let workers = match cfg.arch {
            Architecture::Vanilla => Vec::new(),
            Architecture::Hybrid => (0..cfg.process_limit)
                .map(|i| WorkerState {
                    pid: ProcId(1 + i as u32),
                    current: None,
                    queue: VecDeque::new(),
                })
                .collect(),
        };
        let (resolver, dns_server) = match cfg.dns {
            Some(d) => (Some(CachingResolver::new(d.scheme, d.ttl)), Some(d.server)),
            None => (None, None),
        };
        World {
            trace,
            arch: cfg.arch,
            cost: cfg.cost,
            session_cfg: cfg.session,
            cpu: FifoResource::new(cfg.cost.context_switch),
            disk_load: Nanos::ZERO,
            store: SimStore::new(cfg.layout, cfg.disk),
            resolver,
            dns_server,
            rng: det_rng(0xD15C0),
            conns: Vec::new(),
            next_spec: 0,
            backlog: VecDeque::new(),
            process_limit: cfg.process_limit,
            procs_in_use: 0,
            free_procs: Vec::new(),
            next_proc: 1_000,
            forks: 0,
            smtpd_max_requests: cfg.smtpd_max_requests,
            proc_served: std::collections::HashMap::new(),
            socket_limit: cfg.socket_limit,
            master_sockets: 0,
            workers,
            worker_queue_limit: cfg.worker_queue_limit,
            pending_delegation: VecDeque::new(),
            rr_worker: 0,
            client,
            trust_point: cfg.trust_point,
            horizon,
            connections: 0,
            delivered_connections: 0,
            bounces: 0,
            unfinished: 0,
            mails: 0,
            deliveries: 0,
            store_failures: 0,
            cpu_delivering: Nanos::ZERO,
            cpu_bounce: Nanos::ZERO,
            cpu_unfinished: Nanos::ZERO,
            session_ms: Histogram::for_latency_ms(),
            layout: cfg.layout,
            spec_of: Vec::new(),
        }
    }

    fn bootstrap(&mut self, sched: &mut Scheduler<Ev>) {
        // Steady state: every hosted mailbox already exists on disk.
        let names: Vec<String> = (0..self.trace.mailbox_count)
            .map(|i| format!("user{i}"))
            .collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        if let Err(e) = self.store.prewarm(&refs) {
            debug_assert!(false, "prewarm on in-memory store cannot fail: {e}");
        }
        match self.client {
            ClientModel::Closed { concurrency } => {
                for i in 0..concurrency {
                    sched.schedule_at(Nanos::from_micros(i as u64 * 200), Ev::Arrive);
                }
            }
            ClientModel::Open { rate_per_sec } => {
                assert!(rate_per_sec > 0.0, "open model needs a positive rate");
                sched.schedule_at(Nanos::ZERO, Ev::Arrive);
            }
        }
    }

    fn mailbox_count(&self) -> u32 {
        self.trace.mailbox_count
    }

    fn into_report(self, duration: Nanos) -> RunReport {
        // CPU conservation: every nanosecond attributed to a connection
        // category was first submitted to the shared CPU, whose busy time
        // additionally carries context-switch penalties — so the
        // categorised total can never exceed measured busy time.
        debug_assert!(
            self.cpu_delivering + self.cpu_bounce + self.cpu_unfinished <= self.cpu.stats().busy,
            "categorised CPU time exceeds measured CPU busy time"
        );
        RunReport {
            arch: self.arch,
            layout: self.layout,
            duration,
            connections: self.connections,
            delivered_connections: self.delivered_connections,
            bounces: self.bounces,
            unfinished: self.unfinished,
            mails: self.mails,
            deliveries: self.deliveries,
            store_failures: self.store_failures,
            context_switches: self.cpu.stats().context_switches,
            forks: self.forks,
            cpu_busy: self.cpu.stats().busy,
            cpu_delivering: self.cpu_delivering,
            cpu_bounce: self.cpu_bounce,
            cpu_unfinished: self.cpu_unfinished,
            disk_busy: self.disk_load,
            disk_ops: self.store.op_counts(),
            dns: self
                .resolver
                .as_ref()
                .map(|r| DnsReport::from_stats(r.stats())),
            session_ms: self.session_ms,
        }
    }

    /// Spawns a new connection from the next trace spec.
    fn new_conn(&mut self, sched: &mut Scheduler<Ev>) {
        let spec = &self.trace.connections[self.next_spec % self.trace.connections.len()];
        self.next_spec += 1;
        let mut session = ServerSession::new(self.session_cfg.clone());
        session.capture_bodies(false);
        let id = self.conns.len();
        self.conns.push(Conn {
            session,
            script: build_script(spec),
            pid: MASTER,
            phase: Phase::Backlogged,
            delegated: false,
            worker_active: false,
            worker: None,
            buffered: None,
            pending: None,
            started: sched.now(),
            mails_recorded: 0,
            dns_was_miss: false,
            needs_worker_setup: false,
            cpu_used: Nanos::ZERO,
        });
        // Remember which spec this conn uses for DNS lookups.
        self.spec_of
            .push((self.next_spec - 1) % self.trace.connections.len());
        self.try_accept(sched, id);
    }

    fn try_accept(&mut self, sched: &mut Scheduler<Ev>, id: ConnId) {
        match self.arch {
            Architecture::Vanilla => {
                if self.procs_in_use < self.process_limit {
                    self.procs_in_use += 1;
                    let (pid, fork_cost) = match self.free_procs.pop() {
                        Some(p) => (p, Nanos::ZERO),
                        None => {
                            self.forks += 1;
                            let p = ProcId(self.next_proc);
                            self.next_proc += 1;
                            (p, self.cost.fork)
                        }
                    };
                    self.conns[id].pid = pid;
                    self.conns[id].phase = Phase::Setup;
                    let service = self.cost.accept_cpu + fork_cost + self.cost.session_setup_cpu;
                    self.conns[id].cpu_used += service;
                    self.cpu
                        .submit(sched, ServiceJob::new(pid, service, Ev::AcceptDone(id)));
                } else {
                    self.backlog.push_back(id);
                }
            }
            Architecture::Hybrid => {
                if self.master_sockets < self.socket_limit {
                    self.master_sockets += 1;
                    self.conns[id].pid = MASTER;
                    self.conns[id].phase = Phase::Setup;
                    let service = self.cost.accept_cpu + self.cost.event_loop_cpu;
                    self.conns[id].cpu_used += service;
                    self.cpu
                        .submit(sched, ServiceJob::new(MASTER, service, Ev::AcceptDone(id)));
                } else {
                    self.backlog.push_back(id);
                }
            }
        }
    }

    /// The process currently executing server-side work for a connection.
    fn exec_pid(&self, id: ConnId) -> ProcId {
        match self.arch {
            Architecture::Vanilla => self.conns[id].pid,
            Architecture::Hybrid => match self.conns[id].worker {
                Some(w) if self.conns[id].worker_active => self.workers[w].pid,
                _ => MASTER,
            },
        }
    }

    /// Per-command CPU for the process executing this connection.
    fn cmd_cost(&self, id: ConnId) -> Nanos {
        match self.arch {
            Architecture::Vanilla => self.cost.command_cpu,
            Architecture::Hybrid => {
                if self.conns[id].worker_active {
                    self.cost.command_cpu
                } else {
                    self.cost.event_loop_cpu
                }
            }
        }
    }

    fn client_ip(&self, id: ConnId) -> spamaware_netaddr::Ipv4 {
        self.trace.connections[self.spec_of[id]].client_ip
    }

    fn send_reply(&mut self, sched: &mut Scheduler<Ev>, id: ConnId) {
        sched.schedule_in(self.cost.half_rtt(), Ev::ReplyAtClient(id));
    }

    /// Client received a reply (or the greeting): emit the next step.
    fn client_next(&mut self, sched: &mut Scheduler<Ev>, id: ConnId) {
        let Some(step) = self.conns[id].script.pop_front() else {
            // Script exhausted without QUIT (defensive): drop connection.
            sched.schedule_in(self.cost.half_rtt(), Ev::Closed(id));
            return;
        };
        let delay = match &step {
            Step::Cmd(_) => self.cost.half_rtt(),
            Step::Body(n) => self.cost.half_rtt() + self.cost.transfer_time(*n),
        };
        sched.schedule_in(delay, Ev::AtServer(id, step));
    }

    fn process_step(&mut self, sched: &mut Scheduler<Ev>, id: ConnId, step: Step) {
        // A delegated-but-not-yet-active connection's traffic waits in the
        // socket buffer until its worker picks the task up.
        if self.conns[id].delegated && !self.conns[id].worker_active {
            debug_assert!(self.conns[id].buffered.is_none(), "one in-flight step");
            self.conns[id].buffered = Some(step);
            return;
        }
        let pid = self.exec_pid(id);
        let setup = if self.conns[id].needs_worker_setup {
            self.conns[id].needs_worker_setup = false;
            self.cost.session_setup_cpu
        } else {
            Nanos::ZERO
        };
        match step {
            Step::Cmd(Command::RcptTo(_))
                if !matches!(self.arch, Architecture::Hybrid) || self.conns[id].worker_active =>
            {
                let service = setup + self.cost.rcpt_cpu;
                self.conns[id].pending = Some(step);
                self.conns[id].cpu_used += service;
                self.cpu
                    .submit(sched, ServiceJob::new(pid, service, Ev::CmdCpuDone(id)));
            }
            Step::Cmd(_) => {
                let service = setup + self.cmd_cost(id);
                self.conns[id].pending = Some(step);
                self.conns[id].cpu_used += service;
                self.cpu
                    .submit(sched, ServiceJob::new(pid, service, Ev::CmdCpuDone(id)));
            }
            Step::Body(n) => {
                let service = setup + self.cost.body_cpu(n) + self.cost.delivery_cpu;
                self.conns[id].pending = Some(Step::Body(n));
                self.conns[id].cpu_used += service;
                self.cpu
                    .submit(sched, ServiceJob::new(pid, service, Ev::BodyCpuDone(id)));
            }
        }
    }

    fn handle_command(&mut self, sched: &mut Scheduler<Ev>, id: ConnId) {
        let Some(Step::Cmd(cmd)) = self.conns[id].pending.take() else {
            debug_assert!(false, "CmdCpuDone without a pending command");
            return;
        };
        let mailboxes = self.mailbox_count();
        let exists = move |a: &MailAddr| mailbox_exists(a, mailboxes);
        let is_quit = matches!(cmd, Command::Quit);
        let reply = self.conns[id].session.handle(cmd, &exists);
        // Fork-after-trust: delegation fires at the configured trust point
        // (the paper's design: the first valid recipient).
        let trusted = match self.trust_point {
            TrustPoint::AfterAccept => true,
            TrustPoint::AfterHelo => !matches!(
                self.conns[id].session.phase(),
                spamaware_smtp::SessionPhase::Start
            ),
            TrustPoint::AfterValidRcpt => self.conns[id].session.has_valid_recipient(),
        };
        if self.arch == Architecture::Hybrid && !self.conns[id].delegated && trusted {
            self.conns[id].delegated = true;
            self.conns[id].cpu_used += self.cost.delegation_cpu;
            self.cpu.submit(
                sched,
                ServiceJob::new(MASTER, self.cost.delegation_cpu, Ev::DelegCpuDone(id)),
            );
        }
        let _ = reply;
        if is_quit {
            // 221 travels to the client; the connection closes when it
            // lands.
            sched.schedule_in(self.cost.half_rtt(), Ev::Closed(id));
        } else {
            self.send_reply(sched, id);
        }
    }

    fn handle_body_done(&mut self, sched: &mut Scheduler<Ev>, id: ConnId) {
        let Some(Step::Body(n)) = self.conns[id].pending.take() else {
            debug_assert!(false, "BodyCpuDone without a pending body");
            return;
        };
        let mail_tag = format!("Q{id:X}-{}", self.conns[id].mails_recorded);
        let reply = self.conns[id].session.finish_data_sized(&mail_tag, n);
        if reply.code() != 250 {
            // Oversized message rejected (552): nothing reaches the store.
            self.send_reply(sched, id);
            return;
        }
        self.conns[id].mails_recorded += 1;
        let Some(env) = self.conns[id].session.delivered().last() else {
            debug_assert!(false, "finish_data recorded an envelope");
            self.send_reply(sched, id);
            return;
        };
        let names: Vec<String> = env
            .recipients
            .iter()
            .map(|a| a.local_part().to_owned())
            .collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let cost = match self.store.deliver(&name_refs, n) {
            Ok(cost) => cost,
            Err(_) => {
                // A failed store keeps the session alive: count the fault
                // and finish the transaction with zero storage work (the
                // in-memory backends cannot actually fail).
                self.store_failures += 1;
                Nanos::ZERO
            }
        };
        // Journaled small writes are CPU-bound through the buffer cache:
        // the delivering process burns CPU for the storage cost, and the
        // disk resource tracks the same work for utilization reporting.
        self.disk_load += cost;
        let pid = self.exec_pid(id);
        self.conns[id].cpu_used += cost;
        self.cpu
            .submit(sched, ServiceJob::new(pid, cost, Ev::DiskDone(id)));
    }

    fn start_dns(&mut self, sched: &mut Scheduler<Ev>, id: ConnId) {
        let ip = self.client_ip(id);
        let now = sched.now();
        let (Some(resolver), Some(server)) = (self.resolver.as_mut(), self.dns_server.as_ref())
        else {
            // DNS not configured: fall through to the greeting.
            self.greet(sched, id);
            return;
        };
        let outcome = resolver.lookup(ip, now, server, &mut self.rng);
        self.conns[id].dns_was_miss = !outcome.cache_hit;
        sched.schedule_in(outcome.latency, Ev::DnsAnswer(id));
    }

    fn greet(&mut self, sched: &mut Scheduler<Ev>, id: ConnId) {
        self.conns[id].phase = Phase::Dialog;
        if self.arch == Architecture::Hybrid
            && self.trust_point == TrustPoint::AfterAccept
            && !self.conns[id].delegated
        {
            self.conns[id].delegated = true;
            self.cpu.submit(
                sched,
                ServiceJob::new(MASTER, self.cost.delegation_cpu, Ev::DelegCpuDone(id)),
            );
        }
        // The 220 greeting travels to the client, which answers with the
        // first scripted command.
        sched.schedule_in(self.cost.half_rtt(), Ev::ReplyAtClient(id));
    }

    fn delegate(&mut self, sched: &mut Scheduler<Ev>, id: ConnId) {
        // Find a worker with queue space, round-robin from the last used.
        let n = self.workers.len();
        for probe in 0..n {
            let w = (self.rr_worker + probe) % n;
            let worker = &mut self.workers[w];
            if worker.current.is_none() {
                worker.current = Some(id);
                self.rr_worker = (w + 1) % n;
                self.master_sockets -= 1;
                self.conns[id].worker = Some(w);
                self.activate_on_worker(sched, id);
                self.admit_from_backlog(sched);
                self.debug_check_worker_invariants();
                return;
            }
            if worker.queue.len() < self.worker_queue_limit {
                worker.queue.push_back(id);
                self.rr_worker = (w + 1) % n;
                self.master_sockets -= 1;
                self.conns[id].worker = Some(w);
                self.admit_from_backlog(sched);
                self.debug_check_worker_invariants();
                return;
            }
        }
        // Every worker socket is full: the master keeps the connection —
        // the finite socket buffers act as a natural throttle (§5.3).
        self.pending_delegation.push_back(id);
        self.debug_check_worker_invariants();
    }

    /// Debug-build invariant check on hybrid dispatch: every worker queue
    /// respects the configured socket-buffer bound, and each delegated
    /// connection is held in exactly one place (a worker's active slot,
    /// one worker queue, or the master's pending list) — a connection
    /// counted twice would be served twice and corrupt the CPU accounting.
    /// Compiles to a no-op in release builds.
    fn debug_check_worker_invariants(&self) {
        if !cfg!(debug_assertions) {
            return;
        }
        let mut seen = std::collections::HashSet::new();
        for w in &self.workers {
            debug_assert!(
                w.queue.len() <= self.worker_queue_limit,
                "worker {:?} queue length {} exceeds limit {}",
                w.pid,
                w.queue.len(),
                self.worker_queue_limit
            );
            for id in w.current.iter().chain(w.queue.iter()) {
                debug_assert!(seen.insert(*id), "connection {id} held twice by workers");
            }
        }
        for id in &self.pending_delegation {
            debug_assert!(
                seen.insert(*id),
                "connection {id} both pending and on a worker"
            );
        }
    }

    fn activate_on_worker(&mut self, sched: &mut Scheduler<Ev>, id: ConnId) {
        self.conns[id].worker_active = true;
        // The worker brings up full smtpd session state for the delegated
        // connection; the cost lands on its first job for this connection.
        self.conns[id].needs_worker_setup = true;
        if let Some(step) = self.conns[id].buffered.take() {
            self.process_step(sched, id, step);
        }
    }

    fn worker_finished(&mut self, sched: &mut Scheduler<Ev>, w: usize) {
        // Prefer connections stranded in the master (throttled) over the
        // worker's own queue? No: queue order is FIFO through the socket.
        let next = self.workers[w].queue.pop_front();
        self.workers[w].current = next;
        if let Some(nid) = next {
            self.activate_on_worker(sched, nid);
        }
        // Queue space opened: drain one master-throttled connection.
        if let Some(pid) = self.pending_delegation.pop_front() {
            self.delegate(sched, pid);
        }
        self.debug_check_worker_invariants();
    }

    fn admit_from_backlog(&mut self, sched: &mut Scheduler<Ev>) {
        if let Some(next) = self.backlog.pop_front() {
            self.try_accept(sched, next);
        }
    }

    fn close_conn(&mut self, sched: &mut Scheduler<Ev>, id: ConnId) {
        if self.conns[id].phase == Phase::Done {
            return;
        }
        self.conns[id].phase = Phase::Done;
        self.connections += 1;
        match self.conns[id].session.outcome() {
            SessionOutcome::Delivered => {
                self.delivered_connections += 1;
                self.cpu_delivering += self.conns[id].cpu_used;
            }
            SessionOutcome::Bounce => {
                self.bounces += 1;
                self.cpu_bounce += self.conns[id].cpu_used;
            }
            SessionOutcome::Unfinished => {
                self.unfinished += 1;
                self.cpu_unfinished += self.conns[id].cpu_used;
            }
        }
        let elapsed = sched.now() - self.conns[id].started;
        self.session_ms.record_nanos_as_ms(elapsed);
        // Release execution resources.
        match self.arch {
            Architecture::Vanilla => {
                let pid = self.conns[id].pid;
                let served = self.proc_served.entry(pid).or_insert(0);
                *served += 1;
                if *served >= self.smtpd_max_requests {
                    // The smtpd retires after max_use requests; the next
                    // accept forks a fresh process (paper §2).
                    self.proc_served.remove(&pid);
                } else {
                    self.free_procs.push(pid);
                }
                self.procs_in_use -= 1;
                self.admit_from_backlog(sched);
            }
            Architecture::Hybrid => {
                if let Some(w) = self.conns[id].worker {
                    if self.conns[id].worker_active {
                        self.worker_finished(sched, w);
                    }
                } else {
                    // Never delegated: lived and died in the master.
                    self.master_sockets -= 1;
                    self.admit_from_backlog(sched);
                }
            }
        }
        // Closed-system client: reconnect immediately.
        if let ClientModel::Closed { .. } = self.client {
            sched.schedule_in(Nanos::from_micros(1), Ev::Arrive);
        }
        // Free per-connection memory for long runs.
        self.conns[id].script.clear();
        self.conns[id].buffered = None;
    }
}

fn mailbox_exists(a: &MailAddr, mailbox_count: u32) -> bool {
    if a.domain() != "dept.example" {
        return false;
    }
    a.local_part()
        .strip_prefix("user")
        .and_then(|n| n.parse::<u32>().ok())
        .is_some_and(|n| n < mailbox_count)
}

impl SimWorld for World<'_> {
    type Event = Ev;

    fn handle(&mut self, sched: &mut Scheduler<Ev>, ev: Ev) {
        match ev {
            Ev::Arrive => {
                if let ClientModel::Open { rate_per_sec } = self.client {
                    // Draw the next Poisson arrival before serving this one.
                    let gap = -(1.0 - self.rng.gen::<f64>()).ln() / rate_per_sec;
                    let at = sched.now() + Nanos::from_secs_f64(gap);
                    if at <= self.horizon {
                        sched.schedule_at(at, Ev::Arrive);
                    }
                }
                self.new_conn(sched);
            }
            Ev::AcceptDone(id) => {
                self.cpu.on_complete(sched);
                if self.resolver.is_some() {
                    self.start_dns(sched, id);
                } else {
                    self.greet(sched, id);
                }
            }
            Ev::DnsAnswer(id) => {
                if self.conns[id].dns_was_miss {
                    // Processing the answer costs CPU on the executing
                    // process; cache hits skip the resolver round-trip.
                    let pid = self.exec_pid(id);
                    self.conns[id].cpu_used += self.cost.dns_query_cpu;
                    self.cpu.submit(
                        sched,
                        ServiceJob::new(pid, self.cost.dns_query_cpu, Ev::DnsCpuDone(id)),
                    );
                } else {
                    self.greet(sched, id);
                }
            }
            Ev::DnsCpuDone(id) => {
                self.cpu.on_complete(sched);
                self.greet(sched, id);
            }
            Ev::AtServer(id, step) => self.process_step(sched, id, step),
            Ev::CmdCpuDone(id) => {
                self.cpu.on_complete(sched);
                self.handle_command(sched, id);
            }
            Ev::BodyCpuDone(id) => {
                self.cpu.on_complete(sched);
                self.handle_body_done(sched, id);
            }
            Ev::DiskDone(id) => {
                self.cpu.on_complete(sched);
                // A mail counts as delivered only once its storage work has
                // drained; counting at submit time credits layouts for a
                // backlog they never finish within the horizon.
                let rcpts = self.conns[id]
                    .session
                    .delivered()
                    .last()
                    .map_or(0, |env| env.recipients.len() as u64);
                self.mails += 1;
                self.deliveries += rcpts;
                self.send_reply(sched, id);
            }
            Ev::DelegCpuDone(id) => {
                self.cpu.on_complete(sched);
                self.delegate(sched, id);
            }
            Ev::ReplyAtClient(id) => self.client_next(sched, id),
            Ev::Closed(id) => self.close_conn(sched, id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spamaware_trace::bounce_sweep_trace;

    #[test]
    fn presets_have_expected_shapes() {
        let v = ServerConfig::vanilla();
        assert_eq!(v.arch, Architecture::Vanilla);
        assert_eq!(v.process_limit, 500);
        let h = ServerConfig::hybrid();
        assert_eq!(h.arch, Architecture::Hybrid);
        assert_eq!(h.socket_limit, 700);
        assert_eq!(h.worker_queue_limit, 28);
        assert_eq!(h.trust_point, TrustPoint::AfterValidRcpt);
        let q = ServerConfig::qmail_like();
        assert_eq!(q.smtpd_max_requests, 1, "qmail never recycles");
    }

    #[test]
    fn run_report_rate_helpers() {
        let trace = bounce_sweep_trace(1, 500, 0.0, 50);
        let rep = run(
            &trace,
            ServerConfig::vanilla(),
            ClientModel::Closed { concurrency: 10 },
            Nanos::from_secs(5),
        );
        assert!((rep.goodput() - rep.mails as f64 / 5.0).abs() < 1e-9);
        assert!(rep.delivery_throughput() >= rep.goodput());
        assert!(rep.cpu_utilization() > 0.0 && rep.cpu_utilization() <= 1.01);
    }

    #[test]
    #[should_panic(expected = "trace has no connections")]
    fn empty_trace_rejected() {
        let trace = spamaware_trace::Trace {
            connections: vec![],
            mailbox_count: 1,
            span: Nanos::ZERO,
        };
        run(
            &trace,
            ServerConfig::vanilla(),
            ClientModel::Closed { concurrency: 1 },
            Nanos::from_secs(1),
        );
    }

    #[test]
    #[should_panic(expected = "positive rate")]
    fn open_model_rejects_zero_rate() {
        let trace = bounce_sweep_trace(1, 10, 0.0, 50);
        run(
            &trace,
            ServerConfig::vanilla(),
            ClientModel::Open { rate_per_sec: 0.0 },
            Nanos::from_secs(1),
        );
    }

    #[test]
    fn dns_report_ratios() {
        let r = DnsReport {
            lookups: 100,
            hits: 80,
            queries_issued: 20,
            latency_ms: spamaware_sim::metrics::Histogram::for_latency_ms(),
        };
        assert!((r.hit_ratio() - 0.8).abs() < 1e-12);
        assert!((r.query_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn mailbox_validator_semantics() {
        let a = |s: &str| s.parse::<MailAddr>().expect("valid");
        assert!(mailbox_exists(&a("user0@dept.example"), 400));
        assert!(mailbox_exists(&a("user399@dept.example"), 400));
        assert!(!mailbox_exists(&a("user400@dept.example"), 400));
        assert!(!mailbox_exists(&a("guess1@dept.example"), 400));
        assert!(!mailbox_exists(&a("user1@other.example"), 400));
        assert!(!mailbox_exists(&a("userx@dept.example"), 400));
    }

    #[test]
    fn run_report_serializes() {
        let trace = bounce_sweep_trace(2, 100, 0.2, 50);
        let rep = run(
            &trace,
            ServerConfig::hybrid(),
            ClientModel::Closed { concurrency: 5 },
            Nanos::from_secs(2),
        );
        let json = serde_json::to_string(&rep).expect("serialize");
        assert!(json.contains("\"arch\":\"Hybrid\""), "{json}");
        let back: RunReport = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.mails, rep.mails);
        assert_eq!(back.context_switches, rep.context_switches);
    }
}
