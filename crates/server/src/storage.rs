//! Storage integration for the simulated server: the four mailbox layouts
//! over a metered in-memory backend, delivering size-only bodies.

use spamaware_mfs::{
    DataRef, DiskProfile, HardlinkStore, Layout, MailId, MailIdAllocator, MailStore, MaildirStore,
    MboxStore, MemFs, Metered, MfsStore, OpCounts, StoreResult,
};
use spamaware_sim::Nanos;

enum Inner {
    Mbox(MboxStore<Metered<MemFs>>),
    Maildir(MaildirStore<Metered<MemFs>>),
    Hardlink(HardlinkStore<Metered<MemFs>>),
    // Boxed: MfsStore is much larger than the other layouts
    // (clippy::large_enum_variant).
    Mfs(Box<MfsStore<Metered<MemFs>>>),
}

/// A mailbox store wired for simulation: size-only bodies, per-delivery
/// virtual-time cost extraction, and mail-id allocation.
///
/// # Example
///
/// ```
/// use spamaware_mfs::{DiskProfile, Layout};
/// use spamaware_server::SimStore;
///
/// let mut store = SimStore::new(Layout::Mfs, DiskProfile::ext3());
/// let cost = store.deliver(&["user0", "user1"], 4096)?;
/// assert!(cost > spamaware_sim::Nanos::ZERO);
/// # Ok::<(), spamaware_mfs::StoreError>(())
/// ```
pub struct SimStore {
    inner: Inner,
    layout: Layout,
    ids: MailIdAllocator,
}

impl std::fmt::Debug for SimStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimStore")
            .field("layout", &self.layout)
            .finish_non_exhaustive()
    }
}

impl SimStore {
    /// Creates a store of the given layout over a size-only in-memory
    /// backend metered with `profile`.
    pub fn new(layout: Layout, profile: DiskProfile) -> SimStore {
        SimStore::with_mfs_threshold(layout, profile, 2)
    }

    /// Like [`SimStore::new`], with an explicit MFS share threshold
    /// (minimum recipients routed through the shared mailbox; the
    /// `ablation_mfs_threshold` bench sweeps this).
    pub fn with_mfs_threshold(layout: Layout, profile: DiskProfile, threshold: usize) -> SimStore {
        let backend = || Metered::new(MemFs::size_only(), profile);
        let inner = match layout {
            Layout::Mbox => Inner::Mbox(MboxStore::new(backend())),
            Layout::Maildir => Inner::Maildir(MaildirStore::new(backend())),
            Layout::Hardlink => Inner::Hardlink(HardlinkStore::new(backend())),
            Layout::Mfs => Inner::Mfs(Box::new(
                MfsStore::new(backend()).with_share_threshold(threshold),
            )),
        };
        SimStore {
            inner,
            layout,
            ids: MailIdAllocator::new(),
        }
    }

    /// The layout in use.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Delivers one `size`-byte mail to `mailboxes`, returning the disk
    /// cost the delivery incurred.
    ///
    /// # Errors
    ///
    /// Propagates layout errors (should not occur with allocator-unique
    /// ids).
    pub fn deliver(&mut self, mailboxes: &[&str], size: u64) -> StoreResult<Nanos> {
        let id = self.ids.allocate();
        self.deliver_with_id(id, mailboxes, size)
    }

    /// Like [`SimStore::deliver`] with an explicit id (ablation harnesses).
    pub fn deliver_with_id(
        &mut self,
        id: MailId,
        mailboxes: &[&str],
        size: u64,
    ) -> StoreResult<Nanos> {
        let body = DataRef::Zeros(size);
        match &mut self.inner {
            Inner::Mbox(s) => {
                s.deliver(id, mailboxes, body)?;
                Ok(s.backend_mut().take_cost())
            }
            Inner::Maildir(s) => {
                s.deliver(id, mailboxes, body)?;
                Ok(s.backend_mut().take_cost())
            }
            Inner::Hardlink(s) => {
                s.deliver(id, mailboxes, body)?;
                Ok(s.backend_mut().take_cost())
            }
            Inner::Mfs(s) => {
                s.deliver(id, mailboxes, body)?;
                Ok(s.backend_mut().take_cost())
            }
        }
    }

    /// Pre-creates the steady-state mailbox structures (mbox files, MFS
    /// key/data files, the shared mailbox) and zeroes the accounting, so a
    /// run measures steady-state delivery cost rather than first-delivery
    /// file creation. Maildir-family layouts create a file per mail by
    /// design, so prewarming leaves their per-delivery cost unchanged.
    ///
    /// # Errors
    ///
    /// Propagates the first failed prewarm delivery (the in-memory
    /// backends cannot fail).
    pub fn prewarm(&mut self, mailboxes: &[&str]) -> StoreResult<()> {
        for mb in mailboxes {
            self.deliver(&[mb], 1)?;
        }
        if mailboxes.len() >= 2 {
            self.deliver(&mailboxes[..2], 1)?;
        }
        self.reset_accounting();
        Ok(())
    }

    /// Zeroes cost and operation counters.
    pub fn reset_accounting(&mut self) {
        match &mut self.inner {
            Inner::Mbox(s) => s.backend_mut().reset_accounting(),
            Inner::Maildir(s) => s.backend_mut().reset_accounting(),
            Inner::Hardlink(s) => s.backend_mut().reset_accounting(),
            Inner::Mfs(s) => s.backend_mut().reset_accounting(),
        }
    }

    /// Cumulative backend operation counts.
    pub fn op_counts(&self) -> OpCounts {
        match &self.inner {
            Inner::Mbox(s) => s.backend().counts(),
            Inner::Maildir(s) => s.backend().counts(),
            Inner::Hardlink(s) => s.backend().counts(),
            Inner::Mfs(s) => s.backend().counts(),
        }
    }

    /// Bytes stored on "disk" (each inode counted once).
    pub fn stored_bytes(&self) -> u64 {
        match &self.inner {
            Inner::Mbox(s) => s.backend().inner().total_bytes(),
            Inner::Maildir(s) => s.backend().inner().total_bytes(),
            Inner::Hardlink(s) => s.backend().inner().total_bytes(),
            Inner::Mfs(s) => s.backend().inner().total_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mfs_multi_recipient_cheaper_than_mbox() -> Result<(), Box<dyn std::error::Error>> {
        let boxes: Vec<String> = (0..15).map(|i| format!("user{i}")).collect();
        let names: Vec<&str> = boxes.iter().map(String::as_str).collect();
        let mut mfs = SimStore::new(Layout::Mfs, DiskProfile::ext3());
        let mut mbox = SimStore::new(Layout::Mbox, DiskProfile::ext3());
        mfs.prewarm(&names)?;
        mbox.prewarm(&names)?;
        let c_mfs = mfs.deliver(&names, 4096)?;
        let c_mbox = mbox.deliver(&names, 4096)?;
        assert!(
            c_mfs.as_nanos() * 3 < c_mbox.as_nanos() * 2,
            "mfs {c_mfs} vs mbox {c_mbox}"
        );
        Ok(())
    }

    #[test]
    fn maildir_on_ext3_is_catastrophic() -> Result<(), Box<dyn std::error::Error>> {
        let boxes: Vec<String> = (0..15).map(|i| format!("user{i}")).collect();
        let names: Vec<&str> = boxes.iter().map(String::as_str).collect();
        let mut maildir = SimStore::new(Layout::Maildir, DiskProfile::ext3());
        let mut mbox = SimStore::new(Layout::Mbox, DiskProfile::ext3());
        maildir.prewarm(&names)?;
        mbox.prewarm(&names)?;
        let c_maildir = maildir.deliver(&names, 4096)?;
        let c_mbox = mbox.deliver(&names, 4096)?;
        assert!(c_maildir > c_mbox * 3, "maildir {c_maildir} mbox {c_mbox}");
        Ok(())
    }

    #[test]
    fn hardlink_recovers_on_reiser() -> Result<(), Box<dyn std::error::Error>> {
        let boxes: Vec<String> = (0..15).map(|i| format!("user{i}")).collect();
        let names: Vec<&str> = boxes.iter().map(String::as_str).collect();
        let mut hl_ext3 = SimStore::new(Layout::Hardlink, DiskProfile::ext3());
        let mut hl_reiser = SimStore::new(Layout::Hardlink, DiskProfile::reiser());
        let a = hl_ext3.deliver(&names, 4096)?;
        let b = hl_reiser.deliver(&names, 4096)?;
        assert!(a > b * 3, "ext3 {a} vs reiser {b}");
        Ok(())
    }

    #[test]
    fn single_recipient_costs_are_close_across_mbox_and_mfs(
    ) -> Result<(), Box<dyn std::error::Error>> {
        let mut mfs = SimStore::new(Layout::Mfs, DiskProfile::ext3());
        let mut mbox = SimStore::new(Layout::Mbox, DiskProfile::ext3());
        mfs.prewarm(&["alice"])?;
        mbox.prewarm(&["alice"])?;
        let c_mfs = mfs.deliver(&["alice"], 4096)?;
        let c_mbox = mbox.deliver(&["alice"], 4096)?;
        let ratio = c_mfs.as_secs_f64() / c_mbox.as_secs_f64();
        assert!((0.5..=2.0).contains(&ratio), "ratio {ratio}");
        Ok(())
    }

    #[test]
    fn op_counts_accumulate() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = SimStore::new(Layout::Mbox, DiskProfile::ext3());
        s.deliver(&["a"], 100)?;
        s.deliver(&["a", "b"], 100)?;
        let c = s.op_counts();
        assert_eq!(c.appends, 3); // one vectored record write per mailbox delivery
        assert!(s.stored_bytes() > 0);
        Ok(())
    }

    #[test]
    fn ids_are_unique_across_deliveries() -> Result<(), Box<dyn std::error::Error>> {
        // Regression guard: duplicate ids would make maildir delivery fail.
        let mut s = SimStore::new(Layout::Maildir, DiskProfile::ext3());
        for _ in 0..100 {
            s.deliver(&["a"], 10)?;
        }
        Ok(())
    }
}
