//! SMTP replies.

use std::fmt;

/// A server reply: a 3-digit code and a text line.
///
/// # Example
///
/// ```
/// use spamaware_smtp::Reply;
/// let r = Reply::user_unknown();
/// assert_eq!(r.code(), 550);
/// assert!(r.is_permanent_failure());
/// assert_eq!(r.to_string(), "550 5.1.1 User unknown");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    code: u16,
    text: String,
    /// Additional lines of a multiline reply (RFC 5321 §4.2.1); each is
    /// rendered as `<code>-<line>` with the final line carrying the text.
    extra: Vec<String>,
}

impl Reply {
    /// Builds an arbitrary reply.
    ///
    /// # Panics
    ///
    /// Panics if `code` is not a 3-digit SMTP code (200–599).
    pub fn new(code: u16, text: impl Into<String>) -> Reply {
        assert!((200..=599).contains(&code), "invalid SMTP code {code}");
        Reply {
            code,
            text: text.into(),
            extra: Vec::new(),
        }
    }

    /// Builds a multiline reply: `first` then `rest`, the last line being
    /// the terminal one (`250-a`, `250-b`, `250 c` on the wire).
    ///
    /// # Panics
    ///
    /// Panics if `code` is not a 3-digit SMTP code or `rest` is empty
    /// (use [`Reply::new`] for single-line replies).
    pub fn multiline(code: u16, first: impl Into<String>, rest: Vec<String>) -> Reply {
        assert!((200..=599).contains(&code), "invalid SMTP code {code}");
        assert!(!rest.is_empty(), "multiline reply needs extra lines");
        let mut lines = vec![first.into()];
        lines.extend(rest);
        // The assert above guarantees at least two lines.
        let text = lines.pop().unwrap_or_default();
        Reply {
            code,
            text,
            extra: lines,
        }
    }

    /// `250` EHLO acknowledgement advertising ESMTP extensions.
    pub fn hello_esmtp(host: &str, max_message_size: Option<u64>) -> Reply {
        let mut ext = vec!["8BITMIME".to_owned()];
        if let Some(n) = max_message_size {
            ext.push(format!("SIZE {n}"));
        }
        Reply::multiline(250, host.to_owned(), ext)
    }

    /// `220` service-ready greeting.
    pub fn greeting(host: &str) -> Reply {
        Reply::new(220, format!("{host} ESMTP spamaware"))
    }

    /// `250 Ok`.
    pub fn ok() -> Reply {
        Reply::new(250, "2.0.0 Ok")
    }

    /// `250` HELO/EHLO acknowledgement.
    pub fn hello(host: &str) -> Reply {
        Reply::new(250, host.to_owned())
    }

    /// `354` start-mail-input.
    pub fn start_data() -> Reply {
        Reply::new(354, "End data with <CR><LF>.<CR><LF>")
    }

    /// `250` queued-as acknowledgement after DATA.
    pub fn queued(mail_id: &str) -> Reply {
        Reply::new(250, format!("2.0.0 Ok: queued as {mail_id}"))
    }

    /// `221` closing.
    pub fn bye() -> Reply {
        Reply::new(221, "2.0.0 Bye")
    }

    /// `550` unknown mailbox — the paper's bounce reply (§4.1).
    pub fn user_unknown() -> Reply {
        Reply::new(550, "5.1.1 User unknown")
    }

    /// `554` rejected by blacklist policy.
    pub fn blacklisted(reason: &str) -> Reply {
        Reply::new(554, format!("5.7.1 Service unavailable; {reason}"))
    }

    /// `554` transport not supported — the live server speaks IPv4 only
    /// (DNSBL prefix caching is defined over IPv4 /25s), so IPv6 peers
    /// are told to retry over IPv4 instead of being silently remapped.
    pub fn ipv6_unsupported() -> Reply {
        Reply::new(554, "5.3.4 IPv6 transport not supported; connect via IPv4")
    }

    /// `500` unrecognized command.
    pub fn syntax_error() -> Reply {
        Reply::new(500, "5.5.2 Error: command not recognized")
    }

    /// `501` bad argument.
    pub fn bad_argument() -> Reply {
        Reply::new(501, "5.5.4 Syntax error in parameters")
    }

    /// `503` command out of sequence.
    pub fn bad_sequence(expected: &str) -> Reply {
        Reply::new(503, format!("5.5.1 Error: need {expected} command"))
    }

    /// `452` too many recipients.
    pub fn too_many_recipients() -> Reply {
        Reply::new(452, "4.5.3 Error: too many recipients")
    }

    /// `452` session transaction cap reached.
    pub fn too_many_transactions() -> Reply {
        Reply::new(452, "4.5.3 Too many transactions")
    }

    /// `552` message exceeds the advertised SIZE limit.
    pub fn message_too_large() -> Reply {
        Reply::new(552, "5.3.4 Message size exceeds limit")
    }

    /// `451` transient server-side failure (e.g. the mail store errored).
    pub fn local_error() -> Reply {
        Reply::new(451, "4.3.0 Local error in processing")
    }

    /// `421` service not available — the overload/shutdown tempfail
    /// (RFC 5321 §3.8): sent when admission control sheds a connection,
    /// when every worker queue is full, when a phase deadline expires, or
    /// while draining. Clients retry later against a healthy server; no
    /// mail is bounced.
    pub fn service_not_available() -> Reply {
        Reply::new(
            421,
            "4.3.2 Service not available, closing transmission channel",
        )
    }

    /// `252` noncommittal VRFY answer (standard anti-harvesting practice).
    pub fn vrfy_noncommittal() -> Reply {
        Reply::new(252, "2.0.0 Cannot VRFY user")
    }

    /// The numeric code.
    pub fn code(&self) -> u16 {
        self.code
    }

    /// The text after the code.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// 2xx/3xx.
    pub fn is_positive(&self) -> bool {
        self.code < 400
    }

    /// 4xx.
    pub fn is_transient_failure(&self) -> bool {
        (400..500).contains(&self.code)
    }

    /// 5xx.
    pub fn is_permanent_failure(&self) -> bool {
        self.code >= 500
    }

    /// The continuation lines preceding the terminal line.
    pub fn extra_lines(&self) -> &[String] {
        &self.extra
    }

    /// Serializes as wire lines, CRLF-terminated, handling multiline
    /// replies (`250-a`, `250 b`).
    pub fn to_wire(&self) -> String {
        let mut out = Vec::new();
        self.write_wire(&mut out);
        String::from_utf8(out).unwrap_or_default()
    }

    /// Appends the wire form to an existing buffer — lets a server
    /// coalesce the replies to a pipelined command burst into one socket
    /// write without intermediate `String`s.
    pub fn write_wire(&self, out: &mut Vec<u8>) {
        use std::io::Write;
        for line in &self.extra {
            // Writing into a Vec cannot fail.
            let _ = write!(out, "{}-{}\r\n", self.code, line);
        }
        let _ = write!(out, "{} {}\r\n", self.code, self.text);
    }

    /// Whether this reply spans multiple wire lines.
    pub fn is_multiline(&self) -> bool {
        !self.extra.is_empty()
    }

    /// Parses a single-line wire reply.
    pub fn parse(line: &str) -> Option<Reply> {
        let line = line.trim_end_matches(['\r', '\n']);
        // get() rather than slicing: the code must be three ASCII digits,
        // and arbitrary wire input may start with multi-byte characters.
        let code: u16 = line.get(..3)?.parse().ok()?;
        if !(200..=599).contains(&code) {
            return None;
        }
        let text = line
            .get(3..)
            .unwrap_or("")
            .trim_start_matches([' ', '-'])
            .to_owned();
        Some(Reply {
            code,
            text,
            extra: Vec::new(),
        })
    }
}

impl fmt::Display for Reply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code, self.text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_code() {
        assert!(Reply::ok().is_positive());
        assert!(Reply::start_data().is_positive());
        assert!(Reply::too_many_recipients().is_transient_failure());
        assert!(Reply::user_unknown().is_permanent_failure());
        assert!(!Reply::user_unknown().is_positive());
    }

    #[test]
    fn service_not_available_is_transient() {
        let r = Reply::service_not_available();
        assert_eq!(r.code(), 421);
        assert!(r.is_transient_failure(), "421 must invite a retry");
        assert!(!r.is_permanent_failure());
    }

    #[test]
    fn wire_roundtrip() {
        for r in [
            Reply::greeting("mx.example"),
            Reply::ok(),
            Reply::user_unknown(),
            Reply::bye(),
            Reply::bad_sequence("MAIL"),
        ] {
            let parsed = Reply::parse(r.to_wire().trim_end()).unwrap();
            assert_eq!(parsed, r);
        }
    }

    #[test]
    fn multiline_wire_format() {
        let r = Reply::hello_esmtp("mx.example", Some(10_000_000));
        assert!(r.is_multiline());
        let wire = r.to_wire();
        assert_eq!(
            wire,
            "250-mx.example\r\n250-8BITMIME\r\n250 SIZE 10000000\r\n"
        );
    }

    #[test]
    fn esmtp_without_size_limit_omits_size() {
        let r = Reply::hello_esmtp("mx.example", None);
        assert!(!r.to_wire().contains("SIZE"));
        assert!(r.to_wire().contains("8BITMIME"));
    }

    #[test]
    #[should_panic(expected = "needs extra lines")]
    fn multiline_requires_extra() {
        Reply::multiline(250, "only", vec![]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(Reply::parse(""), None);
        assert_eq!(Reply::parse("ab"), None);
        assert_eq!(Reply::parse("999 nope"), None);
        assert_eq!(Reply::parse("12x hello"), None);
    }

    #[test]
    #[should_panic(expected = "invalid SMTP code")]
    fn new_rejects_bad_code() {
        Reply::new(199, "x");
    }

    #[test]
    fn queued_mentions_mail_id() {
        let r = Reply::queued("4AC21F");
        assert!(r.text().contains("4AC21F"));
        assert_eq!(r.code(), 250);
    }
}
