//! Mail addresses.

use std::fmt;
use std::str::FromStr;

/// A mail address (`local-part@domain`), normalized to lowercase.
///
/// Validation is deliberately pragmatic (RFC 5321 `Mailbox` without quoted
/// strings or address literals): enough to reject garbage from the wire
/// while accepting everything the trace generators produce.
///
/// # Example
///
/// ```
/// use spamaware_smtp::MailAddr;
/// let a: MailAddr = "Alice@Example.COM".parse()?;
/// assert_eq!(a.local_part(), "alice");
/// assert_eq!(a.domain(), "example.com");
/// assert_eq!(a.to_string(), "alice@example.com");
/// # Ok::<(), spamaware_smtp::ParseAddrError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MailAddr {
    // Stored as one lowercase string with the position of '@'.
    raw: String,
    at: usize,
}

impl MailAddr {
    /// Builds an address from parts, validating both.
    ///
    /// # Errors
    ///
    /// Returns [`ParseAddrError`] if either part is empty or contains
    /// characters outside the accepted set.
    pub fn new(local: &str, domain: &str) -> Result<MailAddr, ParseAddrError> {
        format!("{local}@{domain}").parse()
    }

    /// The part before `@`.
    pub fn local_part(&self) -> &str {
        &self.raw[..self.at]
    }

    /// The part after `@`.
    pub fn domain(&self) -> &str {
        &self.raw[self.at + 1..]
    }

    /// The full normalized address.
    pub fn as_str(&self) -> &str {
        &self.raw
    }
}

impl fmt::Display for MailAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.raw)
    }
}

impl AsRef<str> for MailAddr {
    fn as_ref(&self) -> &str {
        &self.raw
    }
}

/// Error returned when parsing a [`MailAddr`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAddrError {
    input: String,
}

impl fmt::Display for ParseAddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid mail address syntax: {:?}", self.input)
    }
}

impl std::error::Error for ParseAddrError {}

fn atom_ok(s: &str) -> bool {
    !s.is_empty()
        && !s.starts_with('.')
        && !s.ends_with('.')
        && !s.contains("..")
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'-' | b'_' | b'+' | b'='))
}

impl FromStr for MailAddr {
    type Err = ParseAddrError;

    fn from_str(s: &str) -> Result<MailAddr, ParseAddrError> {
        let err = || ParseAddrError {
            input: s.to_owned(),
        };
        if s.len() > 320 {
            return Err(err());
        }
        let at = s.find('@').ok_or_else(err)?;
        let (local, domain) = (&s[..at], &s[at + 1..]);
        if !atom_ok(local) || !atom_ok(domain) || domain.contains('@') || !domain.contains('.') {
            return Err(err());
        }
        Ok(MailAddr {
            raw: s.to_ascii_lowercase(),
            at,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_splits_parts() {
        let a: MailAddr = "user.name+tag@mail.example.org".parse().unwrap();
        assert_eq!(a.local_part(), "user.name+tag");
        assert_eq!(a.domain(), "mail.example.org");
    }

    #[test]
    fn parse_normalizes_case() {
        let a: MailAddr = "MiXeD@CaSe.Org".parse().unwrap();
        assert_eq!(a.as_str(), "mixed@case.org");
        let b: MailAddr = "mixed@case.org".parse().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in [
            "", "@", "a@", "@b.c", "a@b", // no dot in domain
            "a b@c.d", "a@b@c.d", ".a@b.c", "a.@b.c", "a..b@c.d", "a@-", // no dot
        ] {
            assert!(s.parse::<MailAddr>().is_err(), "accepted {s:?}");
        }
    }

    #[test]
    fn parse_rejects_overlong() {
        let s = format!("{}@example.com", "x".repeat(400));
        assert!(s.parse::<MailAddr>().is_err());
    }

    #[test]
    fn new_matches_parse() {
        let a = MailAddr::new("alice", "example.com").unwrap();
        assert_eq!(a, "alice@example.com".parse().unwrap());
        assert!(MailAddr::new("", "example.com").is_err());
    }

    #[test]
    fn error_is_displayable() {
        let e = "bad".parse::<MailAddr>().unwrap_err();
        assert!(e.to_string().contains("invalid mail address"));
    }
}
