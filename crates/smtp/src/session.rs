//! Server-side SMTP session state machine.

use crate::{Command, MailAddr, Reply};
use std::sync::Arc;

/// Static per-session policy knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionConfig {
    /// Hostname announced in the greeting. `Arc<str>` so a server
    /// delegating thousands of connections shares one allocation instead
    /// of cloning the string per session.
    pub hostname: Arc<str>,
    /// Maximum recipients accepted per transaction (postfix default 1000;
    /// we default to 100, ample for the paper's 5–15 rcpt spam).
    pub max_recipients: usize,
    /// Maximum mail transactions per connection.
    pub max_transactions: usize,
    /// Maximum accepted message size in bytes (None = unlimited). Oversized
    /// messages draw `552` at end-of-data and are discarded.
    pub max_message_size: Option<u64>,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            hostname: "mx.spamaware.test".into(),
            max_recipients: 100,
            max_transactions: 100,
            max_message_size: Some(10 * 1024 * 1024),
        }
    }
}

/// Where in the SMTP dialog the session currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionPhase {
    /// Connection open, greeting sent, no HELO yet.
    Start,
    /// HELO/EHLO received.
    Greeted,
    /// MAIL FROM received; awaiting RCPT.
    MailGiven,
    /// At least one valid RCPT accepted; awaiting more RCPT or DATA.
    RcptGiven,
    /// Inside DATA, consuming message content.
    Data,
    /// QUIT received (or the server closed the connection).
    Closed,
}

/// One accepted mail transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Reverse-path; `None` for the null sender.
    pub sender: Option<MailAddr>,
    /// Accepted (validated) recipients.
    pub recipients: Vec<MailAddr>,
    /// Message content, when captured (live server). Empty in simulation.
    pub body: Vec<u8>,
    /// Message size in bytes. In simulation this is set by
    /// [`ServerSession::finish_data_sized`] without materializing bytes.
    pub body_size: u64,
}

/// Verdict from feeding one line of DATA content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataVerdict {
    /// The line was content; keep feeding.
    More,
    /// The line was the lone-dot terminator; the message is complete.
    /// Call [`ServerSession::finish_data`] next.
    Complete,
}

/// How a finished connection is classified, following the paper's §4.1
/// taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SessionOutcome {
    /// At least one mail was accepted.
    Delivered,
    /// No mail accepted, and at least one `RCPT TO` drew a `550 User
    /// unknown` — a bounce connection from random-guessing spam.
    Bounce,
    /// No mail accepted and no recipient rejected: the client connected,
    /// possibly exchanged a few handshake messages, and quit — an
    /// unfinished SMTP transaction.
    Unfinished,
}

/// The server-side SMTP state machine.
///
/// The machine is transport-agnostic: the simulation feeds it [`Command`]
/// values directly, while the live TCP server parses wire lines first. The
/// recipient validator is passed per-call so the caller decides how mailbox
/// existence is checked (local access database in the paper).
///
/// See the crate-level example for a full dialog.
#[derive(Debug)]
pub struct ServerSession {
    cfg: SessionConfig,
    phase: SessionPhase,
    sender: Option<MailAddr>,
    recipients: Vec<MailAddr>,
    body: Vec<u8>,
    body_size_only: u64,
    capture_body: bool,
    delivered: Vec<Envelope>,
    /// Mails accepted over the connection's lifetime. Tracked separately
    /// from `delivered.len()` because a live server may drain envelopes
    /// with [`ServerSession::take_last_delivered`] as they complete.
    accepted: usize,
    rejected_rcpts: u64,
    commands_handled: u64,
}

impl ServerSession {
    /// Creates a session in the [`SessionPhase::Start`] phase.
    pub fn new(cfg: SessionConfig) -> ServerSession {
        ServerSession {
            cfg,
            phase: SessionPhase::Start,
            sender: None,
            recipients: Vec::new(),
            body: Vec::new(),
            body_size_only: 0,
            capture_body: false,
            delivered: Vec::new(),
            accepted: 0,
            rejected_rcpts: 0,
            commands_handled: 0,
        }
    }

    /// Enables capturing message bodies into [`Envelope::body`] (the live
    /// server needs bytes; the simulation does not).
    pub fn capture_bodies(&mut self, on: bool) {
        self.capture_body = on;
    }

    /// The `220` greeting to send on connect.
    pub fn greeting(&self) -> Reply {
        Reply::greeting(&self.cfg.hostname)
    }

    /// Current dialog phase.
    pub fn phase(&self) -> SessionPhase {
        self.phase
    }

    /// Whether at least one valid recipient has been accepted in the
    /// current transaction — the paper's *trust point*: a hybrid master
    /// delegates the connection to an smtpd worker once this turns true.
    pub fn has_valid_recipient(&self) -> bool {
        !self.recipients.is_empty()
    }

    /// `RCPT TO` attempts rejected with `550` over the whole connection.
    pub fn rejected_rcpts(&self) -> u64 {
        self.rejected_rcpts
    }

    /// Commands handled so far (used for per-command CPU accounting).
    pub fn commands_handled(&self) -> u64 {
        self.commands_handled
    }

    /// Mails accepted so far and not yet drained by
    /// [`ServerSession::take_last_delivered`].
    pub fn delivered(&self) -> &[Envelope] {
        &self.delivered
    }

    /// Consumes the session, returning accepted mails.
    pub fn into_delivered(self) -> Vec<Envelope> {
        self.delivered
    }

    /// Removes and returns the most recently accepted envelope, if any —
    /// how the live server takes ownership of a mail for storage right
    /// after [`ServerSession::finish_data`] returns `250`. Draining does
    /// not change [`ServerSession::outcome`] or the transaction limit,
    /// which count *accepted* mails, not retained ones.
    pub fn take_last_delivered(&mut self) -> Option<Envelope> {
        self.delivered.pop()
    }

    /// Donates a reusable allocation for DATA content: the next captured
    /// body grows into `buf`'s capacity instead of a fresh `Vec`. The
    /// buffer is cleared on arrival; ignored if body capture is already
    /// holding content.
    pub fn provide_body_buffer(&mut self, mut buf: Vec<u8>) {
        if self.body.is_empty() {
            buf.clear();
            self.body = buf;
        }
    }

    /// Handles one command, returning the reply to send.
    ///
    /// `mailbox_exists` implements the local access-database lookup: it is
    /// consulted once per `RCPT TO`.
    ///
    /// # Panics
    ///
    /// Panics if called while in the [`SessionPhase::Data`] phase — content
    /// must go through [`ServerSession::data_line`].
    pub fn handle(&mut self, cmd: Command, mailbox_exists: &dyn Fn(&MailAddr) -> bool) -> Reply {
        assert!(
            self.phase != SessionPhase::Data,
            "handle() called during DATA; feed content via data_line()"
        );
        self.commands_handled += 1;
        match cmd {
            Command::Helo(d) => {
                if d.is_empty() {
                    return Reply::bad_argument();
                }
                self.phase = SessionPhase::Greeted;
                self.reset_transaction();
                Reply::hello(&self.cfg.hostname)
            }
            Command::Ehlo(d) => {
                if d.is_empty() {
                    return Reply::bad_argument();
                }
                self.phase = SessionPhase::Greeted;
                self.reset_transaction();
                Reply::hello_esmtp(&self.cfg.hostname, self.cfg.max_message_size)
            }
            Command::MailFrom(sender) => match self.phase {
                SessionPhase::Start => Reply::bad_sequence("HELO"),
                SessionPhase::MailGiven | SessionPhase::RcptGiven => Reply::bad_sequence("DATA"),
                SessionPhase::Closed => Reply::bad_sequence("connection"),
                SessionPhase::Greeted => {
                    if self.accepted >= self.cfg.max_transactions {
                        return Reply::too_many_transactions();
                    }
                    self.sender = sender;
                    self.phase = SessionPhase::MailGiven;
                    Reply::ok()
                }
                // Commands are not parsed during DATA; answer defensively
                // rather than aborting on a driver bug.
                SessionPhase::Data => Reply::bad_sequence("end of data"),
            },
            Command::RcptTo(rcpt) => match self.phase {
                SessionPhase::MailGiven | SessionPhase::RcptGiven => {
                    if self.recipients.len() >= self.cfg.max_recipients {
                        return Reply::too_many_recipients();
                    }
                    if mailbox_exists(&rcpt) {
                        self.recipients.push(rcpt);
                        self.phase = SessionPhase::RcptGiven;
                        Reply::ok()
                    } else {
                        self.rejected_rcpts += 1;
                        Reply::user_unknown()
                    }
                }
                _ => Reply::bad_sequence("MAIL"),
            },
            Command::Data => match self.phase {
                SessionPhase::RcptGiven => {
                    self.phase = SessionPhase::Data;
                    Reply::start_data()
                }
                SessionPhase::MailGiven => Reply::bad_sequence("RCPT"),
                _ => Reply::bad_sequence("MAIL"),
            },
            Command::Rset => {
                if self.phase != SessionPhase::Start && self.phase != SessionPhase::Closed {
                    self.phase = SessionPhase::Greeted;
                }
                self.reset_transaction();
                Reply::ok()
            }
            Command::Noop => Reply::ok(),
            Command::Vrfy(_) => Reply::vrfy_noncommittal(),
            Command::Quit => {
                self.phase = SessionPhase::Closed;
                Reply::bye()
            }
            Command::Unknown(_) => Reply::syntax_error(),
        }
    }

    /// Feeds one line of DATA content (CRLF already stripped). Performs
    /// dot-unstuffing per RFC 5321 §4.5.2.
    ///
    /// # Panics
    ///
    /// Panics if the session is not in the DATA phase.
    pub fn data_line(&mut self, line: &[u8]) -> DataVerdict {
        assert_eq!(self.phase, SessionPhase::Data, "data_line outside DATA");
        if line == b"." {
            return DataVerdict::Complete;
        }
        let content = if line.first() == Some(&b'.') {
            &line[1..]
        } else {
            line
        };
        if self.capture_body {
            self.body.extend_from_slice(content);
            self.body.extend_from_slice(b"\r\n");
        } else {
            // Track size without materializing.
            self.body_size_only += content.len() as u64 + 2;
        }
        DataVerdict::More
    }

    /// Completes the DATA phase after the terminator, recording the
    /// transaction and returning the `250 queued` reply.
    ///
    /// # Panics
    ///
    /// Panics if the session is not in the DATA phase.
    pub fn finish_data(&mut self, mail_id: &str) -> Reply {
        assert_eq!(self.phase, SessionPhase::Data, "finish_data outside DATA");
        let body = std::mem::take(&mut self.body);
        let size = if self.capture_body {
            body.len() as u64
        } else {
            self.body_size_only
        };
        if let Some(limit) = self.cfg.max_message_size {
            if size > limit {
                // Oversized: discard the transaction (RFC 5321 552).
                self.reset_transaction();
                self.phase = SessionPhase::Greeted;
                return Reply::message_too_large();
            }
        }
        self.delivered.push(Envelope {
            sender: self.sender.take(),
            recipients: std::mem::take(&mut self.recipients),
            body,
            body_size: size,
        });
        self.accepted += 1;
        self.body_size_only = 0;
        self.phase = SessionPhase::Greeted;
        Reply::queued(mail_id)
    }

    /// Simulation shortcut: completes DATA with a declared size, without
    /// feeding content lines.
    ///
    /// # Panics
    ///
    /// Panics if the session is not in the DATA phase.
    pub fn finish_data_sized(&mut self, mail_id: &str, size: u64) -> Reply {
        assert_eq!(self.phase, SessionPhase::Data, "finish_data outside DATA");
        self.body_size_only = size;
        self.capture_body = false;
        self.finish_data(mail_id)
    }

    /// Classifies the connection per the paper's taxonomy. Valid at any
    /// point; normally consulted after QUIT or connection drop.
    pub fn outcome(&self) -> SessionOutcome {
        if self.accepted > 0 {
            SessionOutcome::Delivered
        } else if self.rejected_rcpts > 0 {
            SessionOutcome::Bounce
        } else {
            SessionOutcome::Unfinished
        }
    }

    fn reset_transaction(&mut self) {
        self.sender = None;
        self.recipients.clear();
        self.body.clear();
        self.body_size_only = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> MailAddr {
        s.parse().unwrap()
    }

    fn all_exist(_: &MailAddr) -> bool {
        true
    }

    fn none_exist(_: &MailAddr) -> bool {
        false
    }

    fn greeted() -> ServerSession {
        let mut s = ServerSession::new(SessionConfig::default());
        assert_eq!(s.handle(Command::helo("c.example"), &all_exist).code(), 250);
        s
    }

    #[test]
    fn happy_path_delivers_one_mail() {
        let mut s = greeted();
        assert_eq!(
            s.handle(Command::mail_from(Some(addr("a@b.example"))), &all_exist)
                .code(),
            250
        );
        assert_eq!(
            s.handle(Command::rcpt_to(addr("u@d.example")), &all_exist)
                .code(),
            250
        );
        assert_eq!(s.handle(Command::Data, &all_exist).code(), 354);
        assert_eq!(s.data_line(b"Subject: hi"), DataVerdict::More);
        assert_eq!(s.data_line(b""), DataVerdict::More);
        assert_eq!(s.data_line(b"body"), DataVerdict::More);
        assert_eq!(s.data_line(b"."), DataVerdict::Complete);
        let r = s.finish_data("M1");
        assert_eq!(r.code(), 250);
        assert_eq!(s.handle(Command::Quit, &all_exist).code(), 221);
        assert_eq!(s.outcome(), SessionOutcome::Delivered);
        assert_eq!(s.delivered().len(), 1);
        assert_eq!(s.delivered()[0].recipients.len(), 1);
    }

    #[test]
    fn bounce_connection_is_classified() {
        let mut s = greeted();
        s.handle(Command::mail_from(None), &none_exist);
        let r = s.handle(Command::rcpt_to(addr("guess@x.example")), &none_exist);
        assert_eq!(r.code(), 550);
        s.handle(Command::Quit, &none_exist);
        assert_eq!(s.outcome(), SessionOutcome::Bounce);
        assert_eq!(s.rejected_rcpts(), 1);
        assert!(!s.has_valid_recipient());
    }

    #[test]
    fn unfinished_connection_is_classified() {
        let mut s = greeted();
        s.handle(Command::Quit, &all_exist);
        assert_eq!(s.outcome(), SessionOutcome::Unfinished);
    }

    #[test]
    fn trust_point_triggers_on_first_valid_rcpt() {
        let mut s = greeted();
        s.handle(Command::mail_from(None), &all_exist);
        assert!(!s.has_valid_recipient());
        // One 550 first: still untrusted.
        s.handle(Command::rcpt_to(addr("bad@x.example")), &none_exist);
        assert!(!s.has_valid_recipient());
        s.handle(Command::rcpt_to(addr("ok@x.example")), &all_exist);
        assert!(s.has_valid_recipient());
    }

    #[test]
    fn multi_recipient_mail_collects_all() {
        let mut s = greeted();
        s.handle(Command::mail_from(None), &all_exist);
        for i in 0..7 {
            let r = s.handle(
                Command::rcpt_to(addr(&format!("u{i}@d.example"))),
                &all_exist,
            );
            assert_eq!(r.code(), 250);
        }
        s.handle(Command::Data, &all_exist);
        s.finish_data_sized("M1", 4096);
        assert_eq!(s.delivered()[0].recipients.len(), 7);
        assert_eq!(s.delivered()[0].body_size, 4096);
    }

    #[test]
    fn recipient_limit_enforced() {
        let mut s = ServerSession::new(SessionConfig {
            max_recipients: 2,
            ..SessionConfig::default()
        });
        s.handle(Command::helo("c.example"), &all_exist);
        s.handle(Command::mail_from(None), &all_exist);
        s.handle(Command::rcpt_to(addr("a@d.example")), &all_exist);
        s.handle(Command::rcpt_to(addr("b@d.example")), &all_exist);
        let r = s.handle(Command::rcpt_to(addr("c@d.example")), &all_exist);
        assert_eq!(r.code(), 452);
    }

    #[test]
    fn sequence_errors() {
        let mut s = ServerSession::new(SessionConfig::default());
        // MAIL before HELO.
        assert_eq!(s.handle(Command::mail_from(None), &all_exist).code(), 503);
        s.handle(Command::helo("c.example"), &all_exist);
        // RCPT before MAIL.
        assert_eq!(
            s.handle(Command::rcpt_to(addr("a@d.example")), &all_exist)
                .code(),
            503
        );
        // DATA before RCPT.
        s.handle(Command::mail_from(None), &all_exist);
        assert_eq!(s.handle(Command::Data, &all_exist).code(), 503);
    }

    #[test]
    fn data_without_valid_rcpt_is_rejected() {
        let mut s = greeted();
        s.handle(Command::mail_from(None), &none_exist);
        s.handle(Command::rcpt_to(addr("bad@x.example")), &none_exist);
        // Still in MailGiven phase: DATA must be refused.
        assert_eq!(s.handle(Command::Data, &none_exist).code(), 503);
    }

    #[test]
    fn rset_clears_transaction() {
        let mut s = greeted();
        s.handle(Command::mail_from(Some(addr("a@b.example"))), &all_exist);
        s.handle(Command::rcpt_to(addr("u@d.example")), &all_exist);
        s.handle(Command::Rset, &all_exist);
        assert!(!s.has_valid_recipient());
        // Must re-issue MAIL before RCPT.
        assert_eq!(
            s.handle(Command::rcpt_to(addr("u@d.example")), &all_exist)
                .code(),
            503
        );
    }

    #[test]
    fn draining_envelopes_preserves_outcome_and_limits() {
        let mut s = ServerSession::new(SessionConfig {
            max_transactions: 2,
            ..SessionConfig::default()
        });
        s.handle(Command::helo("c.example"), &all_exist);
        for t in 0..2 {
            s.handle(Command::mail_from(None), &all_exist);
            s.handle(Command::rcpt_to(addr("u@d.example")), &all_exist);
            s.handle(Command::Data, &all_exist);
            s.finish_data_sized(&format!("M{t}"), 10);
            // Live-server style: take ownership immediately.
            let env = s.take_last_delivered().unwrap();
            assert_eq!(env.body_size, 10);
            assert!(s.delivered().is_empty());
        }
        // Both accepted mails count against max_transactions even though
        // the delivered list was drained.
        assert_eq!(s.handle(Command::mail_from(None), &all_exist).code(), 452);
        assert_eq!(s.outcome(), SessionOutcome::Delivered);
        assert_eq!(s.take_last_delivered(), None);
    }

    #[test]
    fn provided_body_buffer_capacity_is_reused() {
        let mut s = greeted();
        s.capture_bodies(true);
        s.provide_body_buffer(Vec::with_capacity(4096));
        s.handle(Command::mail_from(None), &all_exist);
        s.handle(Command::rcpt_to(addr("u@d.example")), &all_exist);
        s.handle(Command::Data, &all_exist);
        s.data_line(b"hello");
        s.data_line(b".");
        s.finish_data("M1");
        let env = s.take_last_delivered().unwrap();
        assert_eq!(env.body.as_slice(), b"hello\r\n");
        assert!(env.body.capacity() >= 4096, "body grew into the donation");
    }

    #[test]
    fn body_buffer_donation_ignored_mid_capture() {
        let mut s = greeted();
        s.capture_bodies(true);
        s.handle(Command::mail_from(None), &all_exist);
        s.handle(Command::rcpt_to(addr("u@d.example")), &all_exist);
        s.handle(Command::Data, &all_exist);
        s.data_line(b"kept");
        s.provide_body_buffer(Vec::with_capacity(64));
        s.data_line(b".");
        s.finish_data("M1");
        assert_eq!(s.delivered()[0].body.as_slice(), b"kept\r\n");
    }

    #[test]
    fn multiple_transactions_per_connection() {
        let mut s = greeted();
        for t in 0..3 {
            s.handle(Command::mail_from(None), &all_exist);
            s.handle(Command::rcpt_to(addr("u@d.example")), &all_exist);
            s.handle(Command::Data, &all_exist);
            s.finish_data_sized(&format!("M{t}"), 100);
        }
        assert_eq!(s.delivered().len(), 3);
    }

    #[test]
    fn dot_stuffing_is_removed() {
        let mut s = greeted();
        s.capture_bodies(true);
        s.handle(Command::mail_from(None), &all_exist);
        s.handle(Command::rcpt_to(addr("u@d.example")), &all_exist);
        s.handle(Command::Data, &all_exist);
        s.data_line(b"..leading dot");
        s.data_line(b".");
        s.finish_data("M1");
        let body = &s.delivered()[0].body;
        assert_eq!(body.as_slice(), b".leading dot\r\n");
    }

    #[test]
    fn unknown_command_gets_500_and_noop_ok() {
        let mut s = greeted();
        assert_eq!(
            s.handle(Command::Unknown("XEXP".into()), &all_exist).code(),
            500
        );
        assert_eq!(s.handle(Command::Noop, &all_exist).code(), 250);
        assert_eq!(s.handle(Command::Vrfy("x".into()), &all_exist).code(), 252);
    }

    #[test]
    fn size_tracked_without_capture() {
        let mut s = greeted();
        s.handle(Command::mail_from(None), &all_exist);
        s.handle(Command::rcpt_to(addr("u@d.example")), &all_exist);
        s.handle(Command::Data, &all_exist);
        s.data_line(b"12345");
        s.data_line(b".");
        s.finish_data("M1");
        // 5 content bytes + CRLF.
        assert_eq!(s.delivered()[0].body_size, 7);
        assert!(s.delivered()[0].body.is_empty());
    }
}

#[cfg(test)]
mod size_limit_tests {
    use super::*;

    fn all_exist(_: &MailAddr) -> bool {
        true
    }

    fn to_data_phase(limit: Option<u64>) -> ServerSession {
        let mut s = ServerSession::new(SessionConfig {
            max_message_size: limit,
            ..SessionConfig::default()
        });
        s.handle(Command::helo("c.example"), &all_exist);
        s.handle(Command::mail_from(None), &all_exist);
        s.handle(
            Command::rcpt_to("u@d.example".parse().expect("valid")),
            &all_exist,
        );
        s.handle(Command::Data, &all_exist);
        s
    }

    #[test]
    fn oversized_message_draws_552_and_is_discarded() {
        let mut s = to_data_phase(Some(1_000));
        let reply = s.finish_data_sized("M1", 2_000);
        assert_eq!(reply.code(), 552);
        assert!(s.delivered().is_empty());
        // Session is usable for the next transaction.
        assert_eq!(s.phase(), SessionPhase::Greeted);
        assert_eq!(s.outcome(), SessionOutcome::Unfinished);
    }

    #[test]
    fn message_at_limit_is_accepted() {
        let mut s = to_data_phase(Some(1_000));
        assert_eq!(s.finish_data_sized("M1", 1_000).code(), 250);
        assert_eq!(s.delivered().len(), 1);
    }

    #[test]
    fn unlimited_accepts_anything() {
        let mut s = to_data_phase(None);
        assert_eq!(s.finish_data_sized("M1", u64::MAX / 2).code(), 250);
    }
}
