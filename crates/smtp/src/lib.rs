//! SMTP protocol engine: commands, replies, addresses, and the server-side
//! session state machine.
//!
//! Both the discrete-event simulation (`spamaware-server`) and the live
//! threaded TCP server (`spamaware-core::live`) drive the same
//! [`ServerSession`] state machine, so protocol behaviour — including the
//! paper's bounce (`550 User unknown`) and unfinished-transaction handling —
//! is implemented exactly once.
//!
//! # Example
//!
//! ```
//! use spamaware_smtp::{Command, MailAddr, ServerSession, SessionConfig};
//!
//! let mut s = ServerSession::new(SessionConfig::default());
//! let exists = |a: &MailAddr| a.local_part() == "alice";
//!
//! assert_eq!(s.greeting().code(), 220);
//! assert_eq!(s.handle(Command::helo("client.example"), &exists).code(), 250);
//! let from = Command::mail_from(Some("bob@remote.example".parse()?));
//! assert_eq!(s.handle(from, &exists).code(), 250);
//! // Random-guessing spam: an invalid mailbox draws the bounce reply.
//! let bad = Command::rcpt_to("nosuchuser@local.example".parse()?);
//! assert_eq!(s.handle(bad, &exists).code(), 550);
//! let good = Command::rcpt_to("alice@local.example".parse()?);
//! assert_eq!(s.handle(good, &exists).code(), 250);
//! # Ok::<(), spamaware_smtp::ParseAddrError>(())
//! ```

mod addr;
mod command;
mod reply;
mod session;

pub use addr::{MailAddr, ParseAddrError};
pub use command::{Command, ParseCommandError};
pub use reply::Reply;
pub use session::{
    DataVerdict, Envelope, ServerSession, SessionConfig, SessionOutcome, SessionPhase,
};
