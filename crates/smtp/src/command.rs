//! SMTP commands: parsing and serialization.

use crate::{MailAddr, ParseAddrError};
use std::fmt;

/// One client-side SMTP command.
///
/// The variants cover the command set exercised by mail traffic in the
/// paper's traces: the minimal `HELO`/`MAIL`/`RCPT`/`DATA`/`QUIT` dialog,
/// plus `EHLO`, `RSET`, `NOOP`, and `VRFY` which real clients emit and a
/// server must answer. Anything else parses as [`Command::Unknown`] and
/// draws a `500`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `HELO <domain>`
    Helo(String),
    /// `EHLO <domain>`
    Ehlo(String),
    /// `MAIL FROM:<reverse-path>`; `None` is the null sender `<>` used by
    /// delivery status notifications.
    MailFrom(Option<MailAddr>),
    /// `RCPT TO:<forward-path>`
    RcptTo(MailAddr),
    /// `DATA`
    Data,
    /// `RSET`
    Rset,
    /// `NOOP`
    Noop,
    /// `VRFY <string>`
    Vrfy(String),
    /// `QUIT`
    Quit,
    /// Anything unrecognized (the raw line, for diagnostics).
    Unknown(String),
}

impl Command {
    /// Convenience constructor for `HELO`.
    pub fn helo(domain: impl Into<String>) -> Command {
        Command::Helo(domain.into())
    }

    /// Convenience constructor for `MAIL FROM`.
    pub fn mail_from(sender: Option<MailAddr>) -> Command {
        Command::MailFrom(sender)
    }

    /// Convenience constructor for `RCPT TO`.
    pub fn rcpt_to(rcpt: MailAddr) -> Command {
        Command::RcptTo(rcpt)
    }

    /// The canonical verb of this command (`"MAIL"`, `"RCPT"`, …).
    pub fn verb(&self) -> &'static str {
        match self {
            Command::Helo(_) => "HELO",
            Command::Ehlo(_) => "EHLO",
            Command::MailFrom(_) => "MAIL",
            Command::RcptTo(_) => "RCPT",
            Command::Data => "DATA",
            Command::Rset => "RSET",
            Command::Noop => "NOOP",
            Command::Vrfy(_) => "VRFY",
            Command::Quit => "QUIT",
            Command::Unknown(_) => "?",
        }
    }

    /// Parses one CRLF-stripped command line.
    ///
    /// Unrecognized verbs yield `Ok(Command::Unknown(..))` — the session
    /// answers those with a `500` rather than dropping the connection.
    ///
    /// # Errors
    ///
    /// Returns [`ParseCommandError`] only for recognized verbs whose
    /// argument is syntactically invalid (e.g. `MAIL FROM:<not-an-addr>`),
    /// which the session answers with a `501`.
    pub fn parse(line: &str) -> Result<Command, ParseCommandError> {
        let line = line.trim_end_matches(['\r', '\n']);
        let (verb, rest) = match line.find(' ') {
            Some(i) => (&line[..i], line[i + 1..].trim()),
            None => (line, ""),
        };
        // MAIL FROM:/RCPT TO: may omit the space ("MAIL FROM:<a@b>").
        let upper = verb.to_ascii_uppercase();
        let (upper, rest) = if let Some(colon) = upper.find(':') {
            (upper[..colon].to_string(), &line[colon + 1..])
        } else {
            (upper, rest)
        };
        match upper.as_str() {
            "HELO" => Ok(Command::Helo(rest.to_owned())),
            "EHLO" => Ok(Command::Ehlo(rest.to_owned())),
            "MAIL" => parse_path(rest, "FROM").map(Command::MailFrom),
            "RCPT" => match parse_path(rest, "TO")? {
                Some(a) => Ok(Command::RcptTo(a)),
                None => Err(ParseCommandError::bad_arg(line)),
            },
            "DATA" => Ok(Command::Data),
            "RSET" => Ok(Command::Rset),
            "NOOP" => Ok(Command::Noop),
            "VRFY" => Ok(Command::Vrfy(rest.to_owned())),
            "QUIT" => Ok(Command::Quit),
            _ => Ok(Command::Unknown(line.to_owned())),
        }
    }
}

/// Parses the `FROM:<path>` / `TO:<path>` argument of MAIL/RCPT.
/// `keyword` is already consumed when the caller split on ':'.
fn parse_path(rest: &str, keyword: &str) -> Result<Option<MailAddr>, ParseCommandError> {
    let rest = rest.trim();
    // Accept both "FROM:<a@b>" (when ':' wasn't consumed yet) and "<a@b>".
    let path = if let Some(stripped) = strip_keyword(rest, keyword) {
        stripped
    } else {
        rest
    };
    let path = path.trim();
    // Angle-bracketed form may be followed by ESMTP parameters
    // ("<a@b> SIZE=123"); bare form may not contain spaces.
    let inner = if let Some(rest) = path.strip_prefix('<') {
        match rest.find('>') {
            Some(i) => &rest[..i],
            None => rest,
        }
    } else {
        path.split_whitespace().next().unwrap_or("")
    };
    if inner.is_empty() {
        return Ok(None);
    }
    inner
        .parse::<MailAddr>()
        .map(Some)
        .map_err(ParseCommandError::from)
}

fn strip_keyword<'a>(s: &'a str, keyword: &str) -> Option<&'a str> {
    if s.len() >= keyword.len() && s[..keyword.len()].eq_ignore_ascii_case(keyword) {
        s[keyword.len()..].trim_start().strip_prefix(':')
    } else {
        None
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::Helo(d) => write!(f, "HELO {d}"),
            Command::Ehlo(d) => write!(f, "EHLO {d}"),
            Command::MailFrom(Some(a)) => write!(f, "MAIL FROM:<{a}>"),
            Command::MailFrom(None) => write!(f, "MAIL FROM:<>"),
            Command::RcptTo(a) => write!(f, "RCPT TO:<{a}>"),
            Command::Data => write!(f, "DATA"),
            Command::Rset => write!(f, "RSET"),
            Command::Noop => write!(f, "NOOP"),
            Command::Vrfy(s) => write!(f, "VRFY {s}"),
            Command::Quit => write!(f, "QUIT"),
            Command::Unknown(l) => f.write_str(l),
        }
    }
}

/// Error for a recognized command with an invalid argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCommandError {
    detail: String,
}

impl ParseCommandError {
    fn bad_arg(line: &str) -> ParseCommandError {
        ParseCommandError {
            detail: format!("invalid command argument: {line:?}"),
        }
    }
}

impl From<ParseAddrError> for ParseCommandError {
    fn from(e: ParseAddrError) -> ParseCommandError {
        ParseCommandError {
            detail: e.to_string(),
        }
    }
}

impl fmt::Display for ParseCommandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.detail)
    }
}

impl std::error::Error for ParseCommandError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> MailAddr {
        s.parse().unwrap()
    }

    #[test]
    fn parse_simple_verbs() -> Result<(), Box<dyn std::error::Error>> {
        assert_eq!(Command::parse("DATA")?, Command::Data);
        assert_eq!(Command::parse("quit")?, Command::Quit);
        assert_eq!(Command::parse("RsEt")?, Command::Rset);
        assert_eq!(Command::parse("NOOP")?, Command::Noop);
        Ok(())
    }

    #[test]
    fn parse_helo_ehlo() -> Result<(), Box<dyn std::error::Error>> {
        assert_eq!(
            Command::parse("HELO mx.example")?,
            Command::Helo("mx.example".into())
        );
        assert_eq!(
            Command::parse("EHLO [127.0.0.1]")?,
            Command::Ehlo("[127.0.0.1]".into())
        );
        Ok(())
    }

    #[test]
    fn parse_mail_from_variants() -> Result<(), Box<dyn std::error::Error>> {
        for line in [
            "MAIL FROM:<bob@example.com>",
            "MAIL FROM: <bob@example.com>",
            "mail from:<Bob@Example.Com>",
            "MAIL FROM:<bob@example.com> SIZE=1000",
        ] {
            assert_eq!(
                Command::parse(line)?,
                Command::MailFrom(Some(addr("bob@example.com"))),
                "line {line:?}"
            );
        }
        Ok(())
    }

    #[test]
    fn parse_null_sender() -> Result<(), Box<dyn std::error::Error>> {
        assert_eq!(Command::parse("MAIL FROM:<>")?, Command::MailFrom(None));
        Ok(())
    }

    #[test]
    fn parse_rcpt_to() -> Result<(), Box<dyn std::error::Error>> {
        assert_eq!(
            Command::parse("RCPT TO:<alice@example.com>")?,
            Command::RcptTo(addr("alice@example.com"))
        );
        Ok(())
    }

    #[test]
    fn rcpt_requires_a_path() {
        assert!(Command::parse("RCPT TO:<>").is_err());
        assert!(Command::parse("RCPT TO:<not an addr>").is_err());
    }

    #[test]
    fn mail_with_bad_address_is_an_error() {
        assert!(Command::parse("MAIL FROM:<junk>").is_err());
    }

    #[test]
    fn unknown_verbs_are_preserved() -> Result<(), Box<dyn std::error::Error>> {
        match Command::parse("XCLIENT foo=bar")? {
            Command::Unknown(l) => assert_eq!(l, "XCLIENT foo=bar"),
            other => panic!("unexpected {other:?}"),
        }
        Ok(())
    }

    #[test]
    fn display_roundtrips_through_parse() -> Result<(), Box<dyn std::error::Error>> {
        let cmds = vec![
            Command::helo("mx.example"),
            Command::Ehlo("mx.example".into()),
            Command::mail_from(Some(addr("a@b.example"))),
            Command::mail_from(None),
            Command::rcpt_to(addr("c@d.example")),
            Command::Data,
            Command::Rset,
            Command::Noop,
            Command::Vrfy("alice".into()),
            Command::Quit,
        ];
        for c in cmds {
            let line = c.to_string();
            assert_eq!(Command::parse(&line)?, c, "line {line:?}");
        }
        Ok(())
    }

    #[test]
    fn crlf_is_stripped() -> Result<(), Box<dyn std::error::Error>> {
        assert_eq!(Command::parse("QUIT\r\n")?, Command::Quit);
        Ok(())
    }
}
