//! Criterion micro-benchmarks for the performance-critical substrate
//! operations: SMTP command parsing, storage-layout delivery, sharded vs
//! global-mutex store concurrency, DNSBL resolver lookups, bitmap wire
//! handling, and raw DES event throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use spamaware_dnsbl::{BlacklistDb, CacheScheme, CachingResolver, DnsblServer, LatencyModel};
use spamaware_mfs::{
    DataRef, Layout, MailId, MailStore, MemFs, MfsStore, ShardedStore, SyncBackend,
};
use spamaware_netaddr::{Ipv4, PrefixBitmap, QueryName, QueryScheme};
use spamaware_server::{run, ClientModel, ServerConfig};
use spamaware_sim::{det_rng, Nanos};
use spamaware_smtp::{Command, MailAddr, ServerSession, SessionConfig};
use spamaware_trace::bounce_sweep_trace;
use std::hint::black_box;

fn bench_smtp_parse(c: &mut Criterion) {
    let lines = [
        "HELO mx.client.example",
        "MAIL FROM:<sender@remote.example> SIZE=2048",
        "RCPT TO:<user42@dept.example>",
        "DATA",
        "QUIT",
    ];
    c.bench_function("smtp/parse_command", |b| {
        b.iter(|| {
            for line in &lines {
                black_box(Command::parse(black_box(line)).unwrap());
            }
        })
    });

    c.bench_function("smtp/full_session", |b| {
        let exists = |_: &MailAddr| true;
        b.iter(|| {
            let mut s = ServerSession::new(SessionConfig::default());
            s.handle(Command::parse("HELO c.example").unwrap(), &exists);
            s.handle(Command::parse("MAIL FROM:<a@b.example>").unwrap(), &exists);
            for i in 0..7 {
                s.handle(
                    Command::parse(&format!("RCPT TO:<user{i}@dept.example>")).unwrap(),
                    &exists,
                );
            }
            s.handle(Command::parse("DATA").unwrap(), &exists);
            s.finish_data_sized("M", 2048);
            s.handle(Command::parse("QUIT").unwrap(), &exists);
            black_box(s.outcome())
        })
    });
}

fn bench_storage(c: &mut Criterion) {
    let boxes: Vec<String> = (0..15).map(|i| format!("user{i}")).collect();
    let names: Vec<&str> = boxes.iter().map(String::as_str).collect();
    let mut group = c.benchmark_group("storage/deliver_15rcpt_4k");
    for layout in Layout::ALL {
        group.bench_function(layout.paper_name(), |b| {
            b.iter_batched(
                || (layout.build(MemFs::size_only()), 0u64),
                |(mut store, _)| {
                    for i in 0..32u64 {
                        store
                            .deliver(MailId(i + 1), &names, DataRef::Zeros(4096))
                            .unwrap();
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_store_concurrency(c: &mut Criterion) {
    use std::sync::{Arc, Mutex};

    const THREADS: usize = 4;
    const MAILS: u64 = 32;
    let boxes: Vec<String> = (0..THREADS).map(|i| format!("user{i}")).collect();

    // The same 4-thread disjoint-mailbox delivery storm, once against the
    // sharded store (per-mailbox locks) and once against a single mutex
    // over the whole store — the live server's two storage regimes.
    let mut group = c.benchmark_group("storage/concurrent_deliver_4x32");
    group.bench_function("sharded", |b| {
        let boxes = boxes.clone();
        b.iter_batched(
            || {
                let fs = SyncBackend::new(MemFs::size_only());
                Arc::new(ShardedStore::open_with(8, || Ok(fs.clone())).unwrap())
            },
            |store| {
                std::thread::scope(|s| {
                    for (t, mb) in boxes.iter().enumerate() {
                        let store = Arc::clone(&store);
                        s.spawn(move || {
                            for i in 0..MAILS {
                                store
                                    .deliver(
                                        MailId(t as u64 * MAILS + i + 1),
                                        &[mb.as_str()],
                                        DataRef::Zeros(4096),
                                    )
                                    .unwrap();
                            }
                        });
                    }
                });
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("global_mutex", |b| {
        let boxes = boxes.clone();
        b.iter_batched(
            || Arc::new(Mutex::new(MfsStore::new(MemFs::size_only()))),
            |store| {
                std::thread::scope(|s| {
                    for (t, mb) in boxes.iter().enumerate() {
                        let store = Arc::clone(&store);
                        s.spawn(move || {
                            for i in 0..MAILS {
                                store
                                    .lock()
                                    .unwrap()
                                    .deliver(
                                        MailId(t as u64 * MAILS + i + 1),
                                        &[mb.as_str()],
                                        DataRef::Zeros(4096),
                                    )
                                    .unwrap();
                            }
                        });
                    }
                });
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_dnsbl(c: &mut Criterion) {
    let mut db = BlacklistDb::new();
    let mut rng = det_rng(1);
    use rand::Rng;
    for _ in 0..10_000 {
        db.insert(Ipv4::from_u32(rng.gen()));
    }
    let server = DnsblServer::new("bl.example", db, LatencyModel::new(40.0, 0.8, 0.05));

    c.bench_function("dnsbl/resolver_hit", |b| {
        let mut r = CachingResolver::new(CacheScheme::PerPrefix, Nanos::from_secs(86_400));
        let ip = Ipv4::new(10, 1, 2, 3);
        let mut rng = det_rng(2);
        r.lookup(ip, Nanos::ZERO, &server, &mut rng);
        b.iter(|| black_box(r.lookup(ip, Nanos::from_secs(1), &server, &mut rng)))
    });

    c.bench_function("dnsbl/resolver_miss", |b| {
        let mut r = CachingResolver::new(CacheScheme::PerIp, Nanos::from_secs(86_400));
        let mut rng = det_rng(3);
        let mut n = 0u32;
        b.iter(|| {
            n = n.wrapping_add(257);
            black_box(r.lookup(Ipv4::from_u32(n), Nanos::from_secs(1), &server, &mut rng))
        })
    });

    c.bench_function("dnsbl/bitmap_wire_roundtrip", |b| {
        let p = Ipv4::new(203, 0, 113, 0).prefix25();
        let mut bm = PrefixBitmap::empty(p);
        for i in (0..128).step_by(3) {
            bm.set(p.nth(i));
        }
        b.iter(|| {
            let wire = black_box(bm).to_wire();
            black_box(PrefixBitmap::from_wire(p, wire).count())
        })
    });

    c.bench_function("dnsbl/query_name_encode", |b| {
        let ip = Ipv4::new(203, 0, 113, 200);
        b.iter(|| {
            black_box(QueryName::encode(
                black_box(ip),
                QueryScheme::PrefixV6,
                "bl.spamaware.test",
            ))
        })
    });
}

fn bench_engine(c: &mut Criterion) {
    let trace = bounce_sweep_trace(1, 2_000, 0.3, 400);
    c.bench_function("engine/one_sim_second_hybrid", |b| {
        b.iter(|| {
            black_box(run(
                &trace,
                ServerConfig::hybrid(),
                ClientModel::Closed { concurrency: 100 },
                Nanos::from_secs(1),
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_smtp_parse, bench_storage, bench_store_concurrency, bench_dnsbl, bench_engine
}
criterion_main!(benches);
