//! Shared helpers for the experiment binaries.
//!
//! Every binary regenerates one of the paper's tables or figures. By
//! default they run at a reduced scale that finishes in seconds; pass
//! `--full` for paper-sized runs, or `--scale <0..1> --seconds <n>` for
//! anything in between.

use spamaware_core::experiment::Scale;
use std::path::PathBuf;

/// Parses the common CLI flags into a [`Scale`].
///
/// Recognized: `--full`, `--scale <f>`, `--seconds <n>`. Unknown flags are
/// ignored so binaries can layer their own.
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = Scale {
        trace: 0.1,
        seconds: 60,
    };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => scale = Scale::full(),
            "--scale" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    scale.trace = v;
                    i += 1;
                }
            }
            "--seconds" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    scale.seconds = v;
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    scale
}

/// Parses an optional `--json <path>` flag.
pub fn json_path_from_args() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

/// Writes a serializable result to `path` as pretty JSON.
///
/// # Panics
///
/// Panics on I/O or serialization failure (experiment binaries treat a
/// failed artifact write as fatal).
pub fn write_json<T: serde::Serialize>(path: &std::path::Path, value: &T) {
    let file = std::fs::File::create(path)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
    serde_json::to_writer_pretty(std::io::BufWriter::new(file), value)
        .unwrap_or_else(|e| panic!("cannot serialize to {}: {e}", path.display()));
    println!("(wrote {})", path.display());
}

/// Writes a metrics registry's deterministic text report next to a
/// `--json` artifact, with the extension swapped to `.metrics`.
///
/// # Panics
///
/// Panics on I/O failure, like [`write_json`].
pub fn write_metrics_sidecar(json_path: &std::path::Path, registry: &spamaware_metrics::Registry) {
    let path = json_path.with_extension("metrics");
    std::fs::write(&path, registry.render())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("(wrote {})", path.display());
}

/// A deterministic registry for experiment binaries: time is a
/// [`spamaware_metrics::ManualClock`] pinned at zero, so snapshots depend
/// only on what the instrumented code records (simulated latencies,
/// counters), never on the host.
pub fn experiment_registry() -> spamaware_metrics::Registry {
    spamaware_metrics::Registry::new(std::sync::Arc::new(spamaware_metrics::ManualClock::new()))
}

/// Prints a figure banner.
pub fn banner(id: &str, caption: &str, scale: Scale) {
    println!("=== {id}: {caption}");
    println!(
        "    (scale: {:.0}% trace, {} sim-seconds per point; --full for paper size)",
        scale.trace * 100.0,
        scale.seconds
    );
    println!();
}

/// Down-samples a CDF to at most `n` evenly spaced points for printing.
pub fn thin_cdf(cdf: &[(f64, f64)], n: usize) -> Vec<(f64, f64)> {
    if cdf.len() <= n || n == 0 {
        return cdf.to_vec();
    }
    let step = cdf.len() as f64 / n as f64;
    let mut out: Vec<(f64, f64)> = (0..n).map(|i| cdf[(i as f64 * step) as usize]).collect();
    if let Some(last) = cdf.last() {
        if out.last() != Some(last) {
            out.push(*last);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thin_cdf_keeps_endpoints() {
        let cdf: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, i as f64 / 99.0)).collect();
        let t = thin_cdf(&cdf, 10);
        assert!(t.len() <= 11);
        assert_eq!(*t.last().unwrap(), *cdf.last().unwrap());
    }

    #[test]
    fn thin_cdf_short_input_passthrough() {
        let cdf = vec![(1.0, 0.5), (2.0, 1.0)];
        assert_eq!(thin_cdf(&cdf, 10), cdf);
    }
}
