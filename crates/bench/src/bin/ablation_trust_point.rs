//! Ablation: where should the hybrid master place the trust point?
//!
//! Sweeps delegation at accept / after HELO / after the first valid RCPT
//! (the paper's design) across bounce ratios. Delegating earlier wastes
//! worker setup on connections that turn out to be bounces; the
//! after-valid-RCPT point is the only one whose bounce cost stays on the
//! cheap event-loop path.

use spamaware_bench::{banner, scale_from_args};
use spamaware_core::{run, ClientModel, ServerConfig, TrustPoint};
use spamaware_sim::Nanos;
use spamaware_trace::bounce_sweep_trace;

fn main() {
    let scale = scale_from_args();
    banner("ablation", "trust-point placement vs bounce ratio", scale);
    println!("  bounce   AfterAccept   AfterHelo   AfterValidRcpt   (goodput, mails/s)");
    for b in [0.0, 0.3, 0.6, 0.9] {
        let trace = bounce_sweep_trace(42, 10_000, b, 400);
        print!("  {b:>5.2}");
        for tp in [
            TrustPoint::AfterAccept,
            TrustPoint::AfterHelo,
            TrustPoint::AfterValidRcpt,
        ] {
            let cfg = ServerConfig {
                trust_point: tp,
                ..ServerConfig::hybrid()
            };
            let rep = run(
                &trace,
                cfg,
                ClientModel::Closed { concurrency: 600 },
                Nanos::from_secs(scale.seconds),
            );
            print!("   {:>11.1}", rep.goodput());
        }
        println!();
    }
    println!();
    println!("  the later the trust point, the less worker setup is wasted on");
    println!("  bounce connections (paper §5.1).");
}
