//! Ablation: bounded resolver-cache capacity. The paper assumes an
//! unbounded 24 h cache; this sweep shows how small the cache can get
//! before the prefix scheme's advantage erodes — and that prefix caching
//! *needs fewer entries* for the same hit ratio (one /25 bitmap covers up
//! to 128 bots).
//!
//! With `--json <path>`, writes the sweep rows as JSON and a deterministic
//! metrics snapshot (per-cell `cap_*.{per_ip,per_prefix}.*` cache counters)
//! to `<path with .metrics extension>`.

use spamaware_bench::{
    banner, experiment_registry, json_path_from_args, scale_from_args, write_json,
    write_metrics_sidecar,
};
use spamaware_core::experiment::default_dnsbl;
use spamaware_dnsbl::{CacheScheme, CachingResolver};
use spamaware_sim::{det_rng, Nanos};
use spamaware_trace::SinkholeConfig;

#[derive(serde::Serialize)]
struct Row {
    capacity: Option<usize>,
    per_ip_hit_ratio: f64,
    per_ip_evictions: u64,
    per_prefix_hit_ratio: f64,
    per_prefix_evictions: u64,
}

fn main() {
    let scale = scale_from_args();
    banner("ablation", "resolver cache capacity", scale);
    let sink = SinkholeConfig::scaled(scale.trace.max(0.25)).generate();
    let server = default_dnsbl(sink.blacklisted.iter().copied());
    let ttl = Nanos::from_secs(86_400);
    let registry = experiment_registry();
    let mut rows = Vec::new();
    println!("  capacity     per-IP hit (evictions)    per-/25 hit (evictions)");
    for cap in [100usize, 500, 2_000, 10_000, usize::MAX] {
        let label = if cap == usize::MAX {
            "unbounded".to_owned()
        } else {
            cap.to_string()
        };
        let mut cells = Vec::new();
        for (scheme, tag) in [
            (CacheScheme::PerIp, "per_ip"),
            (CacheScheme::PerPrefix, "per_prefix"),
        ] {
            let mut r = CachingResolver::new(scheme, ttl)
                .with_metrics(&registry, &format!("cap_{label}.{tag}"));
            if cap != usize::MAX {
                r = r.with_capacity(cap);
            }
            let mut rng = det_rng(4);
            for c in &sink.trace.connections {
                r.lookup(c.client_ip, c.arrival, &server, &mut rng);
            }
            cells.push((r.stats().hit_ratio(), r.stats().evictions));
        }
        println!(
            "  {label:>9}   {:>9.1}%  ({:>8})   {:>10.1}%  ({:>8})",
            cells[0].0 * 100.0,
            cells[0].1,
            cells[1].0 * 100.0,
            cells[1].1
        );
        rows.push(Row {
            capacity: (cap != usize::MAX).then_some(cap),
            per_ip_hit_ratio: cells[0].0,
            per_ip_evictions: cells[0].1,
            per_prefix_hit_ratio: cells[1].0,
            per_prefix_evictions: cells[1].1,
        });
    }
    println!();
    println!("  the bitmap cache tolerates much smaller capacities: one entry");
    println!("  covers a whole /25 of bots (paper's unbounded setting at the");
    println!("  bottom row).");
    if let Some(path) = json_path_from_args() {
        write_json(&path, &rows);
        write_metrics_sidecar(&path, &registry);
    }
}
