//! Ablation: bounded resolver-cache capacity. The paper assumes an
//! unbounded 24 h cache; this sweep shows how small the cache can get
//! before the prefix scheme's advantage erodes — and that prefix caching
//! *needs fewer entries* for the same hit ratio (one /25 bitmap covers up
//! to 128 bots).

use spamaware_bench::{banner, scale_from_args};
use spamaware_core::experiment::default_dnsbl;
use spamaware_dnsbl::{CacheScheme, CachingResolver};
use spamaware_sim::{det_rng, Nanos};
use spamaware_trace::SinkholeConfig;

fn main() {
    let scale = scale_from_args();
    banner("ablation", "resolver cache capacity", scale);
    let sink = SinkholeConfig::scaled(scale.trace.max(0.25)).generate();
    let server = default_dnsbl(sink.blacklisted.iter().copied());
    let ttl = Nanos::from_secs(86_400);
    println!("  capacity     per-IP hit (evictions)    per-/25 hit (evictions)");
    for cap in [100usize, 500, 2_000, 10_000, usize::MAX] {
        let mut cells = Vec::new();
        for scheme in [CacheScheme::PerIp, CacheScheme::PerPrefix] {
            let mut r = CachingResolver::new(scheme, ttl);
            if cap != usize::MAX {
                r = r.with_capacity(cap);
            }
            let mut rng = det_rng(4);
            for c in &sink.trace.connections {
                r.lookup(c.client_ip, c.arrival, &server, &mut rng);
            }
            cells.push((r.stats().hit_ratio(), r.stats().evictions));
        }
        let label = if cap == usize::MAX {
            "unbounded".to_owned()
        } else {
            cap.to_string()
        };
        println!(
            "  {label:>9}   {:>9.1}%  ({:>8})   {:>10.1}%  ({:>8})",
            cells[0].0 * 100.0,
            cells[0].1,
            cells[1].0 * 100.0,
            cells[1].1
        );
    }
    println!();
    println!("  the bitmap cache tolerates much smaller capacities: one entry");
    println!("  covers a whole /25 of bots (paper's unbounded setting at the");
    println!("  bottom row).");
}
