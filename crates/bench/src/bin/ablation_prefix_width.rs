//! Ablation: DNSBL bitmap prefix width. /25 is what one IPv6 AAAA answer
//! can carry (128 bits); this sweep shows what /24 or /26 bitmaps would
//! buy or cost on the sinkhole workload.

use spamaware_bench::{banner, scale_from_args};
use spamaware_dnsbl::width_analysis;
use spamaware_sim::Nanos;
use spamaware_trace::SinkholeConfig;

fn main() {
    let scale = scale_from_args();
    banner("ablation", "DNSBL cache prefix width", scale);
    let sink = SinkholeConfig::scaled(scale.trace.max(0.25)).generate();
    let events: Vec<_> = sink
        .trace
        .connections
        .iter()
        .map(|c| (c.arrival, c.client_ip))
        .collect();
    let ttl = Nanos::from_secs(86_400);
    println!("  width    bitmap bits   hit ratio   queries (% of lookups)");
    for width in [22u8, 23, 24, 25, 26, 28, 32] {
        let a = width_analysis(&events, width, ttl);
        let bits = 1u64 << (32 - width as u32);
        println!(
            "  /{width:<5} {:>11}   {:>8.1}%   {:>8.2}%{}",
            bits,
            a.hit_ratio() * 100.0,
            a.queries as f64 / a.lookups as f64 * 100.0,
            match width {
                25 => "   <- one AAAA answer (the paper's DNSBLv6)",
                32 => "   <- classic per-IP caching",
                _ => "",
            }
        );
    }
    println!();
    println!("  wider bitmaps keep helping, but /25 is the widest that fits in a");
    println!("  single unmodified-DNS answer (paper §7.1).");
}
