//! Fig. 12: CDF of the number of blacklisted IPs per /24 prefix.

use spamaware_bench::{banner, scale_from_args};
use spamaware_core::experiment::fig12;

fn main() {
    let scale = scale_from_args();
    banner("Fig. 12", "CDF of blacklisted IPs in a /24 prefix", scale);
    let cdf = fig12(scale);
    println!("  listed IPs   CDF");
    for target in [1u32, 2, 5, 10, 20, 50, 100, 150, 200, 254] {
        if let Some((x, f)) = cdf.iter().find(|(x, _)| *x >= target) {
            println!("  {x:>10}   {f:>5.3}");
        }
    }
    let at10 = cdf.iter().find(|(x, _)| *x == 10).map_or(1.0, |(_, f)| *f);
    let at100 = cdf.iter().find(|(x, _)| *x == 100).map_or(1.0, |(_, f)| *f);
    println!();
    println!(
        "  P(>10 listed) = {:.0}% (paper: ~40%), P(>100 listed) = {:.1}% (paper: ~3%)",
        (1.0 - at10) * 100.0,
        (1.0 - at100) * 100.0
    );
}
