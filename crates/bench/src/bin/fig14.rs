//! Fig. 14: throughput vs offered connection rate under per-IP and
//! prefix-based DNSBL caching.

use spamaware_bench::{banner, scale_from_args};
use spamaware_core::experiment::fig14;

fn main() {
    let scale = scale_from_args();
    banner(
        "Fig. 14",
        "throughput vs connection rate (DNSBL schemes)",
        scale,
    );
    let rates = [40.0, 60.0, 80.0, 100.0, 120.0, 140.0, 160.0, 180.0, 200.0];
    println!("  offered   IP-caching   prefix-caching     gap");
    let points = fig14(scale, &rates);
    for p in &points {
        let ip = p.ip_caching.connection_throughput();
        let pr = p.prefix_caching.connection_throughput();
        println!(
            "  {:>6.0}/s   {:>8.1}/s   {:>12.1}/s   {:>+5.1}%",
            p.offered_rate,
            ip,
            pr,
            (pr / ip - 1.0) * 100.0
        );
    }
    println!();
    println!("  paper: schemes equal at low rates, gap opens near saturation,");
    println!("  prefix-based achieves +10.8% at 200 connections/sec.");
}
