//! Regenerates Table 1: trace statistics vs the paper's measured values.

use spamaware_bench::{banner, scale_from_args};
use spamaware_core::experiment::table1;

fn main() {
    let scale = scale_from_args();
    banner("Table 1", "measurement traces", scale);
    let t = table1(scale);
    let f = 1.0 / scale.trace;
    println!("Spam trace (sinkhole, May-June 2007):");
    println!("  {:<28} {:>12} {:>14}", "", "generated", "paper");
    println!(
        "  {:<28} {:>12} {:>14}",
        "connections", t.sinkhole.connections, 101_692
    );
    println!(
        "  {:<28} {:>12} {:>14}",
        "unique IP addresses", t.sinkhole.unique_ips, 19_492
    );
    println!(
        "  {:<28} {:>12} {:>14}",
        "unique /24 prefixes", t.sinkhole.unique_prefixes, 8_832
    );
    println!(
        "  {:<28} {:>12.2} {:>14}",
        "mean recipients per mail", t.sinkhole.mean_rcpts, "~7"
    );
    println!();
    println!("Univ trace (department server, Nov 2007):");
    println!(
        "  {:<28} {:>12} {:>14}",
        "connections", t.univ.connections, 1_862_349
    );
    println!(
        "  {:<28} {:>12} {:>14}",
        "unique IP addresses", t.univ.unique_ips, 621_124
    );
    println!(
        "  {:<28} {:>12} {:>14}",
        "unique /24 prefixes", t.univ.unique_prefixes, 344_679
    );
    println!(
        "  {:<28} {:>11.0}% {:>14}",
        "spam ratio",
        t.univ.spam_ratio * 100.0,
        "67%"
    );
    if scale.trace < 1.0 {
        println!();
        println!("note: generated counts are at 1/{f:.0} scale; ratios are scale-free.");
    }
}
