//! Fig. 13: interarrival times of spam from the same IP vs the same /24.

use spamaware_bench::{banner, scale_from_args, thin_cdf};
use spamaware_core::experiment::fig13;

fn main() {
    let scale = scale_from_args();
    banner(
        "Fig. 13",
        "interarrival-time CDFs: per-IP vs per-/24",
        scale,
    );
    let (ip, prefix) = fig13(scale);
    println!("  per-IP interarrivals (seconds):");
    for (s, f) in thin_cdf(&ip.cdf(), 10) {
        println!("    {:>10.0} s   {:>5.3}", s, f);
    }
    println!("  per-/24 interarrivals (seconds):");
    for (s, f) in thin_cdf(&prefix.cdf(), 10) {
        println!("    {:>10.0} s   {:>5.3}", s, f);
    }
    println!();
    println!(
        "  medians: per-IP {:.0} s vs per-/24 {:.0} s — prefix-level arrivals are",
        ip.quantile(0.5),
        prefix.quantile(0.5)
    );
    println!("  denser, which is what prefix-level caching exploits (paper Fig. 13).");
}
