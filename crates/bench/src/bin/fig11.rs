//! Fig. 11: mail-write throughput of four storage layouts on ReiserFS.

use spamaware_bench::{banner, scale_from_args};
use spamaware_core::experiment::fig10_11;
use spamaware_mfs::{DiskProfile, Layout};

fn main() {
    let scale = scale_from_args();
    banner(
        "Fig. 11",
        "mails written/sec vs recipients (ReiserFS)",
        scale,
    );
    let rcpts = [1u8, 2, 3, 5, 8, 10, 12, 15];
    let points = fig10_11(scale, DiskProfile::reiser(), &rcpts);
    println!("  rcpts      MFS    Postfix    maildir   hard-link");
    for p in &points {
        print!("  {:>5}", p.rcpts);
        for (_, tput) in &p.throughput {
            print!("   {tput:>7.0}");
        }
        println!();
    }
    let last = points.last().expect("points");
    let get = |l: Layout| {
        last.throughput
            .iter()
            .find(|(x, _)| *x == l)
            .expect("layout")
            .1
    };
    println!();
    println!(
        "  at 15 rcpts, MFS outperforms hard-link by {:+.1}%, vanilla by {:+.1}%, maildir by {:+.0}%",
        (get(Layout::Mfs) / get(Layout::Hardlink) - 1.0) * 100.0,
        (get(Layout::Mfs) / get(Layout::Mbox) - 1.0) * 100.0,
        (get(Layout::Mfs) / get(Layout::Maildir) - 1.0) * 100.0
    );
    println!("  (paper: +29.5%, +31%, +212%)");
}
