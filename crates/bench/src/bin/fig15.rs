//! Fig. 15: CDF of DNSBL lookup time under no / per-IP / prefix caching,
//! with the cache-hit and query-fraction numbers of §7.2.
//!
//! With `--json <path>`, writes the summary rows as JSON and a
//! deterministic metrics snapshot (per-scheme `dnsbl.*` cache counters and
//! lookup-latency histograms) to `<path with .metrics extension>`.

use spamaware_bench::{
    banner, experiment_registry, json_path_from_args, scale_from_args, thin_cdf, write_json,
    write_metrics_sidecar,
};
use spamaware_core::experiment::fig15_with_metrics;

#[derive(serde::Serialize)]
struct Row {
    scheme: String,
    hit_ratio: f64,
    query_fraction: f64,
    latency_cdf_ms: Vec<(f64, f64)>,
}

fn main() {
    let scale = scale_from_args();
    banner(
        "Fig. 15",
        "DNSBL lookup-time CDFs and cache statistics",
        scale,
    );
    let registry = experiment_registry();
    let f = fig15_with_metrics(scale, &registry);
    for (scheme, hist, hit, qfrac) in &f.rows {
        println!("  {scheme:?}:");
        for (ms, frac) in thin_cdf(&hist.cdf(), 8) {
            println!("    {:>8.2} ms   {:>5.3}", ms, frac);
        }
        println!(
            "    hit ratio {:>5.1}%, queries issued for {:>5.2}% of lookups",
            hit * 100.0,
            qfrac * 100.0
        );
        println!();
    }
    let ip = f
        .rows
        .iter()
        .find(|r| matches!(r.0, spamaware_core::CacheScheme::PerIp))
        .expect("row");
    let pr = f
        .rows
        .iter()
        .find(|r| matches!(r.0, spamaware_core::CacheScheme::PerPrefix))
        .expect("row");
    println!("  paper: hit ratios 73.8% -> 83.9%; queries 26.22% -> 16.11% (-39%).");
    println!(
        "  here:  hit ratios {:.1}% -> {:.1}%; queries {:.2}% -> {:.2}% ({:+.0}%).",
        ip.2 * 100.0,
        pr.2 * 100.0,
        ip.3 * 100.0,
        pr.3 * 100.0,
        (pr.3 / ip.3 - 1.0) * 100.0
    );
    if let Some(path) = json_path_from_args() {
        let rows: Vec<Row> = f
            .rows
            .iter()
            .map(|(scheme, hist, hit, qfrac)| Row {
                scheme: format!("{scheme:?}"),
                hit_ratio: *hit,
                query_fraction: *qfrac,
                latency_cdf_ms: thin_cdf(&hist.cdf(), 32),
            })
            .collect();
        write_json(&path, &rows);
        write_metrics_sidecar(&path, &registry);
    }
}
