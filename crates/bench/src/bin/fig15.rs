//! Fig. 15: CDF of DNSBL lookup time under no / per-IP / prefix caching,
//! with the cache-hit and query-fraction numbers of §7.2.

use spamaware_bench::{banner, scale_from_args, thin_cdf};
use spamaware_core::experiment::fig15;

fn main() {
    let scale = scale_from_args();
    banner(
        "Fig. 15",
        "DNSBL lookup-time CDFs and cache statistics",
        scale,
    );
    let f = fig15(scale);
    for (scheme, hist, hit, qfrac) in &f.rows {
        println!("  {scheme:?}:");
        for (ms, frac) in thin_cdf(&hist.cdf(), 8) {
            println!("    {:>8.2} ms   {:>5.3}", ms, frac);
        }
        println!(
            "    hit ratio {:>5.1}%, queries issued for {:>5.2}% of lookups",
            hit * 100.0,
            qfrac * 100.0
        );
        println!();
    }
    let ip = f
        .rows
        .iter()
        .find(|r| matches!(r.0, spamaware_core::CacheScheme::PerIp))
        .expect("row");
    let pr = f
        .rows
        .iter()
        .find(|r| matches!(r.0, spamaware_core::CacheScheme::PerPrefix))
        .expect("row");
    println!("  paper: hit ratios 73.8% -> 83.9%; queries 26.22% -> 16.11% (-39%).");
    println!(
        "  here:  hit ratios {:.1}% -> {:.1}%; queries {:.2}% -> {:.2}% ({:+.0}%).",
        ip.2 * 100.0,
        pr.2 * 100.0,
        ip.3 * 100.0,
        pr.3 * 100.0,
        (pr.3 / ip.3 - 1.0) * 100.0
    );
}
