//! Live-server delivery throughput: sharded store vs a global lock.
//!
//! Unlike the fig* binaries this is NOT a simulation: it boots the real
//! threaded TCP SMTP server (`LiveServer`) plus its POP3 sibling over the
//! same store, and measures wall-clock delivered-mails/second while a
//! POP3 client repeatedly scans a large pre-seeded mailbox. The sweep
//! crosses worker counts {1,2,4,8} with the storage-concurrency regime:
//!
//! * **sharded** — the default `ShardedStore` (8 shards), where the POP3
//!   scan locks only the hot mailbox's shard and SMTP deliveries to the
//!   other mailboxes proceed;
//! * **global** — `store_shards = 1`, which degrades the same code to a
//!   single global storage lock (the pre-sharding architecture): every
//!   delivery waits out the scan.
//!
//! The POP3 interference is the point: raw parallel-delivery scaling
//! needs as many cores as workers, but reader-blocks-writer stalls show
//! up at any core count, which is exactly the contention the sharded
//! store removes.
//!
//! Full (non-smoke) runs append two resilience rows after the sweep: an
//! overload row (2x the connection cap offered, goodput while shedding)
//! and a slow-reader row (delivery probes through a storm of
//! non-reading peers the write-backpressure layer must evict).
//!
//! Flags (on top of the shared `--json`): `--clients M`, `--mails K`,
//! `--body-bytes N`, `--seed N` (hot-mailbox size), `--no-reader` (pure
//! delivery sweep), `--global-lock` (baseline regime only), `--smoke`
//! (one tiny config pair, used by `scripts/check.sh` as a boot test).
//!
//! With `--json` the run also writes a `.metrics` sidecar holding the
//! final sharded configuration's live metrics report (shard contention,
//! buffer pool hit rates, per-stage spans).

use spamaware_bench::{json_path_from_args, write_json, write_metrics_sidecar};
use spamaware_core::{LiveConfig, LiveServer, Pop3Server};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Transactions pipelined per socket write (the server coalesces the
/// replies to each burst into one write back).
const BATCH: usize = 8;
/// Transactions per connection, kept under the session's
/// `max_transactions` cap (100) so a long client run never trips 452s.
const PER_CONNECTION: usize = 96;
/// The pre-seeded mailbox the POP3 client hammers.
const HOT_MAILBOX: &str = "archive";

#[derive(Clone, Copy, serde::Serialize)]
struct Row {
    workers: usize,
    global_lock: bool,
    clients: usize,
    mails: usize,
    body_bytes: usize,
    /// Mails pre-seeded into the hot mailbox the POP3 reader scans.
    seed_mails: usize,
    /// Full-mailbox POP3 scans completed during the measured window.
    pop3_scans: u64,
    elapsed_secs: f64,
    mails_per_sec: f64,
}

#[derive(Clone, Copy, serde::Serialize)]
struct OverloadRow {
    /// `max_connections` admission cap for the run.
    connection_cap: usize,
    /// Concurrent clients offered (2× the cap).
    offered_clients: usize,
    /// Mails each client must get acked (retrying its `421` sheds).
    mails_per_client: usize,
    /// `live.shed_connections` at the end — proof the cap engaged.
    shed_connections: u64,
    /// Largest `live.inflight` value sampled while flooding; must stay
    /// at or under the cap.
    max_inflight: i64,
    elapsed_secs: f64,
    /// Goodput: acked mails per second *while shedding* — the number the
    /// admission layer exists to protect.
    mails_per_sec: f64,
}

#[derive(Clone, Copy, serde::Serialize)]
struct SlowReaderRow {
    /// Non-reading peers blasting amplifier commands for the whole row.
    stalled_peers: usize,
    /// Concurrent delivery probes run *through* the stall storm.
    probe_clients: usize,
    /// Acked mails per probe client.
    probe_mails: usize,
    /// `master.write_stalls` at the end — every peer's window closed.
    write_stalls: u64,
    /// `master.evicted_slow_writers` — every stalled peer was cut loose.
    evicted_slow_writers: u64,
    elapsed_secs: f64,
    /// Goodput while the storm raged — the number the write-backpressure
    /// layer exists to protect (an unbounded writer would wedge the
    /// master's event loop on the first closed window instead).
    mails_per_sec: f64,
}

#[derive(Clone, Copy, serde::Serialize)]
struct FloodRow {
    /// Idle pre-trust connections parked on the master for the whole row.
    held_connections: usize,
    /// Wall-clock seconds to establish (connect + greeting) all of them.
    establish_secs: f64,
    /// Establishment rate while ramping to the held population.
    conns_per_sec: f64,
    /// Concurrent delivery probes run *through* the standing flood.
    probe_clients: usize,
    /// Acked mails per probe client.
    probe_mails: usize,
    probe_elapsed_secs: f64,
    /// Goodput through the flood — the number the readiness-driven master
    /// is supposed to protect (the sliced-read master rescans all 10k
    /// sockets between every probe reply).
    probe_mails_per_sec: f64,
    /// Largest `live.inflight` sampled; must reach the held population.
    max_inflight: i64,
    /// Evictions during the row — nonzero means the hold slipped.
    idle_evictions: u64,
}

#[derive(serde::Serialize)]
struct Report {
    rows: Vec<Row>,
    /// sharded ÷ global mails/sec at the widest worker count measured.
    speedup_at_max_workers: Option<f64>,
    /// The past-the-cap flood (absent in `--smoke`/`--global-lock` runs).
    overload: Option<OverloadRow>,
    /// Delivery goodput through a write-stall storm (absent in
    /// `--smoke`/`--global-lock` runs).
    slow_reader: Option<SlowReaderRow>,
    /// The 10k-connection pre-trust flood (only with `--flood`).
    flood: Option<FloodRow>,
}

struct Args {
    clients: usize,
    mails: usize,
    body_bytes: usize,
    seed: usize,
    reader: bool,
    smoke: bool,
    global_only: bool,
    flood: bool,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let get = |flag: &str, default: usize| {
        argv.iter()
            .position(|a| a == flag)
            .and_then(|i| argv.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let smoke = argv.iter().any(|a| a == "--smoke");
    Args {
        clients: get("--clients", if smoke { 2 } else { 4 }),
        mails: get("--mails", if smoke { 16 } else { 1000 }),
        body_bytes: get("--body-bytes", if smoke { 2048 } else { 16 * 1024 }),
        seed: get("--seed", if smoke { 16 } else { 512 }),
        reader: !argv.iter().any(|a| a == "--no-reader"),
        smoke,
        global_only: argv.iter().any(|a| a == "--global-lock"),
        flood: argv.iter().any(|a| a == "--flood"),
    }
}

fn main() {
    // Hidden holder mode: `--flood` re-execs this binary as child
    // processes that each park N idle connections, because a single
    // process cannot hold the 10k client fds *and* the server's 10k
    // accepted fds under this environment's 20k fd ceiling.
    {
        let argv: Vec<String> = std::env::args().collect();
        if let Some(i) = argv.iter().position(|a| a == "--flood-holder") {
            let addr: SocketAddr = argv
                .get(i + 1)
                .and_then(|v| v.parse().ok())
                .expect("--flood-holder <addr> <count>");
            let count: usize = argv
                .get(i + 2)
                .and_then(|v| v.parse().ok())
                .expect("--flood-holder <addr> <count>");
            flood_holder(addr, count);
            return;
        }
    }
    let args = parse_args();
    let worker_counts: &[usize] = if args.smoke { &[2] } else { &[1, 2, 4, 8] };
    let regimes: &[bool] = if args.global_only {
        &[true]
    } else {
        &[false, true] // sharded first, then the global-lock baseline
    };

    println!("=== live_throughput: sharded vs global-lock storage, real TCP");
    println!(
        "    ({} clients x {} mails x {} B bodies per config, {} seeded mails{})",
        args.clients,
        args.mails,
        args.body_bytes,
        args.seed,
        if args.reader {
            ", POP3 scanner on"
        } else {
            ", no reader"
        }
    );
    println!();

    let mut rows = Vec::new();
    let mut final_metrics: Option<String> = None;
    for &workers in worker_counts {
        for &global_lock in regimes {
            let (row, metrics) = run_config(&args, workers, global_lock);
            println!(
                "  workers {workers}  {}  {:>8.1} mails/s   ({:.2}s, {} scans)",
                if global_lock { "global " } else { "sharded" },
                row.mails_per_sec,
                row.elapsed_secs,
                row.pop3_scans
            );
            rows.push(row);
            if !global_lock {
                final_metrics = Some(metrics);
            }
        }
    }

    // Overload sweep: offer 2x the connection cap and measure goodput
    // while the admission layer sheds. Skipped in smoke (boot test) and
    // global-lock-baseline runs.
    let overload = (!args.smoke && !args.global_only).then(|| {
        let row = run_overload(args.body_bytes.min(4096));
        println!();
        println!(
            "  overload: cap {} / offered {}  {:>8.1} mails/s goodput   ({} shed, max inflight {})",
            row.connection_cap,
            row.offered_clients,
            row.mails_per_sec,
            row.shed_connections,
            row.max_inflight
        );
        row
    });

    // Slow-reader sweep: delivery probes through a storm of non-reading
    // peers whose replies back up until the write-backpressure layer
    // evicts them. Skipped in smoke and global-lock-baseline runs.
    let slow_reader = (!args.smoke && !args.global_only).then(|| {
        let row = run_slow_reader(args.body_bytes.min(4096));
        println!();
        println!(
            "  slow-reader: {} stalled peers  {:>8.1} mails/s goodput   ({} stalls, {} evicted)",
            row.stalled_peers, row.mails_per_sec, row.write_stalls, row.evicted_slow_writers
        );
        row
    });

    // 10k-connection pre-trust flood: park an idle population two orders
    // of magnitude past the default cap, then measure delivery goodput
    // straight through it.
    let flood = args.flood.then(|| {
        let row = run_flood(args.body_bytes.min(4096));
        println!();
        println!(
            "  flood: {} held in {:.2}s ({:.0} conns/s), probe {:>8.1} mails/s   (max inflight {}, {} evictions)",
            row.held_connections,
            row.establish_secs,
            row.conns_per_sec,
            row.probe_mails_per_sec,
            row.max_inflight,
            row.idle_evictions
        );
        row
    });

    let max_workers = worker_counts.iter().copied().max().unwrap_or(1);
    let at = |global: bool| {
        rows.iter()
            .find(|r| r.workers == max_workers && r.global_lock == global)
            .map(|r| r.mails_per_sec)
    };
    let speedup = match (at(false), at(true)) {
        (Some(s), Some(g)) if g > 0.0 => Some(s / g),
        _ => None,
    };
    if let Some(x) = speedup {
        println!();
        println!("  sharded / global-lock at {max_workers} workers: {x:.2}x");
    }

    if let Some(path) = json_path_from_args() {
        write_json(
            &path,
            &Report {
                rows,
                speedup_at_max_workers: speedup,
                overload,
                slow_reader,
                flood,
            },
        );
        if let Some(report) = &final_metrics {
            let side = path.with_extension("metrics");
            std::fs::write(&side, report)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", side.display()));
            println!("(wrote {})", side.display());
        } else {
            // --global-lock only: still emit a sidecar from an empty
            // registry so downstream tooling finds the artifact pair.
            write_metrics_sidecar(&path, &spamaware_bench::experiment_registry());
        }
    }
}

/// Boots a server pair in the given regime, seeds the hot mailbox,
/// hammers SMTP under POP3 scan pressure, and returns the row plus the
/// SMTP server's metrics report.
fn run_config(args: &Args, workers: usize, global_lock: bool) -> (Row, String) {
    let root = std::env::temp_dir().join(format!(
        "spamaware-livebench-{}-w{workers}-{}",
        std::process::id(),
        if global_lock { "global" } else { "sharded" }
    ));
    let _ = std::fs::remove_dir_all(&root);
    let mut mailboxes: Vec<String> = (0..args.clients).map(|i| format!("user{i}")).collect();
    mailboxes.push(HOT_MAILBOX.to_owned());
    let mut cfg = LiveConfig::localhost(&root, mailboxes.clone());
    cfg.workers = workers;
    cfg.store_shards = if global_lock { 1 } else { 8 };
    let server = LiveServer::start(cfg).expect("start live server");
    let addr = server.local_addr();
    let pop = Pop3Server::start(
        "127.0.0.1:0".parse().expect("addr"),
        server.store(),
        mailboxes,
    )
    .expect("start pop3 server");

    // Seed the hot mailbox (untimed) so each POP3 scan is a long read.
    drive_client(addr, HOT_MAILBOX, args.seed, args.body_bytes);
    wait_for_stored(&server, args.seed as u64);

    let stop = Arc::new(AtomicBool::new(false));
    let reader = args.reader.then(|| {
        let stop = Arc::clone(&stop);
        let pop_addr = pop.local_addr();
        std::thread::spawn(move || scan_loop(pop_addr, &stop))
    });

    // lint:allow(time): wall-clock elapsed time IS the measurement here
    let started = std::time::Instant::now();
    let handles: Vec<_> = (0..args.clients)
        .map(|c| {
            let mails = args.mails;
            let body_bytes = args.body_bytes;
            std::thread::spawn(move || drive_client(addr, &format!("user{c}"), mails, body_bytes))
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let expected = (args.seed + args.clients * args.mails) as u64;
    // Deliveries are acked at SMTP before the stats counter ticks; wait
    // for the counters to catch up so elapsed covers all storage work.
    wait_for_stored(&server, expected);
    let elapsed = started.elapsed().as_secs_f64();
    stop.store(true, Ordering::SeqCst);
    let scans = match reader {
        Some(h) => h.join().expect("reader thread"),
        None => 0,
    };
    let stored = server.stats().snapshot().mails_stored;
    assert_eq!(stored, expected, "lost mail under load");
    let metrics = server.metrics_report();
    pop.shutdown();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
    (
        Row {
            workers,
            global_lock,
            clients: args.clients,
            mails: args.mails,
            body_bytes: args.body_bytes,
            seed_mails: args.seed,
            pop3_scans: scans,
            elapsed_secs: elapsed,
            mails_per_sec: (args.clients * args.mails) as f64 / elapsed,
        },
        metrics,
    )
}

/// Floods a capped server with 2x its admitted connections. Every client
/// retries `421` sheds (at the greeting or post-RCPT) until its mails are
/// acked, so the row measures what overload control is for: bounded
/// concurrency, no stall, and all offered mail eventually delivered.
fn run_overload(body_bytes: usize) -> OverloadRow {
    const CAP: usize = 32;
    const OFFERED: usize = 2 * CAP;
    const MAILS_EACH: usize = 10;
    let root = std::env::temp_dir().join(format!(
        "spamaware-livebench-{}-overload",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    let mut cfg = LiveConfig::localhost(&root, vec!["inbox".to_owned()]);
    cfg.max_connections = CAP;
    cfg.max_pretrust_per_ip = OFFERED * 2; // everyone is 127.0.0.1
    let server = LiveServer::start(cfg).expect("start capped server");
    let addr = server.local_addr();

    // lint:allow(time): wall-clock elapsed time IS the measurement here
    let started = std::time::Instant::now();
    let handles: Vec<_> = (0..OFFERED)
        .map(|i| {
            std::thread::spawn(move || {
                let mut delivered = 0;
                let mut attempt = 0u64;
                while delivered < MAILS_EACH {
                    attempt += 1;
                    assert!(attempt < 10_000, "client {i} starved out");
                    if overload_attempt(addr, body_bytes) {
                        delivered += 1;
                    } else {
                        std::thread::sleep(Duration::from_millis(1 + (i as u64 % 5)));
                    }
                }
            })
        })
        .collect();
    let mut max_inflight = 0i64;
    let mut pending: Vec<_> = handles.into_iter().collect();
    while !pending.is_empty() {
        max_inflight = max_inflight.max(server.inflight());
        pending.retain(|h| !h.is_finished());
        std::thread::sleep(Duration::from_millis(1));
    }
    let expected = (OFFERED * MAILS_EACH) as u64;
    wait_for_stored(&server, expected);
    let elapsed = started.elapsed().as_secs_f64();
    let snap = server.stats().snapshot();
    assert_eq!(snap.mails_stored, expected, "acked mail lost under flood");
    assert!(max_inflight <= CAP as i64, "cap violated: {max_inflight}");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
    OverloadRow {
        connection_cap: CAP,
        offered_clients: OFFERED,
        mails_per_client: MAILS_EACH,
        shed_connections: snap.shed_connections,
        max_inflight,
        elapsed_secs: elapsed,
        mails_per_sec: expected as f64 / elapsed,
    }
}

/// Non-reading peers in the slow-reader row.
const STALLED_PEERS: usize = 32;

/// Measures delivery goodput through a storm of peers that send but
/// never read: each blasts unparsable three-byte commands (every one
/// amplified into a ~38-byte reply) with a clamped receive buffer, so
/// its TCP window closes, the master's per-connection `OutBuf` fills to
/// its cap, and the write-backpressure layer evicts it — all while
/// probe clients must keep delivering at full speed.
fn run_slow_reader(body_bytes: usize) -> SlowReaderRow {
    const PROBE_CLIENTS: usize = 4;
    const PROBE_MAILS: usize = 25;
    let root =
        std::env::temp_dir().join(format!("spamaware-livebench-{}-stall", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut cfg = LiveConfig::localhost(&root, vec!["inbox".to_owned()]);
    cfg.max_pretrust_per_ip = (STALLED_PEERS + PROBE_CLIENTS) * 2; // everyone is 127.0.0.1
    cfg.max_outq_bytes = 16 * 1024;
    cfg.write_stall_timeout = Duration::from_secs(1);
    let server = LiveServer::start(cfg).expect("start stall server");
    let addr = server.local_addr();

    // lint:allow(time): wall-clock elapsed time IS the measurement here
    let started = std::time::Instant::now();
    let stalled: Vec<_> = (0..STALLED_PEERS)
        .map(|_| {
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("stall connect");
                // Clamp the receive buffer so the peer's TCP window
                // actually closes — autotuning would otherwise absorb
                // tens of megabytes and no stall would ever reach the
                // master.
                rawpoll::set_recv_buffer(stream.as_raw_fd(), 4096).expect("clamp rcvbuf");
                stream
                    .set_write_timeout(Some(Duration::from_secs(10)))
                    .expect("stall write timeout");
                let mut out = stream.try_clone().expect("clone");
                let burst: Vec<u8> = b"a\r\n".repeat(1024);
                let mut sent = 0;
                // ~1 MiB in → ~14 MiB of replies: decisively past the
                // ~4 MiB the kernel send buffer can autotune to, so the
                // OutBuf cap and the eviction engage.
                while sent < 1024 * 1024 {
                    match out.write(&burst) {
                        Ok(0) | Err(_) => break, // evicted: the socket died
                        Ok(n) => sent += n,
                    }
                }
                stream // keep the fd open until evictions are confirmed
            })
        })
        .collect();

    let probes: Vec<_> = (0..PROBE_CLIENTS)
        .map(|i| {
            std::thread::spawn(move || {
                let mut delivered = 0;
                let mut attempt = 0u64;
                while delivered < PROBE_MAILS {
                    attempt += 1;
                    assert!(attempt < 10_000, "probe {i} starved out");
                    if overload_attempt(addr, body_bytes) {
                        delivered += 1;
                    } else {
                        std::thread::sleep(Duration::from_millis(1 + (i as u64 % 5)));
                    }
                }
            })
        })
        .collect();
    for h in probes {
        h.join().expect("probe thread");
    }
    let expected = (PROBE_CLIENTS * PROBE_MAILS) as u64;
    wait_for_stored(&server, expected);
    let elapsed = started.elapsed().as_secs_f64();

    let peers: Vec<TcpStream> = stalled
        .into_iter()
        .map(|h| h.join().expect("stalled peer thread"))
        .collect();
    // Every stalled peer must be cut loose (cap overflow or the 1s
    // no-progress deadline); the budget covers scheduling slack.
    // lint:allow(time): polling a wall-clock server from the harness
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let evicted = loop {
        let v = server
            .metrics()
            .counter_value("master.evicted_slow_writers")
            .unwrap_or(0);
        // lint:allow(time): polling a wall-clock server from the harness
        if v >= STALLED_PEERS as u64 || std::time::Instant::now() >= deadline {
            break v;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    assert!(
        evicted >= STALLED_PEERS as u64,
        "only {evicted} of {STALLED_PEERS} stalled peers evicted"
    );
    let write_stalls = server
        .metrics()
        .counter_value("master.write_stalls")
        .unwrap_or(0);
    assert_eq!(
        server.stats().snapshot().mails_stored,
        expected,
        "probe mail lost in the stall storm"
    );
    drop(peers);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
    SlowReaderRow {
        stalled_peers: STALLED_PEERS,
        probe_clients: PROBE_CLIENTS,
        probe_mails: PROBE_MAILS,
        write_stalls,
        evicted_slow_writers: evicted,
        elapsed_secs: elapsed,
        mails_per_sec: expected as f64 / elapsed,
    }
}

/// Connections each holder child parks (two children ⇒ 10k total).
const FLOOD_PER_HOLDER: usize = 5_000;
/// Holder child processes.
const FLOOD_HOLDERS: usize = 2;
/// Connections established per burst before reading their greetings —
/// the greeting read paces the ramp under the listener's backlog (128).
const FLOOD_CONNECT_BATCH: usize = 100;

/// Parks a 10k idle pre-trust population on the server, then measures
/// delivery goodput through it. The held sockets never speak: they
/// connect, consume the greeting, and sit silent, so every one of them
/// stays in the master's pre-trust set for the whole row.
fn run_flood(body_bytes: usize) -> FloodRow {
    const HELD: usize = FLOOD_HOLDERS * FLOOD_PER_HOLDER;
    const PROBE_CLIENTS: usize = 8;
    const PROBE_MAILS: usize = 8;
    let root =
        std::env::temp_dir().join(format!("spamaware-livebench-{}-flood", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut cfg = LiveConfig::localhost(&root, vec!["inbox".to_owned()]);
    cfg.max_connections = HELD + 256;
    cfg.max_pretrust_per_ip = HELD + 256; // every holder is 127.0.0.1
    cfg.pretrust_idle_timeout = Duration::from_secs(300);
    cfg.session_deadline = Duration::from_secs(600);
    let server = LiveServer::start(cfg).expect("start flood server");
    let addr = server.local_addr();

    let exe = std::env::current_exe().expect("current exe");
    // lint:allow(time): wall-clock elapsed time IS the measurement here
    let started = std::time::Instant::now();
    let mut holders: Vec<Child> = (0..FLOOD_HOLDERS)
        .map(|_| {
            Command::new(&exe)
                .arg("--flood-holder")
                .arg(addr.to_string())
                .arg(FLOOD_PER_HOLDER.to_string())
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn flood holder")
        })
        .collect();
    for child in &mut holders {
        let out = child.stdout.take().expect("holder stdout");
        let mut line = String::new();
        BufReader::new(out)
            .read_line(&mut line)
            .expect("holder ready");
        assert!(line.starts_with("HELD"), "holder failed: {line:?}");
    }
    let establish_secs = started.elapsed().as_secs_f64();
    // The greeting is written a beat before the inflight gauge ticks, so
    // give the gauge a moment to account for the final connections.
    for _ in 0..2000 {
        if server.inflight() >= HELD as i64 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(
        server.inflight() >= HELD as i64,
        "flood not fully admitted: {}",
        server.inflight()
    );

    // Deliver mail straight through the standing flood.
    // lint:allow(time): wall-clock elapsed time IS the measurement here
    let probe_started = std::time::Instant::now();
    let probes: Vec<_> = (0..PROBE_CLIENTS)
        .map(|i| {
            std::thread::spawn(move || {
                let mut delivered = 0;
                let mut attempt = 0u64;
                while delivered < PROBE_MAILS {
                    attempt += 1;
                    assert!(attempt < 10_000, "probe {i} starved out");
                    if overload_attempt(addr, body_bytes) {
                        delivered += 1;
                    } else {
                        std::thread::sleep(Duration::from_millis(1 + (i as u64 % 5)));
                    }
                }
            })
        })
        .collect();
    let mut max_inflight = 0i64;
    let mut pending: Vec<_> = probes.into_iter().collect();
    while !pending.is_empty() {
        max_inflight = max_inflight.max(server.inflight());
        pending.retain(|h| !h.is_finished());
        std::thread::sleep(Duration::from_millis(1));
    }
    let expected = (PROBE_CLIENTS * PROBE_MAILS) as u64;
    wait_for_stored(&server, expected);
    let probe_elapsed_secs = probe_started.elapsed().as_secs_f64();

    let snap = server.stats().snapshot();
    assert_eq!(snap.mails_stored, expected, "probe mail lost in flood");
    // Release the flood: closing each holder's stdin makes it exit and
    // drop its 5k sockets.
    for child in &mut holders {
        drop(child.stdin.take());
    }
    for mut child in holders {
        let _ = child.wait();
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
    FloodRow {
        held_connections: HELD,
        establish_secs,
        conns_per_sec: HELD as f64 / establish_secs,
        probe_clients: PROBE_CLIENTS,
        probe_mails: PROBE_MAILS,
        probe_elapsed_secs,
        probe_mails_per_sec: expected as f64 / probe_elapsed_secs,
        max_inflight,
        idle_evictions: snap.idle_evictions,
    }
}

/// Holder-child body: connect `count` sockets, read each greeting, report
/// `HELD` on stdout, then park until the parent closes stdin.
fn flood_holder(addr: SocketAddr, count: usize) {
    let mut held: Vec<TcpStream> = Vec::with_capacity(count);
    let mut batch: Vec<TcpStream> = Vec::with_capacity(FLOOD_CONNECT_BATCH);
    for i in 0..count {
        let stream = TcpStream::connect(addr).expect("holder connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("holder timeout");
        batch.push(stream);
        if batch.len() == FLOOD_CONNECT_BATCH || i + 1 == count {
            for s in &mut batch {
                read_through_newline(s);
            }
            held.append(&mut batch);
        }
    }
    println!("HELD {}", held.len());
    std::io::stdout().flush().expect("holder flush");
    // Park until the parent closes our stdin, then exit and let the
    // sockets drop.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
}

/// Reads and discards bytes up to and including the next `\n` (the SMTP
/// greeting line) — confirmation the server admitted this connection.
fn read_through_newline(stream: &mut TcpStream) {
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => panic!("greeting EOF (connection shed?)"),
            Ok(_) if byte[0] == b'\n' => return,
            Ok(_) => {}
            Err(e) => panic!("greeting read failed: {e}"),
        }
    }
}

/// One delivery attempt against the capped server: `true` once acked,
/// `false` on any `421`/close so the caller backs off and retries.
fn overload_attempt(addr: SocketAddr, body_bytes: usize) -> bool {
    let Ok(stream) = TcpStream::connect(addr) else {
        return false;
    };
    if stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .is_err()
    {
        return false;
    }
    let Ok(clone) = stream.try_clone() else {
        return false;
    };
    let mut reader = BufReader::new(clone);
    let mut out = stream;
    let body_line = "x".repeat(72);
    let body_lines = body_bytes / (body_line.len() + 2);
    let mut body = String::new();
    for _ in 0..body_lines {
        body.push_str(&body_line);
        body.push_str("\r\n");
    }
    body.push('.');
    let script: &[(Option<&str>, &str)] = &[
        (None, "220"),
        (Some("HELO flood.example"), "250"),
        (Some("MAIL FROM:<load@flood.example>"), "250"),
        (Some("RCPT TO:<inbox@dept.example>"), "250"),
        (Some("DATA"), "354"),
        (Some(body.as_str()), "250"),
    ];
    let mut line = String::new();
    for (send, want) in script {
        if let Some(cmd) = send {
            if out.write_all(format!("{cmd}\r\n").as_bytes()).is_err() {
                return false;
            }
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(n) if n > 0 => {
                if line.starts_with(want) {
                    continue;
                }
                assert!(line.starts_with("421"), "unexpected reply: {line:?}");
                return false; // shed: back off and retry
            }
            _ => return false,
        }
    }
    let _ = out.write_all(b"QUIT\r\n");
    true
}

fn wait_for_stored(server: &LiveServer, n: u64) {
    for _ in 0..4000 {
        if server.stats().snapshot().mails_stored >= n {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!(
        "timed out waiting for {n} stored mails (have {})",
        server.stats().snapshot().mails_stored
    );
}

/// POP3 client looping full-mailbox retrievals of the hot mailbox until
/// stopped; returns the number of completed scans. Each `RETR` re-reads
/// the whole mailbox under its shard's lock — the interference source.
fn scan_loop(addr: SocketAddr, stop: &AtomicBool) -> u64 {
    let stream = TcpStream::connect(addr).expect("pop3 connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut out = stream;
    let mut line = String::new();
    reader.read_line(&mut line).expect("banner");
    for cmd in [format!("USER {HOT_MAILBOX}"), "PASS x".to_owned()] {
        out.write_all(format!("{cmd}\r\n").as_bytes()).expect("cmd");
        line.clear();
        reader.read_line(&mut line).expect("reply");
        assert!(line.starts_with("+OK"), "{cmd}: {line:?}");
    }
    let mut scans = 0;
    while !stop.load(Ordering::SeqCst) {
        out.write_all(b"RETR 1\r\n").expect("retr");
        line.clear();
        reader.read_line(&mut line).expect("retr reply");
        assert!(line.starts_with("+OK"), "RETR: {line:?}");
        loop {
            line.clear();
            reader.read_line(&mut line).expect("retr body");
            if line.trim_end() == "." {
                break;
            }
        }
        scans += 1;
        // Client think time between retrievals; without it an unfair
        // mutex lets the scanner monopolize the global lock entirely.
        std::thread::sleep(Duration::from_micros(500));
    }
    let _ = out.write_all(b"QUIT\r\n");
    scans
}

/// One SMTP client: long-lived connections, transactions pipelined in
/// batches, every mail addressed to `mailbox`.
fn drive_client(addr: SocketAddr, mailbox: &str, mails: usize, body_bytes: usize) {
    let body_line = "x".repeat(72);
    let body_lines = body_bytes / (body_line.len() + 2);
    let mut sent = 0;
    while sent < mails {
        let in_this_conn = (mails - sent).min(PER_CONNECTION);
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("timeout");
        stream.set_nodelay(true).expect("nodelay");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut out = stream;
        let mut line = String::new();
        reader.read_line(&mut line).expect("greeting");
        out.write_all(b"HELO bench.example\r\n").expect("helo");
        line.clear();
        reader.read_line(&mut line).expect("helo reply");

        let mut done = 0;
        while done < in_this_conn {
            let batch = (in_this_conn - done).min(BATCH);
            let mut burst = String::new();
            for _ in 0..batch {
                burst.push_str("MAIL FROM:<load@remote.example>\r\n");
                burst.push_str(&format!("RCPT TO:<{mailbox}@dept.example>\r\n"));
                burst.push_str("DATA\r\n");
                for _ in 0..body_lines {
                    burst.push_str(&body_line);
                    burst.push_str("\r\n");
                }
                burst.push_str(".\r\n");
            }
            out.write_all(burst.as_bytes()).expect("burst");
            // 4 replies per transaction: MAIL, RCPT, 354, queued.
            for _ in 0..batch * 4 {
                line.clear();
                reader.read_line(&mut line).expect("reply");
                assert!(
                    line.starts_with('2') || line.starts_with("354"),
                    "unexpected reply: {line:?}"
                );
            }
            done += batch;
        }
        out.write_all(b"QUIT\r\n").expect("quit");
        line.clear();
        let _ = reader.read_line(&mut line);
        sent += in_this_conn;
    }
}
