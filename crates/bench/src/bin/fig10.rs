//! Fig. 10: mail-write throughput of four storage layouts on Ext3.

use spamaware_bench::{banner, scale_from_args};
use spamaware_core::experiment::fig10_11;
use spamaware_mfs::DiskProfile;

fn main() {
    let scale = scale_from_args();
    banner(
        "Fig. 10",
        "mails written/sec vs recipients (Ext3-journal)",
        scale,
    );
    let rcpts = [1u8, 2, 3, 5, 8, 10, 12, 15];
    let points = fig10_11(scale, DiskProfile::ext3(), &rcpts);
    println!("  rcpts      MFS    Postfix    maildir   hard-link");
    for p in &points {
        print!("  {:>5}", p.rcpts);
        for (_, tput) in &p.throughput {
            print!("   {tput:>7.0}");
        }
        println!();
    }
    let first = &points[0];
    let last = points.last().expect("points");
    let get = |p: &spamaware_core::experiment::Fig10Point, l: spamaware_mfs::Layout| {
        p.throughput
            .iter()
            .find(|(x, _)| *x == l)
            .expect("layout")
            .1
    };
    use spamaware_mfs::Layout;
    println!();
    println!(
        "  vanilla 1->15 amortization: {:.1}x (paper: 7.2x)",
        get(last, Layout::Mbox) / get(first, Layout::Mbox)
    );
    println!(
        "  MFS over vanilla at 15 rcpts: {:+.0}% (paper: +39%)",
        (get(last, Layout::Mfs) / get(last, Layout::Mbox) - 1.0) * 100.0
    );
}
