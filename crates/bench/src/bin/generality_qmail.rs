//! §10 generality check: the paper claims its optimizations "are general
//! and applicable to other popular mail servers such as qmail". This
//! bench runs the Fig. 8 bounce sweep against a qmail-like
//! process-per-connection baseline (fresh process per connection, no
//! recycling) and the same fork-after-trust hybrid.

use spamaware_bench::{banner, scale_from_args};
use spamaware_core::{run, ClientModel, ServerConfig};
use spamaware_sim::Nanos;
use spamaware_trace::bounce_sweep_trace;

fn main() {
    let scale = scale_from_args();
    banner(
        "§10",
        "generality: qmail-like baseline vs fork-after-trust",
        scale,
    );
    println!("  bounce   qmail-like   postfix-like   Hybrid     hybrid gain over qmail");
    for b in [0.0, 0.3, 0.6, 0.9] {
        let trace = bounce_sweep_trace(42, 10_000, b, 400);
        let client = ClientModel::Closed { concurrency: 600 };
        let horizon = Nanos::from_secs(scale.seconds);
        let qmail = run(&trace, ServerConfig::qmail_like(), client, horizon);
        let postfix = run(&trace, ServerConfig::vanilla(), client, horizon);
        let hybrid = run(&trace, ServerConfig::hybrid(), client, horizon);
        println!(
            "  {b:>5.2}   {:>8.1}/s   {:>10.1}/s   {:>7.1}/s   {:>+6.0}%",
            qmail.goodput(),
            postfix.goodput(),
            hybrid.goodput(),
            (hybrid.goodput() / qmail.goodput().max(1e-9) - 1.0) * 100.0
        );
    }
    println!();
    println!("  qmail's per-connection fork (no recycling) makes bounces even");
    println!("  dearer, so fork-after-trust helps it more than postfix (§10).");
}
