//! Ablation: MFS share threshold — share only multi-recipient mails (the
//! paper's design) vs routing single-recipient mail through the shared
//! mailbox too.

use rand::Rng;
use spamaware_bench::{banner, scale_from_args};
use spamaware_mfs::{DiskProfile, Layout};
use spamaware_server::SimStore;
use spamaware_sim::det_rng;
use spamaware_trace::{MailSizeModel, RcptCountModel};

fn main() {
    let scale = scale_from_args();
    banner(
        "ablation",
        "MFS share threshold (sinkhole-like mail stream)",
        scale,
    );
    let mut rng = det_rng(77);
    let sizes = MailSizeModel::spam();
    let rcpts = RcptCountModel::spam();
    let boxes: Vec<String> = (0..500).map(|i| format!("user{i}")).collect();
    let mails: Vec<(Vec<usize>, u32)> = (0..20_000)
        .map(|_| {
            let n = rcpts.sample(&mut rng) as usize;
            let mut chosen: Vec<usize> = (0..n).map(|_| rng.gen_range(0..boxes.len())).collect();
            chosen.sort_unstable();
            chosen.dedup();
            (chosen, sizes.sample(&mut rng))
        })
        .collect();

    println!("  threshold   disk time    appends    vs paper design");
    let mut baseline = None;
    for threshold in [1usize, 2, 4, 8] {
        let mut store = SimStore::with_mfs_threshold(Layout::Mfs, DiskProfile::ext3(), threshold);
        let refs: Vec<&str> = boxes.iter().map(String::as_str).collect();
        store.prewarm(&refs).expect("prewarm");
        let mut total = spamaware_sim::Nanos::ZERO;
        for (chosen, size) in &mails {
            let names: Vec<&str> = chosen.iter().map(|&i| boxes[i].as_str()).collect();
            total += store.deliver(&names, *size as u64).expect("deliver");
        }
        let base = *baseline.get_or_insert(total);
        println!(
            "  {threshold:>9}   {:>9}   {:>8}   {:>+6.1}%",
            format!("{total}"),
            store.op_counts().appends,
            (total.as_secs_f64() / base.as_secs_f64() - 1.0) * 100.0
        );
    }
    println!();
    println!("  threshold 2 (the paper's design) avoids the extra key tuple per");
    println!("  single-recipient mail; higher thresholds duplicate bodies again.");
}
