//! Fig. 1: distribution of mail servers in use (static survey data from
//! Simpson & Bekman's January 2007 fingerprinting of 400,000 domains,
//! as read from the paper's figure).

fn main() {
    println!("=== Fig. 1: mail server distribution (Jan 2007 survey, 400k domains)");
    println!();
    let rows = [
        ("Sendmail", 12.3),
        ("Postfix", 8.6),
        ("MS Exchange", 5.3),
        ("Postini", 5.2),
        ("Exim", 4.4),
        ("MXLogic", 3.4),
        ("Logic changing", 3.2),
        ("Qmail", 2.5),
        ("Exim (hosted)", 2.1),
        ("CommuniGate", 1.4),
        ("Cisco", 1.2),
        ("Barracuda", 1.1),
    ];
    println!(
        "  {:<18} {:>6}   (% of fingerprinted domains)",
        "server", "%"
    );
    for (name, pct) in rows {
        let bar = "#".repeat((pct * 3.0) as usize);
        println!("  {name:<18} {pct:>5.1}%  {bar}");
    }
    println!();
    println!("(static data; the paper uses it to motivate postfix as the study's MTA)");
}
