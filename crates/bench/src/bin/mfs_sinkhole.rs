//! §6.3's closing measurement: MFS vs vanilla postfix mail throughput
//! under the sinkhole trace (average ~7 recipients per connection).

use spamaware_bench::{banner, scale_from_args};
use spamaware_core::experiment::mfs_sinkhole;

fn main() {
    let scale = scale_from_args();
    banner("§6.3", "MFS vs vanilla under the sinkhole trace", scale);
    let (vanilla, mfs) = mfs_sinkhole(scale);
    println!(
        "  vanilla postfix: {:>7.1} mails/s ({:.1} deliveries/s)",
        vanilla.goodput(),
        vanilla.delivery_throughput()
    );
    println!(
        "  MFS postfix:     {:>7.1} mails/s ({:.1} deliveries/s)",
        mfs.goodput(),
        mfs.delivery_throughput()
    );
    println!();
    println!(
        "  MFS gain: {:+.1}% (paper: ~+20% at ~7 recipients/connection)",
        (mfs.goodput() / vanilla.goodput() - 1.0) * 100.0
    );
}
