//! Fig. 3: daily bounce ratio and unfinished-SMTP ratio at the ECN mail
//! server over ~13 months.

use spamaware_bench::scale_from_args;
use spamaware_core::experiment::fig03;

fn main() {
    let _ = scale_from_args();
    println!("=== Fig. 3: ECN daily bounce and unfinished-SMTP ratios (395 days)");
    println!();
    let series = fig03();
    println!("  day   bounce  unfinished");
    for d in series.days.iter().step_by(14) {
        println!(
            "  {:>3}   {:>5.1}%   {:>6.1}%",
            d.day,
            d.bounce_ratio * 100.0,
            d.unfinished_ratio * 100.0
        );
    }
    println!();
    println!(
        "  means: bounce {:.1}% (paper: 20-25%, rising), unfinished {:.1}% (paper: 5-15%)",
        series.mean_bounce() * 100.0,
        series.mean_unfinished() * 100.0
    );
    println!(
        "  combined bounce connections: {:.1}% (paper: 25-45%)",
        series.mean_bounce_connections() * 100.0
    );
}
