//! §8: all three optimizations combined, on the spam and Univ workloads.

use spamaware_bench::{banner, json_path_from_args, scale_from_args, write_json};
use spamaware_core::experiment::{combined, CombinedWorkload};

fn main() {
    let scale = scale_from_args();
    banner("§8", "combined performance improvement", scale);
    let mut results = Vec::new();
    for (wl, name, paper_gain, paper_dns) in [
        (
            CombinedWorkload::Spam,
            "spam trace + ECN bounce ratio",
            40.0,
            39.0,
        ),
        (CombinedWorkload::Univ, "Univ trace", 18.0, 20.0),
    ] {
        let r = combined(scale, wl);
        results.push(r.clone());
        println!("  workload: {name}");
        println!(
            "    vanilla postfix:    {:>7.1} mails/s   ({} DNSBL queries)",
            r.vanilla.goodput(),
            r.vanilla.dns.as_ref().map_or(0, |d| d.queries_issued)
        );
        println!(
            "    spam-aware server:  {:>7.1} mails/s   ({} DNSBL queries)",
            r.spamaware.goodput(),
            r.spamaware.dns.as_ref().map_or(0, |d| d.queries_issued)
        );
        println!(
            "    throughput gain {:+.1}% (paper: +{paper_gain:.0}%), DNSBL queries cut {:.1}% (paper: -{paper_dns:.0}%)",
            r.throughput_gain() * 100.0,
            r.dns_query_reduction() * 100.0
        );
        println!();
    }
    if let Some(path) = json_path_from_args() {
        write_json(&path, &results);
    }
}
