//! Fig. 4: CDF of the number of recipients per mail in the sinkhole trace.

use spamaware_bench::{banner, scale_from_args};
use spamaware_core::experiment::fig04;

fn main() {
    let scale = scale_from_args();
    banner(
        "Fig. 4",
        "CDF of recipients per connection (sinkhole)",
        scale,
    );
    let cdf = fig04(scale);
    println!("  rcpts   CDF");
    for (r, f) in &cdf {
        println!("  {r:>5}   {:>5.3}", f);
    }
    let at4 = cdf.iter().find(|(r, _)| *r == 4).map_or(0.0, |(_, f)| *f);
    let at15 = cdf.iter().find(|(r, _)| *r == 15).map_or(1.0, |(_, f)| *f);
    println!();
    println!(
        "  mass in 5..=15 recipients: {:.0}% (paper: \"commonly between 5-15\")",
        (at15 - at4) * 100.0
    );
}
