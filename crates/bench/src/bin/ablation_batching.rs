//! Ablation: vector-send task batching in the hybrid master.
//!
//! The paper batches ~28 delegated tasks per worker socket (64 KiB buffer,
//! §5.3). This sweep shrinks the per-worker queue to show the natural
//! throttle turning into a bottleneck.

use spamaware_bench::{banner, scale_from_args};
use spamaware_core::{run, ClientModel, ServerConfig};
use spamaware_sim::Nanos;
use spamaware_trace::bounce_sweep_trace;

fn main() {
    let scale = scale_from_args();
    banner(
        "ablation",
        "worker task-queue depth (vector-send batching)",
        scale,
    );
    let trace = bounce_sweep_trace(42, 10_000, 0.2, 400);
    println!("  queue depth   goodput     max note");
    for (depth, workers) in [(1usize, 4usize), (4, 4), (28, 4), (1, 64), (28, 64)] {
        let cfg = ServerConfig {
            worker_queue_limit: depth,
            process_limit: workers,
            ..ServerConfig::hybrid()
        };
        let rep = run(
            &trace,
            cfg,
            ClientModel::Closed { concurrency: 600 },
            Nanos::from_secs(scale.seconds),
        );
        println!(
            "  {depth:>6} x{workers:<3}   {:>7.1}/s   {}",
            rep.goodput(),
            if depth == 28 {
                "(paper's 64 KiB estimate)"
            } else {
                ""
            }
        );
    }
    println!();
    println!("  deep queues let the master keep delegating while workers drain");
    println!("  RTT-bound connections; depth 1 with few workers serializes.");
}
