//! Fig. 5: CDF of time to query six DNSBL servers for the sinkhole's
//! spammer IPs.

use spamaware_bench::{banner, scale_from_args, thin_cdf};
use spamaware_core::experiment::fig05;

fn main() {
    let scale = scale_from_args();
    banner("Fig. 5", "DNSBL query latency CDFs (six servers)", scale);
    let rows = fig05(scale);
    for (name, hist) in &rows {
        println!("  {name}:");
        for (ms, f) in thin_cdf(&hist.cdf(), 8) {
            println!("    {:>8.1} ms   {:>5.3}", ms, f);
        }
        println!(
            "    fraction > 100 ms: {:.0}%",
            hist.fraction_above(100.0) * 100.0
        );
        println!();
    }
    let fracs: Vec<f64> = rows.iter().map(|(_, h)| h.fraction_above(100.0)).collect();
    let min = fracs.iter().cloned().fold(f64::MAX, f64::min);
    let max = fracs.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "  range of >100ms fractions: {:.0}%-{:.0}% (paper: 16%-50%)",
        min * 100.0,
        max * 100.0
    );
}
