//! Ablation: DNSBL cache TTL sensitivity. The paper uses 24 h because
//! "these lists are updated rather infrequently" (§7.2); this sweep shows
//! the hit-ratio cost of shorter TTLs and the diminishing returns beyond
//! a day.

use spamaware_bench::{banner, scale_from_args};
use spamaware_core::experiment::default_dnsbl;
use spamaware_dnsbl::{CacheScheme, CachingResolver};
use spamaware_sim::{det_rng, Nanos};
use spamaware_trace::SinkholeConfig;

fn main() {
    let scale = scale_from_args();
    banner("ablation", "DNSBL cache TTL sensitivity", scale);
    let sink = SinkholeConfig::scaled(scale.trace.max(0.25)).generate();
    let server = default_dnsbl(sink.blacklisted.iter().copied());
    println!("  TTL        per-IP hit   per-/25 hit   prefix advantage");
    for (label, secs) in [
        ("15 min", 900u64),
        ("1 hour", 3_600),
        ("6 hours", 21_600),
        ("24 hours", 86_400),
        ("7 days", 604_800),
    ] {
        let mut row = Vec::new();
        for scheme in [CacheScheme::PerIp, CacheScheme::PerPrefix] {
            let mut r = CachingResolver::new(scheme, Nanos::from_secs(secs));
            let mut rng = det_rng(3);
            for c in &sink.trace.connections {
                r.lookup(c.client_ip, c.arrival, &server, &mut rng);
            }
            row.push(r.stats().hit_ratio());
        }
        println!(
            "  {label:<9}  {:>8.1}%   {:>9.1}%   {:>+8.1} pp{}",
            row[0] * 100.0,
            row[1] * 100.0,
            (row[1] - row[0]) * 100.0,
            if secs == 86_400 {
                "   <- paper's setting"
            } else {
                ""
            }
        );
    }
}
