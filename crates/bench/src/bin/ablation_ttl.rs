//! Ablation: DNSBL cache TTL sensitivity. The paper uses 24 h because
//! "these lists are updated rather infrequently" (§7.2); this sweep shows
//! the hit-ratio cost of shorter TTLs and the diminishing returns beyond
//! a day.
//!
//! With `--json <path>`, writes the sweep rows as JSON and a deterministic
//! metrics snapshot (per-cell `ttl_*.{per_ip,per_prefix}.*` cache counters)
//! to `<path with .metrics extension>`.

use spamaware_bench::{
    banner, experiment_registry, json_path_from_args, scale_from_args, write_json,
    write_metrics_sidecar,
};
use spamaware_core::experiment::default_dnsbl;
use spamaware_dnsbl::{CacheScheme, CachingResolver};
use spamaware_sim::{det_rng, Nanos};
use spamaware_trace::SinkholeConfig;

#[derive(serde::Serialize)]
struct Row {
    ttl_secs: u64,
    per_ip_hit_ratio: f64,
    per_prefix_hit_ratio: f64,
}

fn main() {
    let scale = scale_from_args();
    banner("ablation", "DNSBL cache TTL sensitivity", scale);
    let sink = SinkholeConfig::scaled(scale.trace.max(0.25)).generate();
    let server = default_dnsbl(sink.blacklisted.iter().copied());
    let registry = experiment_registry();
    let mut rows = Vec::new();
    println!("  TTL        per-IP hit   per-/25 hit   prefix advantage");
    for (label, secs) in [
        ("15 min", 900u64),
        ("1 hour", 3_600),
        ("6 hours", 21_600),
        ("24 hours", 86_400),
        ("7 days", 604_800),
    ] {
        let mut row = Vec::new();
        for (scheme, tag) in [
            (CacheScheme::PerIp, "per_ip"),
            (CacheScheme::PerPrefix, "per_prefix"),
        ] {
            let mut r = CachingResolver::new(scheme, Nanos::from_secs(secs))
                .with_metrics(&registry, &format!("ttl_{secs}s.{tag}"));
            let mut rng = det_rng(3);
            for c in &sink.trace.connections {
                r.lookup(c.client_ip, c.arrival, &server, &mut rng);
            }
            row.push(r.stats().hit_ratio());
        }
        println!(
            "  {label:<9}  {:>8.1}%   {:>9.1}%   {:>+8.1} pp{}",
            row[0] * 100.0,
            row[1] * 100.0,
            (row[1] - row[0]) * 100.0,
            if secs == 86_400 {
                "   <- paper's setting"
            } else {
                ""
            }
        );
        rows.push(Row {
            ttl_secs: secs,
            per_ip_hit_ratio: row[0],
            per_prefix_hit_ratio: row[1],
        });
    }
    if let Some(path) = json_path_from_args() {
        write_json(&path, &rows);
        write_metrics_sidecar(&path, &registry);
    }
}
