//! Fig. 8: goodput vs bounce ratio for the vanilla and fork-after-trust
//! architectures.

use spamaware_bench::{banner, json_path_from_args, scale_from_args, write_json};
use spamaware_core::experiment::fig08;

fn main() {
    let scale = scale_from_args();
    banner(
        "Fig. 8",
        "goodput vs bounce ratio (Vanilla vs Hybrid)",
        scale,
    );
    let ratios = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
    println!("  bounce   Vanilla     Hybrid      ctx-switch ratio (V/H)");
    let points = fig08(scale, &ratios);
    for p in &points {
        let ctx_ratio = if p.hybrid.context_switches > 0 {
            p.vanilla.context_switches as f64 / p.hybrid.context_switches as f64
        } else {
            f64::INFINITY
        };
        println!(
            "  {:>5.2}   {:>7.1}/s   {:>7.1}/s      {:>6.2}x",
            p.bounce_ratio,
            p.vanilla.goodput(),
            p.hybrid.goodput(),
            ctx_ratio
        );
    }
    println!();
    println!("  paper: vanilla declines steadily from ~180 mails/s; hybrid stays");
    println!("  almost constant until bounce ratio 0.9; context switches cut ~2x.");
    if let Some(path) = json_path_from_args() {
        write_json(&path, &points);
    }
}
