//! A hierarchical timer wheel for the master's deadline bookkeeping.
//!
//! The readiness-driven master (DESIGN.md §15) needs one timer per
//! pre-trust connection per deadline kind (idle, whole-session), and it
//! needs the earliest deadline cheaply every loop iteration to size the
//! reactor wait. A `BTreeMap<(deadline, id)>` would do, but costs
//! `O(log n)` per reschedule on the hottest path (every byte of client
//! progress re-arms the idle timer). The wheel makes insert, cancel, and
//! per-tick advance `O(1)` amortized:
//!
//! * Resolution is one tick = 2^[`TICK_SHIFT`] ns ≈ 1.05 ms — far finer
//!   than the coarsest deadline knob (tens of seconds) and finer than the
//!   100 ms read slices it replaces.
//! * Four levels of 64 slots cover `64^4` ticks ≈ 4.9 h; deadlines past
//!   the horizon sit in an overflow list that recirculates when the
//!   outermost level wraps. Entries cascade toward level 0 as their due
//!   tick approaches.
//! * Cancellation and reschedule are lazy: the authoritative state is the
//!   `active` id → deadline map, and slot entries that no longer match it
//!   are dropped when their slot is next drained (a sweep bounds how many
//!   stale copies can pile up).
//!
//! [`TimerWheel::advance`] reports expirations sorted by `(deadline, id)`
//! — exactly the firing order of the reference `BTreeMap` model, which is
//! what the property tests in `tests/wheel_prop.rs` pin down.
//!
//! Everything here is pure data structure: no clock reads, no hash
//! containers, no I/O — the xtask determinism pass keeps it that way, so
//! the wheel behaves byte-identically under the simulated reactor.

use std::collections::BTreeMap;

/// log2 of the tick length in nanoseconds (2^20 ns ≈ 1.05 ms).
pub const TICK_SHIFT: u32 = 20;
/// Slots per level (64 ⇒ 6 bits of tick index per level).
const SLOTS: u64 = 64;
/// Bits of tick index consumed per level.
const LEVEL_BITS: u32 = 6;
/// Hierarchy depth; the wheel spans `SLOTS^LEVELS` ticks (≈ 4.9 h).
const LEVELS: usize = 4;
/// Ticks the wheel horizon covers before the overflow list takes over.
const HORIZON: u64 = SLOTS * SLOTS * SLOTS * SLOTS;
/// An `advance` jumping further than this many ticks rebuilds the wheel
/// in one `O(n)` pass instead of stepping tick by tick — virtual time in
/// the simulated reactor routinely leaps minutes at once.
const REBUILD_JUMP: u64 = SLOTS * SLOTS;

/// Hierarchical timer wheel mapping `u64` timer ids to nanosecond
/// deadlines. Scheduling an id that is already armed replaces its
/// deadline.
#[derive(Debug)]
pub struct TimerWheel {
    /// Current time, in ticks (`now_ns >> TICK_SHIFT`).
    now_tick: u64,
    /// `LEVELS * SLOTS` buckets of `(id, deadline_ns)` placements; index
    /// `level * SLOTS + slot`. Entries whose `(id, deadline)` no longer
    /// match [`TimerWheel::active`] are stale and dropped on contact.
    slots: Vec<Vec<(u64, u64)>>,
    /// Deadlines beyond the wheel horizon, recirculated on outer wrap.
    overflow: Vec<(u64, u64)>,
    /// Authoritative armed-timer state: id → deadline_ns.
    active: BTreeMap<u64, u64>,
    /// Cached earliest deadline; `None` when empty, recomputed lazily
    /// when the minimum itself was cancelled or fired.
    min_deadline: Option<u64>,
    min_dirty: bool,
    /// Stale placements accumulated by reschedules/cancels since the last
    /// sweep; bounds wheel memory at `O(active)`.
    stale: usize,
}

impl TimerWheel {
    /// An empty wheel whose "now" is `now_ns`.
    pub fn new(now_ns: u64) -> TimerWheel {
        TimerWheel {
            now_tick: now_ns >> TICK_SHIFT,
            slots: (0..(LEVELS as u64 * SLOTS)).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            active: BTreeMap::new(),
            min_deadline: None,
            min_dirty: false,
            stale: 0,
        }
    }

    /// Armed timers.
    pub fn len(&self) -> usize {
        self.active.len()
    }

    /// Whether no timer is armed.
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Arms (or re-arms) timer `id` to fire once `deadline_ns` is
    /// reached. A deadline at or before the current `advance` time fires
    /// on the next `advance` call.
    pub fn schedule(&mut self, id: u64, deadline_ns: u64) {
        match self.active.insert(id, deadline_ns) {
            Some(old) if old == deadline_ns => {
                // Same deadline re-armed: the existing placement already
                // covers it; a second copy would be indistinguishable
                // from it, so leave the wheel untouched.
                return;
            }
            Some(old) => {
                self.note_removed(old);
                self.stale += 1;
            }
            None => {}
        }
        match self.min_deadline {
            Some(m) if m <= deadline_ns => {}
            _ => self.min_deadline = Some(deadline_ns),
        }
        self.place(id, deadline_ns);
        self.maybe_sweep();
    }

    /// Disarms timer `id`; a no-op if it is not armed.
    pub fn cancel(&mut self, id: u64) {
        if let Some(old) = self.active.remove(&id) {
            self.note_removed(old);
            self.stale += 1;
            self.maybe_sweep();
        }
    }

    /// The earliest armed deadline, if any — the reactor wait is sized to
    /// `next_deadline - now`.
    pub fn next_deadline(&mut self) -> Option<u64> {
        if self.min_dirty {
            self.min_deadline = self.active.values().copied().min();
            self.min_dirty = false;
        }
        self.min_deadline
    }

    /// Moves time forward to `now_ns` and appends every timer whose
    /// deadline is `<= now_ns` to `out` as `(deadline_ns, id)`, sorted —
    /// the same global order a `BTreeMap<(deadline, id)>` reference model
    /// fires in. Fired timers are disarmed.
    pub fn advance(&mut self, now_ns: u64, out: &mut Vec<(u64, u64)>) {
        let target_tick = now_ns >> TICK_SHIFT;
        let start = out.len();
        if target_tick > self.now_tick.saturating_add(REBUILD_JUMP) {
            self.rebuild(now_ns, out);
        } else {
            while self.now_tick < target_tick {
                self.now_tick += 1;
                self.cascade(self.now_tick);
                let idx = (self.now_tick % SLOTS) as usize;
                self.drain_slot(idx, now_ns, out);
            }
            // Same-tick deadlines: entries due earlier in the current
            // tick live in the current level-0 slot.
            let idx = (self.now_tick % SLOTS) as usize;
            self.drain_slot(idx, now_ns, out);
        }
        out[start..].sort_unstable();
    }

    /// Whether `(id, deadline)` is the live placement of an armed timer.
    fn is_live(&self, id: u64, deadline_ns: u64) -> bool {
        self.active.get(&id) == Some(&deadline_ns)
    }

    fn note_removed(&mut self, deadline_ns: u64) {
        if self.min_deadline == Some(deadline_ns) {
            self.min_dirty = true;
            if self.active.is_empty() {
                self.min_deadline = None;
                self.min_dirty = false;
            }
        }
    }

    /// Buckets a live `(id, deadline)` relative to `now_tick`. A deadline
    /// already in the past is clamped to the current tick so the trailing
    /// same-tick drain in [`TimerWheel::advance`] picks it up — otherwise
    /// it would sit in a slot the tick cursor has already moved past.
    fn place(&mut self, id: u64, deadline_ns: u64) {
        let dl_tick = (deadline_ns >> TICK_SHIFT).max(self.now_tick);
        let delta = dl_tick - self.now_tick;
        let mut span = SLOTS;
        for level in 0..LEVELS {
            if delta < span {
                let slot = (dl_tick >> (LEVEL_BITS * level as u32)) % SLOTS;
                self.slots[level * SLOTS as usize + slot as usize].push((id, deadline_ns));
                return;
            }
            span *= SLOTS;
        }
        self.overflow.push((id, deadline_ns));
    }

    /// On entering `tick`, recirculates every outer bucket whose window
    /// just became current, deepest level first.
    fn cascade(&mut self, tick: u64) {
        if !tick.is_multiple_of(SLOTS) {
            return;
        }
        if tick.is_multiple_of(HORIZON) {
            let moved = std::mem::take(&mut self.overflow);
            self.replace_all(moved);
        }
        // Level 3 wraps every SLOTS^3 ticks, level 2 every SLOTS^2, level
        // 1 every SLOTS; a coarser wrap implies all finer ones.
        for level in (1..LEVELS).rev() {
            let span = SLOTS.pow(level as u32);
            if tick.is_multiple_of(span) {
                let slot = (tick >> (LEVEL_BITS * level as u32)) % SLOTS;
                let moved = std::mem::take(&mut self.slots[level * SLOTS as usize + slot as usize]);
                self.replace_all(moved);
            }
        }
    }

    fn replace_all(&mut self, moved: Vec<(u64, u64)>) {
        for (id, dl) in moved {
            if self.is_live(id, dl) {
                self.place(id, dl);
            } else {
                self.stale = self.stale.saturating_sub(1);
            }
        }
    }

    /// Drains one bucket: fires live entries that are due, re-places live
    /// entries that are not (same-tick stragglers), drops stale copies.
    fn drain_slot(&mut self, idx: usize, now_ns: u64, out: &mut Vec<(u64, u64)>) {
        if self.slots[idx].is_empty() {
            return;
        }
        let entries = std::mem::take(&mut self.slots[idx]);
        for (id, dl) in entries {
            if !self.is_live(id, dl) {
                self.stale = self.stale.saturating_sub(1);
            } else if dl <= now_ns {
                self.active.remove(&id);
                self.note_removed(dl);
                out.push((dl, id));
            } else {
                self.place(id, dl);
            }
        }
    }

    /// `O(n)` catch-up for a large time jump: drop every placement, move
    /// `now` to the target, fire what is due, re-bucket the rest.
    fn rebuild(&mut self, now_ns: u64, out: &mut Vec<(u64, u64)>) {
        let mut live: Vec<(u64, u64)> = Vec::with_capacity(self.active.len());
        for bucket in &mut self.slots {
            bucket.clear();
        }
        self.overflow.clear();
        self.stale = 0;
        self.now_tick = now_ns >> TICK_SHIFT;
        for (&id, &dl) in &self.active {
            live.push((id, dl));
        }
        for (id, dl) in live {
            if dl <= now_ns {
                self.active.remove(&id);
                self.note_removed(dl);
                out.push((dl, id));
            } else {
                self.place(id, dl);
            }
        }
    }

    /// Compacts the wheel once stale placements outnumber live ones.
    fn maybe_sweep(&mut self) {
        if self.stale <= SLOTS as usize + 4 * self.active.len() {
            return;
        }
        for idx in 0..self.slots.len() {
            let before = std::mem::take(&mut self.slots[idx]);
            self.slots[idx] = before
                .into_iter()
                .filter(|&(id, dl)| self.active.get(&id) == Some(&dl))
                .collect();
        }
        let active = &self.active;
        self.overflow
            .retain(|&(id, dl)| active.get(&id) == Some(&dl));
        self.stale = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    fn fired(wheel: &mut TimerWheel, now_ns: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        wheel.advance(now_ns, &mut out);
        out
    }

    #[test]
    fn fires_in_deadline_then_id_order() {
        let mut w = TimerWheel::new(0);
        w.schedule(7, 30 * MS);
        w.schedule(3, 10 * MS);
        w.schedule(9, 10 * MS);
        assert_eq!(w.next_deadline(), Some(10 * MS));
        assert_eq!(
            fired(&mut w, 40 * MS),
            vec![(10 * MS, 3), (10 * MS, 9), (30 * MS, 7)]
        );
        assert!(w.is_empty());
        assert_eq!(w.next_deadline(), None);
    }

    #[test]
    fn never_fires_early_and_never_loses_a_timer() {
        let mut w = TimerWheel::new(0);
        w.schedule(1, 500 * MS);
        assert!(fired(&mut w, 499 * MS).is_empty());
        assert_eq!(fired(&mut w, 500 * MS), vec![(500 * MS, 1)]);
        assert!(fired(&mut w, 10_000 * MS).is_empty());
    }

    #[test]
    fn reschedule_replaces_and_cancel_disarms() {
        let mut w = TimerWheel::new(0);
        w.schedule(1, 10 * MS);
        w.schedule(1, 200 * MS); // re-arm later: the 10 ms copy is stale
        w.schedule(2, 50 * MS);
        w.cancel(2);
        assert!(fired(&mut w, 100 * MS).is_empty());
        assert_eq!(w.next_deadline(), Some(200 * MS));
        assert_eq!(fired(&mut w, 250 * MS), vec![(200 * MS, 1)]);
    }

    #[test]
    fn reschedule_to_same_deadline_fires_once() {
        let mut w = TimerWheel::new(0);
        w.schedule(1, 10 * MS);
        w.schedule(1, 10 * MS);
        assert_eq!(fired(&mut w, 20 * MS), vec![(10 * MS, 1)]);
        assert!(fired(&mut w, 40 * MS).is_empty());
    }

    #[test]
    fn past_deadline_fires_on_next_advance() {
        let mut w = TimerWheel::new(100 * MS);
        w.schedule(1, 5 * MS);
        assert_eq!(fired(&mut w, 100 * MS), vec![(5 * MS, 1)]);
    }

    #[test]
    fn outer_level_and_overflow_deadlines_survive_the_trip_in() {
        let mut w = TimerWheel::new(0);
        let hour = 3_600_000 * MS;
        w.schedule(1, 6 * hour); // beyond the ~4.9 h horizon: overflow
        w.schedule(2, 2 * hour); // outermost in-wheel level
        w.schedule(3, 90 * MS);
        assert_eq!(fired(&mut w, 100 * MS), vec![(90 * MS, 3)]);
        assert!(fired(&mut w, hour).is_empty());
        assert_eq!(fired(&mut w, 3 * hour), vec![(2 * hour, 2)]);
        assert_eq!(fired(&mut w, 7 * hour), vec![(6 * hour, 1)]);
        assert!(w.is_empty());
    }

    #[test]
    fn dense_reschedules_stay_bounded_by_the_sweep() {
        let mut w = TimerWheel::new(0);
        for round in 0..10_000u64 {
            w.schedule(1, (round + 2) * MS);
        }
        // One live timer; the sweep kept stale copies from accumulating.
        assert_eq!(w.len(), 1);
        let placed: usize = w.slots.iter().map(Vec::len).sum::<usize>() + w.overflow.len();
        assert!(placed <= SLOTS as usize + 5, "stale pile-up: {placed}");
        assert_eq!(fired(&mut w, 20_000 * MS), vec![(10_001 * MS, 1)]);
    }
}
