//! Readiness notification behind a seam the tests can script.
//!
//! The master thread must never block on any one connection (§5 of the
//! paper), and after this module it no longer polls for the lack of one
//! either: it sleeps in [`Reactor::wait`] until the OS reports a socket
//! readable or the next [`wheel::TimerWheel`] deadline is due. Two
//! implementations share the trait:
//!
//! * [`os::OsReactor`] — epoll via the vendored `rawpoll` bindings, plus
//!   a self-pipe waker so drain/shutdown interrupt an idle wait;
//! * [`sim::SimReactor`] — scripted readiness events on a
//!   [`spamaware_metrics::ManualClock`], so the whole pre-trust event
//!   loop (timeouts, drain, shed, slowloris eviction) runs
//!   byte-identically in unit tests with zero real sockets or sleeps.
//!
//! The trait keys registrations on an opaque `poll_id` ([`Pollable`])
//! rather than a raw fd, which is what lets simulated connections stand
//! in for sockets without a fake-fd table.

pub mod os;
pub mod sim;
pub mod wheel;

use std::io;

/// Something a [`Reactor`] can watch for readability.
pub trait Pollable {
    /// Stable identity registrations are keyed on: the raw fd for real
    /// sockets, a script-assigned id for simulated ones.
    fn poll_id(&self) -> u64;
}

impl Pollable for std::net::TcpStream {
    fn poll_id(&self) -> u64 {
        use std::os::fd::AsRawFd;
        self.as_raw_fd() as u64
    }
}

impl Pollable for std::net::TcpListener {
    fn poll_id(&self) -> u64 {
        use std::os::fd::AsRawFd;
        self.as_raw_fd() as u64
    }
}

/// One readiness report out of [`Reactor::wait`].
///
/// Hangups and pending errors are folded into `readable` (a read will
/// surface them), so the engine's read path stays one arm; `writable`
/// only fires for ids whose write interest is currently armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadyEvent {
    /// The token the id was registered under.
    pub token: u64,
    /// Readable, at EOF, or carrying a pending error.
    pub readable: bool,
    /// Writable (reported only while write interest is armed).
    pub writable: bool,
}

/// Readiness notification: level-triggered readability, opt-in per-id
/// write interest, plus a bounded wait. The reactor wait is the single
/// sanctioned blocking call on the master thread (DESIGN.md §15); the
/// xtask blocking pass whitelists it by name and keeps everything else
/// banned.
pub trait Reactor {
    /// Starts watching `poll_id` for readability under `token` (write
    /// interest starts disarmed).
    ///
    /// # Errors
    ///
    /// Fails if the OS rejects the registration (e.g. `epoll_ctl`); the
    /// caller must close the connection rather than serve it unwatched.
    fn register(&mut self, poll_id: u64, token: u64) -> io::Result<()>;

    /// Stops watching `poll_id`. Must be called before a socket is handed
    /// to another thread, or the master keeps seeing its readiness.
    ///
    /// # Errors
    ///
    /// Fails if the OS rejects the removal; safe to ignore for a socket
    /// that is about to be closed.
    fn deregister(&mut self, poll_id: u64) -> io::Result<()>;

    /// Arms (`on`) or disarms write-readiness reporting for `poll_id`.
    /// Level-triggered: while armed, an id with socket-buffer room is
    /// reported writable on every wait, so interest must be armed only
    /// while output is actually queued (DESIGN.md §15.4).
    ///
    /// # Errors
    ///
    /// Fails if the OS rejects the re-registration; the caller should
    /// evict the connection (its queued output can never flush).
    fn set_write_interest(&mut self, poll_id: u64, on: bool) -> io::Result<()>;

    /// Blocks until at least one watched id is ready, the timeout
    /// elapses, or a waker fires; appends the ready events to `out`
    /// (possibly none — timer expiry and wakes return empty). `None`
    /// means wait indefinitely.
    ///
    /// # Errors
    ///
    /// Fails only if the underlying readiness syscall does.
    fn wait(&mut self, timeout_ns: Option<u64>, out: &mut Vec<ReadyEvent>) -> io::Result<()>;
}
