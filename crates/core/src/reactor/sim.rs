//! Scripted readiness on virtual time: the deterministic [`Reactor`].
//!
//! A [`SimReactor`] replays a pre-written schedule of network events —
//! connects, byte deliveries, peer EOFs, write-window grants, drain/stop
//! control flips — against a [`ManualClock`]. [`Reactor::wait`] never
//! sleeps: it either reports readiness that is already pending
//! (level-triggered, like epoll), or jumps the clock forward to the next
//! scripted event or the caller's timer deadline, whichever is sooner.
//! Driven this way, the pre-trust engine in [`crate::pretrust`] runs its
//! full behavior — timeouts, drain, shed, slowloris eviction, write
//! backpressure — byte-identically on every run, with zero real sockets
//! or sleeps.
//!
//! [`SimAcceptor`] and [`SimConn`] are the transport doubles; all three
//! share one scripted-network state, so a test builds a reactor, takes
//! its acceptor, runs the engine, and then inspects per-connection
//! output bytes, open/closed state, and the reactor's event log.
//!
//! Write backpressure is scripted through per-connection **windows**: a
//! connection starts with an unlimited window (every write is accepted
//! whole, like a healthy peer with an empty socket buffer), and a
//! [`SimEvent::Window`] grant switches it to a byte budget — writes
//! consume the budget, a zero budget returns `WouldBlock` (the scripted
//! zero-window stall), and later grants model the peer draining its
//! receive buffer.
//!
//! This file is in the xtask determinism scope: no wall-clock reads and
//! no hash-ordered iteration are allowed here.

use super::{Pollable, Reactor, ReadyEvent};
use crate::pretrust::{Acceptor, Conn};
use parking_lot::Mutex;
use spamaware_metrics::{Clock, ManualClock};
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, ErrorKind};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The `poll_id` of the simulated acceptor (connection ids are small
/// integers chosen by the script, so the top of the space is free).
pub const SIM_ACCEPTOR_ID: u64 = u64::MAX;

/// One scripted network event.
#[derive(Debug, Clone)]
pub enum SimEvent {
    /// A client finishes its TCP handshake.
    Connect {
        /// Script-chosen connection id (the `poll_id` of its [`SimConn`]).
        conn: u64,
        /// The peer address the acceptor reports.
        peer: SocketAddr,
    },
    /// Bytes arrive from the client.
    Data {
        /// Target connection id.
        conn: u64,
        /// Payload appended to the connection's input.
        bytes: Vec<u8>,
    },
    /// The client half-closes; reads drain the buffer then return EOF.
    Eof {
        /// Target connection id.
        conn: u64,
    },
    /// The peer grants `bytes` of write budget (its kernel acked that
    /// much of our output). The first grant switches the connection from
    /// the default unlimited window to scripted flow control — grant `0`
    /// at connect time to model a peer that stalls from the first byte.
    Window {
        /// Target connection id.
        conn: u64,
        /// Additional bytes the connection will accept.
        bytes: usize,
    },
    /// The operator requests a graceful drain.
    Drain,
    /// The operator stops the server; the engine exits at this wakeup.
    Stop,
}

/// A simulated client connection's kernel-side state.
#[derive(Debug, Default)]
struct ConnState {
    input: VecDeque<u8>,
    eof: bool,
    output: Vec<u8>,
    open: bool,
    /// Remaining write budget: `None` (default) accepts everything,
    /// `Some(n)` accepts up to `n` bytes and then `WouldBlock`s.
    window: Option<usize>,
}

impl ConnState {
    /// Whether a write of at least one byte would currently succeed.
    fn writable(&self) -> bool {
        self.window.is_none_or(|w| w > 0)
    }
}

/// The scripted network: pending handshakes plus per-connection buffers.
#[derive(Debug, Default)]
struct NetState {
    pending: VecDeque<(u64, SocketAddr)>,
    conns: BTreeMap<u64, ConnState>,
}

/// The engine-side handle to one scripted connection.
#[derive(Debug)]
pub struct SimConn {
    id: u64,
    net: Arc<Mutex<NetState>>,
}

impl Pollable for SimConn {
    fn poll_id(&self) -> u64 {
        self.id
    }
}

impl Conn for SimConn {
    fn read_ready(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut net = self.net.lock();
        let Some(st) = net.conns.get_mut(&self.id) else {
            return Ok(0);
        };
        if st.input.is_empty() {
            if st.eof {
                return Ok(0);
            }
            return Err(io::Error::from(ErrorKind::WouldBlock));
        }
        let n = st.input.len().min(buf.len());
        for slot in buf.iter_mut().take(n) {
            // The VecDeque is non-empty for each of the first `n` pops.
            *slot = st.input.pop_front().unwrap_or(0);
        }
        Ok(n)
    }

    fn write_ready(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut net = self.net.lock();
        let Some(st) = net.conns.get_mut(&self.id) else {
            // Scripted teardown already forgot the connection: swallow the
            // bytes like a closed socket's last write racing the RST.
            return Ok(buf.len());
        };
        match st.window {
            None => {
                st.output.extend_from_slice(buf);
                Ok(buf.len())
            }
            Some(0) => Err(io::Error::from(ErrorKind::WouldBlock)),
            Some(w) => {
                let n = w.min(buf.len());
                st.output.extend_from_slice(&buf[..n]);
                st.window = Some(w - n);
                Ok(n)
            }
        }
    }
}

impl Drop for SimConn {
    fn drop(&mut self) {
        // The engine closing the socket, observable to the test as
        // `!conn_open(id)`.
        let mut net = self.net.lock();
        if let Some(st) = net.conns.get_mut(&self.id) {
            st.open = false;
        }
    }
}

/// The engine-side handle to the scripted listening socket.
#[derive(Debug)]
pub struct SimAcceptor {
    net: Arc<Mutex<NetState>>,
}

impl Pollable for SimAcceptor {
    fn poll_id(&self) -> u64 {
        SIM_ACCEPTOR_ID
    }
}

impl Acceptor for SimAcceptor {
    type Conn = SimConn;

    fn try_accept(&mut self) -> io::Result<Option<(SimConn, SocketAddr)>> {
        let mut net = self.net.lock();
        let Some((id, peer)) = net.pending.pop_front() else {
            return Ok(None);
        };
        if let Some(st) = net.conns.get_mut(&id) {
            st.open = true;
        }
        Ok(Some((
            SimConn {
                id,
                net: Arc::clone(&self.net),
            },
            peer,
        )))
    }
}

/// Deterministic reactor replaying a [`SimEvent`] schedule on virtual
/// time.
#[derive(Debug)]
pub struct SimReactor {
    clock: ManualClock,
    /// Remaining script, sorted by time (stable, so same-time events keep
    /// their authoring order).
    script: VecDeque<(u64, SimEvent)>,
    net: Arc<Mutex<NetState>>,
    /// `poll_id → (token, write interest armed)`.
    registered: BTreeMap<u64, (u64, bool)>,
    stop: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    log: Vec<String>,
}

impl SimReactor {
    /// Builds a reactor over `clock` that will replay `script` (sorted by
    /// event time here; same-time order is preserved) and flip the given
    /// `stop`/`draining` flags when control events fire. When the script
    /// runs out while the engine would wait forever, the reactor sets
    /// `stop` itself so simulations always terminate.
    pub fn new(
        clock: &ManualClock,
        stop: &Arc<AtomicBool>,
        draining: &Arc<AtomicBool>,
        mut script: Vec<(u64, SimEvent)>,
    ) -> SimReactor {
        script.sort_by_key(|&(at, _)| at);
        SimReactor {
            clock: clock.clone(),
            script: script.into(),
            net: Arc::new(Mutex::new(NetState::default())),
            registered: BTreeMap::new(),
            stop: Arc::clone(stop),
            draining: Arc::clone(draining),
            log: Vec::new(),
        }
    }

    /// The acceptor double sharing this reactor's scripted network.
    pub fn acceptor(&self) -> SimAcceptor {
        SimAcceptor {
            net: Arc::clone(&self.net),
        }
    }

    /// The deterministic event log: one line per delivered event,
    /// readiness report, interest change, and timer wakeup. Two identical
    /// runs produce byte-identical logs.
    pub fn log(&self) -> &[String] {
        &self.log
    }

    /// Everything the server wrote to connection `conn` so far.
    pub fn output(&self, conn: u64) -> Vec<u8> {
        self.net
            .lock()
            .conns
            .get(&conn)
            .map(|st| st.output.clone())
            .unwrap_or_default()
    }

    /// Whether the engine still holds connection `conn` open (false
    /// before accept and after the engine dropped it).
    pub fn conn_open(&self, conn: u64) -> bool {
        self.net
            .lock()
            .conns
            .get(&conn)
            .map(|st| st.open)
            .unwrap_or(false)
    }

    /// Bytes the client sent that the engine never consumed.
    pub fn unread_input(&self, conn: u64) -> usize {
        self.net
            .lock()
            .conns
            .get(&conn)
            .map(|st| st.input.len())
            .unwrap_or(0)
    }

    /// Remaining scripted write budget for `conn` (`None` = unlimited).
    pub fn window_left(&self, conn: u64) -> Option<usize> {
        self.net.lock().conns.get(&conn).and_then(|st| st.window)
    }

    /// Applies one scripted event to the network/control state.
    fn apply(&mut self, at: u64, ev: SimEvent) {
        match ev {
            SimEvent::Connect { conn, peer } => {
                {
                    let mut net = self.net.lock();
                    net.conns.entry(conn).or_default();
                    net.pending.push_back((conn, peer));
                }
                self.log.push(format!("t={at} connect conn={conn}"));
            }
            SimEvent::Data { conn, bytes } => {
                {
                    let mut net = self.net.lock();
                    let st = net.conns.entry(conn).or_default();
                    st.input.extend(bytes.iter().copied());
                }
                self.log
                    .push(format!("t={at} data conn={conn} len={}", bytes.len()));
            }
            SimEvent::Eof { conn } => {
                {
                    let mut net = self.net.lock();
                    net.conns.entry(conn).or_default().eof = true;
                }
                self.log.push(format!("t={at} eof conn={conn}"));
            }
            SimEvent::Window { conn, bytes } => {
                {
                    let mut net = self.net.lock();
                    let st = net.conns.entry(conn).or_default();
                    st.window = Some(st.window.unwrap_or(0).saturating_add(bytes));
                }
                self.log
                    .push(format!("t={at} window conn={conn} bytes={bytes}"));
            }
            SimEvent::Drain => {
                self.draining.store(true, Ordering::SeqCst);
                self.log.push(format!("t={at} drain"));
            }
            SimEvent::Stop => {
                self.stop.store(true, Ordering::SeqCst);
                self.log.push(format!("t={at} stop"));
            }
        }
    }

    /// Ready events under level-triggered semantics: the acceptor while a
    /// handshake is pending, a connection while it has unread input or a
    /// pending EOF (readable) or an armed write interest with window room
    /// (writable). Order follows registration ids, deterministically.
    fn collect_ready(&self, out: &mut Vec<ReadyEvent>) {
        let net = self.net.lock();
        for (&poll_id, &(token, write_armed)) in &self.registered {
            if poll_id == SIM_ACCEPTOR_ID {
                if !net.pending.is_empty() {
                    out.push(ReadyEvent {
                        token,
                        readable: true,
                        writable: false,
                    });
                }
            } else if let Some(st) = net.conns.get(&poll_id) {
                let readable = !st.input.is_empty() || st.eof;
                let writable = write_armed && st.writable();
                if readable || writable {
                    out.push(ReadyEvent {
                        token,
                        readable,
                        writable,
                    });
                }
            }
        }
    }

    /// Compact, stable rendering of a readiness batch for the log.
    fn render_ready(out: &[ReadyEvent]) -> String {
        let items: Vec<String> = out
            .iter()
            .map(|ev| {
                let mut s = ev.token.to_string();
                if ev.readable {
                    s.push('r');
                }
                if ev.writable {
                    s.push('w');
                }
                s
            })
            .collect();
        format!("[{}]", items.join(", "))
    }
}

impl Reactor for SimReactor {
    fn register(&mut self, poll_id: u64, token: u64) -> io::Result<()> {
        self.registered.insert(poll_id, (token, false));
        self.log
            .push(format!("watch id={poll_id:#x} token={token}"));
        Ok(())
    }

    fn deregister(&mut self, poll_id: u64) -> io::Result<()> {
        self.registered.remove(&poll_id);
        self.log.push(format!("unwatch id={poll_id:#x}"));
        Ok(())
    }

    fn set_write_interest(&mut self, poll_id: u64, on: bool) -> io::Result<()> {
        let Some(&(token, armed)) = self.registered.get(&poll_id) else {
            return Err(io::Error::from(ErrorKind::NotFound));
        };
        if armed != on {
            self.registered.insert(poll_id, (token, on));
            let state = if on { "arm" } else { "disarm" };
            self.log.push(format!("{state}-write id={poll_id:#x}"));
        }
        Ok(())
    }

    fn wait(&mut self, timeout_ns: Option<u64>, out: &mut Vec<ReadyEvent>) -> io::Result<()> {
        // Level-triggered: readiness the engine has not yet consumed
        // returns immediately, without advancing time.
        self.collect_ready(out);
        let now = self.clock.now_nanos();
        if !out.is_empty() {
            self.log
                .push(format!("t={now} ready {}", Self::render_ready(out)));
            return Ok(());
        }
        let due = timeout_ns.map(|t| now.saturating_add(t));
        let next_event = self.script.front().map(|&(at, _)| at);
        match next_event {
            Some(at) if due.is_none_or(|d| at <= d) => {
                // Jump to the next scripted instant and deliver every
                // event at it (a burst arrives atomically, like one
                // epoll_wait batch).
                self.clock.set(at.max(now));
                while let Some(&(t, _)) = self.script.front() {
                    if t > at {
                        break;
                    }
                    if let Some((t, ev)) = self.script.pop_front() {
                        self.apply(t, ev);
                    }
                }
                self.collect_ready(out);
                self.log.push(format!(
                    "t={} ready {}",
                    self.clock.now_nanos(),
                    Self::render_ready(out)
                ));
                Ok(())
            }
            _ => match due {
                Some(d) => {
                    // Nothing scripted before the caller's deadline: this
                    // wakeup is a timer expiry.
                    self.clock.set(d.max(now));
                    self.log.push(format!("t={d} timer"));
                    Ok(())
                }
                None => {
                    // Script exhausted and the engine would wait forever:
                    // end the simulation instead of hanging the test.
                    self.stop.store(true, Ordering::SeqCst);
                    self.log.push(format!("t={now} script-exhausted"));
                    Ok(())
                }
            },
        }
    }
}
