//! The production [`Reactor`]: epoll plus a self-pipe waker.

use super::{Reactor, ReadyEvent};
use std::collections::BTreeMap;
use std::io;
use std::os::fd::RawFd;

/// Token reserved for the waker pipe inside the reactor; never surfaced
/// to callers, so the engine's token space is unconstrained apart from
/// this one value.
const WAKE_TOKEN: u64 = u64::MAX;

/// Readiness notification over epoll (level-triggered; read interest
/// always, write interest per-fd while armed).
///
/// The embedded wake pipe lets other threads interrupt a blocked
/// [`Reactor::wait`]: [`OsReactor::waker`] hands out cloneable handles,
/// and a wake shows up as a spurious empty return — callers re-check
/// their stop/drain flags every iteration anyway.
pub struct OsReactor {
    poller: rawpoll::Poller,
    wake: rawpoll::WakePipe,
    /// Reusable kernel-event scratch buffer.
    events: Vec<rawpoll::Ready>,
    /// Registration bookkeeping: `poll_id → (token, write armed)`, needed
    /// because `EPOLL_CTL_MOD` replaces the whole interest set, so the
    /// token must be replayed on every interest flip.
    watched: BTreeMap<u64, (u64, bool)>,
}

impl OsReactor {
    /// Creates the epoll instance and its waker pipe.
    ///
    /// # Errors
    ///
    /// Fails if `epoll_create1` or `pipe2` do.
    pub fn new() -> io::Result<OsReactor> {
        let poller = rawpoll::Poller::new()?;
        let wake = rawpoll::WakePipe::new()?;
        poller.add(wake.read_fd(), WAKE_TOKEN)?;
        Ok(OsReactor {
            poller,
            wake,
            events: Vec::new(),
            watched: BTreeMap::new(),
        })
    }

    /// A cloneable handle that interrupts a blocked [`Reactor::wait`].
    pub fn waker(&self) -> rawpoll::WakePipe {
        self.wake.clone()
    }
}

impl Reactor for OsReactor {
    fn register(&mut self, poll_id: u64, token: u64) -> io::Result<()> {
        self.poller.add(poll_id as RawFd, token)?;
        self.watched.insert(poll_id, (token, false));
        Ok(())
    }

    fn deregister(&mut self, poll_id: u64) -> io::Result<()> {
        self.watched.remove(&poll_id);
        self.poller.del(poll_id as RawFd)
    }

    fn set_write_interest(&mut self, poll_id: u64, on: bool) -> io::Result<()> {
        let Some(&(token, armed)) = self.watched.get(&poll_id) else {
            return Err(io::Error::from(io::ErrorKind::NotFound));
        };
        if armed == on {
            // Idempotent: spare the epoll_ctl syscall.
            return Ok(());
        }
        self.poller.modify(poll_id as RawFd, token, on)?;
        self.watched.insert(poll_id, (token, on));
        Ok(())
    }

    fn wait(&mut self, timeout_ns: Option<u64>, out: &mut Vec<ReadyEvent>) -> io::Result<()> {
        let timeout_ms = match timeout_ns {
            // Timer already due: poll without sleeping.
            Some(0) => Some(0),
            Some(ns) => rawpoll::ns_to_timeout_ms(ns),
            None => None,
        };
        self.events.clear();
        self.poller.wait(timeout_ms, &mut self.events)?;
        for ev in &self.events {
            if ev.token == WAKE_TOKEN {
                // Swallow the wake bytes; the caller notices whatever
                // state change prompted the wake via its own flags.
                self.wake.drain();
            } else {
                out.push(ReadyEvent {
                    token: ev.token,
                    // A hangup or pending error surfaces through the next
                    // read, so it counts as readability for the engine.
                    readable: ev.readable || ev.hangup,
                    writable: ev.writable,
                });
            }
        }
        Ok(())
    }
}
