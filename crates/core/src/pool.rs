//! Hot-path buffer reuse for the live server.
//!
//! Every delegated connection used to allocate fresh line buffers and a
//! fresh DATA body `Vec` per transaction; under sustained load that is
//! pure allocator churn on the paper's common case. [`BufferPool`] keeps a
//! bounded free list of cleared `Vec<u8>`s: `take` hands out a recycled
//! buffer when one is available (counted as `live.pool_reuse`) and
//! allocates otherwise (`live.pool_miss`). Debug builds additionally track
//! `live.alloc_bytes` — capacity allocated fresh on the hot path — so an
//! allocation regression shows up in the metrics report instead of a
//! profiler.

use parking_lot::Mutex;
use spamaware_metrics::{Counter, Registry};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A bounded free list of reusable byte buffers.
#[derive(Debug)]
pub struct BufferPool {
    free: Mutex<Vec<Vec<u8>>>,
    /// Free-list bound: buffers returned beyond this are dropped.
    max_pooled: usize,
    /// Capacity pre-reserved for buffers allocated on a miss.
    default_capacity: usize,
    /// Returned buffers that grew beyond this are dropped rather than
    /// pooled, so one pathological DATA body can't pin memory forever.
    max_capacity: usize,
    reuse: Arc<Counter>,
    miss: Arc<Counter>,
    #[cfg(debug_assertions)]
    alloc_bytes: Arc<Counter>,
}

impl BufferPool {
    /// Creates a pool holding at most `max_pooled` buffers of
    /// `default_capacity` bytes each (initially empty — buffers enter the
    /// pool as they are returned).
    pub fn new(registry: &Registry, max_pooled: usize, default_capacity: usize) -> BufferPool {
        BufferPool {
            free: Mutex::new(Vec::with_capacity(max_pooled)),
            max_pooled,
            default_capacity,
            max_capacity: default_capacity.saturating_mul(64).max(1 << 20),
            reuse: registry.counter("live.pool_reuse"),
            miss: registry.counter("live.pool_miss"),
            #[cfg(debug_assertions)]
            alloc_bytes: registry.counter("live.alloc_bytes"),
        }
    }

    /// Takes a cleared buffer — recycled if available, freshly allocated
    /// otherwise — wrapped in a guard that returns it on drop.
    pub(crate) fn take(self: &Arc<BufferPool>) -> PooledBuf {
        PooledBuf {
            buf: self.take_vec(),
            pool: Arc::clone(self),
        }
    }

    /// Takes a cleared buffer as a bare `Vec` (for handing ownership to
    /// code that outlives any guard scope, e.g. a session's body capture).
    /// Pair with [`BufferPool::put`].
    pub fn take_vec(&self) -> Vec<u8> {
        if let Some(buf) = self.free.lock().pop() {
            self.reuse.inc();
            return buf;
        }
        self.miss.inc();
        #[cfg(debug_assertions)]
        self.alloc_bytes.add(self.default_capacity as u64);
        Vec::with_capacity(self.default_capacity)
    }

    /// Returns a buffer to the pool: cleared, and dropped instead of
    /// pooled when it never allocated, outgrew [`BufferPool::max_capacity`],
    /// or the free list is full.
    pub fn put(&self, mut buf: Vec<u8>) {
        if buf.capacity() == 0 || buf.capacity() > self.max_capacity {
            return;
        }
        buf.clear();
        let mut free = self.free.lock();
        if free.len() < self.max_pooled {
            free.push(buf);
        }
    }
}

/// A pooled buffer that returns itself to its pool on drop.
#[derive(Debug)]
pub(crate) struct PooledBuf {
    buf: Vec<u8>,
    pool: Arc<BufferPool>,
}

impl Deref for PooledBuf {
    type Target = Vec<u8>;

    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        self.pool.put(std::mem::take(&mut self.buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(max: usize, cap: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool::new(&Registry::with_wall_clock(), max, cap))
    }

    #[test]
    fn take_allocates_then_reuses() {
        let p = pool(4, 128);
        let mut a = p.take();
        a.extend_from_slice(b"dirty");
        assert_eq!(p.miss.get(), 1);
        drop(a); // returns to pool
        let b = p.take();
        assert_eq!(p.reuse.get(), 1, "second take recycles");
        assert!(b.is_empty(), "returned buffer was cleared");
        assert!(b.capacity() >= 128);
    }

    #[test]
    fn free_list_is_bounded() {
        let p = pool(1, 64);
        let a = p.take_vec();
        let b = p.take_vec();
        p.put(a);
        p.put(b); // beyond max_pooled: dropped
        assert_eq!(p.free.lock().len(), 1);
    }

    #[test]
    fn oversized_and_unallocated_buffers_are_dropped() {
        let p = pool(4, 16);
        p.put(Vec::new()); // never allocated
        p.put(Vec::with_capacity(64 << 20)); // pathological growth
        assert_eq!(p.free.lock().len(), 0);
    }

    #[test]
    fn explicit_take_vec_put_roundtrip() {
        let p = pool(2, 32);
        let mut v = p.take_vec();
        v.extend_from_slice(b"body");
        p.put(v);
        assert_eq!(p.take_vec().len(), 0);
        assert_eq!(p.reuse.get(), 1);
    }
}
