//! Experiment runners: one function per paper table/figure.
//!
//! Each runner returns typed rows; the benchmark binaries in
//! `spamaware-bench` print them in the paper's format, and integration
//! tests pin the qualitative shapes. Every runner accepts a [`Scale`] so
//! tests can run in seconds while `--full` regenerations use paper-sized
//! inputs.

use crate::combined_workload;
use spamaware_dnsbl::{
    paper_servers, BlacklistDb, CacheScheme, CachingResolver, DnsblServer, LatencyModel,
};
use spamaware_mfs::{DiskProfile, Layout};
use spamaware_netaddr::Ipv4;
use spamaware_server::{run, ClientModel, DnsConfig, RunReport, ServerConfig};
use spamaware_sim::metrics::Histogram;
use spamaware_sim::{det_rng, Nanos};
use spamaware_trace::{
    bounce_sweep_trace, mfs_sequence_trace, EcnSeries, SinkholeConfig, SinkholeTrace, Trace,
    TraceStats, UnivConfig, UnivTrace,
};

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Trace scale factor in `(0, 1]` relative to the paper's trace sizes.
    pub trace: f64,
    /// Virtual seconds simulated per measured point (paper: 300 s runs).
    pub seconds: u64,
}

impl Scale {
    /// Fast settings for tests (~1% traces, 20 s points).
    pub fn quick() -> Scale {
        Scale {
            trace: 0.05,
            seconds: 20,
        }
    }

    /// Paper-sized settings (full traces, 5-minute points).
    pub fn full() -> Scale {
        Scale {
            trace: 1.0,
            seconds: 300,
        }
    }

    fn horizon(&self) -> Nanos {
        Nanos::from_secs(self.seconds)
    }
}

/// The paper's default DNSBL server over a blacklist, with the median
/// latency model of the Fig. 5 population.
pub fn default_dnsbl(blacklist: impl IntoIterator<Item = Ipv4>) -> DnsblServer {
    DnsblServer::new(
        "bl.spamaware.test",
        blacklist.into_iter().collect::<BlacklistDb>(),
        LatencyModel::new(55.0, 0.9, 0.06),
    )
}

const DAY: Nanos = Nanos::from_secs(86_400);

// ---------------------------------------------------------------- Table 1

/// Table 1: statistics of the two generated traces.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Table1 {
    /// Sinkhole trace statistics.
    pub sinkhole: TraceStats,
    /// Univ trace statistics.
    pub univ: TraceStats,
}

/// Regenerates Table 1.
pub fn table1(scale: Scale) -> Table1 {
    let sink = SinkholeConfig::scaled(scale.trace).generate();
    let univ = UnivConfig {
        bounce_fraction: 0.0,
        unfinished_fraction: 0.0,
        ..UnivConfig::scaled(scale.trace)
    }
    .generate();
    Table1 {
        sinkhole: TraceStats::of(&sink.trace),
        univ: TraceStats::of(&univ.trace),
    }
}

// ---------------------------------------------------------------- Fig. 3

/// Regenerates the Fig. 3 daily ECN bounce series (395 days).
pub fn fig03() -> EcnSeries {
    EcnSeries::generate(0xEC, 395)
}

// ---------------------------------------------------------------- Fig. 4

/// Fig. 4: CDF of recipients per connection in the sinkhole trace.
pub fn fig04(scale: Scale) -> Vec<(u32, f64)> {
    let sink = SinkholeConfig::scaled(scale.trace).generate();
    let mut counts = [0u64; 32];
    let mut total = 0u64;
    for c in &sink.trace.connections {
        for m in c.mails() {
            let r = (m.valid_rcpts.len()).min(31);
            counts[r] += 1;
            total += 1;
        }
    }
    let mut cdf = Vec::new();
    let mut acc = 0u64;
    for (r, n) in counts.iter().enumerate().skip(1) {
        acc += n;
        cdf.push((r as u32, acc as f64 / total as f64));
        if acc == total {
            break;
        }
    }
    cdf
}

// ---------------------------------------------------------------- Fig. 5

/// Fig. 5: per-DNSBL cold-query latency CDFs over the sinkhole's unique
/// spammer IPs.
pub fn fig05(scale: Scale) -> Vec<(&'static str, Histogram)> {
    let sink = SinkholeConfig::scaled(scale.trace).generate();
    let ips: std::collections::HashSet<Ipv4> =
        sink.trace.connections.iter().map(|c| c.client_ip).collect();
    let mut rng = det_rng(5);
    paper_servers()
        .into_iter()
        .map(|(name, model)| {
            let mut h = Histogram::for_latency_ms();
            for _ in &ips {
                h.record_nanos_as_ms(model.sample(&mut rng));
            }
            (name, h)
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 8

/// One Fig. 8 sweep point.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Fig8Point {
    /// Bounce ratio of the offered workload.
    pub bounce_ratio: f64,
    /// Vanilla-architecture run.
    pub vanilla: RunReport,
    /// Hybrid-architecture run.
    pub hybrid: RunReport,
}

/// Fig. 8: goodput vs bounce ratio for both architectures (closed-system
/// client, synthetic Univ-size trace).
pub fn fig08(scale: Scale, ratios: &[f64]) -> Vec<Fig8Point> {
    let conns = ((20_000.0 * scale.trace * 20.0) as usize).clamp(2_000, 40_000);
    ratios
        .iter()
        .map(|&b| {
            let trace = bounce_sweep_trace(42, conns, b, 400);
            let client = ClientModel::Closed { concurrency: 600 };
            let vanilla = run(&trace, ServerConfig::vanilla(), client, scale.horizon());
            let hybrid = run(&trace, ServerConfig::hybrid(), client, scale.horizon());
            Fig8Point {
                bounce_ratio: b,
                vanilla,
                hybrid,
            }
        })
        .collect()
}

// ---------------------------------------------------------- Figs. 10 / 11

/// One Figs. 10/11 sweep point: deliveries/sec per layout at a recipient
/// count.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Fig10Point {
    /// Recipients per connection.
    pub rcpts: u8,
    /// `(layout, mails written per second)` in the paper's legend order.
    pub throughput: Vec<(Layout, f64)>,
}

/// Figs. 10 (Ext3) / 11 (Reiser): mail-write throughput of the four
/// storage layouts vs recipients per connection.
pub fn fig10_11(scale: Scale, profile: DiskProfile, rcpt_counts: &[u8]) -> Vec<Fig10Point> {
    rcpt_counts
        .iter()
        .map(|&r| {
            let trace = mfs_sequence_trace(7, 2_000, r, 15);
            let throughput = Layout::ALL
                .iter()
                .map(|&layout| {
                    let cfg = ServerConfig {
                        layout,
                        disk: profile,
                        ..ServerConfig::vanilla()
                    };
                    let rep = run(
                        &trace,
                        cfg,
                        ClientModel::Closed { concurrency: 600 },
                        scale.horizon(),
                    );
                    (layout, rep.delivery_throughput())
                })
                .collect();
            Fig10Point {
                rcpts: r,
                throughput,
            }
        })
        .collect()
}

/// §6.3's final measurement: MFS vs vanilla postfix mail throughput under
/// the sinkhole trace (paper: ≈ +20% at ~7 recipients/connection).
pub fn mfs_sinkhole(scale: Scale) -> (RunReport, RunReport) {
    let sink = SinkholeConfig::scaled(scale.trace).generate();
    let client = ClientModel::Closed { concurrency: 600 };
    let vanilla = run(
        &sink.trace,
        ServerConfig::vanilla(),
        client,
        scale.horizon(),
    );
    let mfs = run(
        &sink.trace,
        ServerConfig {
            layout: Layout::Mfs,
            ..ServerConfig::vanilla()
        },
        client,
        scale.horizon(),
    );
    (vanilla, mfs)
}

// ---------------------------------------------------------------- Fig. 12

/// Fig. 12: CDF of blacklisted IPs per /24 prefix.
pub fn fig12(scale: Scale) -> Vec<(u32, f64)> {
    let sink = SinkholeConfig::scaled(scale.trace).generate();
    let mut counts: Vec<u32> = sink.per_prefix_listed.iter().map(|(_, c)| *c).collect();
    counts.sort_unstable();
    let n = counts.len() as f64;
    let mut cdf = Vec::new();
    for x in 1..=254u32 {
        let below = counts.partition_point(|&c| c <= x);
        cdf.push((x, below as f64 / n));
        if below == counts.len() {
            break;
        }
    }
    cdf
}

// ---------------------------------------------------------------- Fig. 13

/// Fig. 13: interarrival-time CDFs for same-IP and same-/24 spam.
pub fn fig13(scale: Scale) -> (Histogram, Histogram) {
    let sink = SinkholeConfig::scaled(scale.trace).generate();
    let mut per_ip: std::collections::HashMap<Ipv4, Nanos> = std::collections::HashMap::new();
    let mut per_prefix: std::collections::HashMap<_, Nanos> = std::collections::HashMap::new();
    // Seconds-scale histogram.
    let mut ip_hist = Histogram::new(1.0, 1.1);
    let mut prefix_hist = Histogram::new(1.0, 1.1);
    for c in &sink.trace.connections {
        if let Some(prev) = per_ip.insert(c.client_ip, c.arrival) {
            ip_hist.record((c.arrival - prev).as_secs_f64());
        }
        if let Some(prev) = per_prefix.insert(c.client_ip.prefix24(), c.arrival) {
            prefix_hist.record((c.arrival - prev).as_secs_f64());
        }
    }
    (ip_hist, prefix_hist)
}

// ---------------------------------------------------------------- Fig. 14

/// One Fig. 14 sweep point.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Fig14Point {
    /// Offered connection rate (connections/second).
    pub offered_rate: f64,
    /// Run with classic per-IP caching.
    pub ip_caching: RunReport,
    /// Run with prefix-based caching.
    pub prefix_caching: RunReport,
}

/// Fig. 14: throughput vs offered connection rate under the two DNSBL
/// schemes (open-system client, process limit 1000).
pub fn fig14(scale: Scale, rates: &[f64]) -> Vec<Fig14Point> {
    let sink = SinkholeConfig::scaled(scale.trace.max(0.25)).generate();
    let server = default_dnsbl(sink.blacklisted.iter().copied());
    rates
        .iter()
        .map(|&rate| {
            let [ip_caching, prefix_caching] =
                [CacheScheme::PerIp, CacheScheme::PerPrefix].map(|scheme| {
                    let cfg = ServerConfig {
                        process_limit: 1000,
                        dns: Some(DnsConfig {
                            scheme,
                            ttl: DAY,
                            server: server.clone(),
                        }),
                        ..ServerConfig::vanilla()
                    };
                    run(
                        &sink.trace,
                        cfg,
                        ClientModel::Open { rate_per_sec: rate },
                        scale.horizon(),
                    )
                });
            Fig14Point {
                offered_rate: rate,
                ip_caching,
                prefix_caching,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 15

/// Fig. 15: DNSBL lookup-time CDFs and cache statistics for the sinkhole
/// trace replayed through the resolver at trace timestamps.
#[derive(Debug, Clone)]
pub struct Fig15 {
    /// `(scheme, lookup-latency histogram, hit ratio, query fraction)`.
    pub rows: Vec<(CacheScheme, Histogram, f64, f64)>,
}

/// Runs the Fig. 15 replay.
pub fn fig15(scale: Scale) -> Fig15 {
    let registry = spamaware_metrics::Registry::new(std::sync::Arc::new(
        spamaware_metrics::ManualClock::new(),
    ));
    fig15_with_metrics(scale, &registry)
}

/// Runs the Fig. 15 replay with each scheme's resolver instrumented into
/// `registry` (prefixes `dnsbl.none`, `dnsbl.per_ip`, `dnsbl.per_prefix`),
/// so the benchmark harness can emit a metrics snapshot beside its JSON.
pub fn fig15_with_metrics(scale: Scale, registry: &spamaware_metrics::Registry) -> Fig15 {
    let sink = SinkholeConfig::scaled(scale.trace).generate();
    let server = default_dnsbl(sink.blacklisted.iter().copied());
    let rows = [
        CacheScheme::None,
        CacheScheme::PerIp,
        CacheScheme::PerPrefix,
    ]
    .into_iter()
    .map(|scheme| {
        let prefix = match scheme {
            CacheScheme::None => "dnsbl.none",
            CacheScheme::PerIp => "dnsbl.per_ip",
            CacheScheme::PerPrefix => "dnsbl.per_prefix",
        };
        let mut resolver = CachingResolver::new(scheme, DAY.max(Nanos::from_secs(1)))
            .with_metrics(registry, prefix);
        let mut rng = det_rng(15);
        for c in &sink.trace.connections {
            resolver.lookup(c.client_ip, c.arrival, &server, &mut rng);
        }
        let s = resolver.stats();
        (
            scheme,
            s.latency_ms.clone(),
            s.hit_ratio(),
            s.query_fraction(),
        )
    })
    .collect();
    Fig15 { rows }
}

// ---------------------------------------------------------------- §8

/// Which §8 workload a combined run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CombinedWorkload {
    /// The sinkhole spam trace plus ECN bounce levels (paper: +40%).
    Spam,
    /// The Univ departmental trace (paper: +18%).
    Univ,
}

/// Result of a §8 combined-optimization comparison.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CombinedResult {
    /// Which workload ran.
    pub workload: CombinedWorkload,
    /// Unmodified postfix: vanilla architecture, mbox storage, per-IP
    /// DNSBL caching.
    pub vanilla: RunReport,
    /// All three optimizations: fork-after-trust, MFS, prefix caching.
    pub spamaware: RunReport,
}

impl CombinedResult {
    /// Relative mail-throughput gain of the spam-aware server.
    pub fn throughput_gain(&self) -> f64 {
        self.spamaware.goodput() / self.vanilla.goodput() - 1.0
    }

    /// Relative reduction in DNSBL queries issued, normalized per lookup
    /// (the runs may complete different connection counts).
    ///
    /// `combined()` always configures DNS on both runs; if a caller
    /// builds a [`CombinedResult`] by hand without it, the reduction is
    /// reported as 0.0 (nothing measured) rather than panicking.
    pub fn dns_query_reduction(&self) -> f64 {
        match (self.vanilla.dns.as_ref(), self.spamaware.dns.as_ref()) {
            (Some(v), Some(s)) => 1.0 - s.query_fraction() / v.query_fraction(),
            _ => 0.0,
        }
    }
}

/// Runs the §8 combined experiment on a workload.
pub fn combined(scale: Scale, workload: CombinedWorkload) -> CombinedResult {
    let (trace, blacklist): (Trace, Vec<Ipv4>) = match workload {
        CombinedWorkload::Spam => {
            let SinkholeTrace {
                trace, blacklisted, ..
            } = SinkholeConfig::scaled(scale.trace).generate();
            let ecn = fig03();
            (
                combined_workload(&trace, ecn.mean_bounce(), ecn.mean_unfinished(), 8),
                blacklisted,
            )
        }
        CombinedWorkload::Univ => {
            let UnivTrace { trace, blacklisted } = UnivConfig::scaled(scale.trace).generate();
            (trace, blacklisted)
        }
    };
    let server = default_dnsbl(blacklist);
    let client = ClientModel::Closed { concurrency: 600 };
    let vanilla = run(
        &trace,
        ServerConfig {
            dns: Some(DnsConfig {
                scheme: CacheScheme::PerIp,
                ttl: DAY,
                server: server.clone(),
            }),
            ..ServerConfig::vanilla()
        },
        client,
        scale.horizon(),
    );
    let spamaware = run(
        &trace,
        ServerConfig {
            layout: Layout::Mfs,
            dns: Some(DnsConfig {
                scheme: CacheScheme::PerPrefix,
                ttl: DAY,
                server,
            }),
            ..ServerConfig::hybrid()
        },
        client,
        scale.horizon(),
    );
    CombinedResult {
        workload,
        vanilla,
        spamaware,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig04_cdf_is_monotone_with_5_to_15_band() {
        let cdf = fig04(Scale::quick());
        for w in cdf.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        let at4 = cdf.iter().find(|(r, _)| *r == 4).unwrap().1;
        let at15 = cdf.iter().find(|(r, _)| *r == 15).unwrap().1;
        assert!(at15 - at4 > 0.6, "5..15 band mass {}", at15 - at4);
    }

    #[test]
    fn fig12_anchors() {
        let cdf = fig12(Scale {
            trace: 0.25,
            seconds: 1,
        });
        let over10 = 1.0 - cdf.iter().find(|(x, _)| *x == 10).unwrap().1;
        assert!((0.30..=0.50).contains(&over10), "P(>10) {over10}");
    }

    #[test]
    fn fig13_prefix_interarrivals_are_shorter() {
        let (ip, prefix) = fig13(Scale::quick());
        assert!(prefix.quantile(0.5) < ip.quantile(0.5));
    }

    #[test]
    fn fig15_prefix_beats_ip_caching() {
        let f = fig15(Scale {
            trace: 0.3,
            seconds: 1,
        });
        let hit = |s: CacheScheme| f.rows.iter().find(|r| r.0 == s).unwrap().2;
        let qf = |s: CacheScheme| f.rows.iter().find(|r| r.0 == s).unwrap().3;
        assert_eq!(hit(CacheScheme::None), 0.0);
        assert!((0.68..=0.80).contains(&hit(CacheScheme::PerIp)));
        assert!((0.79..=0.90).contains(&hit(CacheScheme::PerPrefix)));
        let reduction = 1.0 - qf(CacheScheme::PerPrefix) / qf(CacheScheme::PerIp);
        assert!((0.25..=0.55).contains(&reduction), "reduction {reduction}");
    }

    #[test]
    fn table1_spam_ratio_matches() {
        let t = table1(Scale::quick());
        assert!((0.60..=0.74).contains(&t.univ.spam_ratio));
        assert!((6.0..=8.0).contains(&t.sinkhole.mean_rcpts));
    }
}
