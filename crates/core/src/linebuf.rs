//! Fixed-size line accumulation for socket dialogs.
//!
//! The paper's §5.2 security argument requires the master to read client
//! input into a *fixed-size* receive buffer: a pre-trust client must never
//! be able to grow server-side state without bound. [`LineBuffer`] is that
//! buffer, shared by the master's pre-trust event loop and the workers'
//! post-trust command loops.

/// Longest accepted command line, in bytes, excluding the terminator.
///
/// RFC 5321 §4.5.3.1.6 requires at least 512 octets; we allow 2 KiB to be
/// generous to long `MAIL FROM` parameter lists while still bounding
/// per-connection memory.
pub const MAX_LINE: usize = 2048;

/// Fixed-size line accumulator (the paper's "fixed-size receive buffer").
///
/// Bytes go in via [`LineBuffer::push`]; complete lines come out via
/// [`LineBuffer::pop_line`]. Line semantics are deliberately forgiving,
/// matching classic MTA behaviour:
///
/// * a line ends at the first `\n`, whatever precedes it;
/// * **all** trailing `\r` and `\n` bytes are stripped from the returned
///   line — `"HELO a\r\r\n"` yields `"HELO a"`, not `"HELO a\r"`;
/// * a buffer holding more than [`MAX_LINE`] bytes with no `\n` is an
///   overflow ([`LineOverflow`]): the peer is flooding and must be
///   disconnected.
///
/// # Example
///
/// ```
/// use spamaware_core::LineBuffer;
/// let mut lb = LineBuffer::new();
/// lb.push(b"EHLO relay\r\nMAIL");
/// assert_eq!(lb.pop_line().unwrap().unwrap(), b"EHLO relay");
/// assert_eq!(lb.pop_line().unwrap(), None); // "MAIL" is incomplete
/// ```
#[derive(Debug, Default)]
pub struct LineBuffer {
    buf: Vec<u8>,
}

impl LineBuffer {
    /// Creates an empty buffer.
    pub fn new() -> LineBuffer {
        LineBuffer { buf: Vec::new() }
    }

    /// Creates a buffer over an existing allocation, keeping its content —
    /// how a worker adopts both the leftover bytes a delegating master
    /// buffered and their allocation, and how a pooled buffer (cleared by
    /// the pool) is recycled into a fresh connection's line buffer.
    pub fn from_remaining(buf: Vec<u8>) -> LineBuffer {
        LineBuffer { buf }
    }

    /// Appends raw bytes read from the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops one complete line (without terminator), or signals overflow.
    ///
    /// # Errors
    ///
    /// Returns [`LineOverflow`] when more than [`MAX_LINE`] bytes have
    /// accumulated without a newline.
    pub fn pop_line(&mut self) -> Result<Option<Vec<u8>>, LineOverflow> {
        if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
            let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
            while line.last() == Some(&b'\n') || line.last() == Some(&b'\r') {
                line.pop();
            }
            Ok(Some(line))
        } else if self.buf.len() > MAX_LINE {
            Err(LineOverflow)
        } else {
            Ok(None)
        }
    }

    /// Consumes the buffer, yielding any unconsumed partial line (handed
    /// to a worker along with the delegated connection).
    pub fn into_remaining(self) -> Vec<u8> {
        self.buf
    }
}

/// A command line exceeded [`MAX_LINE`] bytes without a terminator —
/// the connection must be answered with a 500 and dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineOverflow;

impl std::fmt::Display for LineOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line exceeds {MAX_LINE} bytes without a terminator")
    }
}

impl std::error::Error for LineOverflow {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_buffer_splits_crlf_and_lf() {
        let mut lb = LineBuffer::new();
        lb.push(b"HELO a\r\nMAIL");
        assert_eq!(lb.pop_line().unwrap().unwrap(), b"HELO a");
        assert_eq!(lb.pop_line().unwrap(), None);
        lb.push(b" FROM:<a@b.c>\n");
        assert_eq!(lb.pop_line().unwrap().unwrap(), b"MAIL FROM:<a@b.c>");
    }

    #[test]
    fn line_buffer_overflow_detected() {
        let mut lb = LineBuffer::new();
        lb.push(&vec![b'x'; MAX_LINE + 1]);
        assert!(lb.pop_line().is_err());
    }

    #[test]
    fn line_buffer_keeps_partial_remainder() {
        let mut lb = LineBuffer::new();
        lb.push(b"DATA\r\npartial body");
        assert_eq!(lb.pop_line().unwrap().unwrap(), b"DATA");
        assert_eq!(lb.into_remaining(), b"partial body");
    }

    #[test]
    fn all_trailing_carriage_returns_stripped() {
        let mut lb = LineBuffer::new();
        lb.push(b"NOOP\r\r\r\n");
        assert_eq!(lb.pop_line().unwrap().unwrap(), b"NOOP");
    }
}
