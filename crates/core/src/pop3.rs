//! A minimal POP3 server over the MFS mail store.
//!
//! The paper motivates MFS with "mail server applications (mail
//! server/POP/IMAP servers)" whose accesses are all mail-granular (§6.1).
//! This module is the retrieval side of that claim: a threaded POP3
//! (RFC 1939) server whose `STAT`/`LIST`/`RETR`/`DELE` map directly onto
//! [`ShardedStore::read_mailbox`] and [`ShardedStore::delete`], sharing
//! the same on-disk store as the SMTP side — deleting a shared spam from
//! one mailbox decrements the refcount, exactly as §6.1 requires. Because
//! the store stripes its locks per mailbox, a POP3 client draining one
//! mailbox never stalls SMTP deliveries headed elsewhere.

use crate::linebuf::{LineBuffer, LineOverflow};
use crate::netio;
use crate::ServeError;
use spamaware_mfs::{MailId, RealDir, ShardedStore};
use std::collections::HashSet;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Counters exposed by a running [`Pop3Server`].
#[derive(Debug, Default)]
pub struct Pop3Stats {
    /// Sessions served.
    pub sessions: AtomicU64,
    /// Mails retrieved.
    pub retrieved: AtomicU64,
    /// Mails expunged.
    pub deleted: AtomicU64,
    /// Sessions dropped for idling past the read timeout (each session
    /// holds a thread; the idle eviction is what bounds how long a silent
    /// peer can pin one).
    pub idle_evictions: AtomicU64,
    /// Sessions dropped because the peer stopped reading for a whole
    /// write budget — typically frozen mid-`RETR` with the kernel socket
    /// buffer full. The bounded write is what keeps a stalled download
    /// from pinning a session thread forever.
    pub write_stall_evictions: AtomicU64,
}

/// A POP3 server sharing a mail store with the SMTP side.
///
/// Authentication is mailbox-existence only (this is a protocol/storage
/// testbed, not a credential system); `PASS` accepts anything for a known
/// `USER`.
pub struct Pop3Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    /// Shutdown latch: woken exactly once at stop and never drained, so
    /// its read end stays permanently readable and every `poll2` wait in
    /// the acceptor and the session threads returns immediately.
    stop_pipe: rawpoll::WakePipe,
    acceptor: Option<JoinHandle<()>>,
    stats: Arc<Pop3Stats>,
}

impl Pop3Server {
    /// Binds and starts serving with the default 30 s per-read client
    /// timeout.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] if the socket cannot be bound.
    pub fn start(
        bind: SocketAddr,
        store: Arc<ShardedStore<RealDir>>,
        mailboxes: Vec<String>,
    ) -> Result<Pop3Server, ServeError> {
        Pop3Server::start_with_timeout(bind, store, mailboxes, Duration::from_secs(30))
    }

    /// Binds and starts serving; an idle client is dropped after
    /// `read_timeout` without a command (each session holds a thread, so
    /// the timeout is what bounds how long a silent peer can pin one).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] if the socket cannot be bound or
    /// `read_timeout` is zero.
    pub fn start_with_timeout(
        bind: SocketAddr,
        store: Arc<ShardedStore<RealDir>>,
        mailboxes: Vec<String>,
        read_timeout: Duration,
    ) -> Result<Pop3Server, ServeError> {
        if read_timeout.is_zero() {
            return Err(ServeError::Config(
                "pop3 read timeout must be nonzero".to_owned(),
            ));
        }
        let listener = TcpListener::bind(bind).map_err(|e| ServeError::Io(e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Io(e.to_string()))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(e.to_string()))?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_pipe = rawpoll::WakePipe::new().map_err(|e| ServeError::Io(e.to_string()))?;
        let stats = Arc::new(Pop3Stats::default());
        let mailboxes: Arc<HashSet<String>> = Arc::new(mailboxes.into_iter().collect());
        let acceptor = {
            let stop = Arc::clone(&stop);
            let stop_pipe = stop_pipe.clone();
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("pop3".to_owned())
                .spawn(move || {
                    accept_loop(
                        listener,
                        store,
                        mailboxes,
                        stop,
                        stop_pipe,
                        stats,
                        read_timeout,
                    )
                })
                .map_err(|e| ServeError::Io(format!("spawn pop3 acceptor: {e}")))?
        };
        Ok(Pop3Server {
            addr,
            stop,
            stop_pipe,
            acceptor: Some(acceptor),
            stats,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters.
    pub fn stats(&self) -> &Pop3Stats {
        &self.stats
    }

    /// Stops the server.
    pub fn shutdown(mut self) {
        self.stop_join();
    }

    fn stop_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // One wake, never drained: from here the latch is permanently
        // readable and every waiting thread falls out of its poll.
        self.stop_pipe.wake();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Pop3Server {
    fn drop(&mut self) {
        self.stop_join();
    }
}

fn accept_loop(
    listener: TcpListener,
    store: Arc<ShardedStore<RealDir>>,
    mailboxes: Arc<HashSet<String>>,
    stop: Arc<AtomicBool>,
    stop_pipe: rawpoll::WakePipe,
    stats: Arc<Pop3Stats>,
    read_timeout: Duration,
) {
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        // Sleep until a client connects or the stop latch fires — no
        // accept polling.
        match rawpoll::poll2(listener.as_raw_fd(), false, stop_pipe.read_fd(), None) {
            Ok(r) if r.b_ready => break,
            Ok(r) if !r.a_ready => continue,
            Ok(_) => {}
            Err(_) => break,
        }
        match listener.accept() {
            Ok((stream, _)) => {
                stats.sessions.fetch_add(1, Ordering::Relaxed);
                let store = Arc::clone(&store);
                let mailboxes = Arc::clone(&mailboxes);
                let stats = Arc::clone(&stats);
                let stop_pipe = stop_pipe.clone();
                let handle = std::thread::Builder::new()
                    .name("pop3-session".to_owned())
                    .spawn(move || {
                        let _ =
                            session(stream, &store, &mailboxes, &stats, &stop_pipe, read_timeout);
                    });
                match handle {
                    Ok(h) => sessions.push(h),
                    // Out of threads: drop the connection; the client
                    // retries against a less loaded server.
                    Err(_) => continue,
                }
            }
            // Raced a spurious wakeup: go back to waiting.
            Err(e) if e.kind() == ErrorKind::WouldBlock => {}
            Err(_) => break,
        }
        sessions.retain(|h| !h.is_finished());
    }
    for h in sessions {
        let _ = h.join();
    }
}

struct SessionState {
    user: Option<String>,
    /// The authenticated mailbox, set once PASS succeeds (doubles as the
    /// "is authed" flag so the mailbox name never needs re-unwrapping).
    authed: Option<String>,
    /// Mail ids visible this session, with per-mail sizes.
    listing: Vec<(MailId, usize)>,
    /// Indices (0-based) marked for deletion.
    marked: HashSet<usize>,
}

fn session(
    stream: TcpStream,
    store: &ShardedStore<RealDir>,
    mailboxes: &HashSet<String>,
    stats: &Pop3Stats,
    stop_pipe: &rawpoll::WakePipe,
    read_timeout: Duration,
) -> std::io::Result<()> {
    // Replies are coalesced into single writes; Nagle would only delay
    // them behind the client's delayed ACKs.
    let _ = stream.set_nodelay(true);
    // Nonblocking end to end: reads are gated on the `poll2` wait below,
    // and every write goes through the bounded writer, so a peer frozen
    // mid-download costs one write budget instead of a pinned thread.
    stream.set_nonblocking(true)?;
    // The idle deadline lives in the readiness wait below, not in a
    // socket option — there is no `set_read_timeout` left to fail.
    let idle_ms =
        rawpoll::ns_to_timeout_ms(u64::try_from(read_timeout.as_nanos()).unwrap_or(u64::MAX));
    let mut out = stream;
    // Replies accumulate here and flush once per drained burst; writes
    // into a Vec cannot fail, so the `?`s on `writeln!` below are inert.
    let mut wire: Vec<u8> = Vec::new();
    writeln!(wire, "+OK spamaware POP3 ready\r")?;
    flush_wire(&mut out, &mut wire, stop_pipe, read_timeout, stats)?;
    let mut st = SessionState {
        user: None,
        authed: None,
        listing: Vec::new(),
        marked: HashSet::new(),
    };
    let mut lines = LineBuffer::new();
    let mut tmp = [0u8; 1024];
    loop {
        // Handle every complete line already buffered before waiting for
        // more input (a pipelined burst is served without extra waits).
        // `done` defers the session end past the flush so a farewell
        // still reaches a live peer.
        let mut done = false;
        while !done {
            let raw = match lines.pop_line() {
                Ok(Some(raw)) => raw,
                Ok(None) => break,
                Err(LineOverflow) => {
                    writeln!(wire, "-ERR line too long\r")?;
                    done = true;
                    break;
                }
            };
            let line = String::from_utf8_lossy(&raw).into_owned();
            let trimmed = line.trim_end();
            let (verb, arg) = match trimmed.find(' ') {
                Some(i) => (&trimmed[..i], trimmed[i + 1..].trim()),
                None => (trimmed, ""),
            };
            match verb.to_ascii_uppercase().as_str() {
                "USER" => {
                    if mailboxes.contains(arg) {
                        st.user = Some(arg.to_owned());
                        writeln!(wire, "+OK send PASS\r")?;
                    } else {
                        writeln!(wire, "-ERR no such mailbox\r")?;
                    }
                }
                "PASS" => match &st.user {
                    Some(user) => {
                        // Index-only scan: sizes come from the key index, so no
                        // shard lock is held across disk reads (§10 scan phase).
                        st.listing = store
                            .list_mailbox(user)
                            .into_iter()
                            .map(|(id, len)| (id, usize::try_from(len).unwrap_or(usize::MAX)))
                            .collect();
                        st.authed = Some(user.clone());
                        writeln!(wire, "+OK {} messages\r", st.listing.len())?;
                    }
                    None => writeln!(wire, "-ERR USER first\r")?,
                },
                "STAT" if st.authed.is_some() => {
                    let (n, bytes) =
                        live(&st).fold((0usize, 0usize), |(n, b), (_, (_, sz))| (n + 1, b + sz));
                    writeln!(wire, "+OK {n} {bytes}\r")?;
                }
                "LIST" if st.authed.is_some() => {
                    writeln!(wire, "+OK scan listing follows\r")?;
                    for (idx, (_, size)) in live(&st) {
                        writeln!(wire, "{} {}\r", idx + 1, size)?;
                    }
                    writeln!(wire, ".\r")?;
                }
                "RETR" if st.authed.is_some() => {
                    match (st.authed.as_deref(), parse_index(arg, &st)) {
                        (Some(user), Some(idx)) => {
                            // One positioned read under one short shard hold — not a
                            // whole-mailbox scan per retrieval.
                            let body = store
                                .read_mail(user, st.listing[idx].0)
                                .ok()
                                .map(|m| m.body);
                            match body {
                                Some(body) => {
                                    stats.retrieved.fetch_add(1, Ordering::Relaxed);
                                    // The multi-line body joins the coalesced
                                    // reply buffer: one bounded write per burst,
                                    // and a peer frozen mid-download is evicted
                                    // by the flush budget, never waited on.
                                    write!(wire, "+OK {} octets\r\n", body.len())?;
                                    // Byte-stuff lines starting with '.'.
                                    for l in body.split(|&b| b == b'\n') {
                                        let l = l.strip_suffix(b"\r").unwrap_or(l);
                                        if l.first() == Some(&b'.') {
                                            wire.push(b'.');
                                        }
                                        wire.extend_from_slice(l);
                                        wire.extend_from_slice(b"\r\n");
                                    }
                                    wire.extend_from_slice(b".\r\n");
                                }
                                None => writeln!(wire, "-ERR no such message\r")?,
                            }
                        }
                        _ => writeln!(wire, "-ERR no such message\r")?,
                    }
                }
                "DELE" if st.authed.is_some() => match parse_index(arg, &st) {
                    Some(idx) => {
                        st.marked.insert(idx);
                        writeln!(wire, "+OK marked\r")?;
                    }
                    None => writeln!(wire, "-ERR no such message\r")?,
                },
                "RSET" if st.authed.is_some() => {
                    st.marked.clear();
                    writeln!(wire, "+OK\r")?;
                }
                "NOOP" => writeln!(wire, "+OK\r")?,
                "QUIT" => {
                    if let Some(user) = &st.authed {
                        for &idx in &st.marked {
                            if store.delete(user, st.listing[idx].0).is_ok() {
                                stats.deleted.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    writeln!(wire, "+OK bye\r")?;
                    done = true;
                }
                _ => writeln!(wire, "-ERR unsupported\r")?,
            }
        }
        flush_wire(&mut out, &mut wire, stop_pipe, read_timeout, stats)?;
        if done {
            return Ok(());
        }
        // Wait for bytes, hangup, or the stop latch — whichever comes
        // first within the idle budget.
        match rawpoll::poll2(out.as_raw_fd(), false, stop_pipe.read_fd(), idle_ms) {
            // Server stopping: cut the session (nothing acked is at risk;
            // deletions only apply at QUIT).
            Ok(r) if r.b_ready => return Ok(()),
            Ok(r) if r.a_ready || r.a_hangup => match out.read(&mut tmp) {
                Ok(0) => return Ok(()),
                Ok(n) => lines.push(&tmp[..n]),
                // Spurious readiness: wait again.
                Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                Err(e) => return Err(e),
            },
            // Idle past the read timeout: evict the silent peer.
            Ok(_) => {
                stats.idle_evictions.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            Err(e) => return Err(e),
        }
    }
}

/// Flushes the coalesced reply buffer through the bounded writer. A
/// budget expiry counts in [`Pop3Stats::write_stall_evictions`] and ends
/// the session; the buffer is cleared in every case (a failed session
/// never retries a partial reply).
fn flush_wire(
    out: &mut TcpStream,
    wire: &mut Vec<u8>,
    stop_pipe: &rawpoll::WakePipe,
    budget: Duration,
    stats: &Pop3Stats,
) -> std::io::Result<()> {
    if wire.is_empty() {
        return Ok(());
    }
    let outcome = netio::write_all_bounded(out, wire, stop_pipe, budget);
    wire.clear();
    match outcome {
        netio::WriteOutcome::Done => Ok(()),
        netio::WriteOutcome::TimedOut => {
            stats.write_stall_evictions.fetch_add(1, Ordering::Relaxed);
            Err(std::io::Error::from(ErrorKind::TimedOut))
        }
        netio::WriteOutcome::Stopped => Err(std::io::Error::from(ErrorKind::Interrupted)),
        netio::WriteOutcome::Closed => Err(std::io::Error::from(ErrorKind::BrokenPipe)),
    }
}

/// Live (not deletion-marked) messages with their 0-based indices.
fn live<'a>(st: &'a SessionState) -> impl Iterator<Item = (usize, &'a (MailId, usize))> + 'a {
    st.listing
        .iter()
        .enumerate()
        .filter(|(i, _)| !st.marked.contains(i))
}

fn parse_index(arg: &str, st: &SessionState) -> Option<usize> {
    let n: usize = arg.parse().ok()?;
    let idx = n.checked_sub(1)?;
    if idx < st.listing.len() && !st.marked.contains(&idx) {
        Some(idx)
    } else {
        None
    }
}
