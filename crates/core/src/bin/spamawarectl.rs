//! `spamawarectl` — admin tool for an on-disk MFS mail store and for
//! trace archives.
//!
//! ```text
//! spamawarectl stats <store-root>
//! spamawarectl list <store-root> <mailbox>
//! spamawarectl cat <store-root> <mailbox> <n>
//! spamawarectl delete <store-root> <mailbox> <n>
//! spamawarectl compact <store-root>
//! spamawarectl fsck <store-root>
//! spamawarectl serve <store-root> <mailbox,...>
//! spamawarectl trace-stats <trace.json>
//! ```
//!
//! The store format is exactly what [`spamaware_core::LiveServer`] writes,
//! so this tool can inspect a live server's spool (stop the server first —
//! the store is single-writer). `fsck` repairs a crashed spool in place
//! (torn key-file tails, refcount drift, orphaned shared bodies) and
//! prints a deterministic report; `serve` runs a [`LiveServer`] on an
//! ephemeral localhost port until killed, printing `LISTENING <addr>` on
//! startup — the crash-recovery integration tests drive a real process
//! through it and `SIGKILL` it mid-delivery.
//!
//! [`LiveServer`]: spamaware_core::LiveServer

use spamaware_core::{LiveConfig, LiveServer, MailStore, MfsStore, RealDir, Trace, TraceStats};
use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("spamawarectl: {msg}");
            eprintln!();
            eprintln!("usage:");
            eprintln!("  spamawarectl stats <store-root>");
            eprintln!("  spamawarectl list <store-root> <mailbox>");
            eprintln!("  spamawarectl cat <store-root> <mailbox> <n>");
            eprintln!("  spamawarectl delete <store-root> <mailbox> <n>");
            eprintln!("  spamawarectl compact <store-root>");
            eprintln!("  spamawarectl fsck <store-root>");
            eprintln!("  spamawarectl serve <store-root> <mailbox,...>");
            eprintln!("  spamawarectl trace-stats <trace.json>");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().map(String::as_str).unwrap_or("");
    match cmd {
        "stats" => {
            let store = open_store(args.get(1))?;
            let s = store.stats();
            println!("shared mails:        {}", s.shared_mails);
            println!("shared bytes:        {}", s.shared_bytes);
            println!("reclaimable bytes:   {}", s.freed_shared_bytes);
            println!("own records:         {}", s.own_records);
            println!("shared references:   {}", s.shared_references);
            Ok(())
        }
        "list" => {
            let mut store = open_store(args.get(1))?;
            let mailbox = arg(args, 2, "mailbox")?;
            let mails = store
                .read_mailbox(mailbox)
                .map_err(|e| format!("cannot read {mailbox}: {e}"))?;
            println!("{} mail(s) in {mailbox}:", mails.len());
            for (i, m) in mails.iter().enumerate() {
                println!("  {:>3}  [{}]  {} bytes", i + 1, m.id, m.body.len());
            }
            Ok(())
        }
        "cat" => {
            let mut store = open_store(args.get(1))?;
            let mailbox = arg(args, 2, "mailbox")?;
            let n = index(args, 3)?;
            let mails = store
                .read_mailbox(mailbox)
                .map_err(|e| format!("cannot read {mailbox}: {e}"))?;
            let mail = mails
                .get(n - 1)
                .ok_or_else(|| format!("no mail {n} in {mailbox} ({} mails)", mails.len()))?;
            print!("{}", String::from_utf8_lossy(&mail.body));
            Ok(())
        }
        "delete" => {
            let mut store = open_store(args.get(1))?;
            let mailbox = arg(args, 2, "mailbox")?;
            let n = index(args, 3)?;
            let mails = store
                .read_mailbox(mailbox)
                .map_err(|e| format!("cannot read {mailbox}: {e}"))?;
            let mail = mails
                .get(n - 1)
                .ok_or_else(|| format!("no mail {n} in {mailbox} ({} mails)", mails.len()))?;
            let id = mail.id;
            store
                .delete(mailbox, id)
                .map_err(|e| format!("delete failed: {e}"))?;
            println!("deleted [{id}] from {mailbox}");
            Ok(())
        }
        "compact" => {
            let mut store = open_store(args.get(1))?;
            let reclaimed = store
                .compact()
                .map_err(|e| format!("compact failed: {e}"))?;
            println!("reclaimed {reclaimed} shared bytes");
            Ok(())
        }
        "fsck" => {
            let root = arg(args, 1, "store-root")?;
            let backend = RealDir::new(root).map_err(|e| format!("cannot open {root}: {e}"))?;
            let (_store, report) =
                spamaware_core::fsck(backend).map_err(|e| format!("fsck failed: {e}"))?;
            print!("{report}");
            Ok(())
        }
        "serve" => {
            let root = arg(args, 1, "store-root")?;
            let boxes: Vec<String> = arg(args, 2, "mailbox,...")?
                .split(',')
                .filter(|s| !s.is_empty())
                .map(str::to_owned)
                .collect();
            if boxes.is_empty() {
                return Err("no mailboxes given".to_owned());
            }
            let server = LiveServer::start(LiveConfig::localhost(root, boxes))
                .map_err(|e| format!("cannot start server: {e}"))?;
            println!("LISTENING {}", server.local_addr());
            println!("ADMIN {}", server.admin_addr());
            std::io::stdout()
                .flush()
                .map_err(|e| format!("stdout: {e}"))?;
            // Runs until the process is killed (the store's crash
            // consistency is exactly what the SIGKILL tests exercise) or
            // until an admin `DRAIN` command lands, at which point the
            // in-flight work is allowed to finish and the process exits
            // cleanly, printing `DRAINED`.
            loop {
                std::thread::sleep(std::time::Duration::from_millis(50));
                if server.is_draining() {
                    // The flag is already set, so the grace period here
                    // only waits out in-flight transactions.
                    let _ = server.drain(std::time::Duration::from_secs(30));
                    server.shutdown();
                    println!("DRAINED");
                    return Ok(());
                }
            }
        }
        "trace-stats" => {
            let path = arg(args, 1, "trace file")?;
            let trace = Trace::load_file(path).map_err(|e| format!("cannot load {path}: {e}"))?;
            println!("{}", TraceStats::of(&trace));
            Ok(())
        }
        "" => Err("missing command".to_owned()),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn open_store(root: Option<&String>) -> Result<MfsStore<RealDir>, String> {
    let root = root.ok_or("missing <store-root>")?;
    let backend = RealDir::new(root).map_err(|e| format!("cannot open {root}: {e}"))?;
    MfsStore::open(backend).map_err(|e| format!("cannot replay store at {root}: {e}"))
}

fn arg<'a>(args: &'a [String], i: usize, what: &str) -> Result<&'a str, String> {
    args.get(i)
        .map(String::as_str)
        .ok_or_else(|| format!("missing <{what}>"))
}

fn index(args: &[String], i: usize) -> Result<usize, String> {
    let raw = arg(args, i, "mail number")?;
    let n: usize = raw
        .parse()
        .map_err(|_| format!("invalid mail number {raw:?}"))?;
    if n == 0 {
        return Err("mail numbers start at 1".to_owned());
    }
    Ok(n)
}
