//! Bounded, stop-aware socket writes for the server's auxiliary threads.
//!
//! The master thread never calls into here — its outbound path is the
//! per-connection `OutBuf` in [`crate::pretrust`], flushed from the
//! readiness loop without ever waiting on one peer. Worker, admin, and
//! POP3 threads *are* allowed to wait on their single peer, but only
//! behind a deadline: every reply they send goes through
//! [`write_all_bounded`], which loops non-blocking writes gated on a
//! `poll2` wait against the shared stop latch. A peer that stops reading
//! costs one bounded budget, never a pinned thread, and a server
//! shutdown interrupts the wait immediately (DESIGN.md §15.4).

use std::io::{ErrorKind, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

/// How a bounded write ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WriteOutcome {
    /// Every byte reached the socket buffer.
    Done,
    /// The budget expired with bytes still unsent (slow or stalled peer).
    TimedOut,
    /// The stop latch fired mid-write (server shutdown).
    Stopped,
    /// The peer closed or the socket errored.
    Closed,
}

/// Writes all of `bytes` to a **nonblocking** `stream`, sleeping in
/// bounded `poll2` waits for writability between partial writes, for at
/// most `budget` of wall clock overall. Progress does not extend the
/// budget: it caps the whole write, so a drip-reading peer cannot hold
/// the calling thread longer than one budget per reply.
pub(crate) fn write_all_bounded(
    stream: &mut TcpStream,
    bytes: &[u8],
    stop_pipe: &rawpoll::WakePipe,
    budget: Duration,
) -> WriteOutcome {
    let deadline = Instant::now() + budget;
    let mut off = 0usize;
    while off < bytes.len() {
        match stream.write(&bytes[off..]) {
            Ok(0) => return WriteOutcome::Closed,
            Ok(n) => off += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return WriteOutcome::TimedOut;
                }
                let left_ns = u64::try_from(left.as_nanos()).unwrap_or(u64::MAX - 1);
                let wait = rawpoll::ns_to_timeout_ms(left_ns);
                match rawpoll::poll2(stream.as_raw_fd(), true, stop_pipe.read_fd(), wait) {
                    Ok(r) if r.b_ready => return WriteOutcome::Stopped,
                    // Writable — or hung up, which the next write surfaces
                    // as an error; either way, loop and try the write.
                    Ok(r) if r.a_ready || r.a_hangup => {}
                    Ok(_) => {
                        if Instant::now() >= deadline {
                            return WriteOutcome::TimedOut;
                        }
                    }
                    Err(_) => return WriteOutcome::Closed,
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return WriteOutcome::Closed,
        }
    }
    WriteOutcome::Done
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (server, client)
    }

    #[test]
    fn small_write_to_reading_peer_completes() {
        let (mut server, mut client) = pair();
        let stop = rawpoll::WakePipe::new().unwrap();
        let outcome = write_all_bounded(&mut server, b"hello\r\n", &stop, Duration::from_secs(5));
        assert_eq!(outcome, WriteOutcome::Done);
        let mut buf = [0u8; 16];
        let n = client.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello\r\n");
    }

    #[test]
    fn non_reading_peer_times_out_within_budget() {
        let (mut server, client) = pair();
        let stop = rawpoll::WakePipe::new().unwrap();
        // Far more than any kernel default socket-buffer pair holds.
        let blob = vec![b'x'; 64 * 1024 * 1024];
        let started = Instant::now();
        let outcome = write_all_bounded(&mut server, &blob, &stop, Duration::from_millis(50));
        assert_eq!(outcome, WriteOutcome::TimedOut);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "budget must bound the stall"
        );
        drop(client);
    }

    #[test]
    fn stop_latch_interrupts_a_stalled_write() {
        let (mut server, client) = pair();
        let stop = rawpoll::WakePipe::new().unwrap();
        stop.wake();
        let blob = vec![b'x'; 64 * 1024 * 1024];
        let outcome = write_all_bounded(&mut server, &blob, &stop, Duration::from_secs(30));
        assert_eq!(outcome, WriteOutcome::Stopped);
        drop(client);
    }

    #[test]
    fn closed_peer_reports_closed() {
        let (mut server, client) = pair();
        let stop = rawpoll::WakePipe::new().unwrap();
        drop(client);
        // Fill until the close is observed (first writes may still land in
        // the kernel buffer before the RST is processed).
        let blob = vec![b'x'; 1024 * 1024];
        let mut outcome = WriteOutcome::Done;
        for _ in 0..64 {
            outcome = write_all_bounded(&mut server, &blob, &stop, Duration::from_millis(100));
            if outcome != WriteOutcome::Done {
                break;
            }
        }
        assert!(
            matches!(outcome, WriteOutcome::Closed | WriteOutcome::TimedOut),
            "writes to a closed peer must stop: {outcome:?}"
        );
    }
}
