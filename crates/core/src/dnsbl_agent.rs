//! The DNSBL agent thread: every lookup the live server makes happens
//! here, never on the master.
//!
//! §5 requires a non-blocking master and §9 makes the DNSBL verdict
//! record-only ("our solution does not delay/deny mail service to any
//! client") — together they mean the master never needs the answer
//! synchronously. The master hands the peer IP over a bounded channel
//! with a non-blocking `try_send` and moves on; this thread owns the
//! per-/25 cache, the circuit breaker, and the UDP socket work, and
//! records the verdict in `live.blacklisted`. When the channel is full
//! the lookup is dropped and counted (`dnsbl.agent_dropped`): under
//! overload we shed a *statistic*, not a client.

use crossbeam::channel::Receiver;
use spamaware_dnsbl::{
    BreakerConfig, BreakerDecision, CacheScheme, CachingResolver, CircuitBreaker, DnsblServer,
    UdpDnsbl,
};
use spamaware_metrics::{Counter, Registry};
use spamaware_netaddr::Ipv4;
use spamaware_sim::Nanos;
use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Everything the agent thread owns.
pub(crate) struct DnsblAgentCtx {
    /// Peer IPs the master wants looked up (fire-and-forget).
    pub rx: Receiver<Ipv4>,
    pub stop: Arc<AtomicBool>,
    /// `live.blacklisted` — the verdict sink.
    pub blacklisted: Arc<Counter>,
    pub registry: Arc<Registry>,
    /// In-process simulated DNSBL (used when `dnsbl_udp` is unset).
    pub dnsbl: Option<DnsblServer>,
    /// Real DNSBL over UDP: `(server address, zone)`.
    pub dnsbl_udp: Option<(SocketAddr, String)>,
    pub dnsbl_udp_timeout: Duration,
    pub dnsbl_breaker: BreakerConfig,
}

/// Drains lookup requests until the stop flag is set or every sender is
/// gone. One request at a time: the breaker's whole point is that a dead
/// resolver costs at most `failure_threshold` timeouts before everything
/// short-circuits, so serial processing converges fast even when the
/// master enqueues a burst.
pub(crate) fn agent_loop(ctx: DnsblAgentCtx) {
    let lookup_ns = ctx.registry.span("dnsbl.agent_ns");
    let udp_timeouts = ctx.registry.counter("dnsbl.udp_timeouts");
    let udp_errors = ctx.registry.counter("dnsbl.udp_errors");
    let mut breaker = CircuitBreaker::new(ctx.dnsbl_breaker.clone(), ctx.registry.clock())
        .with_metrics(&ctx.registry, "dnsbl");
    let mut resolver = CachingResolver::new(CacheScheme::PerPrefix, Nanos::from_secs(86_400))
        .with_metrics(&ctx.registry, "dnsbl");
    let mut rng = spamaware_sim::det_rng(0x11FE);
    let mut udp_cache: HashMap<spamaware_netaddr::Prefix25, spamaware_netaddr::PrefixBitmap> =
        HashMap::new();
    while !ctx.stop.load(Ordering::SeqCst) {
        // `recv` returns `Err` once every sender is gone; the master is
        // stopped and joined before this thread, so shutdown surfaces
        // here as a disconnect.
        let Ok(peer_ip) = ctx.rx.recv() else { break };
        let start = lookup_ns.now();
        let listed = if let Some((server_addr, zone)) = &ctx.dnsbl_udp {
            // Real DNSBLv6 query over UDP, cached per /25. Only
            // *successful* answers enter the cache: a fail-open verdict
            // is a degraded guess, and caching it would poison the whole
            // /25 until restart.
            match udp_cache.get(&peer_ip.prefix25()) {
                Some(bitmap) => bitmap.contains(peer_ip),
                None => match breaker.admit() {
                    // Open circuit: fail open to "not listed" without
                    // touching the network (§9 — never delay mail for a
                    // dead dependency).
                    BreakerDecision::ShortCircuit => false,
                    BreakerDecision::Allow | BreakerDecision::Probe => {
                        match UdpDnsbl::lookup_v6_timeout(
                            *server_addr,
                            zone,
                            peer_ip,
                            ctx.dnsbl_udp_timeout,
                        ) {
                            Ok(bitmap) => {
                                breaker.record_success();
                                let listed = bitmap.contains(peer_ip);
                                udp_cache.insert(peer_ip.prefix25(), bitmap);
                                listed
                            }
                            Err(e) => {
                                breaker.record_failure();
                                if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
                                    udp_timeouts.inc();
                                } else {
                                    udp_errors.inc();
                                }
                                false
                            }
                        }
                    }
                },
            }
        } else if let Some(server) = &ctx.dnsbl {
            let now = Nanos::from_nanos(0);
            resolver.lookup(peer_ip, now, server, &mut rng).listed
        } else {
            false
        };
        lookup_ns.record_since(start);
        if listed {
            ctx.blacklisted.inc();
        }
    }
}
