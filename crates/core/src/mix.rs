//! Workload mixing: the §8 combined workload (spam trace + ECN bounce
//! levels).

use rand::Rng;
use spamaware_sim::{det_rng, Nanos};
use spamaware_trace::{ConnectionKind, ConnectionSpec, Trace};

/// Builds the paper's §8 combined workload: the mail connections of `base`
/// interleaved with bounce and unfinished connections at the given
/// fractions of *total* connections (the ECN-measured levels, Fig. 3).
///
/// Bounce/unfinished client IPs are drawn from the base trace's own client
/// population (random-guessing spam comes from the same botnets), so DNSBL
/// cache behaviour stays representative.
///
/// # Panics
///
/// Panics if the fractions are negative or sum to ≥ 1, or `base` is empty.
///
/// # Example
///
/// ```
/// use spamaware_core::combined_workload;
/// use spamaware_trace::SinkholeConfig;
///
/// let sink = SinkholeConfig::scaled(0.01).generate();
/// let t = combined_workload(&sink.trace, 0.25, 0.10, 7);
/// assert!(t.connections.len() > sink.trace.connections.len());
/// ```
pub fn combined_workload(
    base: &Trace,
    bounce_fraction: f64,
    unfinished_fraction: f64,
    seed: u64,
) -> Trace {
    assert!(!base.connections.is_empty(), "base trace is empty");
    assert!(bounce_fraction >= 0.0 && unfinished_fraction >= 0.0);
    let rogue = bounce_fraction + unfinished_fraction;
    assert!(rogue < 1.0, "rogue fractions must sum below 1");

    let mut rng = det_rng(seed ^ 0xC0B1);
    let mail_conns = base.connections.len();
    let total = (mail_conns as f64 / (1.0 - rogue)).round() as usize;
    let bounces = (total as f64 * bounce_fraction) as usize;
    let unfinished = total - mail_conns - bounces;

    let mut connections = base.connections.clone();
    let span = base.span;
    for _ in 0..bounces {
        let donor = &base.connections[rng.gen_range(0..mail_conns)];
        connections.push(ConnectionSpec {
            arrival: Nanos::from_nanos(rng.gen_range(0..=span.as_nanos())),
            client_ip: donor.client_ip,
            kind: ConnectionKind::Bounce {
                rcpt_attempts: 1 + spamaware_sim::dist::poisson(&mut rng, 0.6) as u8,
            },
        });
    }
    for _ in 0..unfinished {
        let donor = &base.connections[rng.gen_range(0..mail_conns)];
        connections.push(ConnectionSpec {
            arrival: Nanos::from_nanos(rng.gen_range(0..=span.as_nanos())),
            client_ip: donor.client_ip,
            kind: ConnectionKind::Unfinished {
                handshake_commands: rng.gen_range(0..3),
            },
        });
    }
    connections.sort_by_key(|c| c.arrival);
    let trace = Trace {
        connections,
        mailbox_count: base.mailbox_count,
        span,
    };
    trace.validate();
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use spamaware_trace::{SessionMix, SinkholeConfig};

    #[test]
    fn fractions_come_out_as_requested() {
        let sink = SinkholeConfig::scaled(0.02).generate();
        let t = combined_workload(&sink.trace, 0.25, 0.10, 1);
        let mix = SessionMix::of(&t);
        assert!((mix.bounce_fraction() - 0.25).abs() < 0.02);
        assert!((mix.unfinished_fraction() - 0.10).abs() < 0.02);
        assert_eq!(mix.delivering, sink.trace.connections.len());
    }

    #[test]
    fn rogue_ips_come_from_the_botnet() {
        let sink = SinkholeConfig::scaled(0.02).generate();
        let bots: std::collections::HashSet<_> =
            sink.trace.connections.iter().map(|c| c.client_ip).collect();
        let t = combined_workload(&sink.trace, 0.3, 0.1, 2);
        for c in &t.connections {
            assert!(bots.contains(&c.client_ip));
        }
    }

    #[test]
    fn zero_fractions_reproduce_base() {
        let sink = SinkholeConfig::scaled(0.01).generate();
        let t = combined_workload(&sink.trace, 0.0, 0.0, 3);
        assert_eq!(t.connections.len(), sink.trace.connections.len());
    }

    #[test]
    #[should_panic(expected = "sum below 1")]
    fn rejects_all_rogue() {
        let sink = SinkholeConfig::scaled(0.01).generate();
        combined_workload(&sink.trace, 0.7, 0.4, 4);
    }
}
