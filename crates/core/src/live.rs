//! A live, threaded SMTP server implementing fork-after-trust over real
//! TCP sockets.
//!
//! This is the deployable rendering of the paper's §5 architecture (with
//! threads standing in for postfix's processes):
//!
//! * an **acceptor thread** plays the master: it owns every new connection
//!   and drives the SMTP dialog through a non-blocking event loop until a
//!   valid `RCPT TO` arrives (fixed-size line buffers only — the §5.2
//!   security argument);
//! * connections that never earn trust (bounces, abandoned handshakes) are
//!   answered and closed by the master without ever waking a worker;
//! * trusted connections are handed — socket, session state, and any
//!   already-buffered bytes — to one of a pool of **worker threads** over
//!   bounded queues (the 64 KiB-UNIX-socket analogue), round-robin with
//!   non-blocking sends so full queues throttle the master naturally;
//! * workers finish the transaction (`DATA` onward) and store mail in a
//!   [`ShardedStore`] over [`RealDir`] — multi-recipient spam hits the
//!   disk once, and deliveries to different mailboxes proceed in parallel
//!   because the store stripes per-mailbox locks instead of serializing
//!   everything behind one mutex.
//!
//! # Hot-path allocation discipline
//!
//! Steady-state traffic reuses memory instead of allocating: line buffers
//! and DATA bodies come from bounded [`BufferPool`]s (`live.pool_reuse` /
//! `live.pool_miss` counters), the announced hostname is one shared
//! `Arc<str>` rather than a per-connection clone, and the replies to a
//! pipelined command burst are coalesced into a single socket write.
//!
//! # Observability
//!
//! Every layer feeds a shared [`spamaware_metrics::Registry`]: lifecycle
//! counters (`live.*`), per-verb counts (`smtp.verb.*`), span timings for
//! the master's pre-trust dialog (`master.*`), worker queue wait / `DATA`
//! / storage latencies plus queue depth (`worker.*`), and the DNSBL agent
//! thread's lookups, cache, and breaker (`dnsbl.*`) and the instrumented
//! mail store (`mfs.*`).
//! [`LiveServer::metrics_report`] renders the registry deterministically;
//! the same text is served over a localhost admin socket
//! ([`LiveServer::admin_addr`]) in answer to a `METRICS` (or `STAT`)
//! command line.

use crate::dnsbl_agent::{agent_loop, DnsblAgentCtx};
use crate::linebuf::{LineBuffer, LineOverflow};
use crate::netio;
use crate::pool::BufferPool;
use crate::pretrust::{self, EngineCtx, Trusted};
use crate::reactor::os::OsReactor;
use crate::ServeError;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use spamaware_dnsbl::{BreakerConfig, DnsblServer};
use spamaware_metrics::{Counter, Gauge, Registry};
use spamaware_mfs::{DataRef, MailId, RealDir, ShardedStore};
use spamaware_netaddr::Ipv4;
use spamaware_smtp::{Command, DataVerdict, MailAddr, Reply, ServerSession, SessionOutcome};
use std::collections::HashSet;
use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Lookup requests the DNSBL agent's queue holds before the master starts
/// dropping them (counted in `dnsbl.agent_dropped`). Sized for an accept
/// burst: the agent drains cached and short-circuited lookups in
/// microseconds, so the queue only fills while the breaker is still
/// counting failures against a dead resolver.
const DNSBL_AGENT_QUEUE: usize = 256;

/// Configuration for [`LiveServer::start`].
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Address to bind (use port 0 for an ephemeral port in tests).
    pub bind: SocketAddr,
    /// Hostname announced in the greeting — shared by reference across
    /// every connection, so keep it an `Arc<str>`.
    pub hostname: Arc<str>,
    /// Worker threads (the smtpd pool).
    pub workers: usize,
    /// Delegated connections a worker's queue holds (paper: ≈28).
    pub worker_queue: usize,
    /// Root directory for the MFS mail store.
    pub storage_root: PathBuf,
    /// Mailbox-lock stripes in the sharded store. More shards means less
    /// false contention between unrelated mailboxes; the default of 8
    /// comfortably covers the 4-worker default pool (see DESIGN.md §11).
    pub store_shards: usize,
    /// Valid mailbox local parts.
    pub mailboxes: Vec<String>,
    /// Optional DNSBL checked (with prefix caching) per connection; the
    /// verdict is recorded, not used to reject (§9: "our solution does not
    /// delay/deny mail service to any client").
    pub dnsbl: Option<DnsblServer>,
    /// Optional real DNSBL over UDP: `(server address, zone)`. Queried
    /// with the DNSBLv6 bitmap scheme and cached per /25 like `dnsbl`;
    /// takes precedence over the in-process `dnsbl` when both are set.
    pub dnsbl_udp: Option<(std::net::SocketAddr, String)>,
    /// Per-query budget for `dnsbl_udp` lookups. The DNSBL agent thread
    /// blocks for at most this long per uncached query; the master hands
    /// lookups to the agent over a bounded queue and never waits, so a
    /// slow resolver delays verdict *statistics*, not connections.
    pub dnsbl_udp_timeout: Duration,
    /// Circuit breaker over `dnsbl_udp`: after `failure_threshold`
    /// consecutive failures the agent stops querying entirely (fail-open
    /// to "not listed", §9) and retries with one probe per deterministic
    /// backoff window.
    pub dnsbl_breaker: BreakerConfig,
    /// How long a pre-trust connection may sit idle in the master's event
    /// loop before it is dropped (slow clients must not pin master state;
    /// the paper's smtpd has the analogous idle self-termination, §2).
    pub pretrust_idle_timeout: Duration,
    /// Total in-flight connections (pre-trust + queued + in a worker)
    /// admitted before new arrivals are shed with `421`.
    pub max_connections: usize,
    /// Pre-trust connections one client IP may hold open concurrently;
    /// the excess is shed with `421` (a single spammer must not monopolize
    /// the master's event loop).
    pub max_pretrust_per_ip: usize,
    /// Per-read socket timeout in the worker (was a hardcoded 30 s).
    pub worker_read_timeout: Duration,
    /// Per-read socket timeout on the admin socket (was a hardcoded 5 s).
    pub admin_read_timeout: Duration,
    /// Wall-clock budget for a whole session, measured from accept; a
    /// connection that overstays is evicted with `421` wherever it is in
    /// the dialog.
    pub session_deadline: Duration,
    /// Wall-clock budget for one `DATA` body transfer; a trickling client
    /// is evicted with `421` rather than pinning a worker thread.
    pub data_deadline: Duration,
    /// Hard cap on reply bytes queued toward any one pre-trust peer in the
    /// master's event loop. A peer whose backlog would exceed it — it
    /// pipelines commands but never reads replies — is evicted
    /// (`master.evicted_slow_writers`) rather than allowed to grow master
    /// memory without bound.
    pub max_outq_bytes: usize,
    /// No-progress budget for queued pre-trust output: a stalled peer
    /// whose queue advances by zero bytes for this long is evicted. Any
    /// flushed byte resets the clock, so a slow-but-live reader is served
    /// indefinitely while a frozen one is cut off.
    pub write_stall_timeout: Duration,
    /// Budget for writing one admin response; an admin client that asks
    /// for `METRICS` and then stops reading is cut off
    /// (`live.admin_write_timeouts`) instead of pinning the admin thread.
    pub admin_write_timeout: Duration,
    /// Test-only fault injection: while the flag is `true`, workers stall
    /// after dequeuing a task, letting a chaos test fill every queue and
    /// observe the master's non-blocking `421` shed path deterministically.
    pub worker_hold: Option<Arc<AtomicBool>>,
}

impl LiveConfig {
    /// A localhost config rooted at `storage_root` hosting `mailboxes`.
    pub fn localhost(storage_root: impl Into<PathBuf>, mailboxes: Vec<String>) -> LiveConfig {
        LiveConfig {
            bind: SocketAddr::from(([127, 0, 0, 1], 0)),
            hostname: "mx.spamaware.test".into(),
            workers: 4,
            worker_queue: 28,
            storage_root: storage_root.into(),
            store_shards: 8,
            mailboxes,
            dnsbl: None,
            dnsbl_udp: None,
            dnsbl_udp_timeout: Duration::from_millis(100),
            dnsbl_breaker: BreakerConfig::default(),
            pretrust_idle_timeout: Duration::from_secs(30),
            max_connections: 512,
            max_pretrust_per_ip: 32,
            worker_read_timeout: Duration::from_secs(30),
            admin_read_timeout: Duration::from_secs(5),
            session_deadline: Duration::from_secs(300),
            data_deadline: Duration::from_secs(120),
            max_outq_bytes: 64 * 1024,
            write_stall_timeout: Duration::from_secs(10),
            admin_write_timeout: Duration::from_secs(5),
            worker_hold: None,
        }
    }
}

/// Registry-backed lifecycle counters of a running [`LiveServer`].
///
/// Each field is a handle into the server's metrics registry (the same
/// instruments appear as `live.*` in [`LiveServer::metrics_report`]);
/// [`LiveStats::snapshot`] reads them all at once.
#[derive(Debug, Clone)]
pub struct LiveStats {
    /// Connections accepted.
    pub accepted: Arc<Counter>,
    /// Connections closed after delivering mail.
    pub delivered: Arc<Counter>,
    /// Bounce connections dispatched entirely by the master.
    pub bounces: Arc<Counter>,
    /// Unfinished connections dispatched entirely by the master.
    pub unfinished: Arc<Counter>,
    /// Connections delegated to workers.
    pub delegated: Arc<Counter>,
    /// Mails stored.
    pub mails_stored: Arc<Counter>,
    /// Connections whose client IP was blacklisted.
    pub blacklisted: Arc<Counter>,
    /// IPv6 peers refused with a 554 reply (the server is IPv4-only).
    pub rejected_ipv6: Arc<Counter>,
    /// Connections dropped for overflowing the fixed-size line buffer.
    pub overflows: Arc<Counter>,
    /// Pre-trust connections evicted by the idle timeout.
    pub idle_evictions: Arc<Counter>,
    /// Torn key records truncated away while recovering the store at
    /// startup (a clean shutdown leaves this at zero).
    pub recovered_records: Arc<Counter>,
    /// Repairs the startup `fsck` pass made durable (torn tails, refcount
    /// rebuilds, orphan reclamation — see `spamaware_mfs::FsckReport`).
    pub fsck_repairs: Arc<Counter>,
    /// Connections shed with `421` at the total in-flight cap.
    pub shed_connections: Arc<Counter>,
    /// Connections shed with `421` at the per-IP pre-trust cap.
    pub shed_per_ip: Arc<Counter>,
    /// Trusted connections shed with `421` because every worker queue was
    /// full (the master never blocks on a send).
    pub shed_worker_busy: Arc<Counter>,
    /// Connections shed with `421` because the server is draining.
    pub shed_draining: Arc<Counter>,
    /// Connections evicted with `421` for exhausting the whole-session
    /// wall-clock budget.
    pub session_deadline_evictions: Arc<Counter>,
    /// Connections evicted with `421` for exhausting the `DATA` transfer
    /// budget.
    pub data_deadline_evictions: Arc<Counter>,
    /// Socket-setup failures: an admin connection that cannot be given a
    /// read deadline, or a pre-trust connection the reactor could not
    /// register. Either way the connection is closed rather than allowed
    /// to pin a thread or escape its deadlines.
    pub sockopt_errors: Arc<Counter>,
    /// Worker reply writes abandoned because the peer stopped reading for
    /// a whole write budget; the connection is dropped.
    pub worker_write_timeouts: Arc<Counter>,
    /// Admin responses abandoned because the client stopped reading for a
    /// whole write budget; the connection is dropped.
    pub admin_write_timeouts: Arc<Counter>,
}

/// Point-in-time values of every [`LiveStats`] counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LiveSnapshot {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections closed after delivering mail.
    pub delivered: u64,
    /// Bounce connections dispatched entirely by the master.
    pub bounces: u64,
    /// Unfinished connections dispatched entirely by the master.
    pub unfinished: u64,
    /// Connections delegated to workers.
    pub delegated: u64,
    /// Mails stored.
    pub mails_stored: u64,
    /// Connections whose client IP was blacklisted.
    pub blacklisted: u64,
    /// IPv6 peers refused with a 554 reply.
    pub rejected_ipv6: u64,
    /// Connections dropped for overflowing the line buffer.
    pub overflows: u64,
    /// Pre-trust connections evicted by the idle timeout.
    pub idle_evictions: u64,
    /// Torn key records truncated away recovering the store at startup.
    pub recovered_records: u64,
    /// Repairs made durable by the startup `fsck` pass.
    pub fsck_repairs: u64,
    /// Connections shed with `421` at the total in-flight cap.
    pub shed_connections: u64,
    /// Connections shed with `421` at the per-IP pre-trust cap.
    pub shed_per_ip: u64,
    /// Trusted connections shed with `421` (every worker queue full).
    pub shed_worker_busy: u64,
    /// Connections shed with `421` while draining.
    pub shed_draining: u64,
    /// Connections evicted for exhausting the session budget.
    pub session_deadline_evictions: u64,
    /// Connections evicted for exhausting the `DATA` budget.
    pub data_deadline_evictions: u64,
    /// `set_read_timeout` failures.
    pub sockopt_errors: u64,
    /// Worker reply writes abandoned on a non-reading peer.
    pub worker_write_timeouts: u64,
    /// Admin responses abandoned on a non-reading client.
    pub admin_write_timeouts: u64,
}

impl LiveStats {
    /// Creates (or re-binds) every live-server counter on `registry`.
    /// Public so the deterministic pre-trust engine tests can drive
    /// [`crate::pretrust::run_pretrust`] against a fresh registry.
    pub fn register(registry: &Registry) -> LiveStats {
        LiveStats {
            accepted: registry.counter("live.accepted"),
            delivered: registry.counter("live.delivered"),
            bounces: registry.counter("live.bounces"),
            unfinished: registry.counter("live.unfinished"),
            delegated: registry.counter("live.delegated"),
            mails_stored: registry.counter("live.mails_stored"),
            blacklisted: registry.counter("live.blacklisted"),
            rejected_ipv6: registry.counter("live.rejected_ipv6"),
            overflows: registry.counter("live.overflows"),
            idle_evictions: registry.counter("live.idle_evictions"),
            recovered_records: registry.counter("live.recovered_records"),
            fsck_repairs: registry.counter("live.fsck_repairs"),
            shed_connections: registry.counter("live.shed_connections"),
            shed_per_ip: registry.counter("live.shed_per_ip"),
            shed_worker_busy: registry.counter("live.shed_worker_busy"),
            shed_draining: registry.counter("live.shed_draining"),
            session_deadline_evictions: registry.counter("live.session_deadline_evictions"),
            data_deadline_evictions: registry.counter("live.data_deadline_evictions"),
            sockopt_errors: registry.counter("live.sockopt_errors"),
            worker_write_timeouts: registry.counter("live.worker_write_timeouts"),
            admin_write_timeouts: registry.counter("live.admin_write_timeouts"),
        }
    }

    /// Reads every counter at once.
    pub fn snapshot(&self) -> LiveSnapshot {
        LiveSnapshot {
            accepted: self.accepted.get(),
            delivered: self.delivered.get(),
            bounces: self.bounces.get(),
            unfinished: self.unfinished.get(),
            delegated: self.delegated.get(),
            mails_stored: self.mails_stored.get(),
            blacklisted: self.blacklisted.get(),
            rejected_ipv6: self.rejected_ipv6.get(),
            overflows: self.overflows.get(),
            idle_evictions: self.idle_evictions.get(),
            recovered_records: self.recovered_records.get(),
            fsck_repairs: self.fsck_repairs.get(),
            shed_connections: self.shed_connections.get(),
            shed_per_ip: self.shed_per_ip.get(),
            shed_worker_busy: self.shed_worker_busy.get(),
            shed_draining: self.shed_draining.get(),
            session_deadline_evictions: self.session_deadline_evictions.get(),
            data_deadline_evictions: self.data_deadline_evictions.get(),
            sockopt_errors: self.sockopt_errors.get(),
            worker_write_timeouts: self.worker_write_timeouts.get(),
            admin_write_timeouts: self.admin_write_timeouts.get(),
        }
    }
}

/// Per-verb command counters (`smtp.verb.*`), shared by the master's
/// pre-trust loop and the worker pool.
#[derive(Debug, Clone)]
pub(crate) struct VerbCounters {
    helo: Arc<Counter>,
    ehlo: Arc<Counter>,
    mail: Arc<Counter>,
    rcpt: Arc<Counter>,
    data: Arc<Counter>,
    rset: Arc<Counter>,
    noop: Arc<Counter>,
    vrfy: Arc<Counter>,
    quit: Arc<Counter>,
    unknown: Arc<Counter>,
}

impl VerbCounters {
    pub(crate) fn register(registry: &Registry) -> VerbCounters {
        VerbCounters {
            helo: registry.counter("smtp.verb.helo"),
            ehlo: registry.counter("smtp.verb.ehlo"),
            mail: registry.counter("smtp.verb.mail"),
            rcpt: registry.counter("smtp.verb.rcpt"),
            data: registry.counter("smtp.verb.data"),
            rset: registry.counter("smtp.verb.rset"),
            noop: registry.counter("smtp.verb.noop"),
            vrfy: registry.counter("smtp.verb.vrfy"),
            quit: registry.counter("smtp.verb.quit"),
            unknown: registry.counter("smtp.verb.unknown"),
        }
    }

    /// Counts a line that failed to parse as any SMTP verb.
    pub(crate) fn count_unknown(&self) {
        self.unknown.inc();
    }

    pub(crate) fn count(&self, cmd: &Command) {
        match cmd {
            Command::Helo(_) => self.helo.inc(),
            Command::Ehlo(_) => self.ehlo.inc(),
            Command::MailFrom(_) => self.mail.inc(),
            Command::RcptTo(_) => self.rcpt.inc(),
            Command::Data => self.data.inc(),
            Command::Rset => self.rset.inc(),
            Command::Noop => self.noop.inc(),
            Command::Vrfy(_) => self.vrfy.inc(),
            Command::Quit => self.quit.inc(),
            Command::Unknown(_) => self.unknown.inc(),
        }
    }
}

/// Registers every instrument otherwise created lazily in a thread
/// prologue (workers, master engine, DNSBL agent), so the registry's
/// inventory — and an admin `METRICS` render — is complete the instant
/// `LiveServer::start` returns instead of whenever the scheduler first
/// runs each thread. `get_or_create` semantics make the later per-thread
/// registrations resolve to these same instruments.
fn preregister_thread_instruments(registry: &Registry) {
    registry.span("worker.queue_wait_ns");
    registry.span("worker.data_ns");
    registry.span("worker.storage_ns");
    registry.gauge("worker.queue_depth");
    registry.counter("live.internal_error");
    VerbCounters::register(registry);
    registry.span("master.pretrust_ns");
    registry.counter("master.wakeups");
    registry.counter("master.io_events");
    registry.counter("master.timers_fired");
    registry.counter("master.write_stalls");
    registry.counter("master.evicted_slow_writers");
    registry.gauge("master.outq_bytes");
    registry.counter("dnsbl.agent_dropped");
}

/// A running spam-aware SMTP server.
///
/// # Example
///
/// ```no_run
/// use spamaware_core::{LiveConfig, LiveServer};
///
/// let cfg = LiveConfig::localhost("/tmp/spamaware-mail", vec!["alice".into()]);
/// let server = LiveServer::start(cfg)?;
/// println!("listening on {}", server.local_addr());
/// println!("{}", server.metrics_report());
/// server.shutdown();
/// # Ok::<(), spamaware_core::ServeError>(())
/// ```
pub struct LiveServer {
    addr: SocketAddr,
    admin_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    inflight: Arc<Gauge>,
    /// Interrupts the master's reactor wait so stop/drain requests are
    /// noticed immediately instead of at the next timer deadline.
    master_waker: rawpoll::WakePipe,
    /// One-shot stop latch the worker and admin threads poll alongside
    /// their sockets; written once at shutdown and never drained.
    stop_pipe: rawpoll::WakePipe,
    acceptor: Option<JoinHandle<()>>,
    admin: Option<JoinHandle<()>>,
    dnsbl_agent: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<LiveStats>,
    registry: Arc<Registry>,
    store: Arc<ShardedStore<RealDir>>,
}

struct Delegated {
    stream: TcpStream,
    session: ServerSession,
    leftover: Vec<u8>,
    /// Reply bytes the master's bounded outbound queue had not yet
    /// flushed at hand-off; the worker writes them (under its own write
    /// budget) before any reply of its own.
    pending_out: Vec<u8>,
    peer: Ipv4,
    /// Registry-clock instant the master enqueued this task, for the
    /// `worker.queue_wait_ns` span.
    enqueued_ns: u64,
    /// Registry-clock instant the connection was accepted; the worker
    /// charges the whole-session deadline against it.
    accepted_ns: u64,
}

impl LiveServer {
    /// Binds and starts the acceptor, admin, and worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] if a socket cannot be bound or the storage
    /// root cannot be created.
    pub fn start(cfg: LiveConfig) -> Result<LiveServer, ServeError> {
        if cfg.workers == 0 || cfg.worker_queue == 0 || cfg.store_shards == 0 {
            return Err(ServeError::Config(
                "need at least one worker, queue slot, and store shard".to_owned(),
            ));
        }
        if cfg.max_connections == 0 || cfg.max_pretrust_per_ip == 0 {
            return Err(ServeError::Config(
                "connection caps must admit at least one connection".to_owned(),
            ));
        }
        if cfg.max_outq_bytes == 0 {
            return Err(ServeError::Config(
                "outbound queue cap must admit at least one byte".to_owned(),
            ));
        }
        if cfg.worker_read_timeout.is_zero()
            || cfg.admin_read_timeout.is_zero()
            || cfg.session_deadline.is_zero()
            || cfg.data_deadline.is_zero()
            || cfg.write_stall_timeout.is_zero()
            || cfg.admin_write_timeout.is_zero()
        {
            return Err(ServeError::Config(
                "read timeouts, write budgets, and phase deadlines must be nonzero".to_owned(),
            ));
        }
        let listener = TcpListener::bind(cfg.bind).map_err(|e| ServeError::Io(e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Io(e.to_string()))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(e.to_string()))?;
        let registry = Arc::new(Registry::with_wall_clock());
        // Crash recovery first: fsck truncates torn tails and repairs
        // shmailbox refcounts on disk, then the partitions replay clean.
        let (store, fsck_report) =
            ShardedStore::open_with_fsck(cfg.store_shards, || RealDir::new(&cfg.storage_root))
                .map_err(|e| ServeError::Io(e.to_string()))?;
        let store = Arc::new(store.with_metrics(&registry, "mfs"));
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(LiveStats::register(&registry));
        stats.recovered_records.add(fsck_report.recovered_records());
        stats.fsck_repairs.add(fsck_report.repairs());
        // Seed ids above everything already on disk: a restarted server
        // must never hand out a MailId a surviving record still uses.
        let first_id = store.max_mail_id().map_or(1, |id| id.0 + 1);
        let next_id = Arc::new(AtomicU64::new(first_id));
        let mailboxes: Arc<HashSet<String>> = Arc::new(cfg.mailboxes.iter().cloned().collect());
        // Line buffers cycle between the master's pre-trust loop and the
        // workers; body buffers cycle per DATA transaction.
        let line_pool = Arc::new(BufferPool::new(&registry, 64, 4096));
        let body_pool = Arc::new(BufferPool::new(&registry, 32, 16 * 1024));

        let draining = Arc::new(AtomicBool::new(false));
        let inflight = registry.gauge("live.inflight");
        preregister_thread_instruments(&registry);
        // The stop latch is written once at shutdown; every worker and the
        // admin thread poll its read end alongside their sockets, so a
        // stop interrupts any wait without per-thread timeout slicing.
        let stop_pipe =
            rawpoll::WakePipe::new().map_err(|e| ServeError::Io(format!("stop pipe: {e}")))?;
        // The reactor is built here (not on the master thread) so its
        // waker exists before any thread that needs to interrupt it.
        let reactor = OsReactor::new().map_err(|e| ServeError::Io(format!("reactor: {e}")))?;
        let master_waker = reactor.waker();

        let mut worker_handles = Vec::new();
        let mut senders: Vec<Sender<Delegated>> = Vec::new();
        for w in 0..cfg.workers {
            let (tx, rx): (Sender<Delegated>, Receiver<Delegated>) = bounded(cfg.worker_queue);
            senders.push(tx);
            let ctx = WorkerCtx {
                rx,
                store: Arc::clone(&store),
                stats: Arc::clone(&stats),
                next_id: Arc::clone(&next_id),
                mailboxes: Arc::clone(&mailboxes),
                registry: Arc::clone(&registry),
                line_pool: Arc::clone(&line_pool),
                body_pool: Arc::clone(&body_pool),
                stop: Arc::clone(&stop),
                draining: Arc::clone(&draining),
                inflight: Arc::clone(&inflight),
                read_timeout: cfg.worker_read_timeout,
                session_deadline: cfg.session_deadline,
                data_deadline: cfg.data_deadline,
                hold: cfg.worker_hold.clone(),
                stop_pipe: stop_pipe.clone(),
            };
            let handle = std::thread::Builder::new()
                .name(format!("smtpd-{w}"))
                .spawn(move || worker_loop(ctx))
                .map_err(|e| ServeError::Io(format!("spawn worker: {e}")))?;
            worker_handles.push(handle);
        }

        // The DNSBL agent thread owns every lookup (cache, breaker, UDP
        // socket); the master only ever does a non-blocking `try_send`
        // into this bounded queue (§5: the master must never block).
        let (dnsbl_tx, dnsbl_agent) = if cfg.dnsbl.is_some() || cfg.dnsbl_udp.is_some() {
            // Same up-front registration as `preregister_thread_instruments`,
            // but only when an agent will actually run — a DNSBL-less
            // server's report should not list agent metrics.
            registry.span("dnsbl.agent_ns");
            registry.counter("dnsbl.udp_timeouts");
            registry.counter("dnsbl.udp_errors");
            let (tx, rx): (Sender<Ipv4>, Receiver<Ipv4>) = bounded(DNSBL_AGENT_QUEUE);
            let actx = DnsblAgentCtx {
                rx,
                stop: Arc::clone(&stop),
                blacklisted: Arc::clone(&stats.blacklisted),
                registry: Arc::clone(&registry),
                dnsbl: cfg.dnsbl,
                dnsbl_udp: cfg.dnsbl_udp,
                dnsbl_udp_timeout: cfg.dnsbl_udp_timeout,
                dnsbl_breaker: cfg.dnsbl_breaker,
            };
            let handle = std::thread::Builder::new()
                .name("dnsbl-agent".to_owned())
                .spawn(move || agent_loop(actx))
                .map_err(|e| ServeError::Io(format!("spawn dnsbl agent: {e}")))?;
            (Some(tx), Some(handle))
        } else {
            (None, None)
        };

        let acceptor = {
            let ctx = MasterCtx {
                senders,
                stop: Arc::clone(&stop),
                draining: Arc::clone(&draining),
                stats: Arc::clone(&stats),
                mailboxes: Arc::clone(&mailboxes),
                hostname: Arc::clone(&cfg.hostname),
                dnsbl_tx,
                pretrust_idle_timeout: cfg.pretrust_idle_timeout,
                session_deadline: cfg.session_deadline,
                max_outq_bytes: cfg.max_outq_bytes,
                write_stall_timeout: cfg.write_stall_timeout,
                max_connections: cfg.max_connections,
                max_pretrust_per_ip: cfg.max_pretrust_per_ip,
                registry: Arc::clone(&registry),
                line_pool: Arc::clone(&line_pool),
                inflight: Arc::clone(&inflight),
            };
            std::thread::Builder::new()
                .name("master".to_owned())
                .spawn(move || master_loop(listener, reactor, ctx))
                .map_err(|e| ServeError::Io(format!("spawn master: {e}")))?
        };

        let admin_result: Result<(TcpListener, SocketAddr), ServeError> = (|| {
            let listener =
                TcpListener::bind("127.0.0.1:0").map_err(|e| ServeError::Io(e.to_string()))?;
            listener
                .set_nonblocking(true)
                .map_err(|e| ServeError::Io(e.to_string()))?;
            let addr = listener
                .local_addr()
                .map_err(|e| ServeError::Io(e.to_string()))?;
            Ok((listener, addr))
        })();
        let admin_spawn = admin_result.and_then(|(admin_listener, admin_addr)| {
            let actx = AdminCtx {
                registry: Arc::clone(&registry),
                stop: Arc::clone(&stop),
                draining: Arc::clone(&draining),
                read_timeout: cfg.admin_read_timeout,
                write_timeout: cfg.admin_write_timeout,
                sockopt_errors: Arc::clone(&stats.sockopt_errors),
                admin_write_timeouts: Arc::clone(&stats.admin_write_timeouts),
                stop_pipe: stop_pipe.clone(),
                master_waker: master_waker.clone(),
            };
            std::thread::Builder::new()
                .name("admin".to_owned())
                .spawn(move || admin_loop(admin_listener, actx))
                .map(|h| (h, admin_addr))
                .map_err(|e| ServeError::Io(format!("spawn admin: {e}")))
        });
        let (admin, admin_addr) = match admin_spawn {
            Ok(pair) => pair,
            Err(e) => {
                // The acceptor and agent are already live: stop them
                // before bailing so a failed start leaves no thread
                // behind.
                stop.store(true, Ordering::SeqCst);
                master_waker.wake();
                stop_pipe.wake();
                let _ = acceptor.join();
                if let Some(h) = dnsbl_agent {
                    let _ = h.join();
                }
                return Err(e);
            }
        };

        Ok(LiveServer {
            addr,
            admin_addr,
            stop,
            draining,
            inflight,
            master_waker,
            stop_pipe,
            acceptor: Some(acceptor),
            admin: Some(admin),
            dnsbl_agent,
            workers: worker_handles,
            stats,
            registry,
            store,
        })
    }

    /// The bound SMTP address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The localhost admin socket answering `METRICS`/`STAT` commands.
    pub fn admin_addr(&self) -> SocketAddr {
        self.admin_addr
    }

    /// Live counters.
    pub fn stats(&self) -> &LiveStats {
        &self.stats
    }

    /// The server's metrics registry (counters, gauges, span histograms).
    pub fn metrics(&self) -> &Registry {
        &self.registry
    }

    /// Renders every registered metric as deterministic, sorted text.
    pub fn metrics_report(&self) -> String {
        self.registry.render()
    }

    /// Shared handle to the mail store (for inspection or a co-located
    /// POP3 server; all access methods take `&self`).
    pub fn store(&self) -> Arc<ShardedStore<RealDir>> {
        Arc::clone(&self.store)
    }

    /// Whether a drain has been requested (via [`LiveServer::drain`] or
    /// the admin `DRAIN` command).
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Connections currently in flight (pre-trust, queued, or being
    /// served by a worker).
    pub fn inflight(&self) -> i64 {
        self.inflight.get()
    }

    /// Begins a graceful drain and waits up to `grace` for in-flight work
    /// to finish: the master `421`s new arrivals and evicts its pre-trust
    /// connections (they carry no acked mail), workers finish any `DATA`
    /// transfer already in progress — every acked mail reaches the store —
    /// and then `421`-close instead of starting new transactions.
    ///
    /// Returns `true` once the in-flight gauge reaches zero, `false` if
    /// the grace period expires first (stragglers are cut off by the
    /// subsequent [`LiveServer::shutdown`]).
    #[must_use]
    pub fn drain(&self, grace: Duration) -> bool {
        self.draining.store(true, Ordering::SeqCst);
        // Interrupt the reactor wait so the eviction sweep runs now, not
        // at the next readiness event or timer deadline.
        self.master_waker.wake();
        let deadline = std::time::Instant::now() + grace;
        while self.inflight.get() > 0 {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }

    /// Stops the acceptor and workers, waiting for them to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the master out of its reactor wait and latch the stop pipe
        // every worker and the admin thread poll.
        self.master_waker.wake();
        self.stop_pipe.wake();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.admin.take() {
            let _ = h.join();
        }
        if let Some(h) = self.dnsbl_agent.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for LiveServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Everything the master thread owns, bundled so the spawn site stays
/// readable as the overload knobs multiply.
struct MasterCtx {
    senders: Vec<Sender<Delegated>>,
    stop: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    stats: Arc<LiveStats>,
    mailboxes: Arc<HashSet<String>>,
    hostname: Arc<str>,
    /// Hand-off to the DNSBL agent thread, present iff a DNSBL is
    /// configured. The master never performs a lookup itself.
    dnsbl_tx: Option<Sender<Ipv4>>,
    pretrust_idle_timeout: Duration,
    session_deadline: Duration,
    max_outq_bytes: usize,
    write_stall_timeout: Duration,
    max_connections: usize,
    max_pretrust_per_ip: usize,
    registry: Arc<Registry>,
    line_pool: Arc<BufferPool>,
    inflight: Arc<Gauge>,
}

/// The master thread: builds the engine context and the worker sink,
/// then hands control to the readiness-driven pre-trust event loop
/// ([`pretrust::run_pretrust`]). After this wrapper the reactor wait inside the
/// engine is the *only* blocking call reachable on this thread — there is
/// no accept polling, no per-connection read slicing, and no idle sleep.
fn master_loop(mut listener: TcpListener, mut reactor: OsReactor, ctx: MasterCtx) {
    let queue_depth = ctx.registry.gauge("worker.queue_depth");
    let engine = EngineCtx {
        stop: ctx.stop,
        draining: ctx.draining,
        stats: Arc::clone(&ctx.stats),
        mailboxes: ctx.mailboxes,
        hostname: ctx.hostname,
        dnsbl_tx: ctx.dnsbl_tx,
        pretrust_idle_timeout: ctx.pretrust_idle_timeout,
        session_deadline: ctx.session_deadline,
        max_outq_bytes: ctx.max_outq_bytes,
        write_stall_timeout: ctx.write_stall_timeout,
        max_connections: ctx.max_connections,
        max_pretrust_per_ip: ctx.max_pretrust_per_ip,
        registry: Arc::clone(&ctx.registry),
        line_pool: ctx.line_pool,
        inflight: ctx.inflight,
    };
    let senders = ctx.senders;
    let stats = ctx.stats;
    let registry = ctx.registry;
    let mut rr = 0usize;
    // Round-robin non-blocking dispatch; full queues push the task to the
    // next worker (natural throttle). A fully saturated pool returns the
    // task, and the engine sheds it with `421` — a blocking send here
    // would stall the master, and with it every pre-trust dialog and the
    // accept path, behind the slowest worker.
    let mut sink = |t: Trusted<TcpStream>| -> Option<Trusted<TcpStream>> {
        let mut task = Delegated {
            stream: t.conn,
            session: t.session,
            leftover: t.leftover,
            pending_out: t.pending_out,
            peer: t.peer,
            enqueued_ns: registry.now_nanos(),
            accepted_ns: t.accepted_ns,
        };
        for probe in 0..senders.len() {
            let w = (rr + probe) % senders.len();
            match senders[w].try_send(task) {
                Ok(()) => {
                    rr = (w + 1) % senders.len();
                    stats.delegated.inc();
                    queue_depth.inc();
                    return None;
                }
                Err(TrySendError::Full(t)) | Err(TrySendError::Disconnected(t)) => task = t,
            }
        }
        Some(Trusted {
            conn: task.stream,
            session: task.session,
            leftover: task.leftover,
            pending_out: task.pending_out,
            peer: task.peer,
            accepted_ns: task.accepted_ns,
        })
    };
    pretrust::run_pretrust(&mut listener, &mut reactor, &engine, &mut sink);
    // Returning drops the senders, which disconnects the workers'
    // receive loops.
}

/// Writes accumulated reply bytes as one bounded socket write (the
/// coalesced answer to a pipelined burst); no-op for an empty buffer.
/// Returns `false` when the connection is no longer worth keeping: the
/// peer is gone, the server is stopping, or the peer stopped reading for
/// a whole write budget (counted in `live.worker_write_timeouts`).
fn flush_replies(stream: &mut TcpStream, out: &[u8], ctx: &WorkerCtx) -> bool {
    if out.is_empty() {
        return true;
    }
    match netio::write_all_bounded(stream, out, &ctx.stop_pipe, ctx.read_timeout) {
        netio::WriteOutcome::Done => true,
        netio::WriteOutcome::TimedOut => {
            ctx.stats.worker_write_timeouts.inc();
            false
        }
        netio::WriteOutcome::Stopped | netio::WriteOutcome::Closed => false,
    }
}

/// Bounded single-reply write for worker-side evictions and `421`s.
fn write_reply(stream: &mut TcpStream, reply: &spamaware_smtp::Reply, ctx: &WorkerCtx) -> bool {
    flush_replies(stream, reply.to_wire().as_bytes(), ctx)
}

/// Everything one worker thread owns.
struct WorkerCtx {
    rx: Receiver<Delegated>,
    store: Arc<ShardedStore<RealDir>>,
    stats: Arc<LiveStats>,
    next_id: Arc<AtomicU64>,
    mailboxes: Arc<HashSet<String>>,
    registry: Arc<Registry>,
    line_pool: Arc<BufferPool>,
    body_pool: Arc<BufferPool>,
    stop: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    inflight: Arc<Gauge>,
    read_timeout: Duration,
    session_deadline: Duration,
    data_deadline: Duration,
    /// Read end stays permanently readable once the server stops (the
    /// write end is woken exactly once and never drained), so every
    /// `poll2` wait in this worker doubles as a shutdown check.
    stop_pipe: rawpoll::WakePipe,
    hold: Option<Arc<AtomicBool>>,
}

/// Longest a worker waits in one readiness poll before re-checking the
/// drain flag and the phase budgets. Bounds how stale a worker's view of
/// a drain request can get without busy-polling.
const WORKER_POLL: Duration = Duration::from_millis(100);

fn worker_loop(ctx: WorkerCtx) {
    let queue_wait_ns = ctx.registry.span("worker.queue_wait_ns");
    let data_ns = ctx.registry.span("worker.data_ns");
    let storage_ns = ctx.registry.span("worker.storage_ns");
    let queue_depth = ctx.registry.gauge("worker.queue_depth");
    let internal_errors = ctx.registry.counter("live.internal_error");
    let verbs = VerbCounters::register(&ctx.registry);
    let stats = &ctx.stats;
    let (store, line_pool, body_pool) = (&ctx.store, &ctx.line_pool, &ctx.body_pool);
    let exists = |a: &MailAddr| ctx.mailboxes.contains(a.local_part());
    let session_deadline_ns = duration_ns(ctx.session_deadline);
    let data_deadline_ns = duration_ns(ctx.data_deadline);
    let read_timeout_ns = duration_ns(ctx.read_timeout);
    // Worker-lifetime reply buffer: one coalesced write per drained burst.
    // Pooled with a return-on-drop guard so it recycles on worker exit.
    let mut out = line_pool.take();
    while let Ok(task) = ctx.rx.recv() {
        if let Some(hold) = &ctx.hold {
            // Chaos hook: pretend to be wedged (a slow disk, a stuck
            // filter) until released, so tests can fill every queue.
            while hold.load(Ordering::SeqCst)
                && !ctx.stop.load(Ordering::SeqCst)
                && !ctx.draining.load(Ordering::SeqCst)
            {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        queue_depth.dec();
        queue_wait_ns.record_since(task.enqueued_ns);
        let _ = task.peer;
        let accepted_ns = task.accepted_ns;
        let mut session = task.session;
        session.capture_bodies(true);
        // The stream arrives nonblocking from the master's reactor; reads
        // are gated on `poll2` below, so it stays that way.
        let mut stream = task.stream;
        // Adopt the master's leftover bytes *and* their allocation; it
        // returns to the line pool when the connection ends.
        let mut lines = LineBuffer::from_remaining(task.leftover);
        let mut tmp = [0u8; 4096];
        let mut in_data = false;
        let mut data_start: Option<u64> = None;
        let mut last_activity_ns = ctx.registry.now_nanos();
        // Backlog the master's bounded outbound queue had not flushed by
        // hand-off goes first — the peer must never observe a reply gap
        // across the delegation seam. A peer that will not absorb even
        // this is dropped before it costs a single read.
        let alive = flush_replies(&mut stream, &task.pending_out, &ctx);
        'conn: loop {
            if !alive {
                // The hand-off flush already lost the peer: skip the
                // session and fall through to cleanup.
                break;
            }
            // Drain complete lines first, then read more.
            out.clear();
            loop {
                match lines.pop_line() {
                    Ok(Some(line)) => {
                        if in_data {
                            if session.data_line(&line) == DataVerdict::Complete {
                                in_data = false;
                                if let Some(start) = data_start.take() {
                                    data_ns.record_since(start);
                                }
                                let id = MailId(ctx.next_id.fetch_add(1, Ordering::Relaxed));
                                let reply = session.finish_data(&id.to_string());
                                let reply = if reply.code() == 250 {
                                    match session.take_last_delivered() {
                                        Some(env) => {
                                            let refs: Vec<&str> = env
                                                .recipients
                                                .iter()
                                                .map(|a| a.local_part())
                                                .collect();
                                            let stored = {
                                                let _span = storage_ns.start();
                                                store.deliver(id, &refs, DataRef::Bytes(&env.body))
                                            };
                                            let reply = match stored {
                                                Ok(()) => {
                                                    stats.mails_stored.inc();
                                                    reply
                                                }
                                                Err(_) => spamaware_smtp::Reply::local_error(),
                                            };
                                            // The body's allocation goes back
                                            // to the pool for the next DATA.
                                            body_pool.put(env.body);
                                            reply
                                        }
                                        None => {
                                            // A 250 with no envelope is a
                                            // state-machine bug: log it as a
                                            // counter and degrade to 451
                                            // instead of crashing the worker.
                                            internal_errors.inc();
                                            spamaware_smtp::Reply::local_error()
                                        }
                                    }
                                } else {
                                    // 552 oversized (or similar): the session
                                    // already discarded the transaction.
                                    reply
                                };
                                reply.write_wire(&mut out);
                            }
                        } else {
                            let text = String::from_utf8_lossy(&line).into_owned();
                            let reply = match Command::parse(&text) {
                                Ok(cmd) => {
                                    verbs.count(&cmd);
                                    session.handle(cmd, &exists)
                                }
                                Err(_) => {
                                    verbs.unknown.inc();
                                    spamaware_smtp::Reply::bad_argument()
                                }
                            };
                            if reply.code() == 354 {
                                in_data = true;
                                data_start = Some(data_ns.now());
                                // Capture the body into a pooled buffer.
                                session.provide_body_buffer(body_pool.take_vec());
                            }
                            reply.write_wire(&mut out);
                            if session.phase() == spamaware_smtp::SessionPhase::Closed {
                                let _ = flush_replies(&mut stream, &out, &ctx);
                                break 'conn;
                            }
                        }
                    }
                    Ok(None) => break,
                    Err(LineOverflow) => {
                        stats.overflows.inc();
                        spamaware_smtp::Reply::syntax_error().write_wire(&mut out);
                        let _ = flush_replies(&mut stream, &out, &ctx);
                        break 'conn;
                    }
                }
            }
            if !flush_replies(&mut stream, &out, &ctx) {
                break;
            }
            if ctx.stop.load(Ordering::SeqCst) {
                // Hard shutdown: cut the connection without ceremony (a
                // graceful exit drains first, so nothing acked is at
                // risk). The stop pipe also aborts any wait in progress.
                break;
            }
            if ctx.draining.load(Ordering::SeqCst) && !in_data {
                // Draining: any DATA transfer already in flight ran to
                // completion above (its ack is on the wire); between
                // transactions the connection is told to come back later.
                let _ = write_reply(&mut stream, &Reply::service_not_available(), &ctx);
                break;
            }
            // Phase budgets, re-checked every iteration. An exhausted
            // session or DATA budget evicts with `421` even if the client
            // is still actively sending; an exhausted idle budget drops a
            // silent client quietly (pre-existing behavior). The worker
            // waits for readiness for at most the smallest remaining
            // budget, capped at [`WORKER_POLL`] so a drain request or a
            // budget that expires mid-wait is noticed promptly.
            let now = ctx.registry.now_nanos();
            let session_left = session_deadline_ns.saturating_sub(now.saturating_sub(accepted_ns));
            if session_left == 0 {
                stats.session_deadline_evictions.inc();
                let _ = write_reply(&mut stream, &Reply::service_not_available(), &ctx);
                break;
            }
            let idle_left = read_timeout_ns.saturating_sub(now.saturating_sub(last_activity_ns));
            if idle_left == 0 {
                break;
            }
            let mut budget_ns = session_left.min(idle_left).min(duration_ns(WORKER_POLL));
            if in_data {
                let since_data = now.saturating_sub(data_start.unwrap_or(now));
                let data_left = data_deadline_ns.saturating_sub(since_data);
                if data_left == 0 {
                    stats.data_deadline_evictions.inc();
                    let _ = write_reply(&mut stream, &Reply::service_not_available(), &ctx);
                    break;
                }
                budget_ns = budget_ns.min(data_left);
            }
            // Wait for bytes, hangup, or the stop latch — whichever comes
            // first within the budget. `ns_to_timeout_ms` rounds up, so a
            // sub-millisecond remainder still waits one tick instead of
            // spinning.
            let wait = rawpoll::ns_to_timeout_ms(budget_ns);
            match rawpoll::poll2(stream.as_raw_fd(), false, ctx.stop_pipe.read_fd(), wait) {
                Ok(r) if r.b_ready => break,
                Ok(r) if r.a_ready || r.a_hangup => match stream.read(&mut tmp) {
                    Ok(0) => break,
                    Ok(n) => {
                        lines.push(&tmp[..n]);
                        last_activity_ns = ctx.registry.now_nanos();
                    }
                    // Spurious readiness: loop back through the budget
                    // checks and wait again.
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                    Err(_) => break,
                },
                // Timed out inside the budget slice: loop back and let the
                // checks above classify (evict, drop idle, or wait again).
                Ok(_) => {}
                Err(_) => break,
            }
        }
        line_pool.put(lines.into_remaining());
        if let Some(start) = data_start.take() {
            // Disconnected mid-DATA: close out the span so abandoned
            // transfers still show up in the latency histogram.
            data_ns.record_since(start);
        }
        if session.outcome() == SessionOutcome::Delivered {
            stats.delivered.inc();
        }
        ctx.inflight.dec();
    }
}

/// Saturating [`Duration`] → nanoseconds.
fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Hard cap on one admin response. A `METRICS` render is a few KiB
/// today; the cap only matters if the instrument inventory ever explodes,
/// and truncation keeps the write budget below meaningful.
const ADMIN_RESPONSE_CAP: usize = 256 * 1024;

/// Everything the admin thread owns.
struct AdminCtx {
    registry: Arc<Registry>,
    stop: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    read_timeout: Duration,
    /// Budget for writing one response; expiry counts in
    /// `live.admin_write_timeouts` and drops the connection.
    write_timeout: Duration,
    sockopt_errors: Arc<Counter>,
    admin_write_timeouts: Arc<Counter>,
    /// Shutdown latch shared with the workers: permanently readable once
    /// the server stops, so the accept wait below aborts immediately.
    stop_pipe: rawpoll::WakePipe,
    /// Wakes the master out of its reactor wait when `DRAIN` arrives, so
    /// the pre-trust eviction sweep runs now instead of at the next
    /// natural readiness event.
    master_waker: rawpoll::WakePipe,
}

/// Serves operator commands over a localhost admin socket, one command
/// line per connection: `METRICS` (alias `STAT`) answers with
/// [`Registry::render`] output; `DRAIN` flips the graceful-drain flag and
/// answers `OK draining` — the caller then watches the `live.inflight`
/// gauge fall to zero before stopping the process.
fn admin_loop(listener: TcpListener, ctx: AdminCtx) {
    while !ctx.stop.load(Ordering::SeqCst) {
        // Sleep until a client connects or the stop latch fires — the
        // admin thread burns zero cycles while idle.
        match rawpoll::poll2(listener.as_raw_fd(), false, ctx.stop_pipe.read_fd(), None) {
            Ok(r) if r.b_ready => break,
            Ok(r) if !r.a_ready => continue,
            Ok(_) => {}
            Err(_) => break,
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                // Accepted sockets do not inherit the listener's
                // nonblocking flag, so a plain read deadline still bounds
                // this conversation.
                if stream.set_read_timeout(Some(ctx.read_timeout)).is_err() {
                    ctx.sockopt_errors.inc();
                    continue;
                }
                let mut buf = Vec::new();
                let mut tmp = [0u8; 128];
                while !buf.contains(&b'\n') && buf.len() <= 128 {
                    match stream.read(&mut tmp) {
                        Ok(0) => break,
                        Ok(n) => buf.extend_from_slice(&tmp[..n]),
                        Err(_) => break,
                    }
                }
                let line = String::from_utf8_lossy(&buf);
                let cmd = line.trim();
                let mut response =
                    if cmd.eq_ignore_ascii_case("METRICS") || cmd.eq_ignore_ascii_case("STAT") {
                        ctx.registry.render()
                    } else if cmd.eq_ignore_ascii_case("DRAIN") {
                        ctx.draining.store(true, Ordering::SeqCst);
                        ctx.master_waker.wake();
                        "OK draining\n".to_owned()
                    } else {
                        "ERR unknown admin command; try METRICS\n".to_owned()
                    };
                if response.len() > ADMIN_RESPONSE_CAP {
                    let mut cut = ADMIN_RESPONSE_CAP;
                    while !response.is_char_boundary(cut) {
                        cut -= 1;
                    }
                    response.truncate(cut);
                    response.push_str("\n[truncated]\n");
                }
                // The response write is bounded the same way the reads
                // are: nonblocking socket, stop-aware waits, one budget —
                // a client that asks for METRICS and stops reading cannot
                // pin the admin thread.
                if stream.set_nonblocking(true).is_err() {
                    ctx.sockopt_errors.inc();
                    continue;
                }
                if let netio::WriteOutcome::TimedOut = netio::write_all_bounded(
                    &mut stream,
                    response.as_bytes(),
                    &ctx.stop_pipe,
                    ctx.write_timeout,
                ) {
                    ctx.admin_write_timeouts.inc();
                }
            }
            // Raced with another readiness consumer or a spurious wakeup:
            // go back to waiting.
            Err(e) if e.kind() == ErrorKind::WouldBlock => {}
            Err(_) => {}
        }
    }
}
