//! A live, threaded SMTP server implementing fork-after-trust over real
//! TCP sockets.
//!
//! This is the deployable rendering of the paper's §5 architecture (with
//! threads standing in for postfix's processes):
//!
//! * an **acceptor thread** plays the master: it owns every new connection
//!   and drives the SMTP dialog through a non-blocking event loop until a
//!   valid `RCPT TO` arrives (fixed-size line buffers only — the §5.2
//!   security argument);
//! * connections that never earn trust (bounces, abandoned handshakes) are
//!   answered and closed by the master without ever waking a worker;
//! * trusted connections are handed — socket, session state, and any
//!   already-buffered bytes — to one of a pool of **worker threads** over
//!   bounded queues (the 64 KiB-UNIX-socket analogue), round-robin with
//!   non-blocking sends so full queues throttle the master naturally;
//! * workers finish the transaction (`DATA` onward) and store mail in an
//!   [`MfsStore`] over [`RealDir`] — multi-recipient spam hits the disk
//!   once.

use crate::ServeError;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use spamaware_dnsbl::{CacheScheme, CachingResolver, DnsblServer};
use spamaware_mfs::{DataRef, MailId, MailStore, MfsStore, RealDir};
use spamaware_netaddr::Ipv4;
use spamaware_sim::Nanos;
use spamaware_smtp::{
    Command, DataVerdict, MailAddr, ServerSession, SessionConfig, SessionOutcome,
};
use std::collections::HashSet;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

const MAX_LINE: usize = 2048;

/// Configuration for [`LiveServer::start`].
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Address to bind (use port 0 for an ephemeral port in tests).
    pub bind: SocketAddr,
    /// Hostname announced in the greeting.
    pub hostname: String,
    /// Worker threads (the smtpd pool).
    pub workers: usize,
    /// Delegated connections a worker's queue holds (paper: ≈28).
    pub worker_queue: usize,
    /// Root directory for the MFS mail store.
    pub storage_root: PathBuf,
    /// Valid mailbox local parts.
    pub mailboxes: Vec<String>,
    /// Optional DNSBL checked (with prefix caching) per connection; the
    /// verdict is recorded, not used to reject (§9: "our solution does not
    /// delay/deny mail service to any client").
    pub dnsbl: Option<DnsblServer>,
    /// Optional real DNSBL over UDP: `(server address, zone)`. Queried
    /// with the DNSBLv6 bitmap scheme and cached per /25 like `dnsbl`;
    /// takes precedence over the in-process `dnsbl` when both are set.
    pub dnsbl_udp: Option<(std::net::SocketAddr, String)>,
    /// How long a pre-trust connection may sit idle in the master's event
    /// loop before it is dropped (slow clients must not pin master state;
    /// the paper's smtpd has the analogous idle self-termination, §2).
    pub pretrust_idle_timeout: Duration,
}

impl LiveConfig {
    /// A localhost config rooted at `storage_root` hosting `mailboxes`.
    pub fn localhost(storage_root: impl Into<PathBuf>, mailboxes: Vec<String>) -> LiveConfig {
        LiveConfig {
            bind: "127.0.0.1:0".parse().expect("static addr"),
            hostname: "mx.spamaware.test".to_owned(),
            workers: 4,
            worker_queue: 28,
            storage_root: storage_root.into(),
            mailboxes,
            dnsbl: None,
            dnsbl_udp: None,
            pretrust_idle_timeout: Duration::from_secs(30),
        }
    }
}

/// Aggregate counters exposed by a running [`LiveServer`].
#[derive(Debug, Default)]
pub struct LiveStats {
    /// Connections accepted.
    pub accepted: AtomicU64,
    /// Connections closed after delivering mail.
    pub delivered: AtomicU64,
    /// Bounce connections dispatched entirely by the master.
    pub bounces: AtomicU64,
    /// Unfinished connections dispatched entirely by the master.
    pub unfinished: AtomicU64,
    /// Connections delegated to workers.
    pub delegated: AtomicU64,
    /// Mails stored.
    pub mails_stored: AtomicU64,
    /// Connections whose client IP was blacklisted.
    pub blacklisted: AtomicU64,
}

impl LiveStats {
    fn get(v: &AtomicU64) -> u64 {
        v.load(Ordering::Relaxed)
    }

    /// Snapshot as plain numbers `(accepted, delivered, bounces,
    /// unfinished, delegated, mails_stored, blacklisted)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64, u64, u64) {
        (
            Self::get(&self.accepted),
            Self::get(&self.delivered),
            Self::get(&self.bounces),
            Self::get(&self.unfinished),
            Self::get(&self.delegated),
            Self::get(&self.mails_stored),
            Self::get(&self.blacklisted),
        )
    }
}

/// A running spam-aware SMTP server.
///
/// # Example
///
/// ```no_run
/// use spamaware_core::{LiveConfig, LiveServer};
///
/// let cfg = LiveConfig::localhost("/tmp/spamaware-mail", vec!["alice".into()]);
/// let server = LiveServer::start(cfg)?;
/// println!("listening on {}", server.local_addr());
/// server.shutdown();
/// # Ok::<(), spamaware_core::ServeError>(())
/// ```
pub struct LiveServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<LiveStats>,
    store: Arc<Mutex<MfsStore<RealDir>>>,
}

struct Delegated {
    stream: TcpStream,
    session: ServerSession,
    leftover: Vec<u8>,
    peer: Ipv4,
}

impl LiveServer {
    /// Binds and starts the acceptor and worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] if the socket cannot be bound or the storage
    /// root cannot be created.
    pub fn start(cfg: LiveConfig) -> Result<LiveServer, ServeError> {
        if cfg.workers == 0 || cfg.worker_queue == 0 {
            return Err(ServeError::Config(
                "need at least one worker and queue slot".to_owned(),
            ));
        }
        let listener = TcpListener::bind(cfg.bind).map_err(|e| ServeError::Io(e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Io(e.to_string()))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(e.to_string()))?;
        let store = Arc::new(Mutex::new(
            MfsStore::open(
                RealDir::new(&cfg.storage_root).map_err(|e| ServeError::Io(e.to_string()))?,
            )
            .map_err(|e| ServeError::Io(e.to_string()))?,
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(LiveStats::default());
        let next_id = Arc::new(AtomicU64::new(1));
        let mailboxes: Arc<HashSet<String>> = Arc::new(cfg.mailboxes.iter().cloned().collect());

        let mut worker_handles = Vec::new();
        let mut senders: Vec<Sender<Delegated>> = Vec::new();
        for w in 0..cfg.workers {
            let (tx, rx): (Sender<Delegated>, Receiver<Delegated>) = bounded(cfg.worker_queue);
            senders.push(tx);
            let store = Arc::clone(&store);
            let stats = Arc::clone(&stats);
            let next_id = Arc::clone(&next_id);
            let mailboxes = Arc::clone(&mailboxes);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("smtpd-{w}"))
                    .spawn(move || worker_loop(rx, store, stats, next_id, mailboxes))
                    .expect("spawn worker"),
            );
        }

        let acceptor = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            let mailboxes = Arc::clone(&mailboxes);
            let hostname = cfg.hostname.clone();
            let dnsbl = cfg.dnsbl;
            let dnsbl_udp = cfg.dnsbl_udp;
            let idle = cfg.pretrust_idle_timeout;
            std::thread::Builder::new()
                .name("master".to_owned())
                .spawn(move || {
                    master_loop(
                        listener, senders, stop, stats, mailboxes, hostname, dnsbl, dnsbl_udp, idle,
                    )
                })
                .expect("spawn master")
        };

        Ok(LiveServer {
            addr,
            stop,
            acceptor: Some(acceptor),
            workers: worker_handles,
            stats,
            store,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters.
    pub fn stats(&self) -> &LiveStats {
        &self.stats
    }

    /// Shared handle to the mail store (for inspection).
    pub fn store(&self) -> Arc<Mutex<MfsStore<RealDir>>> {
        Arc::clone(&self.store)
    }

    /// Stops the acceptor and workers, waiting for them to exit.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for LiveServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Fixed-size line accumulator (the paper's "fixed-size receive buffer").
struct LineBuffer {
    buf: Vec<u8>,
}

impl LineBuffer {
    fn new() -> LineBuffer {
        LineBuffer { buf: Vec::new() }
    }

    fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops one complete line (without terminator), or signals overflow.
    fn pop_line(&mut self) -> Result<Option<Vec<u8>>, ()> {
        if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
            let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
            while line.last() == Some(&b'\n') || line.last() == Some(&b'\r') {
                line.pop();
            }
            Ok(Some(line))
        } else if self.buf.len() > MAX_LINE {
            Err(())
        } else {
            Ok(None)
        }
    }

    fn into_remaining(self) -> Vec<u8> {
        self.buf
    }
}

struct PreTrust {
    stream: TcpStream,
    session: ServerSession,
    lines: LineBuffer,
    peer: Ipv4,
    last_activity: std::time::Instant,
}

/// One blocking DNSBLv6 UDP lookup; failures degrade to an all-clear
/// bitmap (fail-open, like production mail servers when a DNSBL times
/// out).
fn udp_bitmap_lookup(server: SocketAddr, zone: &str, ip: Ipv4) -> spamaware_netaddr::PrefixBitmap {
    spamaware_dnsbl::UdpDnsbl::lookup_v6(server, zone, ip)
        .unwrap_or_else(|_| spamaware_netaddr::PrefixBitmap::empty(ip.prefix25()))
}

fn write_reply(stream: &mut TcpStream, reply: &spamaware_smtp::Reply) -> std::io::Result<()> {
    stream.write_all(reply.to_wire().as_bytes())
}

#[allow(clippy::too_many_arguments)]
fn master_loop(
    listener: TcpListener,
    senders: Vec<Sender<Delegated>>,
    stop: Arc<AtomicBool>,
    stats: Arc<LiveStats>,
    mailboxes: Arc<HashSet<String>>,
    hostname: String,
    dnsbl: Option<DnsblServer>,
    dnsbl_udp: Option<(SocketAddr, String)>,
    pretrust_idle_timeout: Duration,
) {
    let mut conns: Vec<PreTrust> = Vec::new();
    let mut rr = 0usize;
    let mut resolver = CachingResolver::new(CacheScheme::PerPrefix, Nanos::from_secs(86_400));
    let mut udp_cache: std::collections::HashMap<
        spamaware_netaddr::Prefix25,
        spamaware_netaddr::PrefixBitmap,
    > = std::collections::HashMap::new();
    let mut rng = spamaware_sim::det_rng(0x11FE);
    let exists = |a: &MailAddr| mailboxes.contains(a.local_part());
    while !stop.load(Ordering::SeqCst) {
        let mut progress = false;
        // Accept everything pending.
        loop {
            match listener.accept() {
                Ok((stream, peer)) => {
                    progress = true;
                    stats.accepted.fetch_add(1, Ordering::Relaxed);
                    let peer_ip = match peer.ip() {
                        std::net::IpAddr::V4(v4) => Ipv4::from(v4),
                        std::net::IpAddr::V6(_) => Ipv4::new(127, 0, 0, 1),
                    };
                    if let Some((server_addr, zone)) = &dnsbl_udp {
                        // Real DNSBLv6 query over UDP, cached per /25.
                        let bitmap = udp_cache
                            .entry(peer_ip.prefix25())
                            .or_insert_with(|| udp_bitmap_lookup(*server_addr, zone, peer_ip));
                        if bitmap.contains(peer_ip) {
                            stats.blacklisted.fetch_add(1, Ordering::Relaxed);
                        }
                    } else if let Some(server) = &dnsbl {
                        let now = Nanos::from_nanos(0);
                        if resolver.lookup(peer_ip, now, server, &mut rng).listed {
                            stats.blacklisted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    let _ = stream.set_nonblocking(true);
                    let session = ServerSession::new(SessionConfig {
                        hostname: hostname.clone(),
                        ..SessionConfig::default()
                    });
                    let mut stream = stream;
                    let _ = write_reply(&mut stream, &session.greeting());
                    conns.push(PreTrust {
                        stream,
                        session,
                        lines: LineBuffer::new(),
                        peer: peer_ip,
                        last_activity: std::time::Instant::now(),
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        // Event loop over pre-trust connections.
        let mut i = 0;
        while i < conns.len() {
            match pump_pretrust(&mut conns[i], &exists) {
                PumpResult::Idle => {
                    if conns[i].last_activity.elapsed() > pretrust_idle_timeout {
                        // Idle slow client: drop it without touching a
                        // worker (counts as an unfinished transaction).
                        let c = conns.swap_remove(i);
                        drop(c);
                        stats.unfinished.fetch_add(1, Ordering::Relaxed);
                        progress = true;
                    } else {
                        i += 1;
                    }
                }
                PumpResult::Progress => {
                    progress = true;
                    conns[i].last_activity = std::time::Instant::now();
                    i += 1;
                }
                PumpResult::Close => {
                    progress = true;
                    let c = conns.swap_remove(i);
                    match c.session.outcome() {
                        SessionOutcome::Bounce => {
                            stats.bounces.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {
                            stats.unfinished.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                PumpResult::Trusted => {
                    progress = true;
                    let c = conns.swap_remove(i);
                    let task = Delegated {
                        stream: c.stream,
                        session: c.session,
                        leftover: c.lines.into_remaining(),
                        peer: c.peer,
                    };
                    // Round-robin non-blocking dispatch; full queues push
                    // the task to the next worker (natural throttle).
                    let mut task = Some(task);
                    for probe in 0..senders.len() {
                        let w = (rr + probe) % senders.len();
                        match senders[w].try_send(task.take().expect("task present")) {
                            Ok(()) => {
                                rr = (w + 1) % senders.len();
                                stats.delegated.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(TrySendError::Full(t)) | Err(TrySendError::Disconnected(t)) => {
                                task = Some(t);
                            }
                        }
                    }
                    if let Some(t) = task {
                        // Every queue full: block briefly on the next one.
                        let w = rr % senders.len();
                        if senders[w].send(t).is_ok() {
                            stats.delegated.fetch_add(1, Ordering::Relaxed);
                        }
                        rr = (w + 1) % senders.len();
                    }
                }
            }
        }
        if !progress {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    // Closing the senders disconnects the workers' receive loops.
}

enum PumpResult {
    Idle,
    Progress,
    Close,
    Trusted,
}

fn pump_pretrust(conn: &mut PreTrust, exists: &dyn Fn(&MailAddr) -> bool) -> PumpResult {
    let mut tmp = [0u8; 1024];
    let mut result = PumpResult::Idle;
    match conn.stream.read(&mut tmp) {
        Ok(0) => return PumpResult::Close,
        Ok(n) => {
            conn.lines.push(&tmp[..n]);
            result = PumpResult::Progress;
        }
        Err(e) if e.kind() == ErrorKind::WouldBlock => {}
        Err(_) => return PumpResult::Close,
    }
    loop {
        match conn.lines.pop_line() {
            Ok(Some(line)) => {
                let text = String::from_utf8_lossy(&line).into_owned();
                let reply = match Command::parse(&text) {
                    Ok(cmd) => conn.session.handle(cmd, exists),
                    Err(_) => spamaware_smtp::Reply::bad_argument(),
                };
                let closing = conn.session.phase() == spamaware_smtp::SessionPhase::Closed;
                if write_reply(&mut conn.stream, &reply).is_err() || closing {
                    return PumpResult::Close;
                }
                if conn.session.has_valid_recipient() {
                    return PumpResult::Trusted;
                }
                result = PumpResult::Progress;
            }
            Ok(None) => break,
            Err(()) => {
                let _ = write_reply(&mut conn.stream, &spamaware_smtp::Reply::syntax_error());
                return PumpResult::Close;
            }
        }
    }
    result
}

fn worker_loop(
    rx: Receiver<Delegated>,
    store: Arc<Mutex<MfsStore<RealDir>>>,
    stats: Arc<LiveStats>,
    next_id: Arc<AtomicU64>,
    mailboxes: Arc<HashSet<String>>,
) {
    let exists = |a: &MailAddr| mailboxes.contains(a.local_part());
    while let Ok(task) = rx.recv() {
        let _ = task.peer;
        let mut session = task.session;
        session.capture_bodies(true);
        let mut stream = task.stream;
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        let mut lines = LineBuffer::new();
        lines.push(&task.leftover);
        let mut tmp = [0u8; 4096];
        let mut in_data = false;
        'conn: loop {
            // Drain complete lines first, then read more.
            loop {
                match lines.pop_line() {
                    Ok(Some(line)) => {
                        if in_data {
                            if session.data_line(&line) == DataVerdict::Complete {
                                in_data = false;
                                let id = MailId(next_id.fetch_add(1, Ordering::Relaxed));
                                let reply = session.finish_data(&id.to_string());
                                let env = session.delivered().last().expect("envelope").clone();
                                let names: Vec<String> = env
                                    .recipients
                                    .iter()
                                    .map(|a| a.local_part().to_owned())
                                    .collect();
                                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                                let stored =
                                    store.lock().deliver(id, &refs, DataRef::Bytes(&env.body));
                                let reply = match stored {
                                    Ok(()) => {
                                        stats.mails_stored.fetch_add(1, Ordering::Relaxed);
                                        reply
                                    }
                                    Err(_) => spamaware_smtp::Reply::local_error(),
                                };
                                if write_reply(&mut stream, &reply).is_err() {
                                    break 'conn;
                                }
                            }
                        } else {
                            let text = String::from_utf8_lossy(&line).into_owned();
                            let reply = match Command::parse(&text) {
                                Ok(cmd) => session.handle(cmd, &exists),
                                Err(_) => spamaware_smtp::Reply::bad_argument(),
                            };
                            if reply.code() == 354 {
                                in_data = true;
                            }
                            let closing = session.phase() == spamaware_smtp::SessionPhase::Closed;
                            if write_reply(&mut stream, &reply).is_err() {
                                break 'conn;
                            }
                            if closing {
                                break 'conn;
                            }
                        }
                    }
                    Ok(None) => break,
                    Err(()) => {
                        let _ = write_reply(&mut stream, &spamaware_smtp::Reply::syntax_error());
                        break 'conn;
                    }
                }
            }
            match stream.read(&mut tmp) {
                Ok(0) => break,
                Ok(n) => lines.push(&tmp[..n]),
                Err(_) => break,
            }
        }
        if session.outcome() == SessionOutcome::Delivered {
            stats.delivered.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_buffer_splits_crlf_and_lf() {
        let mut lb = LineBuffer::new();
        lb.push(b"HELO a\r\nMAIL");
        assert_eq!(lb.pop_line().unwrap().unwrap(), b"HELO a");
        assert_eq!(lb.pop_line().unwrap(), None);
        lb.push(b" FROM:<a@b.c>\n");
        assert_eq!(lb.pop_line().unwrap().unwrap(), b"MAIL FROM:<a@b.c>");
    }

    #[test]
    fn line_buffer_overflow_detected() {
        let mut lb = LineBuffer::new();
        lb.push(&vec![b'x'; MAX_LINE + 1]);
        assert!(lb.pop_line().is_err());
    }

    #[test]
    fn line_buffer_keeps_partial_remainder() {
        let mut lb = LineBuffer::new();
        lb.push(b"DATA\r\npartial body");
        assert_eq!(lb.pop_line().unwrap().unwrap(), b"DATA");
        assert_eq!(lb.into_remaining(), b"partial body");
    }
}
