//! The master's pre-trust event loop, generic over transport and clock.
//!
//! [`run`] is the §5 "one cheap thread carries every untrusted
//! connection" loop, rebuilt around readiness notification: it sleeps in
//! [`Reactor::wait`] until a socket is readable or a
//! [`TimerWheel`] deadline (per-connection idle and whole-session
//! budgets) is due, instead of scanning every connection on a fixed
//! cadence. The loop body is exactly the old master semantics —
//! admission control, DNSBL fire-and-forget, pipelined-burst reply
//! coalescing, fork-after-trust delegation — but the *only* blocking
//! call left is the reactor wait (the xtask blocking pass enforces
//! this; DESIGN.md §15).
//!
//! Writes are backpressure-aware (DESIGN.md §15.4): each connection owns
//! a bounded [`OutBuf`] that queues whatever the socket will not accept
//! right now, arms write interest on the reactor, flushes on writable
//! readiness, and disarms once drained. A peer that stops reading cannot
//! stall the master — its queue hits the cap (or its no-progress
//! deadline on the [`TimerWheel`]) and the connection is evicted
//! (`master.evicted_slow_writers`).
//!
//! Everything the loop touches is injected: the [`Acceptor`]/[`Conn`]
//! transport pair (real `TcpListener`/`TcpStream`, or the scripted
//! doubles in [`crate::reactor::sim`]), the [`Reactor`], the metrics
//! registry (whose clock is the loop's only time source), and the
//! trusted-connection sink. `LiveServer` instantiates it with the OS
//! types; the deterministic tests instantiate it with the sim types and
//! replay byte-identical schedules with zero real sockets or sleeps.

use crate::linebuf::{LineBuffer, LineOverflow};
use crate::live::{LiveStats, VerbCounters};
use crate::pool::BufferPool;
use crate::reactor::wheel::TimerWheel;
use crate::reactor::{Pollable, Reactor, ReadyEvent};
use crossbeam::channel::Sender;
use spamaware_metrics::{Counter, Gauge, Registry, SpanHandle};
use spamaware_netaddr::Ipv4;
use spamaware_smtp::{
    Command, MailAddr, Reply, ServerSession, SessionConfig, SessionOutcome, SessionPhase,
};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The reactor token reserved for the acceptor; connection tokens start
/// above it.
pub const ACCEPT_TOKEN: u64 = 0;

/// Per-connection timer kinds, packed into wheel ids as
/// `token << 2 | kind`.
const TIMER_IDLE: u64 = 0;
const TIMER_SESSION: u64 = 1;
const TIMER_WRITE_STALL: u64 = 2;

/// A connection the engine can drive without blocking.
pub trait Conn: Pollable {
    /// One non-blocking read: `Ok(0)` is peer EOF, `WouldBlock` means the
    /// socket is dry (the reactor will say when to try again).
    ///
    /// # Errors
    ///
    /// Transport errors close the connection.
    fn read_ready(&mut self, buf: &mut [u8]) -> io::Result<usize>;

    /// One non-blocking write: accepts what fits in the socket buffer,
    /// `WouldBlock` when nothing does (the reactor's write-readiness says
    /// when to retry).
    ///
    /// # Errors
    ///
    /// Transport errors close the connection.
    fn write_ready(&mut self, buf: &[u8]) -> io::Result<usize>;
}

/// A listening socket the engine can drain without blocking.
pub trait Acceptor: Pollable {
    /// The connection type this acceptor produces.
    type Conn: Conn;

    /// Accepts one pending connection; `Ok(None)` means none is pending.
    ///
    /// # Errors
    ///
    /// Fatal listener errors stop the accept burst (the loop keeps
    /// serving existing connections).
    fn try_accept(&mut self) -> io::Result<Option<(Self::Conn, SocketAddr)>>;
}

impl Conn for TcpStream {
    fn read_ready(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        Read::read(self, buf)
    }

    fn write_ready(&mut self, buf: &[u8]) -> io::Result<usize> {
        // The engine's single raw socket-write site: everything above it
        // goes through an OutBuf (sanctioned in the xtask blocking pass).
        Write::write(self, buf)
    }
}

impl Acceptor for TcpListener {
    type Conn = TcpStream;

    fn try_accept(&mut self) -> io::Result<Option<(TcpStream, SocketAddr)>> {
        match self.accept() {
            Ok((stream, peer)) => {
                let _ = stream.set_nonblocking(true);
                // Replies are coalesced into one write per pipelined
                // burst, so Nagle only adds delayed-ACK stalls between
                // our small writes and the client's next burst.
                let _ = stream.set_nodelay(true);
                Ok(Some((stream, peer)))
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// Outcome of an [`OutBuf`] write attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriteState {
    /// Everything queued has reached the socket.
    Drained,
    /// Bytes remain queued; the reactor must say when to retry.
    Pending,
    /// The queue outgrew its cap: the peer has stopped draining.
    Overflow,
    /// The transport failed; the connection is dead.
    Broken,
}

/// A bounded per-connection outbound queue: write what fits, keep the
/// rest, report when the peer stops draining (DESIGN.md §15.4).
///
/// The cap bounds *queued* (unflushed) bytes — the answer to "how much
/// memory may one non-reading peer pin" — and an overflowing send still
/// queues before reporting, so the byte-count gauge stays exact until
/// the eviction reconciles it.
struct OutBuf {
    buf: Vec<u8>,
    /// Bytes of `buf` already written; drained lazily so partial flushes
    /// do not memmove the queue.
    head: usize,
    cap: usize,
}

impl OutBuf {
    fn new(cap: usize) -> OutBuf {
        OutBuf {
            buf: Vec::new(),
            head: 0,
            cap,
        }
    }

    /// Bytes queued and not yet accepted by the socket.
    fn pending(&self) -> usize {
        self.buf.len() - self.head
    }

    fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Takes the queued bytes (for worker hand-off or a final farewell).
    fn take_pending(mut self) -> Vec<u8> {
        self.buf.split_off(self.head)
    }

    /// Queues `bytes`, then flushes as much as the socket accepts now.
    fn send<C: Conn>(&mut self, conn: &mut C, bytes: &[u8]) -> (WriteState, usize) {
        self.buf.extend_from_slice(bytes);
        self.flush(conn)
    }

    /// Writes from the queue until it drains or the socket stops
    /// accepting; returns the state plus the bytes written this call.
    fn flush<C: Conn>(&mut self, conn: &mut C) -> (WriteState, usize) {
        let mut wrote = 0;
        while self.head < self.buf.len() {
            match conn.write_ready(&self.buf[self.head..]) {
                Ok(0) => return (WriteState::Broken, wrote),
                Ok(n) => {
                    self.head += n;
                    wrote += n;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => return (WriteState::Broken, wrote),
            }
        }
        if self.head == self.buf.len() {
            self.buf.clear();
            self.head = 0;
            return (WriteState::Drained, wrote);
        }
        if self.head > 0 && self.head >= self.buf.len() / 2 {
            // Compact once the drained prefix dominates the allocation.
            self.buf.drain(..self.head);
            self.head = 0;
        }
        if self.pending() > self.cap {
            (WriteState::Overflow, wrote)
        } else {
            (WriteState::Pending, wrote)
        }
    }
}

/// A connection that earned trust (valid `RCPT TO`), ready for worker
/// hand-off with its session state and any already-buffered bytes.
pub struct Trusted<C> {
    /// The socket (still registered nowhere — the engine deregistered it
    /// before handing it over).
    pub conn: C,
    /// SMTP session state up to and including the trusting `RCPT`.
    pub session: ServerSession,
    /// Bytes read past the last parsed line (a pipelining client's early
    /// `DATA`), with their pooled allocation.
    pub leftover: Vec<u8>,
    /// Reply bytes the master queued but the peer has not yet accepted;
    /// the worker must write these (under its own deadline) before any
    /// reply of its own.
    pub pending_out: Vec<u8>,
    /// Client address.
    pub peer: Ipv4,
    /// Registry-clock instant the connection was accepted; deadlines
    /// downstream keep charging against it.
    pub accepted_ns: u64,
}

/// Everything [`run`] needs beyond the transport, reactor, and sink.
pub struct EngineCtx {
    /// Hard-stop flag; the loop exits at the next wakeup.
    pub stop: Arc<AtomicBool>,
    /// Graceful-drain flag; pre-trust connections are evicted and new
    /// arrivals shed while set.
    pub draining: Arc<AtomicBool>,
    /// Lifecycle counters (`live.*`).
    pub stats: Arc<LiveStats>,
    /// Valid mailbox local parts, for `RCPT` validation.
    pub mailboxes: Arc<HashSet<String>>,
    /// Hostname announced in the greeting.
    pub hostname: Arc<str>,
    /// Fire-and-forget hand-off to the DNSBL agent thread, if one runs.
    pub dnsbl_tx: Option<Sender<Ipv4>>,
    /// Idle budget for a pre-trust connection.
    pub pretrust_idle_timeout: Duration,
    /// Whole-session wall-clock budget, charged from accept.
    pub session_deadline: Duration,
    /// Hard cap on one connection's queued (unflushed) reply bytes;
    /// beyond it the peer is evicted as a slow writer.
    pub max_outq_bytes: usize,
    /// How long a connection with queued output may make zero write
    /// progress before eviction.
    pub write_stall_timeout: Duration,
    /// Total in-flight connection cap.
    pub max_connections: usize,
    /// Pre-trust connections one client IP may hold.
    pub max_pretrust_per_ip: usize,
    /// Metrics registry; its clock is the loop's only time source.
    pub registry: Arc<Registry>,
    /// Pool the per-connection line buffers cycle through.
    pub line_pool: Arc<BufferPool>,
    /// In-flight connection gauge (`live.inflight`).
    pub inflight: Arc<Gauge>,
}

/// One pre-trust connection's loop state.
struct Pre<C> {
    conn: C,
    session: ServerSession,
    lines: LineBuffer,
    /// Reply bytes the socket has not accepted yet.
    outq: OutBuf,
    /// Whether write interest is currently armed on the reactor.
    w_armed: bool,
    peer: Ipv4,
    /// Registry-clock accept instant, for the `master.pretrust_ns` span
    /// and the session deadline.
    accepted_ns: u64,
    last_activity_ns: u64,
}

/// Pre-resolved instrument handles for the loop.
struct EngineMetrics {
    pretrust_ns: SpanHandle,
    agent_dropped: Arc<Counter>,
    verbs: VerbCounters,
    /// Reactor wait returns (`master.wakeups`).
    wakeups: Arc<Counter>,
    /// Readiness events delivered (`master.io_events`).
    io_events: Arc<Counter>,
    /// Timer-wheel expirations processed (`master.timers_fired`).
    timers_fired: Arc<Counter>,
    /// Connections whose reply outran the socket buffer and started
    /// queuing (`master.write_stalls`).
    write_stalls: Arc<Counter>,
    /// Stalled writers evicted at the queue cap or the no-progress
    /// deadline (`master.evicted_slow_writers`).
    evicted_slow_writers: Arc<Counter>,
    /// Total queued outbound bytes across all pre-trust connections
    /// (`master.outq_bytes`).
    outq_bytes: Arc<Gauge>,
}

/// Best-effort whole-reply write for a connection being refused or
/// evicted: writes what the socket accepts now and drops the rest — the
/// peer is leaving either way, and nobody stalls the master to say
/// goodbye.
fn write_farewell<C: Conn>(conn: &mut C, reply: &Reply) {
    best_effort_write(conn, reply.to_wire().as_bytes());
}

/// Loops [`Conn::write_ready`] until the bytes are gone or the socket
/// stops accepting; whatever did not fit is dropped.
fn best_effort_write<C: Conn>(conn: &mut C, mut bytes: &[u8]) {
    while !bytes.is_empty() {
        match conn.write_ready(bytes) {
            Ok(0) | Err(_) => return,
            Ok(n) => bytes = &bytes[n..],
        }
    }
}

/// `421`s and drops a connection the admission policy refused. Cheap by
/// design: one small write, no session, no DNSBL — shedding under
/// overload must cost microseconds, not the work it is shedding.
fn shed_conn<C: Conn>(mut conn: C, counter: &Counter) {
    counter.inc();
    write_farewell(&mut conn, &Reply::service_not_available());
}

/// Drops one pre-trust connection's per-IP admission slot.
fn release_ip(per_ip: &mut HashMap<Ipv4, usize>, peer: Ipv4) {
    if let Some(n) = per_ip.get_mut(&peer) {
        *n = n.saturating_sub(1);
        if *n == 0 {
            per_ip.remove(&peer);
        }
    }
}

/// Unhooks a connection from the reactor, the timer wheel, and the
/// per-IP ledger; closes out its pre-trust span and returns its queued
/// bytes to the outq gauge. The caller decides what happens to the
/// socket, line buffer, and in-flight gauge (they differ between
/// eviction and trusted hand-off).
fn detach<C: Conn, R: Reactor>(
    token: u64,
    pre: Pre<C>,
    reactor: &mut R,
    wheel: &mut TimerWheel,
    per_ip: &mut HashMap<Ipv4, usize>,
    mm: &EngineMetrics,
) -> Pre<C> {
    let _ = reactor.deregister(pre.conn.poll_id());
    wheel.cancel((token << 2) | TIMER_IDLE);
    wheel.cancel((token << 2) | TIMER_SESSION);
    wheel.cancel((token << 2) | TIMER_WRITE_STALL);
    mm.outq_bytes.add(-(pre.outq.pending() as i64));
    mm.pretrust_ns.record_since(pre.accepted_ns);
    release_ip(per_ip, pre.peer);
    pre
}

enum PumpResult {
    Idle,
    Progress,
    Close,
    Overflow,
    Trusted,
}

/// How a connection came out of a write attempt.
enum WriteVerdict {
    /// Still healthy (possibly with queued bytes and armed interest).
    Kept,
    /// Queue cap or interest-arming failure: evict as a slow writer.
    EvictSlow,
    /// Transport error: close like a peer disconnect.
    Broken,
}

/// Reconciles a connection's write-interest, stall-deadline, and gauge
/// state with its [`OutBuf`] after one send/flush, and says whether the
/// connection survives. `before` is the queue depth prior to the write
/// attempt (for exact gauge deltas).
#[allow(clippy::too_many_arguments)]
fn settle_write<C: Conn, R: Reactor>(
    token: u64,
    pre: &mut Pre<C>,
    before: usize,
    state: WriteState,
    wrote: usize,
    reactor: &mut R,
    wheel: &mut TimerWheel,
    mm: &EngineMetrics,
    now: u64,
    stall_ns: u64,
) -> WriteVerdict {
    mm.outq_bytes.add(pre.outq.pending() as i64 - before as i64);
    match state {
        WriteState::Drained => {
            if pre.w_armed {
                pre.w_armed = false;
                let _ = reactor.set_write_interest(pre.conn.poll_id(), false);
                wheel.cancel((token << 2) | TIMER_WRITE_STALL);
            }
            WriteVerdict::Kept
        }
        WriteState::Pending => {
            if !pre.w_armed {
                // The stall begins here: count it, watch for writability,
                // and start the no-progress clock.
                mm.write_stalls.inc();
                if reactor
                    .set_write_interest(pre.conn.poll_id(), true)
                    .is_err()
                {
                    // Never told when the peer drains ⇒ the queue would
                    // sit forever; give the connection up now.
                    return WriteVerdict::EvictSlow;
                }
                pre.w_armed = true;
                wheel.schedule(
                    (token << 2) | TIMER_WRITE_STALL,
                    now.saturating_add(stall_ns),
                );
            } else if wrote > 0 {
                // Progress resets the no-progress deadline: a slow drip
                // is served for as long as it keeps accepting bytes.
                wheel.schedule(
                    (token << 2) | TIMER_WRITE_STALL,
                    now.saturating_add(stall_ns),
                );
            }
            WriteVerdict::Kept
        }
        WriteState::Overflow => WriteVerdict::EvictSlow,
        WriteState::Broken => WriteVerdict::Broken,
    }
}

/// One readiness-driven pump: a single read, then every complete line it
/// completed, replies coalesced into `out` (the caller routes them
/// through the connection's [`OutBuf`]).
fn pump<C: Conn>(
    pre: &mut Pre<C>,
    exists: &dyn Fn(&MailAddr) -> bool,
    verbs: &VerbCounters,
    out: &mut Vec<u8>,
) -> PumpResult {
    let mut tmp = [0u8; 1024];
    let mut result = PumpResult::Idle;
    out.clear();
    match pre.conn.read_ready(&mut tmp) {
        Ok(0) => return PumpResult::Close,
        Ok(n) => {
            pre.lines.push(&tmp[..n]);
            result = PumpResult::Progress;
        }
        Err(e) if e.kind() == ErrorKind::WouldBlock => {}
        Err(_) => return PumpResult::Close,
    }
    loop {
        match pre.lines.pop_line() {
            Ok(Some(line)) => {
                let text = String::from_utf8_lossy(&line).into_owned();
                let reply = match Command::parse(&text) {
                    Ok(cmd) => {
                        verbs.count(&cmd);
                        pre.session.handle(cmd, exists)
                    }
                    Err(_) => {
                        verbs.count_unknown();
                        Reply::bad_argument()
                    }
                };
                // Replies accumulate; the whole burst reaches the OutBuf
                // at once when the connection changes state or input runs
                // dry.
                reply.write_wire(out);
                if pre.session.phase() == SessionPhase::Closed {
                    return PumpResult::Close;
                }
                if pre.session.has_valid_recipient() {
                    return PumpResult::Trusted;
                }
                result = PumpResult::Progress;
            }
            Ok(None) => break,
            Err(LineOverflow) => {
                Reply::syntax_error().write_wire(out);
                return PumpResult::Overflow;
            }
        }
    }
    result
}

/// What a fired timer asks the loop to do, resolved while the connection
/// map is only borrowed shared.
enum TimerAction {
    Gone,
    EvictIdle,
    EvictSession,
    EvictStalled,
    Rearm(u64),
}

/// Drives the pre-trust event loop until `ctx.stop` is set.
///
/// `sink` receives each trusted connection; handing it back (`Some`)
/// means every worker queue was full, and the engine sheds it with `421`
/// (`live.shed_worker_busy`) instead of blocking.
pub fn run_pretrust<A, R, S>(acceptor: &mut A, reactor: &mut R, ctx: &EngineCtx, sink: &mut S)
where
    A: Acceptor,
    R: Reactor,
    S: FnMut(Trusted<A::Conn>) -> Option<Trusted<A::Conn>>,
{
    let mm = EngineMetrics {
        pretrust_ns: ctx.registry.span("master.pretrust_ns"),
        agent_dropped: ctx.registry.counter("dnsbl.agent_dropped"),
        verbs: VerbCounters::register(&ctx.registry),
        wakeups: ctx.registry.counter("master.wakeups"),
        io_events: ctx.registry.counter("master.io_events"),
        timers_fired: ctx.registry.counter("master.timers_fired"),
        write_stalls: ctx.registry.counter("master.write_stalls"),
        evicted_slow_writers: ctx.registry.counter("master.evicted_slow_writers"),
        outq_bytes: ctx.registry.gauge("master.outq_bytes"),
    };
    let stats = &ctx.stats;
    let exists = |a: &MailAddr| ctx.mailboxes.contains(a.local_part());
    let inflight_cap = i64::try_from(ctx.max_connections).unwrap_or(i64::MAX);
    let idle_ns = duration_ns(ctx.pretrust_idle_timeout);
    let session_ns = duration_ns(ctx.session_deadline);
    let stall_ns = duration_ns(ctx.write_stall_timeout);
    let mut wheel = TimerWheel::new(ctx.registry.now_nanos());
    let mut conns: BTreeMap<u64, Pre<A::Conn>> = BTreeMap::new();
    let mut per_ip: HashMap<Ipv4, usize> = HashMap::new();
    let mut next_token: u64 = ACCEPT_TOKEN + 1;
    let mut ready: Vec<ReadyEvent> = Vec::new();
    let mut fired: Vec<(u64, u64)> = Vec::new();
    // Reply bytes for one pumped burst, routed through the connection's
    // OutBuf in one send.
    let mut out: Vec<u8> = Vec::new();
    if reactor.register(acceptor.poll_id(), ACCEPT_TOKEN).is_err() {
        // A master that cannot watch its own listener cannot serve.
        return;
    }
    while !ctx.stop.load(Ordering::SeqCst) {
        let now = ctx.registry.now_nanos();
        let timeout_ns = wheel.next_deadline().map(|d| d.saturating_sub(now));
        ready.clear();
        // The one sanctioned blocking call on the master thread: sleep
        // until readiness, a timer deadline, or a waker.
        if reactor.wait(timeout_ns, &mut ready).is_err() {
            return;
        }
        mm.wakeups.inc();
        if !ready.is_empty() {
            mm.io_events.add(ready.len() as u64);
        }
        if ctx.stop.load(Ordering::SeqCst) {
            break;
        }
        let draining = ctx.draining.load(Ordering::SeqCst);
        if draining && !conns.is_empty() {
            // Pre-trust connections hold no acked mail; evict them all so
            // the drain converges regardless of client behavior.
            let evicted: Vec<u64> = conns.keys().copied().collect();
            for token in evicted {
                if let Some(pre) = conns.remove(&token) {
                    let mut pre = detach(token, pre, reactor, &mut wheel, &mut per_ip, &mm);
                    write_farewell(&mut pre.conn, &Reply::service_not_available());
                    ctx.line_pool.put(pre.lines.into_remaining());
                    ctx.inflight.dec();
                    stats.shed_draining.inc();
                    stats.unfinished.inc();
                }
            }
        }
        for &ev in &ready {
            let token = ev.token;
            if token == ACCEPT_TOKEN {
                // Accept everything pending.
                loop {
                    let (conn, peer_addr) = match acceptor.try_accept() {
                        Ok(Some(pair)) => pair,
                        Ok(None) | Err(_) => break,
                    };
                    stats.accepted.inc();
                    let peer_ip = match peer_addr.ip() {
                        std::net::IpAddr::V4(v4) => Ipv4::from(v4),
                        std::net::IpAddr::V6(_) => {
                            // The DNSBL cache and trust machinery are
                            // IPv4-only; refuse rather than impersonate a
                            // loopback peer.
                            stats.rejected_ipv6.inc();
                            let mut conn = conn;
                            write_farewell(&mut conn, &Reply::ipv6_unsupported());
                            continue;
                        }
                    };
                    // Admission control, cheapest checks first and all of
                    // them *before* the DNSBL query: a shed connection
                    // must not be able to spend our lookup budget.
                    if draining {
                        shed_conn(conn, &stats.shed_draining);
                        continue;
                    }
                    if ctx.inflight.get() >= inflight_cap {
                        shed_conn(conn, &stats.shed_connections);
                        continue;
                    }
                    let held = per_ip.get(&peer_ip).copied().unwrap_or(0);
                    if held >= ctx.max_pretrust_per_ip {
                        shed_conn(conn, &stats.shed_per_ip);
                        continue;
                    }
                    if let Some(tx) = &ctx.dnsbl_tx {
                        // Fire-and-forget hand-off to the DNSBL agent
                        // thread: the verdict is record-only (§9), so the
                        // master never waits for it. A full queue drops
                        // the *lookup*, not the client — under overload
                        // we lose a statistic, never mail service.
                        if tx.try_send(peer_ip).is_err() {
                            mm.agent_dropped.inc();
                        }
                    }
                    let session = ServerSession::new(SessionConfig {
                        hostname: Arc::clone(&ctx.hostname),
                        ..SessionConfig::default()
                    });
                    let token = next_token;
                    next_token += 1;
                    if reactor.register(conn.poll_id(), token).is_err() {
                        // A connection the reactor cannot watch would sit
                        // unserved forever; refuse it instead.
                        stats.sockopt_errors.inc();
                        let mut conn = conn;
                        write_farewell(&mut conn, &Reply::service_not_available());
                        continue;
                    }
                    let accepted_ns = mm.pretrust_ns.now();
                    ctx.inflight.inc();
                    *per_ip.entry(peer_ip).or_insert(0) += 1;
                    wheel.schedule(
                        (token << 2) | TIMER_IDLE,
                        accepted_ns.saturating_add(idle_ns),
                    );
                    wheel.schedule(
                        (token << 2) | TIMER_SESSION,
                        accepted_ns.saturating_add(session_ns),
                    );
                    let greeting = session.greeting().to_wire();
                    conns.insert(
                        token,
                        Pre {
                            conn,
                            session,
                            lines: LineBuffer::from_remaining(ctx.line_pool.take_vec()),
                            outq: OutBuf::new(ctx.max_outq_bytes),
                            w_armed: false,
                            peer: peer_ip,
                            accepted_ns,
                            last_activity_ns: accepted_ns,
                        },
                    );
                    // The greeting rides the same backpressure path as
                    // every later reply — a zero-window peer can stall
                    // from byte one.
                    let verdict = match conns.get_mut(&token) {
                        Some(pre) => {
                            let before = pre.outq.pending();
                            let (state, wrote) = pre.outq.send(&mut pre.conn, greeting.as_bytes());
                            settle_write(
                                token,
                                pre,
                                before,
                                state,
                                wrote,
                                reactor,
                                &mut wheel,
                                &mm,
                                accepted_ns,
                                stall_ns,
                            )
                        }
                        None => WriteVerdict::Kept,
                    };
                    match verdict {
                        WriteVerdict::Kept => {}
                        WriteVerdict::EvictSlow => {
                            evict_slow_writer(
                                token,
                                &mut conns,
                                reactor,
                                &mut wheel,
                                &mut per_ip,
                                &mm,
                                ctx,
                            );
                        }
                        WriteVerdict::Broken => {
                            close_conn(
                                token,
                                &mut conns,
                                reactor,
                                &mut wheel,
                                &mut per_ip,
                                &mm,
                                ctx,
                            );
                        }
                    }
                }
                continue;
            }
            if ev.writable {
                // The peer drained some of its socket buffer: flush the
                // queue before reading more work from it.
                let verdict = match conns.get_mut(&token) {
                    Some(pre) => {
                        let before = pre.outq.pending();
                        let (state, wrote) = pre.outq.flush(&mut pre.conn);
                        let now = ctx.registry.now_nanos();
                        settle_write(
                            token, pre, before, state, wrote, reactor, &mut wheel, &mm, now,
                            stall_ns,
                        )
                    }
                    None => WriteVerdict::Kept,
                };
                match verdict {
                    WriteVerdict::Kept => {}
                    WriteVerdict::EvictSlow => {
                        evict_slow_writer(
                            token,
                            &mut conns,
                            reactor,
                            &mut wheel,
                            &mut per_ip,
                            &mm,
                            ctx,
                        );
                    }
                    WriteVerdict::Broken => {
                        close_conn(
                            token,
                            &mut conns,
                            reactor,
                            &mut wheel,
                            &mut per_ip,
                            &mm,
                            ctx,
                        );
                    }
                }
            }
            if !ev.readable {
                continue;
            }
            let Some(pre) = conns.get_mut(&token) else {
                // Evicted earlier this wakeup (e.g. by the drain sweep or
                // a failed flush just above).
                continue;
            };
            match pump(pre, &exists, &mm.verbs, &mut out) {
                PumpResult::Idle => {}
                PumpResult::Progress => {
                    let now = ctx.registry.now_nanos();
                    pre.last_activity_ns = now;
                    wheel.schedule((token << 2) | TIMER_IDLE, now.saturating_add(idle_ns));
                    let verdict = if out.is_empty() {
                        WriteVerdict::Kept
                    } else {
                        let before = pre.outq.pending();
                        let (state, wrote) = pre.outq.send(&mut pre.conn, &out);
                        settle_write(
                            token, pre, before, state, wrote, reactor, &mut wheel, &mm, now,
                            stall_ns,
                        )
                    };
                    match verdict {
                        WriteVerdict::Kept => {}
                        WriteVerdict::EvictSlow => {
                            evict_slow_writer(
                                token,
                                &mut conns,
                                reactor,
                                &mut wheel,
                                &mut per_ip,
                                &mm,
                                ctx,
                            );
                        }
                        WriteVerdict::Broken => {
                            close_conn(
                                token,
                                &mut conns,
                                reactor,
                                &mut wheel,
                                &mut per_ip,
                                &mm,
                                ctx,
                            );
                        }
                    }
                }
                PumpResult::Close => {
                    if let Some(pre) = conns.remove(&token) {
                        let pre = detach(token, pre, reactor, &mut wheel, &mut per_ip, &mm);
                        // Final farewell (e.g. the QUIT 221): best effort
                        // after any queued bytes, dropped if the peer has
                        // stopped reading — it is gone either way.
                        let mut conn = pre.conn;
                        best_effort_write(&mut conn, &pre.outq.take_pending());
                        best_effort_write(&mut conn, &out);
                        ctx.line_pool.put(pre.lines.into_remaining());
                        ctx.inflight.dec();
                        match pre.session.outcome() {
                            SessionOutcome::Bounce => stats.bounces.inc(),
                            _ => stats.unfinished.inc(),
                        }
                    }
                }
                PumpResult::Overflow => {
                    if let Some(pre) = conns.remove(&token) {
                        let pre = detach(token, pre, reactor, &mut wheel, &mut per_ip, &mm);
                        let mut conn = pre.conn;
                        best_effort_write(&mut conn, &pre.outq.take_pending());
                        best_effort_write(&mut conn, &out);
                        ctx.line_pool.put(pre.lines.into_remaining());
                        ctx.inflight.dec();
                        stats.overflows.inc();
                        stats.unfinished.inc();
                    }
                }
                PumpResult::Trusted => {
                    if let Some(mut pre) = conns.remove(&token) {
                        // Flush the trusting reply burst as far as the
                        // socket allows; whatever stays queued travels to
                        // the worker, which writes it under its own
                        // deadline.
                        let before = pre.outq.pending();
                        let (state, _) = pre.outq.send(&mut pre.conn, &out);
                        mm.outq_bytes.add(pre.outq.pending() as i64 - before as i64);
                        if matches!(state, WriteState::Broken) {
                            let pre = detach(token, pre, reactor, &mut wheel, &mut per_ip, &mm);
                            ctx.line_pool.put(pre.lines.into_remaining());
                            ctx.inflight.dec();
                            stats.unfinished.inc();
                            continue;
                        }
                        let pre = detach(token, pre, reactor, &mut wheel, &mut per_ip, &mm);
                        let task = Trusted {
                            conn: pre.conn,
                            session: pre.session,
                            leftover: pre.lines.into_remaining(),
                            pending_out: pre.outq.take_pending(),
                            peer: pre.peer,
                            accepted_ns: pre.accepted_ns,
                        };
                        if let Some(task) = sink(task) {
                            // Every queue full: tempfail instead of
                            // blocking. A blocking send here stalls the
                            // master — and with it every pre-trust dialog
                            // and the accept loop — behind the slowest
                            // worker; `421` sheds exactly one client
                            // instead.
                            ctx.line_pool.put(task.leftover);
                            ctx.inflight.dec();
                            shed_conn(task.conn, &stats.shed_worker_busy);
                            stats.unfinished.inc();
                        }
                    }
                }
            }
        }
        let now = ctx.registry.now_nanos();
        fired.clear();
        wheel.advance(now, &mut fired);
        if !fired.is_empty() {
            mm.timers_fired.add(fired.len() as u64);
        }
        for &(_, id) in &fired {
            let token = id >> 2;
            let kind = id & 3;
            let action = match conns.get(&token) {
                None => TimerAction::Gone,
                Some(_) if kind == TIMER_SESSION => TimerAction::EvictSession,
                Some(pre) if kind == TIMER_WRITE_STALL => {
                    if pre.outq.is_empty() {
                        // Drained in the same wakeup the deadline fired;
                        // the cancel raced the expiry.
                        TimerAction::Gone
                    } else {
                        TimerAction::EvictStalled
                    }
                }
                Some(pre) => {
                    if now.saturating_sub(pre.last_activity_ns) >= idle_ns {
                        TimerAction::EvictIdle
                    } else {
                        // Activity raced the expiry; re-arm from the last
                        // read (the wheel's reschedule makes this rare).
                        TimerAction::Rearm(pre.last_activity_ns.saturating_add(idle_ns))
                    }
                }
            };
            match action {
                TimerAction::Gone => {}
                TimerAction::Rearm(deadline) => wheel.schedule(id, deadline),
                TimerAction::EvictIdle => {
                    if let Some(pre) = conns.remove(&token) {
                        // Idle slow client: drop it without touching a
                        // worker (counts as an unfinished transaction).
                        let pre = detach(token, pre, reactor, &mut wheel, &mut per_ip, &mm);
                        ctx.line_pool.put(pre.lines.into_remaining());
                        ctx.inflight.dec();
                        stats.idle_evictions.inc();
                        stats.unfinished.inc();
                    }
                }
                TimerAction::EvictSession => {
                    if let Some(pre) = conns.remove(&token) {
                        // The whole-session budget ran out mid-dialog:
                        // evict with `421` wherever the client is.
                        let mut pre = detach(token, pre, reactor, &mut wheel, &mut per_ip, &mm);
                        write_farewell(&mut pre.conn, &Reply::service_not_available());
                        ctx.line_pool.put(pre.lines.into_remaining());
                        ctx.inflight.dec();
                        stats.session_deadline_evictions.inc();
                        stats.unfinished.inc();
                    }
                }
                TimerAction::EvictStalled => {
                    evict_slow_writer(
                        token,
                        &mut conns,
                        reactor,
                        &mut wheel,
                        &mut per_ip,
                        &mm,
                        ctx,
                    );
                }
            }
        }
    }
}

/// Evicts a peer that stopped draining its socket (queue cap hit, or no
/// write progress for the whole stall budget). No farewell: by
/// definition it is not reading.
fn evict_slow_writer<C: Conn, R: Reactor>(
    token: u64,
    conns: &mut BTreeMap<u64, Pre<C>>,
    reactor: &mut R,
    wheel: &mut TimerWheel,
    per_ip: &mut HashMap<Ipv4, usize>,
    mm: &EngineMetrics,
    ctx: &EngineCtx,
) {
    if let Some(pre) = conns.remove(&token) {
        let pre = detach(token, pre, reactor, wheel, per_ip, mm);
        ctx.line_pool.put(pre.lines.into_remaining());
        ctx.inflight.dec();
        mm.evicted_slow_writers.inc();
        ctx.stats.unfinished.inc();
    }
}

/// Closes a connection whose transport failed mid-write (peer reset).
fn close_conn<C: Conn, R: Reactor>(
    token: u64,
    conns: &mut BTreeMap<u64, Pre<C>>,
    reactor: &mut R,
    wheel: &mut TimerWheel,
    per_ip: &mut HashMap<Ipv4, usize>,
    mm: &EngineMetrics,
    ctx: &EngineCtx,
) {
    if let Some(pre) = conns.remove(&token) {
        let pre = detach(token, pre, reactor, wheel, per_ip, mm);
        ctx.line_pool.put(pre.lines.into_remaining());
        ctx.inflight.dec();
        match pre.session.outcome() {
            SessionOutcome::Bounce => ctx.stats.bounces.inc(),
            _ => ctx.stats.unfinished.inc(),
        }
    }
}

/// Saturating [`Duration`] → nanoseconds.
fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}
