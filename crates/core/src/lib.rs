//! Spam-aware high-performance mail server — the public facade.
//!
//! Reproduction of Pathak, Jafri & Hu, *"The Case for Spam-Aware High
//! Performance Mail Server Architecture"* (ICDCS 2009). The paper's three
//! optimizations live in the substrate crates and are tied together here:
//!
//! | Optimization | Crate | Entry point |
//! |---|---|---|
//! | Fork-after-trust concurrency (§5) | `spamaware-server` | [`ServerConfig::hybrid`] |
//! | MFS single-copy mail store (§6) | `spamaware-mfs` | [`spamaware_mfs::MfsStore`] |
//! | Prefix-based DNSBL caching (§7) | `spamaware-dnsbl` | [`spamaware_dnsbl::CacheScheme::PerPrefix`] |
//!
//! This crate adds:
//!
//! * [`experiment`] — one runner per paper table/figure (the benchmark
//!   harness and the EXPERIMENTS.md numbers come from here);
//! * [`combined_workload`] — the §8 mixed workload builder;
//! * [`LiveServer`] — a real threaded TCP SMTP server wiring all three
//!   optimizations together over real sockets and a real on-disk store.
//!
//! # Quickstart (simulation)
//!
//! ```
//! use spamaware_core::experiment::{combined, CombinedWorkload, Scale};
//!
//! let result = combined(Scale::quick(), CombinedWorkload::Spam);
//! // The three optimizations outperform vanilla postfix on a spam-heavy
//! // workload (the paper reports +40% at full scale).
//! assert!(result.throughput_gain() > 0.0);
//! ```

mod dnsbl_agent;
pub mod experiment;
mod linebuf;
mod live;
mod mix;
mod netio;
mod pool;
mod pop3;
pub mod pretrust;
pub mod reactor;

pub use linebuf::{LineBuffer, LineOverflow, MAX_LINE};
pub use live::{LiveConfig, LiveServer, LiveSnapshot, LiveStats};
pub use mix::combined_workload;
pub use pool::BufferPool;
pub use pop3::{Pop3Server, Pop3Stats};

// Re-export the workspace's main types so downstream users can depend on
// this crate alone.
pub use spamaware_dnsbl::{
    BlacklistDb, BreakerConfig, BreakerDecision, CacheScheme, CachingResolver, CircuitBreaker,
    DnsblServer, LatencyModel,
};
pub use spamaware_mfs::{
    fsck, FsckReport, Layout, MailId, MailStore, MfsStore, RealDir, ShardedStore, SyncBackend,
};
pub use spamaware_server::{
    run, Architecture, ClientModel, CostModel, DnsConfig, RunReport, ServerConfig, TrustPoint,
};
pub use spamaware_smtp::{Command, MailAddr, Reply, ServerSession, SessionConfig};
pub use spamaware_trace::{SinkholeConfig, Trace, TraceStats, UnivConfig};

use std::fmt;

/// Errors starting or running the live server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Invalid configuration.
    Config(String),
    /// Socket or storage I/O failure.
    Io(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(m) => write!(f, "invalid server configuration: {m}"),
            ServeError::Io(m) => write!(f, "server i/o error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}
