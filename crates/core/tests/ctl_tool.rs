//! End-to-end test of the `spamawarectl` admin binary against a store
//! written by the live SMTP server.

use spamaware_core::{LiveConfig, LiveServer};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::Command as Proc;
use std::time::Duration;

fn ctl(args: &[&str]) -> (String, bool) {
    let exe = env!("CARGO_BIN_EXE_spamawarectl");
    let out = Proc::new(exe).args(args).output().expect("run ctl");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        out.status.success(),
    )
}

#[test]
fn ctl_inspects_compacts_and_deletes() {
    let root = std::env::temp_dir().join(format!(
        "spamaware-ctl-{}-{:x}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    // Populate via the live server.
    let srv = LiveServer::start(LiveConfig::localhost(
        &root,
        vec!["alice".into(), "bob".into()],
    ))
    .expect("start");
    {
        let stream = TcpStream::connect(srv.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut stream = stream;
        let mut line = String::new();
        reader.read_line(&mut line).expect("greeting");
        for cmd in [
            "HELO c.example",
            "MAIL FROM:<x@remote.example>",
            "RCPT TO:<alice@dept.example>",
            "RCPT TO:<bob@dept.example>",
            "DATA",
        ] {
            stream
                .write_all(format!("{cmd}\r\n").as_bytes())
                .expect("w");
            line.clear();
            reader.read_line(&mut line).expect("r");
        }
        stream
            .write_all(b"ctl test body\r\n.\r\nQUIT\r\n")
            .expect("w");
        line.clear();
        reader.read_line(&mut line).expect("r");
    }
    for _ in 0..200 {
        if srv.stats().snapshot().mails_stored >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    srv.shutdown();

    let rootstr = root.to_string_lossy().into_owned();
    let (stats, ok) = ctl(&["stats", &rootstr]);
    assert!(ok, "{stats}");
    assert!(stats.contains("shared mails:        1"), "{stats}");

    let (listing, ok) = ctl(&["list", &rootstr, "alice"]);
    assert!(ok && listing.contains("1 mail(s)"), "{listing}");

    let (body, ok) = ctl(&["cat", &rootstr, "alice", "1"]);
    assert!(ok && body.contains("ctl test body"), "{body}");

    let (del, ok) = ctl(&["delete", &rootstr, "alice", "1"]);
    assert!(ok, "{del}");
    let (del2, ok) = ctl(&["delete", &rootstr, "bob", "1"]);
    assert!(ok, "{del2}");

    let (compact, ok) = ctl(&["compact", &rootstr]);
    assert!(ok, "{compact}");
    assert!(compact.contains("reclaimed"), "{compact}");

    // A healthy spool audits clean.
    let (fsck_out, ok) = ctl(&["fsck", &rootstr]);
    assert!(ok, "{fsck_out}");
    assert_eq!(fsck_out, "mfsck: clean\n");

    // Errors are reported with a failing exit code.
    let (_, ok) = ctl(&["cat", &rootstr, "alice", "1"]);
    assert!(!ok, "cat of deleted mail must fail");
    let (_, ok) = ctl(&["bogus"]);
    assert!(!ok);

    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn ctl_trace_stats_roundtrip() {
    let trace = spamaware_trace::bounce_sweep_trace(3, 200, 0.25, 50);
    let path =
        std::env::temp_dir().join(format!("spamaware-ctl-trace-{}.json", std::process::id()));
    trace.save_file(&path).expect("save");
    let (out, ok) = ctl(&["trace-stats", &path.to_string_lossy()]);
    assert!(ok, "{out}");
    assert!(out.contains("Number of connections:      200"), "{out}");
    let _ = std::fs::remove_file(path);
}
