//! The pre-trust event loop on scripted readiness and virtual time.
//!
//! Every test here drives [`spamaware_core::pretrust::run_pretrust`] — the
//! exact loop the live master runs — through a [`SimReactor`] replaying a
//! written schedule of connects, byte deliveries, EOFs, and drain/stop
//! flips against a `ManualClock`. No real sockets, no sleeps: the chaos
//! scenarios that `overload_chaos.rs` exercises with wall-clock races
//! (slowloris eviction, session-deadline 421s, drain convergence,
//! admission shed, worker-busy shed) replay here byte-identically, and
//! one regression pins that two identical runs produce byte-identical
//! metrics renders and reactor event logs.

use spamaware_core::pretrust::{run_pretrust, EngineCtx, Trusted};
use spamaware_core::reactor::sim::{SimConn, SimEvent, SimReactor};
use spamaware_core::{BufferPool, LiveStats};
use spamaware_metrics::{ManualClock, Registry};
use std::collections::HashSet;
use std::net::SocketAddr;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

const SEC: u64 = 1_000_000_000;

/// Engine knobs a scenario wants to pin down.
struct Config {
    idle: Duration,
    session: Duration,
    max_connections: usize,
    max_per_ip: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            idle: Duration::from_secs(5),
            session: Duration::from_secs(30),
            max_connections: 64,
            max_per_ip: 8,
        }
    }
}

/// A ready-to-run engine instance over one scripted network.
struct Harness {
    reactor: SimReactor,
    ctx: EngineCtx,
    registry: Arc<Registry>,
    stats: Arc<LiveStats>,
}

fn harness(script: Vec<(u64, SimEvent)>, cfg: &Config) -> Harness {
    let clock = ManualClock::new();
    let registry = Arc::new(Registry::new(Arc::new(clock.clone())));
    let stop = Arc::new(AtomicBool::new(false));
    let draining = Arc::new(AtomicBool::new(false));
    let reactor = SimReactor::new(&clock, &stop, &draining, script);
    let stats = Arc::new(LiveStats::register(&registry));
    let mailboxes: HashSet<String> = ["alice".to_owned(), "bob".to_owned()].into_iter().collect();
    let line_pool = Arc::new(BufferPool::new(&registry, 8, 1024));
    let inflight = registry.gauge("live.inflight");
    let ctx = EngineCtx {
        stop,
        draining,
        stats: Arc::clone(&stats),
        mailboxes: Arc::new(mailboxes),
        hostname: Arc::from("sim.test"),
        dnsbl_tx: None,
        pretrust_idle_timeout: cfg.idle,
        session_deadline: cfg.session,
        max_connections: cfg.max_connections,
        max_pretrust_per_ip: cfg.max_per_ip,
        registry: Arc::clone(&registry),
        line_pool,
        inflight,
    };
    Harness {
        reactor,
        ctx,
        registry,
        stats,
    }
}

impl Harness {
    /// Runs the engine to completion (the script's `Stop`, or script
    /// exhaustion) with `sink` receiving trusted hand-offs.
    fn run<S>(&mut self, sink: &mut S)
    where
        S: FnMut(Trusted<SimConn>) -> Option<Trusted<SimConn>>,
    {
        let mut acceptor = self.reactor.acceptor();
        run_pretrust(&mut acceptor, &mut self.reactor, &self.ctx, sink);
    }

    fn output_text(&self, conn: u64) -> String {
        String::from_utf8_lossy(&self.reactor.output(conn)).into_owned()
    }
}

fn peer(s: &str) -> SocketAddr {
    s.parse().expect("literal peer address")
}

/// A burst that earns trust and pipelines `DATA` past the trusting RCPT.
const TRUST_BURST: &[u8] =
    b"HELO relay.example\r\nMAIL FROM:<x@client.example>\r\nRCPT TO:<alice@dept.example>\r\nDATA\r\n";

#[test]
fn trusted_handoff_carries_session_and_pipelined_leftover() {
    let script = vec![
        (
            SEC,
            SimEvent::Connect {
                conn: 1,
                peer: peer("10.0.0.1:2525"),
            },
        ),
        (
            2 * SEC,
            SimEvent::Data {
                conn: 1,
                bytes: TRUST_BURST.to_vec(),
            },
        ),
        (3 * SEC, SimEvent::Stop),
    ];
    let mut h = harness(script, &Config::default());
    let mut trusted: Vec<Trusted<SimConn>> = Vec::new();
    h.run(&mut |t| {
        trusted.push(t);
        None
    });

    assert_eq!(trusted.len(), 1, "one connection earned trust");
    let t = &trusted[0];
    assert!(t.session.has_valid_recipient());
    assert_eq!(
        t.leftover, b"DATA\r\n",
        "pipelined bytes past the trusting RCPT travel with the hand-off"
    );
    assert_eq!(t.accepted_ns, SEC, "accept instant on the manual clock");
    // The socket left the master alive: deregistered, not closed.
    assert!(h.reactor.conn_open(1));
    let out = h.output_text(1);
    assert!(out.starts_with("220 sim.test"), "greeting first: {out}");
    assert!(out.contains("\r\n250 "), "dialog replies coalesced: {out}");
    assert_eq!(h.reactor.unread_input(1), 0);
    assert_eq!(h.stats.accepted.get(), 1);
    // Delegation keeps the connection in flight; the worker side owns the
    // decrement once the transaction finishes.
    assert_eq!(h.registry.gauge_value("live.inflight"), Some(1));
}

/// Satellite regression: the whole loop is a pure function of its script.
/// Two runs over the same schedule must agree byte-for-byte — the metrics
/// render *and* the reactor's event log (readiness batches, timer
/// wakeups, watch/unwatch order).
#[test]
fn identical_scripts_replay_byte_identically() {
    fn script() -> Vec<(u64, SimEvent)> {
        vec![
            (
                SEC,
                SimEvent::Connect {
                    conn: 1,
                    peer: peer("10.0.0.1:1001"),
                },
            ),
            (
                2 * SEC,
                SimEvent::Data {
                    conn: 1,
                    bytes: TRUST_BURST.to_vec(),
                },
            ),
            // Same-instant burst: a second handshake lands in the same
            // wakeup batch that trusts conn 1.
            (
                2 * SEC,
                SimEvent::Connect {
                    conn: 2,
                    peer: peer("10.0.0.2:1002"),
                },
            ),
            (
                3 * SEC,
                SimEvent::Data {
                    conn: 2,
                    bytes: b"HELO slowloris".to_vec(),
                },
            ),
            (
                4 * SEC,
                SimEvent::Connect {
                    conn: 3,
                    peer: peer("10.0.0.3:1003"),
                },
            ),
            (
                4 * SEC,
                SimEvent::Data {
                    conn: 3,
                    bytes: b"HELO c\r\nQUIT\r\n".to_vec(),
                },
            ),
            // Silence until well past conn 2's idle deadline, so a timer
            // eviction is part of the replayed history.
            (20 * SEC, SimEvent::Stop),
        ]
    }
    let run = || {
        let mut h = harness(script(), &Config::default());
        let delegated = Arc::clone(&h.stats.delegated);
        h.run(&mut |t| {
            delegated.inc();
            drop(t);
            None
        });
        (h.reactor.log().to_vec(), h.registry.render())
    };
    let (log_a, render_a) = run();
    let (log_b, render_b) = run();
    assert_eq!(log_a, log_b, "reactor event logs diverged");
    assert_eq!(render_a, render_b, "metrics renders diverged");
    // Sanity: the replay actually exercised the interesting paths.
    assert!(render_a.contains("counter live.delegated 1"), "{render_a}");
    assert!(
        render_a.contains("counter live.idle_evictions 1"),
        "{render_a}"
    );
    assert!(
        log_a.iter().any(|l| l.contains("timer")),
        "no timer wakeup in {log_a:?}"
    );
}

#[test]
fn silent_client_is_evicted_by_the_idle_timer() {
    let script = vec![
        (
            SEC,
            SimEvent::Connect {
                conn: 1,
                peer: peer("10.0.0.1:4000"),
            },
        ),
        // One partial line, then silence: the idle clock re-arms from this
        // read, so eviction lands at t=7s, not t=6s.
        (
            2 * SEC,
            SimEvent::Data {
                conn: 1,
                bytes: b"HELO slow".to_vec(),
            },
        ),
        (30 * SEC, SimEvent::Stop),
    ];
    let mut h = harness(script, &Config::default());
    h.run(&mut |t| Some(t));

    assert_eq!(h.stats.idle_evictions.get(), 1);
    assert_eq!(h.stats.unfinished.get(), 1);
    assert!(!h.reactor.conn_open(1), "idle client was dropped");
    let out = h.output_text(1);
    assert!(out.starts_with("220 "), "{out}");
    assert!(
        !out.contains("421"),
        "idle eviction drops silently, no farewell to a dead peer: {out}"
    );
    assert_eq!(h.registry.gauge_value("live.inflight"), Some(0));
    // The eviction is a timer wakeup at exactly last-activity + idle.
    assert!(
        h.reactor
            .log()
            .iter()
            .any(|l| l == &format!("t={} timer", 7 * SEC)),
        "expected a timer wakeup at t=7s in {:?}",
        h.reactor.log()
    );
}

#[test]
fn dripping_client_cannot_outlive_the_session_deadline() {
    let cfg = Config {
        idle: Duration::from_secs(5),
        session: Duration::from_secs(12),
        ..Config::default()
    };
    // One byte every 2s: each read re-arms the idle timer, so the drip
    // never idles out — the §5 slowloris defense is the *session* budget,
    // charged from accept no matter how lively the trickle looks.
    let mut script = vec![(
        SEC,
        SimEvent::Connect {
            conn: 1,
            peer: peer("10.0.0.1:5000"),
        },
    )];
    for i in 0..5u64 {
        script.push((
            (3 + 2 * i) * SEC,
            SimEvent::Data {
                conn: 1,
                bytes: b"X".to_vec(),
            },
        ));
    }
    script.push((30 * SEC, SimEvent::Stop));
    let mut h = harness(script, &cfg);
    h.run(&mut |t| Some(t));

    assert_eq!(
        h.stats.idle_evictions.get(),
        0,
        "the drip kept the idle timer at bay"
    );
    assert_eq!(h.stats.session_deadline_evictions.get(), 1);
    assert_eq!(h.stats.unfinished.get(), 1);
    assert!(!h.reactor.conn_open(1));
    let out = h.output_text(1);
    assert!(
        out.ends_with("421 4.3.2 Service not available, closing transmission channel\r\n"),
        "{out}"
    );
    // Session deadline is charged from accept: t = 1s + 12s.
    assert!(
        h.reactor
            .log()
            .iter()
            .any(|l| l == &format!("t={} timer", 13 * SEC)),
        "expected the session-budget wakeup at t=13s in {:?}",
        h.reactor.log()
    );
}

#[test]
fn drain_evicts_pretrust_and_sheds_new_arrivals() {
    let script = vec![
        (
            SEC,
            SimEvent::Connect {
                conn: 1,
                peer: peer("10.0.0.1:6001"),
            },
        ),
        (
            2 * SEC,
            SimEvent::Data {
                conn: 1,
                bytes: b"HELO a\r\n".to_vec(),
            },
        ),
        (
            2 * SEC,
            SimEvent::Connect {
                conn: 2,
                peer: peer("10.0.0.2:6002"),
            },
        ),
        (3 * SEC, SimEvent::Drain),
        (
            4 * SEC,
            SimEvent::Connect {
                conn: 3,
                peer: peer("10.0.0.3:6003"),
            },
        ),
        (5 * SEC, SimEvent::Stop),
    ];
    let mut h = harness(script, &Config::default());
    h.run(&mut |t| Some(t));

    // Pre-trust holds no acked mail: the drain evicts both mid-dialog
    // connections with 421 and sheds the late arrival the same way.
    assert_eq!(h.stats.shed_draining.get(), 3);
    assert_eq!(
        h.stats.unfinished.get(),
        2,
        "only established dialogs count unfinished"
    );
    for conn in [1, 2, 3] {
        assert!(
            !h.reactor.conn_open(conn),
            "conn {conn} still open after drain"
        );
        assert!(
            h.output_text(conn).contains("421 "),
            "conn {conn}: {}",
            h.output_text(conn)
        );
    }
    assert!(
        !h.output_text(3).contains("220 "),
        "a connection shed while draining never gets a greeting"
    );
    assert_eq!(h.registry.gauge_value("live.inflight"), Some(0));
}

#[test]
fn inflight_cap_sheds_with_421_before_any_session_work() {
    let cfg = Config {
        max_connections: 1,
        ..Config::default()
    };
    let script = vec![
        (
            SEC,
            SimEvent::Connect {
                conn: 1,
                peer: peer("10.0.0.1:7001"),
            },
        ),
        (
            2 * SEC,
            SimEvent::Connect {
                conn: 2,
                peer: peer("10.0.0.2:7002"),
            },
        ),
        (3 * SEC, SimEvent::Stop),
    ];
    let mut h = harness(script, &cfg);
    h.run(&mut |t| Some(t));

    assert_eq!(h.stats.accepted.get(), 2);
    assert_eq!(h.stats.shed_connections.get(), 1);
    let out = h.output_text(2);
    assert!(
        out.starts_with("421 "),
        "shed reply only, no greeting: {out}"
    );
    assert!(h.output_text(1).starts_with("220 "));
}

#[test]
fn per_ip_cap_sheds_the_second_connection_from_one_address() {
    let cfg = Config {
        max_per_ip: 1,
        ..Config::default()
    };
    let script = vec![
        (
            SEC,
            SimEvent::Connect {
                conn: 1,
                peer: peer("10.0.0.9:8001"),
            },
        ),
        (
            2 * SEC,
            SimEvent::Connect {
                conn: 2,
                peer: peer("10.0.0.9:8002"),
            },
        ),
        // A different address is unaffected by 10.0.0.9's greed.
        (
            3 * SEC,
            SimEvent::Connect {
                conn: 3,
                peer: peer("10.0.0.7:8003"),
            },
        ),
        (4 * SEC, SimEvent::Stop),
    ];
    let mut h = harness(script, &cfg);
    h.run(&mut |t| Some(t));

    assert_eq!(h.stats.shed_per_ip.get(), 1);
    assert!(h.output_text(2).starts_with("421 "));
    assert!(
        h.output_text(3).starts_with("220 "),
        "unrelated IP admitted"
    );
}

#[test]
fn worker_saturation_hands_back_and_sheds_with_421() {
    let script = vec![
        (
            SEC,
            SimEvent::Connect {
                conn: 1,
                peer: peer("10.0.0.1:9001"),
            },
        ),
        (
            2 * SEC,
            SimEvent::Data {
                conn: 1,
                bytes: TRUST_BURST.to_vec(),
            },
        ),
        (3 * SEC, SimEvent::Stop),
    ];
    let mut h = harness(script, &Config::default());
    // Every worker queue full: the sink hands the trusted connection back.
    h.run(&mut |t| Some(t));

    assert_eq!(h.stats.shed_worker_busy.get(), 1);
    assert_eq!(h.stats.unfinished.get(), 1);
    assert!(
        !h.reactor.conn_open(1),
        "shed connection is closed, not parked"
    );
    let out = h.output_text(1);
    assert!(
        out.contains("\r\n250 "),
        "trust was earned before the shed: {out}"
    );
    assert!(
        out.ends_with("421 4.3.2 Service not available, closing transmission channel\r\n"),
        "{out}"
    );
    assert_eq!(h.registry.gauge_value("live.inflight"), Some(0));
}

#[test]
fn ipv6_peer_is_refused_at_the_door() {
    let script = vec![
        (
            SEC,
            SimEvent::Connect {
                conn: 1,
                peer: peer("[2001:db8::1]:2525"),
            },
        ),
        (2 * SEC, SimEvent::Stop),
    ];
    let mut h = harness(script, &Config::default());
    h.run(&mut |t| Some(t));

    assert_eq!(h.stats.rejected_ipv6.get(), 1);
    assert!(!h.reactor.conn_open(1));
    assert!(h.output_text(1).starts_with("554 "), "{}", h.output_text(1));
    assert_eq!(h.registry.gauge_value("live.inflight"), Some(0));
}

#[test]
fn peer_eof_mid_dialog_counts_one_unfinished() {
    let script = vec![
        (
            SEC,
            SimEvent::Connect {
                conn: 1,
                peer: peer("10.0.0.1:3100"),
            },
        ),
        (
            2 * SEC,
            SimEvent::Data {
                conn: 1,
                bytes: b"HELO a\r\n".to_vec(),
            },
        ),
        (3 * SEC, SimEvent::Eof { conn: 1 }),
        (4 * SEC, SimEvent::Stop),
    ];
    let mut h = harness(script, &Config::default());
    h.run(&mut |t| Some(t));

    assert_eq!(h.stats.unfinished.get(), 1);
    assert_eq!(
        h.stats.idle_evictions.get(),
        0,
        "EOF closed it before any timer"
    );
    assert!(!h.reactor.conn_open(1));
    assert_eq!(h.registry.gauge_value("live.inflight"), Some(0));
}

/// The reactor's own termination backstop: a script that leaves the
/// engine with nothing to wait for (no timers, no events) must stop the
/// simulation instead of hanging the test forever.
#[test]
fn exhausted_script_terminates_the_run() {
    let script = vec![(
        SEC,
        SimEvent::Connect {
            conn: 1,
            peer: peer("10.0.0.1:3200"),
        },
    )];
    let mut h = harness(script, &Config::default());
    h.run(&mut |t| Some(t));

    // The lone connection idles out at t=6s, after which the wheel is
    // empty and the script dry: the reactor flips stop itself.
    assert_eq!(h.stats.idle_evictions.get(), 1);
    assert!(
        h.reactor
            .log()
            .iter()
            .any(|l| l.contains("script-exhausted")),
        "{:?}",
        h.reactor.log()
    );
}
