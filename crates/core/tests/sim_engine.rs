//! The pre-trust event loop on scripted readiness and virtual time.
//!
//! Every test here drives [`spamaware_core::pretrust::run_pretrust`] — the
//! exact loop the live master runs — through a [`SimReactor`] replaying a
//! written schedule of connects, byte deliveries, EOFs, and drain/stop
//! flips against a `ManualClock`. No real sockets, no sleeps: the chaos
//! scenarios that `overload_chaos.rs` exercises with wall-clock races
//! (slowloris eviction, session-deadline 421s, drain convergence,
//! admission shed, worker-busy shed) replay here byte-identically, and
//! one regression pins that two identical runs produce byte-identical
//! metrics renders and reactor event logs.

use spamaware_core::pretrust::{run_pretrust, EngineCtx, Trusted};
use spamaware_core::reactor::sim::{SimConn, SimEvent, SimReactor};
use spamaware_core::{BufferPool, LiveStats};
use spamaware_metrics::{ManualClock, Registry};
use std::collections::HashSet;
use std::net::SocketAddr;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

const SEC: u64 = 1_000_000_000;

/// Engine knobs a scenario wants to pin down.
struct Config {
    idle: Duration,
    session: Duration,
    max_connections: usize,
    max_per_ip: usize,
    max_outq_bytes: usize,
    write_stall: Duration,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            idle: Duration::from_secs(5),
            session: Duration::from_secs(30),
            max_connections: 64,
            max_per_ip: 8,
            max_outq_bytes: 64 * 1024,
            write_stall: Duration::from_secs(10),
        }
    }
}

/// A ready-to-run engine instance over one scripted network.
struct Harness {
    reactor: SimReactor,
    ctx: EngineCtx,
    registry: Arc<Registry>,
    stats: Arc<LiveStats>,
}

fn harness(script: Vec<(u64, SimEvent)>, cfg: &Config) -> Harness {
    let clock = ManualClock::new();
    let registry = Arc::new(Registry::new(Arc::new(clock.clone())));
    let stop = Arc::new(AtomicBool::new(false));
    let draining = Arc::new(AtomicBool::new(false));
    let reactor = SimReactor::new(&clock, &stop, &draining, script);
    let stats = Arc::new(LiveStats::register(&registry));
    let mailboxes: HashSet<String> = ["alice".to_owned(), "bob".to_owned()].into_iter().collect();
    let line_pool = Arc::new(BufferPool::new(&registry, 8, 1024));
    let inflight = registry.gauge("live.inflight");
    let ctx = EngineCtx {
        stop,
        draining,
        stats: Arc::clone(&stats),
        mailboxes: Arc::new(mailboxes),
        hostname: Arc::from("sim.test"),
        dnsbl_tx: None,
        pretrust_idle_timeout: cfg.idle,
        session_deadline: cfg.session,
        max_outq_bytes: cfg.max_outq_bytes,
        write_stall_timeout: cfg.write_stall,
        max_connections: cfg.max_connections,
        max_pretrust_per_ip: cfg.max_per_ip,
        registry: Arc::clone(&registry),
        line_pool,
        inflight,
    };
    Harness {
        reactor,
        ctx,
        registry,
        stats,
    }
}

impl Harness {
    /// Runs the engine to completion (the script's `Stop`, or script
    /// exhaustion) with `sink` receiving trusted hand-offs.
    fn run<S>(&mut self, sink: &mut S)
    where
        S: FnMut(Trusted<SimConn>) -> Option<Trusted<SimConn>>,
    {
        let mut acceptor = self.reactor.acceptor();
        run_pretrust(&mut acceptor, &mut self.reactor, &self.ctx, sink);
    }

    fn output_text(&self, conn: u64) -> String {
        String::from_utf8_lossy(&self.reactor.output(conn)).into_owned()
    }
}

fn peer(s: &str) -> SocketAddr {
    s.parse().expect("literal peer address")
}

/// A burst that earns trust and pipelines `DATA` past the trusting RCPT.
const TRUST_BURST: &[u8] =
    b"HELO relay.example\r\nMAIL FROM:<x@client.example>\r\nRCPT TO:<alice@dept.example>\r\nDATA\r\n";

#[test]
fn trusted_handoff_carries_session_and_pipelined_leftover() {
    let script = vec![
        (
            SEC,
            SimEvent::Connect {
                conn: 1,
                peer: peer("10.0.0.1:2525"),
            },
        ),
        (
            2 * SEC,
            SimEvent::Data {
                conn: 1,
                bytes: TRUST_BURST.to_vec(),
            },
        ),
        (3 * SEC, SimEvent::Stop),
    ];
    let mut h = harness(script, &Config::default());
    let mut trusted: Vec<Trusted<SimConn>> = Vec::new();
    h.run(&mut |t| {
        trusted.push(t);
        None
    });

    assert_eq!(trusted.len(), 1, "one connection earned trust");
    let t = &trusted[0];
    assert!(t.session.has_valid_recipient());
    assert_eq!(
        t.leftover, b"DATA\r\n",
        "pipelined bytes past the trusting RCPT travel with the hand-off"
    );
    assert_eq!(t.accepted_ns, SEC, "accept instant on the manual clock");
    // The socket left the master alive: deregistered, not closed.
    assert!(h.reactor.conn_open(1));
    let out = h.output_text(1);
    assert!(out.starts_with("220 sim.test"), "greeting first: {out}");
    assert!(out.contains("\r\n250 "), "dialog replies coalesced: {out}");
    assert_eq!(h.reactor.unread_input(1), 0);
    assert_eq!(h.stats.accepted.get(), 1);
    // Delegation keeps the connection in flight; the worker side owns the
    // decrement once the transaction finishes.
    assert_eq!(h.registry.gauge_value("live.inflight"), Some(1));
}

/// Satellite regression: the whole loop is a pure function of its script.
/// Two runs over the same schedule must agree byte-for-byte — the metrics
/// render *and* the reactor's event log (readiness batches, timer
/// wakeups, watch/unwatch order).
#[test]
fn identical_scripts_replay_byte_identically() {
    fn script() -> Vec<(u64, SimEvent)> {
        vec![
            (
                SEC,
                SimEvent::Connect {
                    conn: 1,
                    peer: peer("10.0.0.1:1001"),
                },
            ),
            (
                2 * SEC,
                SimEvent::Data {
                    conn: 1,
                    bytes: TRUST_BURST.to_vec(),
                },
            ),
            // Same-instant burst: a second handshake lands in the same
            // wakeup batch that trusts conn 1.
            (
                2 * SEC,
                SimEvent::Connect {
                    conn: 2,
                    peer: peer("10.0.0.2:1002"),
                },
            ),
            (
                3 * SEC,
                SimEvent::Data {
                    conn: 2,
                    bytes: b"HELO slowloris".to_vec(),
                },
            ),
            (
                4 * SEC,
                SimEvent::Connect {
                    conn: 3,
                    peer: peer("10.0.0.3:1003"),
                },
            ),
            (
                4 * SEC,
                SimEvent::Data {
                    conn: 3,
                    bytes: b"HELO c\r\nQUIT\r\n".to_vec(),
                },
            ),
            // Silence until well past conn 2's idle deadline, so a timer
            // eviction is part of the replayed history.
            (20 * SEC, SimEvent::Stop),
        ]
    }
    let run = || {
        let mut h = harness(script(), &Config::default());
        let delegated = Arc::clone(&h.stats.delegated);
        h.run(&mut |t| {
            delegated.inc();
            drop(t);
            None
        });
        (h.reactor.log().to_vec(), h.registry.render())
    };
    let (log_a, render_a) = run();
    let (log_b, render_b) = run();
    assert_eq!(log_a, log_b, "reactor event logs diverged");
    assert_eq!(render_a, render_b, "metrics renders diverged");
    // Sanity: the replay actually exercised the interesting paths.
    assert!(render_a.contains("counter live.delegated 1"), "{render_a}");
    assert!(
        render_a.contains("counter live.idle_evictions 1"),
        "{render_a}"
    );
    assert!(
        log_a.iter().any(|l| l.contains("timer")),
        "no timer wakeup in {log_a:?}"
    );
}

#[test]
fn silent_client_is_evicted_by_the_idle_timer() {
    let script = vec![
        (
            SEC,
            SimEvent::Connect {
                conn: 1,
                peer: peer("10.0.0.1:4000"),
            },
        ),
        // One partial line, then silence: the idle clock re-arms from this
        // read, so eviction lands at t=7s, not t=6s.
        (
            2 * SEC,
            SimEvent::Data {
                conn: 1,
                bytes: b"HELO slow".to_vec(),
            },
        ),
        (30 * SEC, SimEvent::Stop),
    ];
    let mut h = harness(script, &Config::default());
    h.run(&mut |t| Some(t));

    assert_eq!(h.stats.idle_evictions.get(), 1);
    assert_eq!(h.stats.unfinished.get(), 1);
    assert!(!h.reactor.conn_open(1), "idle client was dropped");
    let out = h.output_text(1);
    assert!(out.starts_with("220 "), "{out}");
    assert!(
        !out.contains("421"),
        "idle eviction drops silently, no farewell to a dead peer: {out}"
    );
    assert_eq!(h.registry.gauge_value("live.inflight"), Some(0));
    // The eviction is a timer wakeup at exactly last-activity + idle.
    assert!(
        h.reactor
            .log()
            .iter()
            .any(|l| l == &format!("t={} timer", 7 * SEC)),
        "expected a timer wakeup at t=7s in {:?}",
        h.reactor.log()
    );
}

#[test]
fn dripping_client_cannot_outlive_the_session_deadline() {
    let cfg = Config {
        idle: Duration::from_secs(5),
        session: Duration::from_secs(12),
        ..Config::default()
    };
    // One byte every 2s: each read re-arms the idle timer, so the drip
    // never idles out — the §5 slowloris defense is the *session* budget,
    // charged from accept no matter how lively the trickle looks.
    let mut script = vec![(
        SEC,
        SimEvent::Connect {
            conn: 1,
            peer: peer("10.0.0.1:5000"),
        },
    )];
    for i in 0..5u64 {
        script.push((
            (3 + 2 * i) * SEC,
            SimEvent::Data {
                conn: 1,
                bytes: b"X".to_vec(),
            },
        ));
    }
    script.push((30 * SEC, SimEvent::Stop));
    let mut h = harness(script, &cfg);
    h.run(&mut |t| Some(t));

    assert_eq!(
        h.stats.idle_evictions.get(),
        0,
        "the drip kept the idle timer at bay"
    );
    assert_eq!(h.stats.session_deadline_evictions.get(), 1);
    assert_eq!(h.stats.unfinished.get(), 1);
    assert!(!h.reactor.conn_open(1));
    let out = h.output_text(1);
    assert!(
        out.ends_with("421 4.3.2 Service not available, closing transmission channel\r\n"),
        "{out}"
    );
    // Session deadline is charged from accept: t = 1s + 12s.
    assert!(
        h.reactor
            .log()
            .iter()
            .any(|l| l == &format!("t={} timer", 13 * SEC)),
        "expected the session-budget wakeup at t=13s in {:?}",
        h.reactor.log()
    );
}

#[test]
fn drain_evicts_pretrust_and_sheds_new_arrivals() {
    let script = vec![
        (
            SEC,
            SimEvent::Connect {
                conn: 1,
                peer: peer("10.0.0.1:6001"),
            },
        ),
        (
            2 * SEC,
            SimEvent::Data {
                conn: 1,
                bytes: b"HELO a\r\n".to_vec(),
            },
        ),
        (
            2 * SEC,
            SimEvent::Connect {
                conn: 2,
                peer: peer("10.0.0.2:6002"),
            },
        ),
        (3 * SEC, SimEvent::Drain),
        (
            4 * SEC,
            SimEvent::Connect {
                conn: 3,
                peer: peer("10.0.0.3:6003"),
            },
        ),
        (5 * SEC, SimEvent::Stop),
    ];
    let mut h = harness(script, &Config::default());
    h.run(&mut |t| Some(t));

    // Pre-trust holds no acked mail: the drain evicts both mid-dialog
    // connections with 421 and sheds the late arrival the same way.
    assert_eq!(h.stats.shed_draining.get(), 3);
    assert_eq!(
        h.stats.unfinished.get(),
        2,
        "only established dialogs count unfinished"
    );
    for conn in [1, 2, 3] {
        assert!(
            !h.reactor.conn_open(conn),
            "conn {conn} still open after drain"
        );
        assert!(
            h.output_text(conn).contains("421 "),
            "conn {conn}: {}",
            h.output_text(conn)
        );
    }
    assert!(
        !h.output_text(3).contains("220 "),
        "a connection shed while draining never gets a greeting"
    );
    assert_eq!(h.registry.gauge_value("live.inflight"), Some(0));
}

#[test]
fn inflight_cap_sheds_with_421_before_any_session_work() {
    let cfg = Config {
        max_connections: 1,
        ..Config::default()
    };
    let script = vec![
        (
            SEC,
            SimEvent::Connect {
                conn: 1,
                peer: peer("10.0.0.1:7001"),
            },
        ),
        (
            2 * SEC,
            SimEvent::Connect {
                conn: 2,
                peer: peer("10.0.0.2:7002"),
            },
        ),
        (3 * SEC, SimEvent::Stop),
    ];
    let mut h = harness(script, &cfg);
    h.run(&mut |t| Some(t));

    assert_eq!(h.stats.accepted.get(), 2);
    assert_eq!(h.stats.shed_connections.get(), 1);
    let out = h.output_text(2);
    assert!(
        out.starts_with("421 "),
        "shed reply only, no greeting: {out}"
    );
    assert!(h.output_text(1).starts_with("220 "));
}

#[test]
fn per_ip_cap_sheds_the_second_connection_from_one_address() {
    let cfg = Config {
        max_per_ip: 1,
        ..Config::default()
    };
    let script = vec![
        (
            SEC,
            SimEvent::Connect {
                conn: 1,
                peer: peer("10.0.0.9:8001"),
            },
        ),
        (
            2 * SEC,
            SimEvent::Connect {
                conn: 2,
                peer: peer("10.0.0.9:8002"),
            },
        ),
        // A different address is unaffected by 10.0.0.9's greed.
        (
            3 * SEC,
            SimEvent::Connect {
                conn: 3,
                peer: peer("10.0.0.7:8003"),
            },
        ),
        (4 * SEC, SimEvent::Stop),
    ];
    let mut h = harness(script, &cfg);
    h.run(&mut |t| Some(t));

    assert_eq!(h.stats.shed_per_ip.get(), 1);
    assert!(h.output_text(2).starts_with("421 "));
    assert!(
        h.output_text(3).starts_with("220 "),
        "unrelated IP admitted"
    );
}

#[test]
fn worker_saturation_hands_back_and_sheds_with_421() {
    let script = vec![
        (
            SEC,
            SimEvent::Connect {
                conn: 1,
                peer: peer("10.0.0.1:9001"),
            },
        ),
        (
            2 * SEC,
            SimEvent::Data {
                conn: 1,
                bytes: TRUST_BURST.to_vec(),
            },
        ),
        (3 * SEC, SimEvent::Stop),
    ];
    let mut h = harness(script, &Config::default());
    // Every worker queue full: the sink hands the trusted connection back.
    h.run(&mut |t| Some(t));

    assert_eq!(h.stats.shed_worker_busy.get(), 1);
    assert_eq!(h.stats.unfinished.get(), 1);
    assert!(
        !h.reactor.conn_open(1),
        "shed connection is closed, not parked"
    );
    let out = h.output_text(1);
    assert!(
        out.contains("\r\n250 "),
        "trust was earned before the shed: {out}"
    );
    assert!(
        out.ends_with("421 4.3.2 Service not available, closing transmission channel\r\n"),
        "{out}"
    );
    assert_eq!(h.registry.gauge_value("live.inflight"), Some(0));
}

#[test]
fn ipv6_peer_is_refused_at_the_door() {
    let script = vec![
        (
            SEC,
            SimEvent::Connect {
                conn: 1,
                peer: peer("[2001:db8::1]:2525"),
            },
        ),
        (2 * SEC, SimEvent::Stop),
    ];
    let mut h = harness(script, &Config::default());
    h.run(&mut |t| Some(t));

    assert_eq!(h.stats.rejected_ipv6.get(), 1);
    assert!(!h.reactor.conn_open(1));
    assert!(h.output_text(1).starts_with("554 "), "{}", h.output_text(1));
    assert_eq!(h.registry.gauge_value("live.inflight"), Some(0));
}

#[test]
fn peer_eof_mid_dialog_counts_one_unfinished() {
    let script = vec![
        (
            SEC,
            SimEvent::Connect {
                conn: 1,
                peer: peer("10.0.0.1:3100"),
            },
        ),
        (
            2 * SEC,
            SimEvent::Data {
                conn: 1,
                bytes: b"HELO a\r\n".to_vec(),
            },
        ),
        (3 * SEC, SimEvent::Eof { conn: 1 }),
        (4 * SEC, SimEvent::Stop),
    ];
    let mut h = harness(script, &Config::default());
    h.run(&mut |t| Some(t));

    assert_eq!(h.stats.unfinished.get(), 1);
    assert_eq!(
        h.stats.idle_evictions.get(),
        0,
        "EOF closed it before any timer"
    );
    assert!(!h.reactor.conn_open(1));
    assert_eq!(h.registry.gauge_value("live.inflight"), Some(0));
}

/// The reactor's own termination backstop: a script that leaves the
/// engine with nothing to wait for (no timers, no events) must stop the
/// simulation instead of hanging the test forever.
#[test]
fn exhausted_script_terminates_the_run() {
    let script = vec![(
        SEC,
        SimEvent::Connect {
            conn: 1,
            peer: peer("10.0.0.1:3200"),
        },
    )];
    let mut h = harness(script, &Config::default());
    h.run(&mut |t| Some(t));

    // The lone connection idles out at t=6s, after which the wheel is
    // empty and the script dry: the reactor flips stop itself.
    assert_eq!(h.stats.idle_evictions.get(), 1);
    assert!(
        h.reactor
            .log()
            .iter()
            .any(|l| l.contains("script-exhausted")),
        "{:?}",
        h.reactor.log()
    );
}

/// A peer whose receive window is zero from the handshake on: the
/// greeting queues (one `master.write_stalls`), the no-progress deadline
/// arms at the accept instant, and with no grant ever arriving the
/// engine evicts the connection at exactly accept + `write_stall` on the
/// virtual clock — without a farewell, and with the outq gauge
/// reconciled back to zero.
#[test]
fn zero_window_peer_is_evicted_at_the_stall_deadline() {
    let cfg = Config {
        idle: Duration::from_secs(30),
        session: Duration::from_secs(60),
        write_stall: Duration::from_secs(10),
        ..Config::default()
    };
    let script = vec![
        (
            SEC,
            SimEvent::Connect {
                conn: 1,
                peer: peer("10.0.0.1:2600"),
            },
        ),
        // Same-instant zero grant: scripted flow control from byte one.
        (SEC, SimEvent::Window { conn: 1, bytes: 0 }),
        (20 * SEC, SimEvent::Stop),
    ];
    let mut h = harness(script, &cfg);
    h.run(&mut |t| Some(t));

    assert_eq!(h.registry.counter_value("master.write_stalls"), Some(1));
    assert_eq!(
        h.registry.counter_value("master.evicted_slow_writers"),
        Some(1)
    );
    assert_eq!(h.stats.unfinished.get(), 1);
    assert!(!h.reactor.conn_open(1), "stalled writer was dropped");
    assert_eq!(
        h.output_text(1),
        "",
        "a zero-window peer never receives a byte"
    );
    assert_eq!(h.registry.gauge_value("master.outq_bytes"), Some(0));
    assert_eq!(h.registry.gauge_value("live.inflight"), Some(0));
    // The eviction is the stall timer firing at exactly accept + 10s.
    assert!(
        h.reactor
            .log()
            .iter()
            .any(|l| l == &format!("t={} timer", 11 * SEC)),
        "expected the stall wakeup at t=11s in {:?}",
        h.reactor.log()
    );
    assert!(
        h.reactor.log().iter().any(|l| l.contains("arm-write")),
        "write interest was armed for the stalled greeting: {:?}",
        h.reactor.log()
    );
}

/// The stall deadline measures *no progress*, not total queue lifetime: a
/// peer draining one byte per virtual second keeps a 3-second stall
/// budget alive for the 30 seconds the greeting needs, and every reply
/// byte arrives in order with none lost.
#[test]
fn one_byte_per_tick_drip_outlives_the_stall_budget_without_eviction() {
    let cfg = Config {
        idle: Duration::from_secs(60),
        session: Duration::from_secs(120),
        write_stall: Duration::from_secs(3),
        ..Config::default()
    };
    let greeting = "220 sim.test ESMTP spamaware\r\n";
    let mut script = vec![
        (
            SEC,
            SimEvent::Connect {
                conn: 1,
                peer: peer("10.0.0.1:2700"),
            },
        ),
        (SEC, SimEvent::Window { conn: 1, bytes: 0 }),
    ];
    // One byte of window per second: each grant is inside the 3 s stall
    // budget, but the whole drain takes 10× that budget.
    for i in 0..greeting.len() as u64 {
        script.push(((2 + i) * SEC, SimEvent::Window { conn: 1, bytes: 1 }));
    }
    script.push((40 * SEC, SimEvent::Stop));
    let mut h = harness(script, &cfg);
    h.run(&mut |t| Some(t));

    assert_eq!(
        h.output_text(1),
        greeting,
        "the drip received every reply byte, in order"
    );
    // The connection survived to the shutdown (the engine dropping it at
    // stop is not an eviction): no slow-writer eviction, no unfinished
    // transaction was counted.
    assert_eq!(h.registry.counter_value("master.write_stalls"), Some(1));
    assert_eq!(
        h.registry.counter_value("master.evicted_slow_writers"),
        Some(0)
    );
    assert_eq!(h.stats.unfinished.get(), 0);
    assert_eq!(h.registry.gauge_value("live.inflight"), Some(1));
    assert_eq!(h.registry.gauge_value("master.outq_bytes"), Some(0));
    // The queue drained: interest was disarmed, closing the cycle.
    assert!(
        h.reactor.log().iter().any(|l| l.contains("disarm-write")),
        "{:?}",
        h.reactor.log()
    );
}

/// A queue cap smaller than the greeting overflows on the very first
/// send: the engine evicts the slow writer synchronously at the accept
/// instant instead of carrying an unbounded buffer for a peer that
/// reads nothing.
#[test]
fn outq_cap_overflow_evicts_at_the_accept_instant() {
    let cfg = Config {
        max_outq_bytes: 8,
        ..Config::default()
    };
    let script = vec![
        (
            SEC,
            SimEvent::Connect {
                conn: 1,
                peer: peer("10.0.0.1:2800"),
            },
        ),
        (SEC, SimEvent::Window { conn: 1, bytes: 0 }),
        (2 * SEC, SimEvent::Stop),
    ];
    let mut h = harness(script, &cfg);
    h.run(&mut |t| Some(t));

    assert_eq!(
        h.registry.counter_value("master.evicted_slow_writers"),
        Some(1)
    );
    assert!(!h.reactor.conn_open(1));
    assert_eq!(h.registry.gauge_value("master.outq_bytes"), Some(0));
    assert_eq!(h.registry.gauge_value("live.inflight"), Some(0));
    // Overflow eviction is immediate — no timer wakeup was needed.
    assert!(
        !h.reactor.log().iter().any(|l| l.contains("timer")),
        "{:?}",
        h.reactor.log()
    );
}

/// Reply bytes a stalled peer has not accepted travel with the trusted
/// hand-off (`Trusted::pending_out`) instead of being dropped: the
/// worker owes the peer those bytes before any reply of its own.
#[test]
fn stalled_trust_burst_hands_queued_replies_to_the_worker() {
    let script = vec![
        (
            SEC,
            SimEvent::Connect {
                conn: 1,
                peer: peer("10.0.0.1:2900"),
            },
        ),
        // The greeting flushed under the default unlimited window; now
        // the peer's receive buffer fills before the dialog replies.
        (2 * SEC, SimEvent::Window { conn: 1, bytes: 0 }),
        (
            3 * SEC,
            SimEvent::Data {
                conn: 1,
                bytes: TRUST_BURST.to_vec(),
            },
        ),
        (5 * SEC, SimEvent::Stop),
    ];
    let mut h = harness(script, &Config::default());
    let mut trusted: Vec<Trusted<SimConn>> = Vec::new();
    h.run(&mut |t| {
        trusted.push(t);
        None
    });

    assert_eq!(trusted.len(), 1);
    let t = &trusted[0];
    let pending = String::from_utf8_lossy(&t.pending_out);
    assert_eq!(
        pending.matches("250 ").count(),
        3,
        "HELO, MAIL, and RCPT replies all queued for the worker: {pending}"
    );
    assert!(pending.ends_with("\r\n"), "{pending}");
    assert_eq!(
        h.output_text(1),
        "220 sim.test ESMTP spamaware\r\n",
        "the wire saw only the greeting before the window closed"
    );
    assert_eq!(t.leftover, b"DATA\r\n");
    // The hand-off reconciled the gauge: the master no longer owns the
    // queued bytes.
    assert_eq!(h.registry.gauge_value("master.outq_bytes"), Some(0));
    assert!(h.reactor.conn_open(1), "delegated, not closed");
}

/// The whole stall history — a zero-window eviction and a drip that
/// survives on progress re-arms — is a pure function of the script: two
/// runs agree byte-for-byte on the reactor log (arm/disarm instants,
/// timer wakeups) and the metrics render.
#[test]
fn stall_and_eviction_history_replays_byte_identically() {
    fn script() -> Vec<(u64, SimEvent)> {
        vec![
            // Conn 1: zero window forever; stall deadline evicts at 6s.
            (
                SEC,
                SimEvent::Connect {
                    conn: 1,
                    peer: peer("10.0.0.1:3001"),
                },
            ),
            (SEC, SimEvent::Window { conn: 1, bytes: 0 }),
            // Conn 2: stalls at 2s, then drips inside the 5s budget and
            // drains fully on a big grant.
            (
                2 * SEC,
                SimEvent::Connect {
                    conn: 2,
                    peer: peer("10.0.0.2:3002"),
                },
            ),
            (2 * SEC, SimEvent::Window { conn: 2, bytes: 0 }),
            (4 * SEC, SimEvent::Window { conn: 2, bytes: 1 }),
            (6 * SEC, SimEvent::Window { conn: 2, bytes: 1 }),
            (
                8 * SEC,
                SimEvent::Window {
                    conn: 2,
                    bytes: 100,
                },
            ),
            (12 * SEC, SimEvent::Stop),
        ]
    }
    let cfg = Config {
        idle: Duration::from_secs(30),
        session: Duration::from_secs(60),
        write_stall: Duration::from_secs(5),
        ..Config::default()
    };
    let run = || {
        let mut h = harness(script(), &cfg);
        h.run(&mut |t| Some(t));
        (
            h.reactor.log().to_vec(),
            h.registry.render(),
            h.output_text(2),
        )
    };
    let (log_a, render_a, out2_a) = run();
    let (log_b, render_b, out2_b) = run();
    assert_eq!(log_a, log_b, "reactor event logs diverged");
    assert_eq!(render_a, render_b, "metrics renders diverged");
    assert_eq!(out2_a, out2_b);
    // Sanity: the replay exercised both sides of the stall machinery.
    assert_eq!(out2_a, "220 sim.test ESMTP spamaware\r\n");
    assert!(
        render_a.contains("counter master.evicted_slow_writers 1"),
        "{render_a}"
    );
    assert!(
        render_a.contains("counter master.write_stalls 2"),
        "{render_a}"
    );
    // Conn 1's stall deadline (armed at 1s, 5s budget) expires inside the
    // t=6s wakeup that conn 2's grant happens to trigger: the eviction's
    // unwatch lands between the t=6s batch and the next scripted instant.
    let unwatch = log_a
        .iter()
        .position(|l| l == "unwatch id=0x1")
        .expect("conn 1 was evicted");
    let t6 = log_a
        .iter()
        .position(|l| l.starts_with(&format!("t={} ", 6 * SEC)))
        .expect("a t=6s wakeup");
    let t8 = log_a
        .iter()
        .position(|l| l.starts_with(&format!("t={} ", 8 * SEC)))
        .expect("a t=8s wakeup");
    assert!(
        t6 < unwatch && unwatch < t8,
        "stall eviction pinned to the t=6s wakeup: {log_a:?}"
    );
    assert!(
        log_a.iter().any(|l| l.contains("disarm-write")),
        "conn 2 drained and disarmed: {log_a:?}"
    );
}
