//! Graceful-restart torture: a real `spamawarectl serve` process is
//! SIGKILLed mid-DATA and the surviving spool must contain exactly the
//! accepted mail — nothing acknowledged is lost, nothing unacknowledged
//! appears — and a restarted server on the same root must keep serving.
//!
//! This is the process-level end of the crash-consistency story; the
//! byte-level end (every possible torn write) is swept exhaustively by
//! `spamaware-mfs`'s `crash_sweep` test.

#![cfg(unix)]

use spamaware_core::{fsck, MailStore, RealDir};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// A `spamawarectl serve` child process, killed on drop.
struct Server {
    child: Child,
    addr: String,
    admin: String,
    stdout: BufReader<std::process::ChildStdout>,
}

impl Server {
    fn spawn(root: &PathBuf) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_spamawarectl"))
            .arg("serve")
            .arg(root)
            .arg("alice,bob")
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn spamawarectl serve");
        let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
        let mut line = String::new();
        stdout.read_line(&mut line).expect("read LISTENING line");
        let addr = line
            .strip_prefix("LISTENING ")
            .unwrap_or_else(|| panic!("unexpected serve banner {line:?}"))
            .trim()
            .to_owned();
        line.clear();
        stdout.read_line(&mut line).expect("read ADMIN line");
        let admin = line
            .strip_prefix("ADMIN ")
            .unwrap_or_else(|| panic!("unexpected admin banner {line:?}"))
            .trim()
            .to_owned();
        Server {
            child,
            addr,
            admin,
            stdout,
        }
    }

    fn connect(&self) -> Client {
        // The banner is printed after bind, so the port is live already;
        // retry briefly anyway in case the accept loop is still spinning up.
        for _ in 0..50 {
            if let Ok(stream) = TcpStream::connect(&self.addr) {
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .expect("timeout");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut greeting = String::new();
                reader.read_line(&mut greeting).expect("greeting");
                assert!(greeting.starts_with("220"), "greeting {greeting:?}");
                return Client { stream, reader };
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        panic!("could not connect to {}", self.addr);
    }

    /// SIGKILL — no shutdown hooks, no flushes: the power-cut analogue.
    fn kill(mut self) {
        self.child.kill().expect("kill");
        self.child.wait().expect("wait");
    }

    /// Graceful drain via the admin socket: sends `DRAIN`, then waits for
    /// the process to finish in-flight work, print `DRAINED`, and exit 0.
    fn drain(mut self) {
        let admin = TcpStream::connect(&self.admin).expect("connect admin");
        let mut admin = admin;
        admin.write_all(b"DRAIN\n").expect("send DRAIN");
        let mut reply = String::new();
        BufReader::new(admin)
            .read_line(&mut reply)
            .expect("drain reply");
        assert!(reply.starts_with("OK draining"), "admin said {reply:?}");
        for _ in 0..400 {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                assert!(status.success(), "drained server exits 0, got {status}");
                let mut rest = String::new();
                std::io::Read::read_to_string(&mut self.stdout, &mut rest).expect("rest of stdout");
                assert!(
                    rest.lines().any(|l| l.trim() == "DRAINED"),
                    "expected DRAINED banner, got {rest:?}"
                );
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        panic!("server did not exit within 10s of DRAIN");
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn cmd(&mut self, line: &str) -> String {
        self.stream
            .write_all(format!("{line}\r\n").as_bytes())
            .expect("write");
        self.read_reply()
    }

    fn read_reply(&mut self) -> String {
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("reply");
        reply
    }

    /// Full transaction through the acknowledged 250 after `.`.
    fn deliver(&mut self, rcpt: &str, body: &str) {
        assert!(self.cmd("MAIL FROM:<x@client.example>").starts_with("250"));
        assert!(self
            .cmd(&format!("RCPT TO:<{rcpt}@dept.example>"))
            .starts_with("250"));
        assert!(self.cmd("DATA").starts_with("354"));
        self.stream
            .write_all(format!("{body}\r\n.\r\n").as_bytes())
            .expect("body");
        let ack = self.read_reply();
        assert!(ack.starts_with("250"), "delivery ack {ack:?}");
    }
}

fn temp_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "spamaware-crash-{tag}-{}-{:x}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

#[test]
fn sigkill_mid_data_loses_no_acked_mail_and_invents_none() {
    let root = temp_root("middata");

    // Phase 1: accept two mails, then die mid-DATA of a third.
    let server = Server::spawn(&root);
    let mut c = server.connect();
    assert!(c.cmd("HELO client.example").starts_with("250"));
    c.deliver("alice", "first accepted mail");
    c.deliver("alice", "second accepted mail");
    assert!(c.cmd("MAIL FROM:<x@client.example>").starts_with("250"));
    assert!(c.cmd("RCPT TO:<alice@dept.example>").starts_with("250"));
    assert!(c.cmd("DATA").starts_with("354"));
    c.stream
        .write_all(b"a third mail the server will never finish rea")
        .expect("partial body");
    server.kill();

    // Phase 2: repair and audit the surviving spool. The acknowledged
    // mails are intact; the aborted third never made it to storage.
    let backend = RealDir::new(&root).expect("reopen root");
    let (mut store, report) = fsck(backend).expect("fsck");
    let mails = store.read_mailbox("alice").expect("read alice");
    assert_eq!(mails.len(), 2, "exactly the acked mails; report:\n{report}");
    let text = |i: usize| String::from_utf8_lossy(&mails[i].body).into_owned();
    assert!(text(0).contains("first accepted mail"), "{:?}", text(0));
    assert!(text(1).contains("second accepted mail"), "{:?}", text(1));
    assert!(
        !text(0).contains("third") && !text(1).contains("third"),
        "unacked mail must not appear"
    );
    drop(store);

    // Phase 3: a restarted server on the same root serves new mail.
    let server = Server::spawn(&root);
    let mut c = server.connect();
    assert!(c.cmd("HELO client.example").starts_with("250"));
    c.deliver("alice", "post-restart mail");
    assert!(c.cmd("QUIT").starts_with("221"));
    server.kill();

    let backend = RealDir::new(&root).expect("reopen root");
    let (mut store, report) = fsck(backend).expect("fsck after restart");
    assert!(
        report.is_clean(),
        "quiescent kill leaves a clean store:\n{report}"
    );
    let mails = store.read_mailbox("alice").expect("read alice");
    assert_eq!(mails.len(), 3);
    assert!(
        String::from_utf8_lossy(&mails[2].body).contains("post-restart mail"),
        "restarted server stores new mail"
    );
    drop(store);

    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn graceful_drain_loses_no_acked_mail_and_exits_clean() {
    let root = temp_root("drain");

    // Deliver acked mail, leave the (delegated, in-worker) connection
    // open, then drain: the sibling of the SIGKILL test above, proving
    // the *clean* shutdown path also loses nothing — and, unlike a kill,
    // leaves a spool that needs no repairs at all.
    let server = Server::spawn(&root);
    let mut c = server.connect();
    assert!(c.cmd("HELO client.example").starts_with("250"));
    c.deliver("alice", "acked before drain one");
    c.deliver("bob", "acked before drain two");
    server.drain();

    // The idle delegated connection was told to come back later (421) —
    // or the socket was torn down with the process; either way no hang.
    let mut farewell = String::new();
    let _ = c.reader.read_line(&mut farewell);
    assert!(
        farewell.is_empty() || farewell.starts_with("421"),
        "drained server said {farewell:?}"
    );

    // The spool is clean — zero fsck repairs, unlike the SIGKILL path —
    // and holds exactly the acked mail.
    let backend = RealDir::new(&root).expect("reopen root");
    let (mut store, report) = fsck(backend).expect("fsck after drain");
    assert!(report.is_clean(), "drain leaves a clean store:\n{report}");
    let alice = store.read_mailbox("alice").expect("read alice");
    let bob = store.read_mailbox("bob").expect("read bob");
    assert_eq!((alice.len(), bob.len()), (1, 1));
    assert!(String::from_utf8_lossy(&alice[0].body).contains("acked before drain one"));
    assert!(String::from_utf8_lossy(&bob[0].body).contains("acked before drain two"));
    drop(store);

    let _ = std::fs::remove_dir_all(root);
}
