//! Graceful-restart torture: a real `spamawarectl serve` process is
//! SIGKILLed mid-DATA and the surviving spool must contain exactly the
//! accepted mail — nothing acknowledged is lost, nothing unacknowledged
//! appears — and a restarted server on the same root must keep serving.
//!
//! This is the process-level end of the crash-consistency story; the
//! byte-level end (every possible torn write) is swept exhaustively by
//! `spamaware-mfs`'s `crash_sweep` test.

#![cfg(unix)]

use spamaware_core::{fsck, MailStore, RealDir};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// A `spamawarectl serve` child process, killed on drop.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn spawn(root: &PathBuf) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_spamawarectl"))
            .arg("serve")
            .arg(root)
            .arg("alice,bob")
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn spamawarectl serve");
        let stdout = child.stdout.take().expect("child stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read LISTENING line");
        let addr = line
            .strip_prefix("LISTENING ")
            .unwrap_or_else(|| panic!("unexpected serve banner {line:?}"))
            .trim()
            .to_owned();
        Server { child, addr }
    }

    fn connect(&self) -> Client {
        // The banner is printed after bind, so the port is live already;
        // retry briefly anyway in case the accept loop is still spinning up.
        for _ in 0..50 {
            if let Ok(stream) = TcpStream::connect(&self.addr) {
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .expect("timeout");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut greeting = String::new();
                reader.read_line(&mut greeting).expect("greeting");
                assert!(greeting.starts_with("220"), "greeting {greeting:?}");
                return Client { stream, reader };
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        panic!("could not connect to {}", self.addr);
    }

    /// SIGKILL — no shutdown hooks, no flushes: the power-cut analogue.
    fn kill(mut self) {
        self.child.kill().expect("kill");
        self.child.wait().expect("wait");
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn cmd(&mut self, line: &str) -> String {
        self.stream
            .write_all(format!("{line}\r\n").as_bytes())
            .expect("write");
        self.read_reply()
    }

    fn read_reply(&mut self) -> String {
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("reply");
        reply
    }

    /// Full transaction through the acknowledged 250 after `.`.
    fn deliver(&mut self, rcpt: &str, body: &str) {
        assert!(self.cmd("MAIL FROM:<x@client.example>").starts_with("250"));
        assert!(self
            .cmd(&format!("RCPT TO:<{rcpt}@dept.example>"))
            .starts_with("250"));
        assert!(self.cmd("DATA").starts_with("354"));
        self.stream
            .write_all(format!("{body}\r\n.\r\n").as_bytes())
            .expect("body");
        let ack = self.read_reply();
        assert!(ack.starts_with("250"), "delivery ack {ack:?}");
    }
}

fn temp_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "spamaware-crash-{tag}-{}-{:x}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

#[test]
fn sigkill_mid_data_loses_no_acked_mail_and_invents_none() {
    let root = temp_root("middata");

    // Phase 1: accept two mails, then die mid-DATA of a third.
    let server = Server::spawn(&root);
    let mut c = server.connect();
    assert!(c.cmd("HELO client.example").starts_with("250"));
    c.deliver("alice", "first accepted mail");
    c.deliver("alice", "second accepted mail");
    assert!(c.cmd("MAIL FROM:<x@client.example>").starts_with("250"));
    assert!(c.cmd("RCPT TO:<alice@dept.example>").starts_with("250"));
    assert!(c.cmd("DATA").starts_with("354"));
    c.stream
        .write_all(b"a third mail the server will never finish rea")
        .expect("partial body");
    server.kill();

    // Phase 2: repair and audit the surviving spool. The acknowledged
    // mails are intact; the aborted third never made it to storage.
    let backend = RealDir::new(&root).expect("reopen root");
    let (mut store, report) = fsck(backend).expect("fsck");
    let mails = store.read_mailbox("alice").expect("read alice");
    assert_eq!(mails.len(), 2, "exactly the acked mails; report:\n{report}");
    let text = |i: usize| String::from_utf8_lossy(&mails[i].body).into_owned();
    assert!(text(0).contains("first accepted mail"), "{:?}", text(0));
    assert!(text(1).contains("second accepted mail"), "{:?}", text(1));
    assert!(
        !text(0).contains("third") && !text(1).contains("third"),
        "unacked mail must not appear"
    );
    drop(store);

    // Phase 3: a restarted server on the same root serves new mail.
    let server = Server::spawn(&root);
    let mut c = server.connect();
    assert!(c.cmd("HELO client.example").starts_with("250"));
    c.deliver("alice", "post-restart mail");
    assert!(c.cmd("QUIT").starts_with("221"));
    server.kill();

    let backend = RealDir::new(&root).expect("reopen root");
    let (mut store, report) = fsck(backend).expect("fsck after restart");
    assert!(
        report.is_clean(),
        "quiescent kill leaves a clean store:\n{report}"
    );
    let mails = store.read_mailbox("alice").expect("read alice");
    assert_eq!(mails.len(), 3);
    assert!(
        String::from_utf8_lossy(&mails[2].body).contains("post-restart mail"),
        "restarted server stores new mail"
    );
    drop(store);

    let _ = std::fs::remove_dir_all(root);
}
