//! Property tests pinning [`TimerWheel`] to its reference model.
//!
//! The model is the structure the wheel's module docs name as the naive
//! alternative: a `BTreeMap` of armed timers fired in `(deadline, id)`
//! order. Any op sequence — schedule (including re-arm and past
//! deadlines), cancel, and monotonic advance across level boundaries and
//! the overflow horizon — must produce byte-identical firings, the same
//! `next_deadline`, and the same armed count. The wheel is allowed to
//! differ only in *cost*, never in observable behavior.

use proptest::prelude::*;
use spamaware_core::reactor::wheel::{TimerWheel, TICK_SHIFT};
use std::collections::BTreeMap;

const MS: u64 = 1_000_000;

/// One scripted operation against both implementations.
#[derive(Debug, Clone)]
enum Op {
    /// Arm (or re-arm) `id` at `now + offset - past_slack` — `past_slack`
    /// occasionally pushes the deadline before "now" to exercise the
    /// fire-immediately clamp.
    Schedule {
        id: u64,
        offset: u64,
        past: bool,
    },
    Cancel {
        id: u64,
    },
    Advance {
        dt: u64,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Offsets span level 0 (< 64 ticks), the outer levels, and — via
        // the occasional huge offset — the ~4.9 h overflow horizon.
        (0u64..12, 0u64..5_000 * MS, 0u64..8).prop_map(|(id, offset, kind)| Op::Schedule {
            id,
            offset: if kind == 0 { offset * 4_000 } else { offset },
            past: kind == 1,
        }),
        (0u64..12).prop_map(|id| Op::Cancel { id }),
        // Jumps from sub-tick to minutes; large ones trip the O(n)
        // rebuild path.
        (0u64..4, 0u64..3_000 * MS).prop_map(|(kind, dt)| Op::Advance {
            dt: if kind == 0 { dt * 200 } else { dt },
        }),
    ]
}

/// The reference: armed map fired strictly by `(deadline, id)`.
#[derive(Default)]
struct ModelWheel {
    active: BTreeMap<u64, u64>,
}

impl ModelWheel {
    fn schedule(&mut self, id: u64, deadline_ns: u64) {
        self.active.insert(id, deadline_ns);
    }

    fn cancel(&mut self, id: u64) {
        self.active.remove(&id);
    }

    fn next_deadline(&self) -> Option<u64> {
        self.active.values().copied().min()
    }

    fn advance(&mut self, now_ns: u64) -> Vec<(u64, u64)> {
        let mut due: Vec<(u64, u64)> = self
            .active
            .iter()
            .filter(|&(_, &dl)| dl <= now_ns)
            .map(|(&id, &dl)| (dl, id))
            .collect();
        due.sort_unstable();
        self.active.retain(|_, &mut dl| dl > now_ns);
        due
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn wheel_matches_btreemap_reference(
        start_ticks in 0u64..200_000,
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        // Arbitrary epoch: the wheel must not care where "now" starts
        // relative to slot/level boundaries.
        let mut now = start_ticks << (TICK_SHIFT - 2);
        let mut wheel = TimerWheel::new(now);
        let mut model = ModelWheel::default();
        let mut fired = Vec::new();
        for op in &ops {
            match *op {
                Op::Schedule { id, offset, past } => {
                    let deadline = if past {
                        now.saturating_sub(offset)
                    } else {
                        now.saturating_add(offset)
                    };
                    wheel.schedule(id, deadline);
                    model.schedule(id, deadline);
                    if past {
                        // A deadline at or before now fires on the next
                        // advance — even one that does not move time.
                        fired.clear();
                        wheel.advance(now, &mut fired);
                        prop_assert_eq!(&fired, &model.advance(now), "past-deadline fire at t={}", now);
                    }
                }
                Op::Cancel { id } => {
                    wheel.cancel(id);
                    model.cancel(id);
                }
                Op::Advance { dt } => {
                    now += dt;
                    fired.clear();
                    wheel.advance(now, &mut fired);
                    prop_assert_eq!(&fired, &model.advance(now), "advance to t={}", now);
                }
            }
            prop_assert_eq!(wheel.next_deadline(), model.next_deadline());
            prop_assert_eq!(wheel.len(), model.active.len());
            prop_assert_eq!(wheel.is_empty(), model.active.is_empty());
        }
        // Drain everything: no timer may be lost or duplicated.
        now += 100_000_000 * MS;
        fired.clear();
        wheel.advance(now, &mut fired);
        prop_assert_eq!(&fired, &model.advance(now), "final drain");
        prop_assert!(wheel.is_empty());
    }
}

/// One per-connection lifecycle operation, exercising the engine's id
/// packing: a connection `token` owns three wheel ids,
/// `(token << 2) | {IDLE, SESSION, STALL}`, re-armed and cancelled on
/// different rhythms.
#[derive(Debug, Clone)]
enum ConnOp {
    /// A new connection: arms all three kinds at once (idle short,
    /// session long, and — if the greeting stalls — a stall deadline).
    Accept {
        token: u64,
        stall: bool,
    },
    /// Client activity: re-arms only the idle deadline.
    Activity {
        token: u64,
        idle_offset: u64,
    },
    /// Queued output made progress: re-arms only the stall deadline.
    Progress {
        token: u64,
        stall_offset: u64,
    },
    /// The queue drained: cancels only the stall deadline, leaving the
    /// connection's other two timers armed.
    Drain {
        token: u64,
    },
    /// The connection leaves (eviction or hand-off): cancels all three.
    Detach {
        token: u64,
    },
    Advance {
        dt: u64,
    },
}

const IDLE: u64 = 0;
const SESSION: u64 = 1;
const STALL: u64 = 2;

fn conn_op_strategy() -> impl Strategy<Value = ConnOp> {
    prop_oneof![
        (0u64..10, any::<bool>()).prop_map(|(token, stall)| ConnOp::Accept { token, stall }),
        (0u64..10, 1u64..5_000 * MS)
            .prop_map(|(token, idle_offset)| ConnOp::Activity { token, idle_offset }),
        (0u64..10, 1u64..5_000 * MS).prop_map(|(token, stall_offset)| ConnOp::Progress {
            token,
            stall_offset
        }),
        (0u64..10).prop_map(|token| ConnOp::Drain { token }),
        (0u64..10).prop_map(|token| ConnOp::Detach { token }),
        (0u64..2_000 * MS).prop_map(|dt| ConnOp::Advance { dt }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    /// The engine's three interleaved deadline kinds per connection —
    /// idle re-armed on every read, the fixed session budget, and the
    /// write-stall deadline that progress re-arms and drain cancels —
    /// never interfere through the shared wheel: each packed id fires
    /// and cancels independently, exactly like the reference model.
    #[test]
    fn packed_per_connection_timer_kinds_stay_independent(
        start_ticks in 0u64..200_000,
        ops in proptest::collection::vec(conn_op_strategy(), 1..150),
    ) {
        let mut now = start_ticks << (TICK_SHIFT - 2);
        let mut wheel = TimerWheel::new(now);
        let mut model = ModelWheel::default();
        let mut fired = Vec::new();
        let idle_ns = 5_000 * MS;
        let session_ns = 30_000 * MS;
        let stall_ns = 10_000 * MS;
        let both = |wheel: &mut TimerWheel, model: &mut ModelWheel, id: u64, dl: u64| {
            wheel.schedule(id, dl);
            model.schedule(id, dl);
        };
        for op in &ops {
            match *op {
                ConnOp::Accept { token, stall } => {
                    both(&mut wheel, &mut model, (token << 2) | IDLE, now + idle_ns);
                    both(&mut wheel, &mut model, (token << 2) | SESSION, now + session_ns);
                    if stall {
                        both(&mut wheel, &mut model, (token << 2) | STALL, now + stall_ns);
                    }
                }
                ConnOp::Activity { token, idle_offset } => {
                    both(&mut wheel, &mut model, (token << 2) | IDLE, now + idle_offset);
                }
                ConnOp::Progress { token, stall_offset } => {
                    both(&mut wheel, &mut model, (token << 2) | STALL, now + stall_offset);
                }
                ConnOp::Drain { token } => {
                    wheel.cancel((token << 2) | STALL);
                    model.cancel((token << 2) | STALL);
                }
                ConnOp::Detach { token } => {
                    for kind in [IDLE, SESSION, STALL] {
                        wheel.cancel((token << 2) | kind);
                        model.cancel((token << 2) | kind);
                    }
                }
                ConnOp::Advance { dt } => {
                    now += dt;
                    fired.clear();
                    wheel.advance(now, &mut fired);
                    prop_assert_eq!(&fired, &model.advance(now), "advance to t={}", now);
                }
            }
            prop_assert_eq!(wheel.next_deadline(), model.next_deadline());
            prop_assert_eq!(wheel.len(), model.active.len());
        }
        // A cancelled stall deadline must never resurface, however far
        // time jumps.
        now += 100_000_000 * MS;
        fired.clear();
        wheel.advance(now, &mut fired);
        prop_assert_eq!(&fired, &model.advance(now), "final drain");
        prop_assert!(wheel.is_empty());
    }
}
