//! Versioned, checksummed key-file frames.
//!
//! A key file is the single source of truth for mailbox state, so a
//! mid-append crash must be distinguishable from on-disk corruption.
//! Every key record is therefore wrapped in a fixed-size frame:
//!
//! ```text
//! byte 0        version        (0x01)
//! byte 1        payload length (32, the KeyRecord encoding)
//! bytes 2..34   payload        (big-endian KeyRecord)
//! bytes 34..38  CRC32          (IEEE, over bytes 0..34, big-endian)
//! ```
//!
//! Recovery rule (see DESIGN.md §12): an invalid frame at the *end* of the
//! file is a torn write — the tail is truncated and replay continues; an
//! invalid frame with valid data after it cannot be a torn append and is
//! reported as corruption.

/// Frame payload size: one encoded key record.
pub(crate) const PAYLOAD_LEN: usize = 32;
/// Total frame size on disk.
pub(crate) const FRAME_LEN: usize = PAYLOAD_LEN + 6;
/// Current frame format version.
pub(crate) const VERSION: u8 = 1;

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320), bitwise —
/// key-file frames are small enough that a lookup table buys nothing.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Wraps one record payload in a versioned, checksummed frame.
pub(crate) fn encode(payload: &[u8; PAYLOAD_LEN]) -> [u8; FRAME_LEN] {
    let mut out = [0u8; FRAME_LEN];
    out[0] = VERSION;
    out[1] = PAYLOAD_LEN as u8;
    out[2..2 + PAYLOAD_LEN].copy_from_slice(payload);
    let crc = crc32(&out[..2 + PAYLOAD_LEN]);
    out[2 + PAYLOAD_LEN..].copy_from_slice(&crc.to_be_bytes());
    out
}

/// Why a frame at some offset failed to validate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FrameFault {
    /// Fewer than [`FRAME_LEN`] bytes remain: an interrupted append.
    Incomplete,
    /// Unknown version byte.
    BadVersion(u8),
    /// Payload-length byte disagrees with the format.
    BadLength(u8),
    /// Checksum mismatch.
    BadCrc,
}

impl std::fmt::Display for FrameFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameFault::Incomplete => write!(f, "incomplete frame"),
            FrameFault::BadVersion(v) => write!(f, "unknown frame version {v}"),
            FrameFault::BadLength(l) => write!(f, "bad payload length {l}"),
            FrameFault::BadCrc => write!(f, "checksum mismatch"),
        }
    }
}

/// Where a key-file scan stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Tail {
    /// Every byte belonged to a valid frame.
    Clean,
    /// The final frame is torn: everything from `offset` on is an
    /// interrupted append (either short, or a full-size frame whose
    /// checksum never landed). Truncating to `offset` recovers the file.
    Torn { offset: u64, fault: FrameFault },
    /// An invalid frame at `offset` is followed by at least one more
    /// frame-sized run of bytes — appends never leave a hole, so this is
    /// corruption, not a crash artifact.
    Corrupt { offset: u64, fault: FrameFault },
}

/// Validates `bytes` as a sequence of frames, returning every valid
/// payload (in order) and where the scan stopped.
pub(crate) fn scan(bytes: &[u8]) -> (Vec<[u8; PAYLOAD_LEN]>, Tail) {
    let mut payloads = Vec::with_capacity(bytes.len() / FRAME_LEN);
    let mut pos = 0usize;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        let fault = if rest.len() < FRAME_LEN {
            Some(FrameFault::Incomplete)
        } else if rest[0] != VERSION {
            Some(FrameFault::BadVersion(rest[0]))
        } else if rest[1] != PAYLOAD_LEN as u8 {
            Some(FrameFault::BadLength(rest[1]))
        } else {
            let stored = u32::from_be_bytes([
                rest[2 + PAYLOAD_LEN],
                rest[3 + PAYLOAD_LEN],
                rest[4 + PAYLOAD_LEN],
                rest[5 + PAYLOAD_LEN],
            ]);
            if stored != crc32(&rest[..2 + PAYLOAD_LEN]) {
                Some(FrameFault::BadCrc)
            } else {
                None
            }
        };
        match fault {
            None => {
                let mut payload = [0u8; PAYLOAD_LEN];
                payload.copy_from_slice(&rest[2..2 + PAYLOAD_LEN]);
                payloads.push(payload);
                pos += FRAME_LEN;
            }
            Some(fault) => {
                let offset = pos as u64;
                // A torn append affects only the final frame; bad bytes
                // with a full frame's worth of data after them are
                // corruption.
                let tail = if rest.len() <= FRAME_LEN {
                    Tail::Torn { offset, fault }
                } else {
                    Tail::Corrupt { offset, fault }
                };
                return (payloads, tail);
            }
        }
    }
    (payloads, Tail::Clean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn encode_roundtrips_through_scan() {
        let mut file = Vec::new();
        for i in 0..5u8 {
            file.extend_from_slice(&encode(&[i; PAYLOAD_LEN]));
        }
        let (payloads, tail) = scan(&file);
        assert_eq!(tail, Tail::Clean);
        assert_eq!(payloads.len(), 5);
        assert_eq!(payloads[3], [3u8; PAYLOAD_LEN]);
    }

    #[test]
    fn short_tail_is_torn() {
        let mut file = encode(&[7; PAYLOAD_LEN]).to_vec();
        file.extend_from_slice(&encode(&[8; PAYLOAD_LEN])[..10]);
        let (payloads, tail) = scan(&file);
        assert_eq!(payloads.len(), 1);
        assert_eq!(
            tail,
            Tail::Torn {
                offset: FRAME_LEN as u64,
                fault: FrameFault::Incomplete
            }
        );
    }

    #[test]
    fn bad_crc_on_final_frame_is_torn() {
        let mut file = encode(&[1; PAYLOAD_LEN]).to_vec();
        let mut broken = encode(&[2; PAYLOAD_LEN]);
        broken[FRAME_LEN - 1] ^= 0xFF;
        file.extend_from_slice(&broken);
        let (payloads, tail) = scan(&file);
        assert_eq!(payloads.len(), 1);
        assert_eq!(
            tail,
            Tail::Torn {
                offset: FRAME_LEN as u64,
                fault: FrameFault::BadCrc
            }
        );
    }

    #[test]
    fn bad_frame_mid_file_is_corruption() {
        let mut file = Vec::new();
        let mut broken = encode(&[1; PAYLOAD_LEN]);
        broken[5] ^= 0x40;
        file.extend_from_slice(&broken);
        file.extend_from_slice(&encode(&[2; PAYLOAD_LEN]));
        let (payloads, tail) = scan(&file);
        assert!(payloads.is_empty());
        assert_eq!(
            tail,
            Tail::Corrupt {
                offset: 0,
                fault: FrameFault::BadCrc
            }
        );
    }

    #[test]
    fn bad_version_and_length_detected() {
        let mut v = encode(&[0; PAYLOAD_LEN]);
        v[0] = 9;
        let pad = encode(&[0; PAYLOAD_LEN]);
        let mut file = v.to_vec();
        file.extend_from_slice(&pad);
        let (_, tail) = scan(&file);
        assert_eq!(
            tail,
            Tail::Corrupt {
                offset: 0,
                fault: FrameFault::BadVersion(9)
            }
        );

        let mut l = encode(&[0; PAYLOAD_LEN]);
        l[1] = 0;
        let (_, tail) = scan(&l);
        assert_eq!(
            tail,
            Tail::Torn {
                offset: 0,
                fault: FrameFault::BadLength(0)
            }
        );
    }

    #[test]
    fn empty_file_is_clean() {
        let (payloads, tail) = scan(&[]);
        assert!(payloads.is_empty());
        assert_eq!(tail, Tail::Clean);
    }
}
