//! `mfsck` — offline repair for an MFS store.
//!
//! Strict replay ([`MfsStore::open`]) recovers from the one artifact a
//! crash can leave — a torn trailing record — and refuses anything else.
//! `fsck` repairs what replay won't, making every fix durable on disk:
//!
//! 1. **Torn tails** are truncated (same rule as replay).
//! 2. **Corrupt frames** (invalid bytes mid-file) truncate the key file at
//!    the corruption point, dropping everything after it.
//! 3. **Truncated bodies**: key records whose byte range runs past the end
//!    of their data file are dropped (the key file is rewritten without
//!    them — a by-id tombstone couldn't single out one of several
//!    same-id entries).
//! 4. **Dangling refs**: mailbox entries referencing a shared mail absent
//!    from the shmailbox index are dropped the same way.
//! 5. **Refcounts** are rebuilt from the mailbox key files: over-counts
//!    are clamped, under-counts raised, and orphaned shared bodies (zero
//!    live references) garbage-collected — all by appending corrective
//!    delta records to the shared key log.
//!
//! The report lists every repair in deterministic (path/id-sorted) order,
//! so repeated runs over identical stores print byte-identical reports —
//! pinned by the golden-fixture tests.

use crate::frame::{self, Tail};
use crate::mfs_store::{KeyRecord, SHARED};
use crate::{Backend, DataRef, MailId, MfsStore, StoreResult};
use std::fmt;

/// Everything [`fsck`] repaired, in deterministic order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// Key files whose torn trailing bytes were truncated:
    /// `(path, bytes dropped)`.
    pub torn_tails: Vec<(String, u64)>,
    /// Key files truncated at a mid-file corrupt frame:
    /// `(path, offset, bytes dropped)`.
    pub corrupt_frames: Vec<(String, u64, u64)>,
    /// Key records dropped because their byte range ran past the end
    /// of the data file: `(mailbox, id)`; `shmailbox` entries lose the
    /// shared body for every referencing mailbox.
    pub truncated_bodies: Vec<(String, MailId)>,
    /// Mailbox entries dropped for referencing a shared mail that is
    /// not in the shmailbox index: `(mailbox, id)`.
    pub dangling_refs: Vec<(String, MailId)>,
    /// Shared refcounts lowered to the live reference count:
    /// `(id, from, to)`.
    pub clamped_refcounts: Vec<(MailId, i64, i64)>,
    /// Shared refcounts raised to cover live references (under-counting
    /// risks reclaiming a still-referenced body): `(id, from, to)`.
    pub raised_refcounts: Vec<(MailId, i64, i64)>,
    /// Shared bodies with zero live references garbage-collected:
    /// `(id, reclaimable bytes)`.
    pub orphans_reclaimed: Vec<(MailId, u64)>,
}

impl FsckReport {
    /// Total repairs made.
    pub fn repairs(&self) -> u64 {
        (self.torn_tails.len()
            + self.corrupt_frames.len()
            + self.truncated_bodies.len()
            + self.dangling_refs.len()
            + self.clamped_refcounts.len()
            + self.raised_refcounts.len()
            + self.orphans_reclaimed.len()) as u64
    }

    /// Key files whose tail (torn or corrupt) was truncated — the
    /// record-level recovery count reported as `live.recovered_records`.
    pub fn recovered_records(&self) -> u64 {
        (self.torn_tails.len() + self.corrupt_frames.len()) as u64
    }

    /// Whether the store needed no repair.
    pub fn is_clean(&self) -> bool {
        self.repairs() == 0
    }
}

impl fmt::Display for FsckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return writeln!(f, "mfsck: clean");
        }
        writeln!(f, "mfsck: {} repair(s)", self.repairs())?;
        for (path, bytes) in &self.torn_tails {
            writeln!(f, "  torn tail: {path} ({bytes} bytes dropped)")?;
        }
        for (path, offset, bytes) in &self.corrupt_frames {
            writeln!(
                f,
                "  corrupt frame: {path} at offset {offset} ({bytes} bytes dropped)"
            )?;
        }
        for (mb, id) in &self.truncated_bodies {
            writeln!(f, "  truncated body: {mb}/{id} dropped")?;
        }
        for (mb, id) in &self.dangling_refs {
            writeln!(f, "  dangling shared ref: {mb}/{id} dropped")?;
        }
        for (id, from, to) in &self.clamped_refcounts {
            writeln!(f, "  refcount clamped: mail {id}: {from} -> {to}")?;
        }
        for (id, from, to) in &self.raised_refcounts {
            writeln!(f, "  refcount raised: mail {id}: {from} -> {to}")?;
        }
        for (id, bytes) in &self.orphans_reclaimed {
            writeln!(
                f,
                "  orphan shared body: mail {id} ({bytes} bytes reclaimed)"
            )?;
        }
        Ok(())
    }
}

fn len_or_zero<B: Backend>(backend: &mut B, path: &str) -> StoreResult<u64> {
    if backend.exists(path) {
        backend.len(path)
    } else {
        Ok(0)
    }
}

/// Repairs an MFS store in place and opens it, returning the usable store
/// plus a deterministic report of every repair. Running `fsck` on the
/// resulting files again reports clean.
///
/// # Errors
///
/// Propagates backend I/O failures; unlike [`MfsStore::open`], corrupt
/// key files are repaired (truncated at the corruption point), not
/// reported as errors.
pub fn fsck<B: Backend>(backend: B) -> StoreResult<(MfsStore<B>, FsckReport)> {
    let mut report = FsckReport::default();
    let mut store = MfsStore::new(backend);
    let backend = store.backend_mut();

    // 1+2. Cut every key file back to its longest valid frame prefix.
    for path in backend.list("mfs/")? {
        if !path.ends_with(".key") {
            continue;
        }
        let total = backend.len(&path)?;
        let bytes = backend.read_at(&path, 0, total)?;
        match frame::scan(&bytes).1 {
            Tail::Clean => {}
            Tail::Torn { offset, .. } => {
                backend.truncate(&path, offset)?;
                report.torn_tails.push((path, total - offset));
            }
            Tail::Corrupt { offset, .. } => {
                backend.truncate(&path, offset)?;
                report.corrupt_frames.push((path, offset, total - offset));
            }
        }
    }

    // Replay the now frame-clean files without clamping, so every
    // refcount discrepancy is still visible for reporting. Detach first:
    // the accounting debug-check would trip on the very damage (dangling
    // refs, under-counts) this pass exists to repair.
    store.set_detached();
    store.replay_partition(true, &|_| true, false)?;

    // 3a. Shared entries whose body range runs past the shared data file:
    // the body is unreadable, so zero the refcount out of the log.
    let shared_data_len = len_or_zero(store.backend_mut(), &MfsStore::<B>::data_path(SHARED))?;
    let mut shared_ids: Vec<MailId> = store.shared.keys().copied().collect();
    shared_ids.sort_unstable();
    for id in &shared_ids {
        let Some(e) = store.shared.get(id).copied() else {
            continue;
        };
        if e.offset.saturating_add(e.len) > shared_data_len {
            store.append_key(
                SHARED,
                KeyRecord {
                    id: *id,
                    offset: e.offset,
                    len: e.len,
                    delta: -e.refs,
                },
            )?;
            store.shared.remove(id);
            report.truncated_bodies.push((SHARED.to_owned(), *id));
        }
    }

    // 3b+4. Mailbox entries that are unreadable (own body range past the
    // data file) or dangling (shared mail absent from the index). A by-id
    // tombstone can't single out one of several same-id entries, so the
    // repair rewrites the key file from the surviving entries instead —
    // the one place fsck replaces a log rather than appending to it.
    let mut mailbox_names: Vec<String> = store.mailboxes.keys().cloned().collect();
    mailbox_names.sort_unstable();
    for mb in &mailbox_names {
        let data_len = len_or_zero(store.backend_mut(), &MfsStore::<B>::data_path(mb))?;
        let entries = store.mailboxes.get(mb).cloned().unwrap_or_default();
        let mut keep = Vec::with_capacity(entries.len());
        for e in &entries {
            let (bad, dangling) = if e.shared {
                match store.shared.get(&e.id) {
                    None => (true, true),
                    // Range vs the shared data file was checked in 3a via
                    // the index entry all references share.
                    Some(_) => (false, false),
                }
            } else {
                (e.offset.saturating_add(e.len) > data_len, false)
            };
            if bad {
                if dangling {
                    report.dangling_refs.push((mb.clone(), e.id));
                } else {
                    report.truncated_bodies.push((mb.clone(), e.id));
                }
            } else {
                keep.push(*e);
            }
        }
        if keep.len() != entries.len() {
            let mut bytes = Vec::with_capacity(keep.len() * frame::FRAME_LEN);
            for e in &keep {
                bytes.extend_from_slice(&frame::encode(
                    &KeyRecord {
                        id: e.id,
                        offset: e.offset,
                        len: e.len,
                        delta: if e.shared { -1 } else { 1 },
                    }
                    .encode(),
                ));
            }
            store
                .backend_mut()
                .replace(&MfsStore::<B>::key_path(mb), DataRef::Bytes(&bytes))?;
            store.mailboxes.insert(mb.clone(), keep);
        }
    }

    // 5. Rebuild shmailbox refcounts from the surviving mailbox entries.
    let mut held: std::collections::HashMap<MailId, i64> = std::collections::HashMap::new();
    for entries in store.mailboxes.values() {
        for e in entries.iter().filter(|e| e.shared) {
            *held.entry(e.id).or_insert(0) += 1;
        }
    }
    let mut shared_ids: Vec<MailId> = store.shared.keys().copied().collect();
    shared_ids.sort_unstable();
    for id in &shared_ids {
        let live = held.get(id).copied().unwrap_or(0);
        let Some(e) = store.shared.get(id).copied() else {
            continue;
        };
        if e.refs == live {
            continue;
        }
        store.append_key(
            SHARED,
            KeyRecord {
                id: *id,
                offset: e.offset,
                len: e.len,
                delta: live - e.refs,
            },
        )?;
        if live == 0 {
            store.freed_shared_bytes += e.len;
            store.shared.remove(id);
            report.orphans_reclaimed.push((*id, e.len));
        } else {
            if let Some(entry) = store.shared.get_mut(id) {
                entry.refs = live;
            }
            if e.refs > live {
                report.clamped_refcounts.push((*id, e.refs, live));
            } else {
                report.raised_refcounts.push((*id, e.refs, live));
            }
        }
    }

    store.set_attached();
    store.debug_check_shared_accounting();
    Ok((store, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataRef, MailStore, MemFs, StoreError};

    fn backend_of(store: MfsStore<MemFs>) -> MemFs {
        let mut store = store;
        std::mem::replace(store.backend_mut(), MemFs::new())
    }

    #[test]
    fn clean_store_reports_clean() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = MfsStore::new(MemFs::new());
        s.deliver(MailId(1), &["a", "b"], DataRef::Bytes(b"shared"))?;
        s.deliver(MailId(2), &["a"], DataRef::Bytes(b"own"))?;
        let (mut repaired, report) = fsck(backend_of(s))?;
        assert!(report.is_clean());
        assert_eq!(report.to_string(), "mfsck: clean\n");
        assert_eq!(repaired.read_mailbox("a")?.len(), 2);
        Ok(())
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = MfsStore::new(MemFs::new());
        s.deliver(MailId(1), &["a"], DataRef::Bytes(b"mail"))?;
        let mut fs = backend_of(s);
        fs.append("mfs/a.key", DataRef::Bytes(&[0x01, 0x20, 0xAB]))?;
        let (mut repaired, report) = fsck(fs)?;
        assert_eq!(report.torn_tails, vec![("mfs/a.key".to_owned(), 3)]);
        assert_eq!(repaired.read_mailbox("a")?.len(), 1);
        // Second run is clean.
        let (_, again) = fsck(backend_of(repaired))?;
        assert!(again.is_clean());
        Ok(())
    }

    #[test]
    fn corrupt_frame_truncates_at_corruption_point() -> Result<(), Box<dyn std::error::Error>> {
        // Flip a byte inside the first frame: strict open refuses, fsck
        // truncates both records away (the second follows the corruption).
        let build = || -> Result<MemFs, StoreError> {
            let mut s = MfsStore::new(MemFs::new());
            s.deliver(MailId(1), &["a"], DataRef::Bytes(b"one"))?;
            s.deliver(MailId(2), &["a"], DataRef::Bytes(b"two"))?;
            let mut fs = backend_of(s);
            let total = fs.len("mfs/a.key")?;
            let mut bytes = fs.read_at("mfs/a.key", 0, total)?;
            bytes[10] ^= 0xFF;
            fs.replace("mfs/a.key", DataRef::Bytes(&bytes))?;
            Ok(fs)
        };
        assert!(matches!(
            MfsStore::open(build()?),
            Err(StoreError::CorruptRecord(_))
        ));
        let (mut repaired, report) = fsck(build()?)?;
        assert_eq!(report.corrupt_frames.len(), 1);
        assert_eq!(report.corrupt_frames[0].1, 0, "corruption at offset 0");
        assert!(repaired.read_mailbox("a")?.is_empty());
        Ok(())
    }

    #[test]
    fn over_counted_refcount_is_clamped_on_disk() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = MfsStore::new(MemFs::new());
        s.deliver(MailId(5), &["a", "b"], DataRef::Bytes(b"body"))?;
        let mut fs = backend_of(s);
        // Simulate a crash after the shared-log append but before any
        // attach: an extra +3 delta with no matching mailbox entries.
        let extra = frame::encode(
            &KeyRecord {
                id: MailId(5),
                offset: 0,
                len: 4,
                delta: 3,
            }
            .encode(),
        );
        fs.append("mfs/shmailbox.key", DataRef::Bytes(&extra))?;
        let (repaired, report) = fsck(fs)?;
        assert_eq!(report.clamped_refcounts, vec![(MailId(5), 5, 2)]);
        assert_eq!(repaired.stats().shared_mails, 1);
        // The clamp is durable: a strict reopen agrees without clamping.
        let (reopened, again) = fsck(backend_of(repaired))?;
        assert!(again.is_clean());
        assert_eq!(reopened.stats().shared_mails, 1);
        Ok(())
    }

    #[test]
    fn orphan_shared_body_is_reclaimed() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = MfsStore::new(MemFs::new());
        s.deliver(MailId(9), &["x", "y"], DataRef::Bytes(b"orphan"))?;
        let mut fs = backend_of(s);
        // Lose both mailbox key files: the shared body has no referents.
        fs.remove("mfs/x.key")?;
        fs.remove("mfs/y.key")?;
        let (repaired, report) = fsck(fs)?;
        assert_eq!(report.orphans_reclaimed, vec![(MailId(9), 6)]);
        assert_eq!(repaired.stats().shared_mails, 0);
        assert_eq!(repaired.stats().freed_shared_bytes, 6);
        Ok(())
    }

    #[test]
    fn dangling_ref_is_tombstoned() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = MfsStore::new(MemFs::new());
        s.deliver(MailId(3), &["a", "b"], DataRef::Bytes(b"body"))?;
        let mut fs = backend_of(s);
        // Lose the shared key log: both mailbox refs now dangle.
        fs.remove("mfs/shmailbox.key")?;
        let (mut repaired, report) = fsck(fs)?;
        assert_eq!(
            report.dangling_refs,
            vec![("a".to_owned(), MailId(3)), ("b".to_owned(), MailId(3))]
        );
        assert!(repaired.read_mailbox("a")?.is_empty());
        assert!(repaired.read_mailbox("b")?.is_empty());
        let (_, again) = fsck(backend_of(repaired))?;
        assert!(again.is_clean());
        Ok(())
    }

    #[test]
    fn under_counted_refcount_is_raised() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = MfsStore::new(MemFs::new());
        s.deliver(MailId(4), &["a", "b", "c"], DataRef::Bytes(b"body"))?;
        let mut fs = backend_of(s);
        // A hostile -2 delta: refcount drops to 1 with 3 live refs.
        let rogue = frame::encode(
            &KeyRecord {
                id: MailId(4),
                offset: 0,
                len: 4,
                delta: -2,
            }
            .encode(),
        );
        fs.append("mfs/shmailbox.key", DataRef::Bytes(&rogue))?;
        let (mut repaired, report) = fsck(fs)?;
        assert_eq!(report.raised_refcounts, vec![(MailId(4), 1, 3)]);
        // All three mailboxes still read the body.
        for mb in ["a", "b", "c"] {
            assert_eq!(repaired.read_mailbox(mb)?[0].body, b"body");
        }
        Ok(())
    }

    #[test]
    fn truncated_own_body_is_tombstoned() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = MfsStore::new(MemFs::new());
        s.deliver(MailId(1), &["a"], DataRef::Bytes(b"short"))?;
        s.deliver(MailId(2), &["a"], DataRef::Bytes(b"casualty"))?;
        let mut fs = backend_of(s);
        // Data file loses its tail (e.g. restored from a short backup).
        fs.truncate("mfs/a.data", 5)?;
        let (mut repaired, report) = fsck(fs)?;
        assert_eq!(report.truncated_bodies, vec![("a".to_owned(), MailId(2))]);
        let mails = repaired.read_mailbox("a")?;
        assert_eq!(mails.len(), 1);
        assert_eq!(mails[0].body, b"short");
        Ok(())
    }

    #[test]
    fn report_display_is_deterministic() -> Result<(), Box<dyn std::error::Error>> {
        let build = || -> StoreResult<MemFs> {
            let mut s = MfsStore::new(MemFs::new());
            s.deliver(MailId(1), &["a", "b"], DataRef::Bytes(b"one"))?;
            s.deliver(MailId(2), &["c", "d"], DataRef::Bytes(b"two"))?;
            let mut fs = backend_of(s);
            fs.remove("mfs/a.key")?;
            fs.append("mfs/c.key", DataRef::Bytes(&[0x01]))?;
            Ok(fs)
        };
        let (_, r1) = fsck(build()?)?;
        let (_, r2) = fsck(build()?)?;
        assert_eq!(r1, r2);
        assert_eq!(r1.to_string(), r2.to_string());
        assert!(r1.repairs() > 0);
        Ok(())
    }
}
