//! MFS — the single-copy, record-oriented mail file system (paper §6).
//!
//! Every mailbox is a pair of conventional files: a **key file** of
//! `(mail-id, offset, len, refcount)` tuples and a **data file** holding
//! the bodies of single-recipient mails. Multi-recipient mails are written
//! exactly once into a special shared mailbox (`shmailbox`), and each
//! recipient's key file gets a tuple with refcount `-1` pointing into the
//! shared data file (Fig. 9).
//!
//! Deviations from the paper, both documented in DESIGN.md:
//!
//! * tuples carry an explicit record length (the paper derives it from
//!   neighbouring offsets, which breaks under deletion);
//! * shared-mailbox refcount updates are log-structured — a delta tuple is
//!   appended rather than patched in place — keeping every file
//!   append-only, which is what a mail server wants from its I/O pattern.

use crate::backend::DataRef;
use crate::frame::{self, Tail};
use crate::{Backend, MailId, MailStore, StoreError, StoreResult, StoredMail};
use spamaware_metrics::{Counter, Registry, SpanHandle};
use std::collections::HashMap;
use std::sync::Arc;

/// Registry-backed store instrumentation (see [`MfsStore::with_metrics`]).
#[derive(Debug)]
struct StoreMetrics {
    write_ns: SpanHandle,
    read_ns: SpanHandle,
    delete_ns: SpanHandle,
    /// Body bytes that landed in the shared data file (written once).
    shared_bytes: Arc<Counter>,
    /// Body bytes written into per-mailbox (private) data files.
    private_bytes: Arc<Counter>,
    /// Shared-refcount delta records appended to the shared key log.
    refcount_ops: Arc<Counter>,
}

const RECORD_LEN: u64 = 32;
pub(crate) const SHARED: &str = "shmailbox";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct KeyRecord {
    pub(crate) id: MailId,
    pub(crate) offset: u64,
    pub(crate) len: u64,
    /// Mailbox key files: `1` own record, `-1` shared reference, `0`
    /// tombstone. Shared key file: signed refcount delta.
    pub(crate) delta: i64,
}

impl KeyRecord {
    pub(crate) fn encode(self) -> [u8; RECORD_LEN as usize] {
        let mut b = [0u8; RECORD_LEN as usize];
        b[..8].copy_from_slice(&self.id.0.to_be_bytes());
        b[8..16].copy_from_slice(&self.offset.to_be_bytes());
        b[16..24].copy_from_slice(&self.len.to_be_bytes());
        b[24..32].copy_from_slice(&self.delta.to_be_bytes());
        b
    }

    pub(crate) fn decode(b: &[u8], path: &str) -> StoreResult<KeyRecord> {
        if b.len() != RECORD_LEN as usize {
            return Err(StoreError::CorruptRecord(format!(
                "{path}: key record of {} bytes",
                b.len()
            )));
        }
        Ok(KeyRecord {
            id: MailId(u64::from_be_bytes(crate::error::be_array(b, 0, path)?)),
            offset: u64::from_be_bytes(crate::error::be_array(b, 8, path)?),
            len: u64::from_be_bytes(crate::error::be_array(b, 16, path)?),
            delta: i64::from_be_bytes(crate::error::be_array(b, 24, path)?),
        })
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct SharedEntry {
    pub(crate) offset: u64,
    pub(crate) len: u64,
    pub(crate) refs: i64,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct MailboxEntry {
    pub(crate) id: MailId,
    pub(crate) offset: u64,
    pub(crate) len: u64,
    pub(crate) shared: bool,
}

/// Aggregate MFS statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MfsStats {
    /// Live multi-recipient mails in the shared mailbox.
    pub shared_mails: u64,
    /// Live bytes in the shared data file.
    pub shared_bytes: u64,
    /// Bytes in the shared data file whose refcount dropped to zero
    /// (reclaimable by compaction).
    pub freed_shared_bytes: u64,
    /// Live single-recipient records across all mailboxes.
    pub own_records: u64,
    /// Live shared references across all mailboxes.
    pub shared_references: u64,
}

/// The MFS mail store.
///
/// # Example
///
/// ```
/// use spamaware_mfs::{MailId, MailStore, MemFs, MfsStore};
/// let mut store = MfsStore::new(MemFs::new());
/// // A 3-recipient spam: body hits the disk once.
/// store.deliver(MailId(1), &["a", "b", "c"], b"spam!".as_slice().into())?;
/// assert_eq!(store.stats().shared_mails, 1);
/// assert_eq!(store.read_mailbox("b")?[0].body, b"spam!");
/// # Ok::<(), spamaware_mfs::StoreError>(())
/// ```
#[derive(Debug)]
pub struct MfsStore<B> {
    backend: B,
    pub(crate) shared: HashMap<MailId, SharedEntry>,
    pub(crate) mailboxes: HashMap<String, Vec<MailboxEntry>>,
    pub(crate) freed_shared_bytes: u64,
    share_threshold: usize,
    metrics: Option<StoreMetrics>,
    /// Torn trailing records truncated away while replaying key files.
    recovered: u64,
    /// True when this store is one partition of a [`crate::ShardedStore`]:
    /// mailbox shards hold shared *references* without the shared index
    /// (and vice versa), so the cross-file accounting check must not run —
    /// the sharding layer's equivalence tests cover it instead.
    detached: bool,
}

impl<B: Backend> MfsStore<B> {
    /// Creates a fresh store (empty index) over a backend.
    ///
    /// For a backend that already contains MFS files, use
    /// [`MfsStore::open`], which replays the key files.
    pub fn new(backend: B) -> MfsStore<B> {
        MfsStore {
            backend,
            shared: HashMap::new(),
            mailboxes: HashMap::new(),
            freed_shared_bytes: 0,
            share_threshold: 2,
            metrics: None,
            recovered: 0,
            detached: false,
        }
    }

    /// Marks this store as one partition of a sharded store (see
    /// [`MfsStore::detached`] field docs).
    pub(crate) fn set_detached(&mut self) {
        self.detached = true;
    }

    /// Re-enables the cross-file accounting check after [`crate::fsck`]
    /// has restored the invariants it asserts.
    pub(crate) fn set_attached(&mut self) {
        self.detached = false;
    }

    /// Reports storage latency and byte/refcount accounting into
    /// `registry` under `<prefix>.write_ns`, `<prefix>.read_ns`,
    /// `<prefix>.delete_ns`, `<prefix>.shared_bytes`,
    /// `<prefix>.private_bytes`, and `<prefix>.refcount_ops`. Durations
    /// come from the registry's injected clock, so simulated stores stay
    /// deterministic.
    pub fn with_metrics(mut self, registry: &Registry, prefix: &str) -> MfsStore<B> {
        self.metrics = Some(StoreMetrics {
            write_ns: registry.span(&format!("{prefix}.write_ns")),
            read_ns: registry.span(&format!("{prefix}.read_ns")),
            delete_ns: registry.span(&format!("{prefix}.delete_ns")),
            shared_bytes: registry.counter(&format!("{prefix}.shared_bytes")),
            private_bytes: registry.counter(&format!("{prefix}.private_bytes")),
            refcount_ops: registry.counter(&format!("{prefix}.refcount_ops")),
        });
        self
    }

    /// Sets the minimum recipient count at which a mail is routed through
    /// the shared mailbox (default 2 — the paper shares exactly the
    /// multi-recipient mails). `1` shares everything, which trades an
    /// extra refcount record per single-recipient mail for a unified data
    /// path; the `ablation_mfs_threshold` bench quantifies the trade.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn with_share_threshold(mut self, threshold: usize) -> MfsStore<B> {
        assert!(threshold >= 1, "threshold must be at least 1");
        self.share_threshold = threshold;
        self
    }

    /// Opens a store over an existing backend, rebuilding the in-memory
    /// index by replaying every key file (crash recovery).
    ///
    /// A torn trailing record in any key file — an append interrupted by a
    /// crash — is truncated away and counted in
    /// [`MfsStore::recovered_records`]; shared refcounts left over-counted
    /// by a torn refcount log are clamped to the live reference count.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::CorruptRecord`] if a key file is corrupt
    /// (an invalid frame *followed by* valid data — something no crash can
    /// produce). Run [`crate::fsck`] to repair such a store.
    pub fn open(backend: B) -> StoreResult<MfsStore<B>> {
        let mut store = MfsStore::new(backend);
        store.replay()?;
        Ok(store)
    }

    /// Torn trailing key records truncated away by replay (see
    /// [`MfsStore::open`]).
    pub fn recovered_records(&self) -> u64 {
        self.recovered
    }

    /// The highest [`MailId`] referenced anywhere in the store (live
    /// mailbox entries and shared bodies), or `None` when empty. A
    /// reopened server seeds its id allocator above this so recovery
    /// never reuses an id already on disk.
    pub fn max_mail_id(&self) -> Option<MailId> {
        let in_boxes = self
            .mailboxes
            .values()
            .flat_map(|entries| entries.iter().map(|e| e.id));
        let in_shared = self.shared.keys().copied();
        in_boxes.chain(in_shared).max()
    }

    /// The underlying backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the underlying backend.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Current statistics.
    pub fn stats(&self) -> MfsStats {
        let mut stats = MfsStats {
            shared_mails: self.shared.len() as u64,
            shared_bytes: self.shared.values().map(|e| e.len).sum(),
            freed_shared_bytes: self.freed_shared_bytes,
            ..MfsStats::default()
        };
        for entries in self.mailboxes.values() {
            for e in entries {
                if e.shared {
                    stats.shared_references += 1;
                } else {
                    stats.own_records += 1;
                }
            }
        }
        stats
    }

    pub(crate) fn key_path(mailbox: &str) -> String {
        format!("mfs/{mailbox}.key")
    }

    pub(crate) fn data_path(mailbox: &str) -> String {
        format!("mfs/{mailbox}.data")
    }

    pub(crate) fn append_key(&mut self, mailbox: &str, rec: KeyRecord) -> StoreResult<()> {
        self.backend.append(
            &Self::key_path(mailbox),
            DataRef::Bytes(&frame::encode(&rec.encode())),
        )?;
        Ok(())
    }

    pub(crate) fn check_mailbox_name(mailbox: &str) -> StoreResult<()> {
        if mailbox == SHARED || mailbox.is_empty() || mailbox.contains('/') {
            return Err(StoreError::Io(format!("illegal mailbox name: {mailbox:?}")));
        }
        Ok(())
    }

    /// Replays all key files into the in-memory index.
    fn replay(&mut self) -> StoreResult<()> {
        self.replay_partition(true, &|_| true, true)
    }

    /// Replays a partition of the key files: the shared key file when
    /// `include_shared`, and exactly the mailbox key files whose name
    /// passes `keep`. A [`crate::ShardedStore`] opens one detached store
    /// per partition so shards never hold each other's index.
    ///
    /// With `clamp_shared` (a full, non-partitioned replay only — it needs
    /// every mailbox in view), each shared refcount is clamped down to the
    /// number of live references: a crash between the shared-log append
    /// and the per-recipient attaches leaves the count high, and without
    /// the clamp those bodies would never be reclaimed. A partitioned
    /// replay must not clamp — the shared partition sees no mailboxes, so
    /// clamping there would reclaim every live body.
    pub(crate) fn replay_partition(
        &mut self,
        include_shared: bool,
        keep: &dyn Fn(&str) -> bool,
        clamp_shared: bool,
    ) -> StoreResult<()> {
        self.shared.clear();
        self.mailboxes.clear();
        self.freed_shared_bytes = 0;
        // Shared key file first, so mailbox shared-refs can validate.
        let sh_key = Self::key_path(SHARED);
        if include_shared && self.backend.exists(&sh_key) {
            for rec in self.read_key_records(&sh_key)? {
                match self.shared.get_mut(&rec.id) {
                    Some(e) => {
                        e.refs += rec.delta;
                        if e.refs <= 0 {
                            self.freed_shared_bytes += e.len;
                            self.shared.remove(&rec.id);
                        }
                    }
                    None => {
                        if rec.delta > 0 {
                            self.shared.insert(
                                rec.id,
                                SharedEntry {
                                    offset: rec.offset,
                                    len: rec.len,
                                    refs: rec.delta,
                                },
                            );
                        }
                    }
                }
            }
        }
        for path in self.backend.list("mfs/")? {
            let Some(stem) = path
                .strip_prefix("mfs/")
                .and_then(|p| p.strip_suffix(".key"))
            else {
                continue;
            };
            if stem == SHARED || !keep(stem) {
                continue;
            }
            let mailbox = stem.to_owned();
            let mut entries: Vec<MailboxEntry> = Vec::new();
            for rec in self.read_key_records(&path)? {
                match rec.delta {
                    // One tombstone deletes one entry — the first match,
                    // exactly like the live `delete_local` path, so a
                    // mailbox holding duplicate ids replays to the same
                    // contents the writer saw.
                    0 => {
                        if let Some(idx) = entries.iter().position(|e| e.id == rec.id) {
                            entries.remove(idx);
                        }
                    }
                    d => entries.push(MailboxEntry {
                        id: rec.id,
                        offset: rec.offset,
                        len: rec.len,
                        shared: d < 0,
                    }),
                }
            }
            self.mailboxes.insert(mailbox, entries);
        }
        if clamp_shared {
            self.clamp_shared_refcounts();
        }
        self.debug_check_shared_accounting();
        Ok(())
    }

    /// Lowers every shared refcount to its live mailbox reference count
    /// (in-memory only; [`crate::fsck`] makes the same repair durable).
    fn clamp_shared_refcounts(&mut self) {
        let mut held: HashMap<MailId, i64> = HashMap::new();
        for entries in self.mailboxes.values() {
            for e in entries.iter().filter(|e| e.shared) {
                *held.entry(e.id).or_insert(0) += 1;
            }
        }
        let ids: Vec<MailId> = self.shared.keys().copied().collect();
        for id in ids {
            let live = held.get(&id).copied().unwrap_or(0);
            let Some(e) = self.shared.get_mut(&id) else {
                continue;
            };
            if e.refs > live {
                if live == 0 {
                    self.freed_shared_bytes += e.len;
                    self.shared.remove(&id);
                } else {
                    e.refs = live;
                }
            }
        }
    }

    /// Reads and validates one key file's frames. A torn trailing frame is
    /// truncated away (counted in `recovered`); a corrupt frame mid-file
    /// is a hard error — [`crate::fsck`] repairs what strict replay won't.
    fn read_key_records(&mut self, path: &str) -> StoreResult<Vec<KeyRecord>> {
        let total = self.backend.len(path)?;
        let bytes = self.backend.read_at(path, 0, total)?;
        let (payloads, tail) = frame::scan(&bytes);
        match tail {
            Tail::Clean => {}
            Tail::Torn { offset, .. } => {
                self.backend.truncate(path, offset)?;
                self.recovered += 1;
            }
            Tail::Corrupt { offset, fault } => {
                return Err(StoreError::CorruptRecord(format!(
                    "{path}: {fault} at offset {offset}"
                )));
            }
        }
        let mut out = Vec::with_capacity(payloads.len());
        for p in &payloads {
            out.push(KeyRecord::decode(p, path)?);
        }
        Ok(out)
    }

    /// The paper's `mail_nwrite`: writes one mail to `n` mailboxes with a
    /// single body write when `n > 1`.
    ///
    /// # Errors
    ///
    /// [`StoreError::MailIdCollision`] if `id` already names shared content
    /// of a different size — the §6.4 random-guessing attack defence.
    pub fn nwrite(&mut self, id: MailId, mailboxes: &[&str], body: DataRef<'_>) -> StoreResult<()> {
        let _span = self.metrics.as_ref().map(|m| m.write_ns.start());
        for mb in mailboxes {
            Self::check_mailbox_name(mb)?;
        }
        match mailboxes {
            [] => Ok(()),
            mbs if mbs.len() < self.share_threshold => {
                // Below the share threshold (single recipient under the
                // paper's default): each mailbox gets its own copy in its
                // own data file.
                for mb in mbs {
                    self.write_own(mb, id, body)?;
                }
                Ok(())
            }
            _ => {
                let (offset, len) = self.shared_acquire(id, body, mailboxes.len() as i64)?;
                for mb in mailboxes {
                    self.attach_shared(mb, id, offset, len)?;
                }
                self.debug_check_shared_accounting();
                Ok(())
            }
        }
    }

    /// Writes one mail as a mailbox-private copy: body appended to the
    /// mailbox's own data file plus an own-record (`delta = 1`) key tuple.
    ///
    /// Sharding primitive — the caller is responsible for the write span
    /// and mailbox-name validation; everything it touches belongs to one
    /// mailbox, so a [`crate::ShardedStore`] may call it under that
    /// mailbox's shard lock alone.
    pub(crate) fn write_own(
        &mut self,
        mailbox: &str,
        id: MailId,
        body: DataRef<'_>,
    ) -> StoreResult<()> {
        let offset = self.backend.append(&Self::data_path(mailbox), body)?;
        if let Some(m) = &self.metrics {
            m.private_bytes.add(body.len());
        }
        self.append_key(
            mailbox,
            KeyRecord {
                id,
                offset,
                len: body.len(),
                delta: 1,
            },
        )?;
        self.mailboxes
            .entry(mailbox.to_owned())
            .or_default()
            .push(MailboxEntry {
                id,
                offset,
                len: body.len(),
                shared: false,
            });
        Ok(())
    }

    /// Acquires `n` references to shared content `id`, writing the body to
    /// the shared data file only if the id is new, and appending one
    /// refcount-delta tuple to the shared key log. Returns the body's
    /// `(offset, len)` in the shared data file.
    ///
    /// Sharding primitive — touches only `shmailbox` state, so a
    /// [`crate::ShardedStore`] calls it under the short-hold shared lock
    /// and releases that lock before touching any recipient shard.
    ///
    /// # Errors
    ///
    /// [`StoreError::MailIdCollision`] if `id` already names shared content
    /// of a different size — the §6.4 random-guessing attack defence.
    pub(crate) fn shared_acquire(
        &mut self,
        id: MailId,
        body: DataRef<'_>,
        n: i64,
    ) -> StoreResult<(u64, u64)> {
        match self.shared.get_mut(&id) {
            Some(e) => {
                // "The file system skips the steps of writing data
                // ... if it finds that mail-id already exists"
                // (§6.2) — but content of a different size under an
                // existing id is the §6.4 attack.
                if e.len != body.len() {
                    return Err(StoreError::MailIdCollision(id.to_string()));
                }
                e.refs += n;
                let (o, l) = (e.offset, e.len);
                self.append_key(
                    SHARED,
                    KeyRecord {
                        id,
                        offset: o,
                        len: l,
                        delta: n,
                    },
                )?;
                if let Some(m) = &self.metrics {
                    m.refcount_ops.inc();
                }
                Ok((o, l))
            }
            None => {
                let offset = self.backend.append(&Self::data_path(SHARED), body)?;
                self.append_key(
                    SHARED,
                    KeyRecord {
                        id,
                        offset,
                        len: body.len(),
                        delta: n,
                    },
                )?;
                if let Some(m) = &self.metrics {
                    m.shared_bytes.add(body.len());
                    m.refcount_ops.inc();
                }
                self.shared.insert(
                    id,
                    SharedEntry {
                        offset,
                        len: body.len(),
                        refs: n,
                    },
                );
                Ok((offset, body.len()))
            }
        }
    }

    /// Records one shared reference in a mailbox: a `delta = -1` key tuple
    /// pointing at `(offset, len)` in the shared data file.
    ///
    /// Sharding primitive — touches only the named mailbox, so it runs
    /// under that mailbox's shard lock; the matching refcount must already
    /// be held via [`MfsStore::shared_acquire`].
    pub(crate) fn attach_shared(
        &mut self,
        mailbox: &str,
        id: MailId,
        offset: u64,
        len: u64,
    ) -> StoreResult<()> {
        self.append_key(
            mailbox,
            KeyRecord {
                id,
                offset,
                len,
                delta: -1,
            },
        )?;
        self.mailboxes
            .entry(mailbox.to_owned())
            .or_default()
            .push(MailboxEntry {
                id,
                offset,
                len,
                shared: true,
            });
        Ok(())
    }

    /// Removes one mail from a mailbox's in-memory index and appends the
    /// tombstone (`delta = 0`) key tuple. Returns `Some((offset, len))` if
    /// the removed entry referenced shared content — the caller must then
    /// release that reference via [`MfsStore::shared_release`].
    ///
    /// Sharding primitive — touches only the named mailbox, so it runs
    /// under that mailbox's shard lock alone.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] when the mailbox or mail id is unknown.
    pub(crate) fn delete_local(
        &mut self,
        mailbox: &str,
        id: MailId,
    ) -> StoreResult<Option<(u64, u64)>> {
        let entries = self
            .mailboxes
            .get_mut(mailbox)
            .ok_or_else(|| StoreError::NotFound(format!("{mailbox}/{id}")))?;
        let idx = entries
            .iter()
            .position(|e| e.id == id)
            .ok_or_else(|| StoreError::NotFound(format!("{mailbox}/{id}")))?;
        let entry = entries.remove(idx);
        self.append_key(
            mailbox,
            KeyRecord {
                id,
                offset: 0,
                len: 0,
                delta: 0,
            },
        )?;
        Ok(entry.shared.then_some((entry.offset, entry.len)))
    }

    /// Releases one reference to shared content `id`, reclaiming the body
    /// bytes when the refcount reaches zero.
    ///
    /// "A shared record cannot be deleted until it is deleted from all MFS
    /// files that share it" (§6.1): decrement the refcount; reclaim only
    /// when it reaches zero.
    ///
    /// Sharding primitive — touches only `shmailbox` state, so a
    /// [`crate::ShardedStore`] calls it under the short-hold shared lock,
    /// after [`MfsStore::delete_local`] returned the shared coordinates.
    pub(crate) fn shared_release(&mut self, id: MailId, offset: u64, len: u64) -> StoreResult<()> {
        self.append_key(
            SHARED,
            KeyRecord {
                id,
                offset,
                len,
                delta: -1,
            },
        )?;
        if let Some(m) = &self.metrics {
            m.refcount_ops.inc();
        }
        if let Some(e) = self.shared.get_mut(&id) {
            e.refs -= 1;
            debug_assert!(
                e.refs >= 0,
                "shared refcount for {id} went negative: {}",
                e.refs
            );
            if e.refs <= 0 {
                self.freed_shared_bytes += e.len;
                self.shared.remove(&id);
            }
        }
        Ok(())
    }

    fn live_entries(&self, mailbox: &str) -> &[MailboxEntry] {
        self.mailboxes
            .get(mailbox)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Index-only mailbox listing: `(id, body length)` per live mail, in
    /// delivery order, straight from the in-memory key index. No disk
    /// reads, so a caller holding a partition lock releases it in O(1) —
    /// this is how the POP3 scan phase avoids pinning a shard for the
    /// duration of an O(mailbox) body scan.
    pub fn list_mailbox(&self, mailbox: &str) -> Vec<(MailId, u64)> {
        self.live_entries(mailbox)
            .iter()
            .map(|e| (e.id, e.len))
            .collect()
    }

    /// Reads one mail's body: a single positioned `read_at` against the
    /// private or shared data file.
    ///
    /// # Errors
    ///
    /// [`crate::StoreError::NotFound`] when the mailbox has no live mail
    /// with this id (for example, deleted since a
    /// [`MfsStore::list_mailbox`] snapshot); backend read failures.
    pub fn read_mail(&mut self, mailbox: &str, id: MailId) -> StoreResult<StoredMail> {
        let _span = self.metrics.as_ref().map(|m| m.read_ns.start());
        let e = self
            .live_entries(mailbox)
            .iter()
            .find(|e| e.id == id)
            .copied()
            .ok_or_else(|| StoreError::NotFound(format!("{mailbox}/{id}")))?;
        let data_file = if e.shared {
            Self::data_path(SHARED)
        } else {
            Self::data_path(mailbox)
        };
        let body = self.backend.read_at(&data_file, e.offset, e.len)?;
        Ok(StoredMail { id: e.id, body })
    }

    /// Debug-build invariant check for §6.1's refcounting: every shared
    /// entry's refcount is positive and at least the number of live
    /// mailbox entries referencing it, and no mailbox entry points at an
    /// already-reclaimed shared mail. Under-counting would reclaim the
    /// single stored copy while mailboxes still reference it (data loss);
    /// over-counting is clamped at replay and repaired on disk by
    /// [`crate::fsck`]. Compiles to a no-op in release builds.
    pub(crate) fn debug_check_shared_accounting(&self) {
        if !cfg!(debug_assertions) || self.detached {
            return;
        }
        let mut held: HashMap<MailId, i64> = HashMap::new();
        for entries in self.mailboxes.values() {
            for e in entries.iter().filter(|e| e.shared) {
                *held.entry(e.id).or_insert(0) += 1;
            }
        }
        for (id, e) in &self.shared {
            debug_assert!(
                e.refs > 0,
                "shared refcount for {id} not positive: {}",
                e.refs
            );
            let live = held.get(id).copied().unwrap_or(0);
            debug_assert!(
                e.refs >= live,
                "shared refcount for {id} under-counts live references: {} < {live}",
                e.refs
            );
        }
        for id in held.keys() {
            debug_assert!(
                self.shared.contains_key(id),
                "live mailbox reference to reclaimed shared mail {id}"
            );
        }
    }
}

impl<B: Backend> MailStore for MfsStore<B> {
    fn deliver(&mut self, id: MailId, mailboxes: &[&str], body: DataRef<'_>) -> StoreResult<()> {
        self.nwrite(id, mailboxes, body)
    }

    fn read_mailbox(&mut self, mailbox: &str) -> StoreResult<Vec<StoredMail>> {
        let _span = self.metrics.as_ref().map(|m| m.read_ns.start());
        let entries: Vec<MailboxEntry> = self.live_entries(mailbox).to_vec();
        let mut out = Vec::with_capacity(entries.len());
        for e in entries {
            let data_file = if e.shared {
                Self::data_path(SHARED)
            } else {
                Self::data_path(mailbox)
            };
            let body = self.backend.read_at(&data_file, e.offset, e.len)?;
            out.push(StoredMail { id: e.id, body });
        }
        Ok(out)
    }

    fn delete(&mut self, mailbox: &str, id: MailId) -> StoreResult<()> {
        let _span = self.metrics.as_ref().map(|m| m.delete_ns.start());
        if let Some((offset, len)) = self.delete_local(mailbox, id)? {
            self.shared_release(id, offset, len)?;
        }
        self.debug_check_shared_accounting();
        Ok(())
    }

    fn layout_name(&self) -> &'static str {
        "mfs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemFs;

    fn store() -> MfsStore<MemFs> {
        MfsStore::new(MemFs::new())
    }

    #[test]
    fn multi_recipient_body_stored_once() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = store();
        s.deliver(MailId(1), &["a", "b", "c"], DataRef::Bytes(b"spam body"))?;
        // Shared data file holds one copy; key files hold framed tuples.
        assert_eq!(
            s.backend_mut().len("mfs/shmailbox.data")?,
            9,
            "one body copy"
        );
        for mb in ["a", "b", "c"] {
            let mails = s.read_mailbox(mb)?;
            assert_eq!(mails.len(), 1);
            assert_eq!(mails[0].body, b"spam body");
        }
        let stats = s.stats();
        assert_eq!(stats.shared_mails, 1);
        assert_eq!(stats.shared_references, 3);
        assert_eq!(stats.own_records, 0);
        Ok(())
    }

    #[test]
    fn single_recipient_goes_to_own_data_file() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = store();
        s.deliver(MailId(1), &["alice"], DataRef::Bytes(b"private"))?;
        assert_eq!(s.backend_mut().len("mfs/alice.data")?, 7);
        assert!(!s.backend_mut().exists("mfs/shmailbox.data"));
        assert_eq!(s.stats().own_records, 1);
        Ok(())
    }

    #[test]
    fn repeated_nwrite_same_id_skips_body_write() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = store();
        s.deliver(MailId(1), &["a", "b"], DataRef::Bytes(b"body"))?;
        let before = s.backend_mut().len("mfs/shmailbox.data")?;
        // Remaining recipients delivered later under the same id.
        s.deliver(MailId(1), &["c", "d"], DataRef::Bytes(b"body"))?;
        let after = s.backend_mut().len("mfs/shmailbox.data")?;
        assert_eq!(before, after, "no second body write");
        assert_eq!(s.read_mailbox("d")?[0].body, b"body");
        assert_eq!(s.stats().shared_references, 4);
        Ok(())
    }

    #[test]
    fn mail_id_collision_is_rejected_as_attack() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = store();
        s.deliver(MailId(7), &["a", "b"], DataRef::Bytes(b"original"))?;
        // Attacker guesses id 7 and tries to bind junk of another size.
        let err = s
            .deliver(MailId(7), &["evil1", "evil2"], DataRef::Bytes(b"junk"))
            .unwrap_err();
        assert!(matches!(err, StoreError::MailIdCollision(_)));
        // Victim's mailboxes untouched.
        assert_eq!(s.read_mailbox("a")?[0].body, b"original");
        assert!(s.read_mailbox("evil1")?.is_empty());
        Ok(())
    }

    #[test]
    fn delete_decrements_shared_refcount() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = store();
        s.deliver(MailId(1), &["a", "b", "c"], DataRef::Bytes(b"xyz"))?;
        s.delete("a", MailId(1))?;
        assert_eq!(s.stats().shared_mails, 1, "still referenced");
        assert_eq!(s.stats().freed_shared_bytes, 0);
        s.delete("b", MailId(1))?;
        s.delete("c", MailId(1))?;
        let stats = s.stats();
        assert_eq!(stats.shared_mails, 0);
        assert_eq!(stats.freed_shared_bytes, 3);
        Ok(())
    }

    #[test]
    fn delete_own_record() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = store();
        s.deliver(MailId(1), &["a"], DataRef::Bytes(b"one"))?;
        s.deliver(MailId(2), &["a"], DataRef::Bytes(b"two"))?;
        s.delete("a", MailId(1))?;
        let mails = s.read_mailbox("a")?;
        assert_eq!(mails.len(), 1);
        assert_eq!(mails[0].id, MailId(2));
        Ok(())
    }

    #[test]
    fn delete_missing_errors() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = store();
        assert!(matches!(
            s.delete("ghost", MailId(1)),
            Err(StoreError::NotFound(_))
        ));
        s.deliver(MailId(1), &["a"], DataRef::Bytes(b"x"))?;
        assert!(matches!(
            s.delete("a", MailId(2)),
            Err(StoreError::NotFound(_))
        ));
        Ok(())
    }

    #[test]
    fn mixed_own_and_shared_read_in_delivery_order() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = store();
        s.deliver(MailId(1), &["a"], DataRef::Bytes(b"own1"))?;
        s.deliver(MailId(2), &["a", "b"], DataRef::Bytes(b"shared"))?;
        s.deliver(MailId(3), &["a"], DataRef::Bytes(b"own2"))?;
        let mails = s.read_mailbox("a")?;
        let ids: Vec<u64> = mails.iter().map(|m| m.id.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(mails[1].body, b"shared");
        Ok(())
    }

    #[test]
    fn replay_recovers_full_state() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = store();
        s.deliver(MailId(1), &["a", "b"], DataRef::Bytes(b"shared"))?;
        s.deliver(MailId(2), &["a"], DataRef::Bytes(b"own"))?;
        s.deliver(MailId(3), &["b", "c"], DataRef::Bytes(b"gone"))?;
        s.delete("b", MailId(3))?;
        s.delete("c", MailId(3))?;
        let backend = std::mem::replace(s.backend_mut(), MemFs::new());

        let mut recovered = MfsStore::open(backend)?;
        assert_eq!(recovered.read_mailbox("a")?.len(), 2);
        assert_eq!(recovered.read_mailbox("a")?[0].body, b"shared");
        assert_eq!(recovered.read_mailbox("b")?.len(), 1);
        assert!(recovered.read_mailbox("c")?.is_empty());
        let stats = recovered.stats();
        assert_eq!(stats.shared_mails, 1);
        assert_eq!(stats.freed_shared_bytes, 4);
        Ok(())
    }

    #[test]
    fn shared_mailbox_name_is_reserved() {
        let mut s = store();
        let err = s
            .deliver(MailId(1), &["shmailbox"], DataRef::Bytes(b"x"))
            .unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));
    }

    #[test]
    fn empty_recipient_list_is_noop() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = store();
        s.deliver(MailId(1), &[], DataRef::Bytes(b"x"))?;
        assert_eq!(s.stats(), MfsStats::default());
        Ok(())
    }

    #[test]
    fn registry_metrics_account_bytes_and_refcounts() -> Result<(), Box<dyn std::error::Error>> {
        use spamaware_metrics::{ManualClock, Registry};
        let clock = ManualClock::new();
        let registry = Registry::new(std::sync::Arc::new(clock.clone()));
        let mut s = MfsStore::new(MemFs::new()).with_metrics(&registry, "mfs");
        s.deliver(MailId(1), &["a", "b", "c"], DataRef::Bytes(b"spam body"))?;
        s.deliver(MailId(2), &["a"], DataRef::Bytes(b"own"))?;
        clock.advance(500);
        s.read_mailbox("a")?;
        s.delete("b", MailId(1))?;
        assert_eq!(registry.counter_value("mfs.shared_bytes"), Some(9));
        assert_eq!(registry.counter_value("mfs.private_bytes"), Some(3));
        // One delta record on shared delivery, one on the shared delete.
        assert_eq!(registry.counter_value("mfs.refcount_ops"), Some(2));
        assert_eq!(registry.histogram_count("mfs.write_ns"), Some(2));
        assert_eq!(registry.histogram_count("mfs.read_ns"), Some(1));
        assert_eq!(registry.histogram_count("mfs.delete_ns"), Some(1));
        Ok(())
    }

    #[test]
    fn size_only_bodies_supported() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = MfsStore::new(MemFs::size_only());
        s.deliver(MailId(1), &["a", "b"], DataRef::Zeros(4096))?;
        let mails = s.read_mailbox("a")?;
        assert_eq!(mails[0].body.len(), 4096);
        Ok(())
    }
}

impl<B: Backend> MfsStore<B> {
    /// Compacts the store: rewrites the shared data file without dead
    /// (zero-refcount) bytes, collapses the log-structured shared key file
    /// to one record per live mail, and rewrites every mailbox key file
    /// without tombstones. Returns the number of shared-data bytes
    /// reclaimed.
    ///
    /// This is the maintenance pass implied by §6.1's refcounting ("a
    /// shared record cannot be deleted until it is deleted from all MFS
    /// files that share it") — deletion only marks; compaction reclaims.
    ///
    /// # Errors
    ///
    /// Propagates backend I/O errors; on error the in-memory index is
    /// unchanged but on-disk files may be partially rewritten (run
    /// [`MfsStore::open`] to recover).
    pub fn compact(&mut self) -> StoreResult<u64> {
        // 1. Rewrite shared data, remembering new offsets.
        let mut ids: Vec<MailId> = self.shared.keys().copied().collect();
        ids.sort_unstable();
        let sh_data = Self::data_path(SHARED);
        let sh_key = Self::key_path(SHARED);
        let old_len = if self.backend.exists(&sh_data) {
            self.backend.len(&sh_data)?
        } else {
            0
        };
        let mut new_data: Vec<u8> = Vec::new();
        let mut new_offsets: HashMap<MailId, u64> = HashMap::new();
        for id in &ids {
            let e = self.shared[id];
            let body = self.backend.read_at(&sh_data, e.offset, e.len)?;
            new_offsets.insert(*id, new_data.len() as u64);
            new_data.extend_from_slice(&body);
        }
        let reclaimed = old_len.saturating_sub(new_data.len() as u64);
        self.backend.replace(&sh_data, DataRef::Bytes(&new_data))?;
        // 2. Collapse the shared key log.
        let mut key_bytes = Vec::with_capacity(ids.len() * frame::FRAME_LEN);
        for id in &ids {
            let Some(e) = self.shared.get_mut(id) else {
                debug_assert!(false, "id {id} was listed from the shared index");
                continue;
            };
            e.offset = new_offsets[id];
            key_bytes.extend_from_slice(&frame::encode(
                &KeyRecord {
                    id: *id,
                    offset: e.offset,
                    len: e.len,
                    delta: e.refs,
                }
                .encode(),
            ));
        }
        self.backend.replace(&sh_key, DataRef::Bytes(&key_bytes))?;
        self.freed_shared_bytes = 0;
        // 3. Rewrite mailbox key files from the live index, patching
        //    shared offsets.
        let names: Vec<String> = self.mailboxes.keys().cloned().collect();
        for mb in names {
            let Some(entries) = self.mailboxes.get_mut(&mb) else {
                debug_assert!(false, "mailbox {mb} was listed from the index");
                continue;
            };
            let mut bytes = Vec::with_capacity(entries.len() * frame::FRAME_LEN);
            for e in entries.iter_mut() {
                if e.shared {
                    e.offset = new_offsets[&e.id];
                }
                bytes.extend_from_slice(&frame::encode(
                    &KeyRecord {
                        id: e.id,
                        offset: e.offset,
                        len: e.len,
                        delta: if e.shared { -1 } else { 1 },
                    }
                    .encode(),
                ));
            }
            self.backend
                .replace(&Self::key_path(&mb), DataRef::Bytes(&bytes))?;
        }
        self.debug_check_shared_accounting();
        Ok(reclaimed)
    }
}

#[cfg(test)]
mod compact_tests {
    use super::*;
    use crate::MemFs;

    fn populated() -> MfsStore<MemFs> {
        let mut s = MfsStore::new(MemFs::new());
        s.deliver(MailId(1), &["a", "b"], DataRef::Bytes(b"keep-shared"))
            .unwrap();
        s.deliver(MailId(2), &["a", "b", "c"], DataRef::Bytes(b"drop-me"))
            .unwrap();
        s.deliver(MailId(3), &["a"], DataRef::Bytes(b"own"))
            .unwrap();
        for mb in ["a", "b", "c"] {
            s.delete(mb, MailId(2)).unwrap();
        }
        s
    }

    #[test]
    fn compact_reclaims_dead_shared_bytes() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = populated();
        assert_eq!(s.stats().freed_shared_bytes, 7);
        let before = s.backend_mut().len("mfs/shmailbox.data")?;
        let reclaimed = s.compact()?;
        assert_eq!(reclaimed, 7);
        let after = s.backend_mut().len("mfs/shmailbox.data")?;
        assert_eq!(before - after, 7);
        assert_eq!(s.stats().freed_shared_bytes, 0);
        Ok(())
    }

    #[test]
    fn compact_preserves_mailbox_contents() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = populated();
        let before_a = s.read_mailbox("a")?;
        let before_b = s.read_mailbox("b")?;
        s.compact()?;
        assert_eq!(s.read_mailbox("a")?, before_a);
        assert_eq!(s.read_mailbox("b")?, before_b);
        assert!(s.read_mailbox("c")?.is_empty());
        Ok(())
    }

    #[test]
    fn compact_collapses_key_logs() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = populated();
        let key_before = s.backend_mut().len("mfs/shmailbox.key")?;
        s.compact()?;
        let key_after = s.backend_mut().len("mfs/shmailbox.key")?;
        assert!(key_after < key_before);
        // One live shared mail -> exactly one framed record.
        assert_eq!(key_after, crate::frame::FRAME_LEN as u64);
        Ok(())
    }

    #[test]
    fn recovery_after_compaction_is_faithful() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = populated();
        s.compact()?;
        let expected_a = s.read_mailbox("a")?;
        let backend = std::mem::replace(s.backend_mut(), MemFs::new());
        let mut recovered = MfsStore::open(backend)?;
        assert_eq!(recovered.read_mailbox("a")?, expected_a);
        assert_eq!(recovered.stats().shared_mails, 1);
        Ok(())
    }

    #[test]
    fn deliveries_after_compaction_work() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = populated();
        s.compact()?;
        s.deliver(MailId(4), &["b", "c"], DataRef::Bytes(b"fresh"))?;
        assert_eq!(s.read_mailbox("c")?[0].body, b"fresh");
        assert_eq!(s.stats().shared_mails, 2);
        Ok(())
    }

    #[test]
    fn compact_on_empty_store_is_noop() -> Result<(), Box<dyn std::error::Error>> {
        let mut s: MfsStore<MemFs> = MfsStore::new(MemFs::new());
        assert_eq!(s.compact()?, 0);
        Ok(())
    }
}
