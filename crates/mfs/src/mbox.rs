//! The vanilla-postfix layout: one mbox-style file per mailbox.
//!
//! An `n`-recipient mail is appended to `n` mailbox files — the duplicated
//! disk I/O the paper's §6 sets out to eliminate. Deletion rewrites the
//! mailbox file, as real mbox delivery agents do.

use crate::backend::DataRef;
use crate::{Backend, MailId, MailStore, StoreError, StoreResult, StoredMail};

const HEADER_LEN: u64 = 20;
const MAGIC: u32 = 0x4D42_5830; // "MBX0"

/// One file per mailbox; mails framed as `[magic, id, len]` + body.
///
/// # Example
///
/// ```
/// use spamaware_mfs::{MailId, MailStore, MboxStore, MemFs};
/// let mut store = MboxStore::new(MemFs::new());
/// store.deliver(MailId(1), &["alice", "bob"], b"hi".as_slice().into())?;
/// assert_eq!(store.read_mailbox("alice")?.len(), 1);
/// assert_eq!(store.read_mailbox("bob")?[0].body, b"hi");
/// # Ok::<(), spamaware_mfs::StoreError>(())
/// ```
#[derive(Debug)]
pub struct MboxStore<B> {
    backend: B,
}

impl<B: Backend> MboxStore<B> {
    /// Creates the store over a backend.
    pub fn new(backend: B) -> MboxStore<B> {
        MboxStore { backend }
    }

    /// The underlying backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the underlying backend.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    fn path(mailbox: &str) -> String {
        format!("mbox/{mailbox}")
    }

    fn encode_header(id: MailId, len: u64) -> [u8; HEADER_LEN as usize] {
        let mut h = [0u8; HEADER_LEN as usize];
        h[..4].copy_from_slice(&MAGIC.to_be_bytes());
        h[4..12].copy_from_slice(&id.0.to_be_bytes());
        h[12..20].copy_from_slice(&len.to_be_bytes());
        h
    }

    fn decode_header(bytes: &[u8], path: &str) -> StoreResult<(MailId, u64)> {
        if bytes.len() < HEADER_LEN as usize {
            return Err(StoreError::CorruptRecord(format!("{path}: short header")));
        }
        let magic = u32::from_be_bytes(crate::error::be_array(bytes, 0, path)?);
        if magic != MAGIC {
            return Err(StoreError::CorruptRecord(format!(
                "{path}: bad magic {magic:#x}"
            )));
        }
        let id = MailId(u64::from_be_bytes(crate::error::be_array(bytes, 4, path)?));
        let len = u64::from_be_bytes(crate::error::be_array(bytes, 12, path)?);
        Ok((id, len))
    }

    /// Scans a mailbox file into `(id, body_offset, body_len)` triples.
    fn scan(&mut self, mailbox: &str) -> StoreResult<Vec<(MailId, u64, u64)>> {
        let path = Self::path(mailbox);
        if !self.backend.exists(&path) {
            return Ok(Vec::new());
        }
        let total = self.backend.len(&path)?;
        let mut out = Vec::new();
        let mut pos = 0u64;
        while pos < total {
            let header = self.backend.read_at(&path, pos, HEADER_LEN)?;
            let (id, len) = Self::decode_header(&header, &path)?;
            if pos + HEADER_LEN + len > total {
                return Err(StoreError::CorruptRecord(format!(
                    "{path}: truncated body at {pos}"
                )));
            }
            out.push((id, pos + HEADER_LEN, len));
            pos += HEADER_LEN + len;
        }
        Ok(out)
    }
}

impl<B: Backend> MailStore for MboxStore<B> {
    fn deliver(&mut self, id: MailId, mailboxes: &[&str], body: DataRef<'_>) -> StoreResult<()> {
        let header = Self::encode_header(id, body.len());
        for mb in mailboxes {
            let path = Self::path(mb);
            // One framed record per mailbox: the body is written once per
            // recipient — the duplicated I/O MFS avoids.
            self.backend.append_record(&path, &header, body)?;
        }
        Ok(())
    }

    fn read_mailbox(&mut self, mailbox: &str) -> StoreResult<Vec<StoredMail>> {
        let records = self.scan(mailbox)?;
        let path = Self::path(mailbox);
        let mut out = Vec::with_capacity(records.len());
        for (id, off, len) in records {
            let body = self.backend.read_at(&path, off, len)?;
            out.push(StoredMail { id, body });
        }
        Ok(out)
    }

    fn delete(&mut self, mailbox: &str, id: MailId) -> StoreResult<()> {
        let records = self.scan(mailbox)?;
        if !records.iter().any(|(rid, _, _)| *rid == id) {
            return Err(StoreError::NotFound(format!("{mailbox}/{id}")));
        }
        // Rewrite the mailbox without the deleted record (mbox semantics).
        let path = Self::path(mailbox);
        let mut kept = Vec::new();
        for (rid, off, len) in records {
            if rid == id {
                continue;
            }
            kept.extend_from_slice(&Self::encode_header(rid, len));
            kept.extend_from_slice(&self.backend.read_at(&path, off, len)?);
        }
        self.backend.replace(&path, DataRef::Bytes(&kept))
    }

    fn layout_name(&self) -> &'static str {
        "mbox"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemFs;

    fn store() -> MboxStore<MemFs> {
        MboxStore::new(MemFs::new())
    }

    #[test]
    fn multi_recipient_writes_body_per_mailbox() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = store();
        s.deliver(MailId(1), &["a", "b", "c"], DataRef::Bytes(b"body"))?;
        for mb in ["a", "b", "c"] {
            let mails = s.read_mailbox(mb)?;
            assert_eq!(mails.len(), 1);
            assert_eq!(mails[0].body, b"body");
        }
        // 3 copies on disk: the duplicated I/O.
        assert_eq!(s.backend().total_bytes(), 3 * (20 + 4));
        Ok(())
    }

    #[test]
    fn delivery_order_is_preserved() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = store();
        for i in 1..=5u64 {
            s.deliver(MailId(i), &["inbox"], DataRef::Bytes(&[i as u8]))?;
        }
        let mails = s.read_mailbox("inbox")?;
        let ids: Vec<u64> = mails.iter().map(|m| m.id.0).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
        Ok(())
    }

    #[test]
    fn delete_rewrites_without_record() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = store();
        s.deliver(MailId(1), &["inbox"], DataRef::Bytes(b"one"))?;
        s.deliver(MailId(2), &["inbox"], DataRef::Bytes(b"two"))?;
        s.deliver(MailId(3), &["inbox"], DataRef::Bytes(b"three"))?;
        s.delete("inbox", MailId(2))?;
        let mails = s.read_mailbox("inbox")?;
        assert_eq!(mails.len(), 2);
        assert_eq!(mails[0].body, b"one");
        assert_eq!(mails[1].body, b"three");
        Ok(())
    }

    #[test]
    fn delete_only_affects_one_mailbox() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = store();
        s.deliver(MailId(7), &["a", "b"], DataRef::Bytes(b"x"))?;
        s.delete("a", MailId(7))?;
        assert!(s.read_mailbox("a")?.is_empty());
        assert_eq!(s.read_mailbox("b")?.len(), 1);
        Ok(())
    }

    #[test]
    fn delete_missing_mail_errors() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = store();
        s.deliver(MailId(1), &["inbox"], DataRef::Bytes(b"x"))?;
        assert!(matches!(
            s.delete("inbox", MailId(9)),
            Err(StoreError::NotFound(_))
        ));
        Ok(())
    }

    #[test]
    fn empty_mailbox_reads_empty() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = store();
        assert!(s.read_mailbox("nobody")?.is_empty());
        Ok(())
    }

    #[test]
    fn zero_length_body_roundtrips() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = store();
        s.deliver(MailId(1), &["inbox"], DataRef::Bytes(b""))?;
        let mails = s.read_mailbox("inbox")?;
        assert_eq!(mails[0].body, Vec::<u8>::new());
        Ok(())
    }
}
