//! Real-filesystem backend over `std::fs`.

use crate::{Backend, DataRef, StoreError, StoreResult};
use std::fs::{self, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// A backend storing files under a root directory on the real filesystem.
///
/// Used by the live SMTP server and by integration tests; the same mailbox
/// layouts that run on [`crate::MemFs`] in simulation run here against
/// actual disks.
///
/// # Example
///
/// ```no_run
/// use spamaware_mfs::{Backend, DataRef, RealDir};
/// let mut fs = RealDir::new("/tmp/spamaware-store")?;
/// fs.append("inbox/mbox", DataRef::Bytes(b"mail"))?;
/// # Ok::<(), spamaware_mfs::StoreError>(())
/// ```
#[derive(Debug)]
pub struct RealDir {
    root: PathBuf,
}

impl RealDir {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors creating the root.
    pub fn new(root: impl AsRef<Path>) -> StoreResult<RealDir> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(RealDir { root })
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn resolve(&self, path: &str) -> StoreResult<PathBuf> {
        // Reject traversal; mailbox names are server-generated but the
        // live server feeds client-influenced ids through here too.
        if path.split('/').any(|c| c == ".." || c.is_empty()) || path.starts_with('/') {
            return Err(StoreError::Io(format!("illegal path: {path:?}")));
        }
        Ok(self.root.join(path))
    }

    fn ensure_parent(&self, full: &Path) -> StoreResult<()> {
        if let Some(parent) = full.parent() {
            fs::create_dir_all(parent)?;
        }
        Ok(())
    }
}

impl Backend for RealDir {
    fn create(&mut self, path: &str) -> StoreResult<()> {
        let full = self.resolve(path)?;
        self.ensure_parent(&full)?;
        match OpenOptions::new().write(true).create_new(true).open(&full) {
            Ok(_) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                Err(StoreError::AlreadyExists(path.to_owned()))
            }
            Err(e) => Err(e.into()),
        }
    }

    fn append(&mut self, path: &str, data: DataRef<'_>) -> StoreResult<u64> {
        let full = self.resolve(path)?;
        self.ensure_parent(&full)?;
        let mut f = OpenOptions::new().append(true).create(true).open(&full)?;
        let offset = f.seek(SeekFrom::End(0))?;
        match data {
            DataRef::Bytes(b) => f.write_all(b)?,
            DataRef::Zeros(n) => {
                // Write in chunks to bound memory.
                let chunk = vec![0u8; 64 * 1024];
                let mut left = n;
                while left > 0 {
                    let take = left.min(chunk.len() as u64) as usize;
                    f.write_all(&chunk[..take])?;
                    left -= take as u64;
                }
            }
        }
        Ok(offset)
    }

    fn read_at(&mut self, path: &str, offset: u64, len: u64) -> StoreResult<Vec<u8>> {
        let full = self.resolve(path)?;
        let mut f = fs::File::open(&full).map_err(|_| StoreError::NotFound(path.to_owned()))?;
        let size = f.metadata()?.len();
        if offset + len > size {
            return Err(StoreError::OutOfRange(format!(
                "{path}: {offset}+{len} > {size}"
            )));
        }
        f.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len as usize];
        f.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn len(&mut self, path: &str) -> StoreResult<u64> {
        let full = self.resolve(path)?;
        let meta = fs::metadata(&full).map_err(|_| StoreError::NotFound(path.to_owned()))?;
        Ok(meta.len())
    }

    fn link(&mut self, src: &str, dst: &str) -> StoreResult<()> {
        let s = self.resolve(src)?;
        let d = self.resolve(dst)?;
        self.ensure_parent(&d)?;
        match fs::hard_link(&s, &d) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                Err(StoreError::AlreadyExists(dst.to_owned()))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::NotFound(src.to_owned()))
            }
            Err(e) => Err(e.into()),
        }
    }

    fn remove(&mut self, path: &str) -> StoreResult<()> {
        let full = self.resolve(path)?;
        fs::remove_file(&full).map_err(|_| StoreError::NotFound(path.to_owned()))
    }

    fn truncate(&mut self, path: &str, len: u64) -> StoreResult<()> {
        let full = self.resolve(path)?;
        let f = OpenOptions::new()
            .write(true)
            .open(&full)
            .map_err(|_| StoreError::NotFound(path.to_owned()))?;
        let size = f.metadata()?.len();
        if len > size {
            return Err(StoreError::OutOfRange(format!(
                "{path}: truncate to {len} > {size}"
            )));
        }
        f.set_len(len)?;
        Ok(())
    }

    fn exists(&mut self, path: &str) -> bool {
        self.resolve(path).map(|p| p.exists()).unwrap_or(false)
    }

    fn list(&mut self, prefix: &str) -> StoreResult<Vec<String>> {
        fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
            for entry in fs::read_dir(dir)? {
                let entry = entry?;
                let path = entry.path();
                if path.is_dir() {
                    walk(&path, root, out)?;
                } else if let Ok(rel) = path.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
            Ok(())
        }
        let mut out = Vec::new();
        walk(&self.root, &self.root, &mut out)?;
        out.retain(|p| p.starts_with(prefix));
        out.sort_unstable();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp() -> (RealDir, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "spamaware-realdir-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        (RealDir::new(&dir).unwrap(), dir)
    }

    #[test]
    fn append_and_read_roundtrip() -> Result<(), Box<dyn std::error::Error>> {
        let (mut fs, dir) = tmp();
        assert_eq!(fs.append("m/box", DataRef::Bytes(b"hello"))?, 0);
        assert_eq!(fs.append("m/box", DataRef::Bytes(b" world"))?, 5);
        assert_eq!(fs.read_at("m/box", 0, 11)?, b"hello world");
        assert_eq!(fs.len("m/box")?, 11);
        let _ = std::fs::remove_dir_all(dir);
        Ok(())
    }

    #[test]
    fn create_new_rejects_existing() -> Result<(), Box<dyn std::error::Error>> {
        let (mut fs, dir) = tmp();
        fs.create("f")?;
        assert!(matches!(fs.create("f"), Err(StoreError::AlreadyExists(_))));
        let _ = std::fs::remove_dir_all(dir);
        Ok(())
    }

    #[test]
    fn hard_link_shares_and_remove_unlinks() -> Result<(), Box<dyn std::error::Error>> {
        let (mut fs, dir) = tmp();
        fs.append("orig", DataRef::Bytes(b"shared"))?;
        fs.link("orig", "copy")?;
        assert_eq!(fs.read_at("copy", 0, 6)?, b"shared");
        fs.remove("orig")?;
        assert_eq!(fs.read_at("copy", 0, 6)?, b"shared");
        let _ = std::fs::remove_dir_all(dir);
        Ok(())
    }

    #[test]
    fn traversal_is_rejected() {
        let (mut fs, dir) = tmp();
        assert!(fs.append("../escape", DataRef::Bytes(b"x")).is_err());
        assert!(fs.append("/abs", DataRef::Bytes(b"x")).is_err());
        assert!(fs.append("a//b", DataRef::Bytes(b"x")).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn zeros_write_in_chunks() -> Result<(), Box<dyn std::error::Error>> {
        let (mut fs, dir) = tmp();
        fs.append("big", DataRef::Zeros(200_000))?;
        assert_eq!(fs.len("big")?, 200_000);
        let _ = std::fs::remove_dir_all(dir);
        Ok(())
    }

    #[test]
    fn missing_files_report_not_found() {
        let (mut fs, dir) = tmp();
        assert!(matches!(fs.len("nope"), Err(StoreError::NotFound(_))));
        assert!(matches!(fs.remove("nope"), Err(StoreError::NotFound(_))));
        assert!(matches!(
            fs.link("nope", "dst"),
            Err(StoreError::NotFound(_))
        ));
        assert!(!fs.exists("nope"));
        let _ = std::fs::remove_dir_all(dir);
    }
}
