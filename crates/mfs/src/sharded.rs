//! Sharded concurrent facade over [`MfsStore`] — per-mailbox lock striping.
//!
//! The live server originally serialized every delivery and retrieval
//! behind one `Mutex<MfsStore>`: POP3 reading mailbox A blocked SMTP
//! delivering to mailbox B, so worker threads bought nothing once DATA
//! volume rose. [`ShardedStore`] restores the scaling the paper's §5
//! architecture promises by partitioning the store:
//!
//! * **N mailbox shards**, selected by FNV-1a hash of the mailbox name.
//!   Each shard is a full (detached) [`MfsStore`] whose in-memory index
//!   covers exactly its own mailboxes; operations on different shards
//!   never contend.
//! * **One shared partition** holding the §6.1 `shmailbox` state (the
//!   single-copy bodies and the refcount log). Multi-recipient delivery
//!   takes this lock once, appends the body, and releases it *before*
//!   touching any recipient's shard.
//!
//! # Lock ordering (deadlock freedom)
//!
//! No thread ever holds two partition locks at once. `deliver` acquires
//! shared → release → each recipient shard in turn; `delete` acquires the
//! shard → release → shared. Since every hold is singular, no cycle can
//! form. The underlying files stay consistent without cross-lock critical
//! sections because every MFS file is append-only and a shared body's
//! `(offset, len)` is only published to shards *after* its append
//! completed.
//!
//! All partitions must observe the same underlying files: with
//! [`crate::RealDir`] each partition opens its own handle onto the same
//! directory; for in-memory backends, [`SyncBackend`] turns one
//! [`crate::MemFs`] into cloneable handles.

use crate::backend::DataRef;
use crate::{Backend, MailId, MailStore, MfsStats, MfsStore, StoreResult, StoredMail};
use parking_lot::Mutex;
use spamaware_metrics::{Registry, SpanHandle};
use std::sync::{Arc, MutexGuard};

/// FNV-1a shard selection: stable across runs and platforms, so a store
/// reopened with the same shard count replays each mailbox into the same
/// shard that wrote it.
fn shard_index(mailbox: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in mailbox.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// Sharding-layer instrumentation (see [`ShardedStore::with_metrics`]).
#[derive(Debug)]
struct ShardMetrics {
    write_ns: SpanHandle,
    delete_ns: SpanHandle,
    /// Time spent *waiting* for a partition lock — the contention signal
    /// the `live_throughput` bench sweeps worker counts against.
    contention_ns: SpanHandle,
}

/// A concurrent MFS store: `&self` delivery/retrieval/deletion with
/// per-mailbox lock striping.
///
/// Observationally equivalent to a single-lock [`MfsStore`] (enforced by
/// the `sharded_prop` proptest); the difference is purely which operations
/// can proceed in parallel.
///
/// # Example
///
/// ```
/// use spamaware_mfs::{DataRef, MailId, MemFs, ShardedStore, SyncBackend};
///
/// let fs = SyncBackend::new(MemFs::new());
/// let store = ShardedStore::open_with(4, || Ok(fs.clone()))?;
/// // &self: no outer mutex needed, share via Arc across worker threads.
/// store.deliver(MailId(1), &["a", "b", "c"], DataRef::Bytes(b"spam!"))?;
/// assert_eq!(store.read_mailbox("b")?[0].body, b"spam!");
/// assert_eq!(store.stats().shared_mails, 1);
/// # Ok::<(), spamaware_mfs::StoreError>(())
/// ```
#[derive(Debug)]
pub struct ShardedStore<B> {
    /// The `shmailbox` partition: single-copy bodies + refcount log.
    shared: Mutex<MfsStore<B>>,
    /// Mailbox partitions, indexed by [`shard_index`].
    shards: Vec<Mutex<MfsStore<B>>>,
    /// Recipient count at which delivery routes through `shmailbox`
    /// (mirrors [`MfsStore::with_share_threshold`], default 2).
    share_threshold: usize,
    metrics: Option<ShardMetrics>,
}

impl<B: Backend> ShardedStore<B> {
    /// Opens a sharded store with `shards` mailbox partitions, calling
    /// `make` once per partition (plus once for the shared partition) to
    /// produce backend handles that all view the same files — e.g.
    /// `|| RealDir::new(&root)` or `|| Ok(sync_memfs.clone())`.
    ///
    /// Existing MFS files are replayed exactly once across partitions:
    /// each mailbox key file into its shard, the shared key file into the
    /// shared partition.
    ///
    /// # Errors
    ///
    /// Propagates backend construction failures and
    /// [`crate::StoreError::CorruptRecord`] from replay.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn open_with(
        shards: usize,
        mut make: impl FnMut() -> StoreResult<B>,
    ) -> StoreResult<ShardedStore<B>> {
        assert!(shards >= 1, "shard count must be at least 1");
        // A partitioned replay must not clamp shared refcounts: the shared
        // partition replays with no mailboxes in view, so clamping there
        // would reclaim every live body. Cross-partition repair is
        // `open_with_fsck`'s job.
        let mut shared = MfsStore::new(make()?);
        shared.replay_partition(true, &|_| false, false)?;
        let mut parts = Vec::with_capacity(shards);
        for i in 0..shards {
            let mut shard = MfsStore::new(make()?);
            shard.set_detached();
            shard.replay_partition(false, &|mb| shard_index(mb, shards) == i, false)?;
            parts.push(Mutex::new(shard));
        }
        Ok(ShardedStore {
            shared: Mutex::new(shared),
            shards: parts,
            share_threshold: 2,
            metrics: None,
        })
    }

    /// Opens a sharded store with a durable repair pass first: runs
    /// [`crate::fsck`] over one backend handle (truncating torn tails,
    /// dropping corrupt frames, rebuilding shmailbox refcounts on disk),
    /// then opens the partitions over the repaired files. This is how the
    /// live server restarts after a crash.
    ///
    /// # Errors
    ///
    /// Propagates backend construction failures; unlike
    /// [`ShardedStore::open_with`], corrupt key files are repaired rather
    /// than reported.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn open_with_fsck(
        shards: usize,
        mut make: impl FnMut() -> StoreResult<B>,
    ) -> StoreResult<(ShardedStore<B>, crate::FsckReport)> {
        let (repaired, report) = crate::fsck(make()?)?;
        drop(repaired);
        let store = Self::open_with(shards, make)?;
        Ok((store, report))
    }

    /// The highest [`MailId`] anywhere in the store (see
    /// [`MfsStore::max_mail_id`]); the live server seeds its allocator
    /// above this on restart so ids are never reused.
    pub fn max_mail_id(&self) -> Option<MailId> {
        let mut max = self.shared.lock().max_mail_id();
        for shard in &self.shards {
            max = max.max(shard.lock().max_mail_id());
        }
        max
    }

    /// Torn trailing key records truncated away while replaying the
    /// partitions (summed across shards; see
    /// [`MfsStore::recovered_records`]).
    pub fn recovered_records(&self) -> u64 {
        let mut total = self.shared.lock().recovered_records();
        for shard in &self.shards {
            total += shard.lock().recovered_records();
        }
        total
    }

    /// Reports the same per-operation metrics as
    /// [`MfsStore::with_metrics`] (identical names, so dashboards don't
    /// care which store variant is live), plus
    /// `<prefix>.shard_contention_ns` — cumulative time threads spent
    /// blocked on partition locks.
    ///
    /// `write_ns`/`delete_ns` are recorded at this layer (one span per
    /// logical operation, however many shards it touches); `read_ns` and
    /// the byte/refcount counters are recorded by the inner partitions.
    pub fn with_metrics(self, registry: &Registry, prefix: &str) -> ShardedStore<B> {
        let shared = Mutex::new(self.shared.into_inner().with_metrics(registry, prefix));
        let shards = self
            .shards
            .into_iter()
            .map(|m| Mutex::new(m.into_inner().with_metrics(registry, prefix)))
            .collect();
        ShardedStore {
            shared,
            shards,
            share_threshold: self.share_threshold,
            metrics: Some(ShardMetrics {
                write_ns: registry.span(&format!("{prefix}.write_ns")),
                delete_ns: registry.span(&format!("{prefix}.delete_ns")),
                contention_ns: registry.span(&format!("{prefix}.shard_contention_ns")),
            }),
        }
    }

    /// Sets the share threshold (see [`MfsStore::with_share_threshold`]).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn with_share_threshold(mut self, threshold: usize) -> ShardedStore<B> {
        assert!(threshold >= 1, "threshold must be at least 1");
        self.share_threshold = threshold;
        self
    }

    /// Number of mailbox shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Acquires a partition lock, charging wait time to
    /// `shard_contention_ns` when metrics are on.
    fn locked<'a>(&self, part: &'a Mutex<MfsStore<B>>) -> MutexGuard<'a, MfsStore<B>> {
        match &self.metrics {
            Some(m) => {
                let start = m.contention_ns.now();
                let guard = part.lock();
                m.contention_ns.record_since(start);
                guard
            }
            None => part.lock(),
        }
    }

    fn shard_for(&self, mailbox: &str) -> &Mutex<MfsStore<B>> {
        &self.shards[shard_index(mailbox, self.shards.len())]
    }

    /// Delivers one mail to all `mailboxes` — the concurrent
    /// `mail_nwrite`. Below the share threshold each recipient's body goes
    /// to its own shard under that shard's lock alone; at or above it, the
    /// body is appended once to `shmailbox` under the short-hold shared
    /// lock, which is released before the per-recipient key tuples are
    /// attached shard by shard.
    ///
    /// # Errors
    ///
    /// Same surface as [`MfsStore::nwrite`], including
    /// [`crate::StoreError::MailIdCollision`] for the §6.4 defence.
    pub fn deliver(&self, id: MailId, mailboxes: &[&str], body: DataRef<'_>) -> StoreResult<()> {
        let _span = self.metrics.as_ref().map(|m| m.write_ns.start());
        for mb in mailboxes {
            MfsStore::<B>::check_mailbox_name(mb)?;
        }
        match mailboxes {
            [] => Ok(()),
            mbs if mbs.len() < self.share_threshold => {
                for mb in mbs {
                    self.locked(self.shard_for(mb)).write_own(mb, id, body)?;
                }
                Ok(())
            }
            _ => {
                let (offset, len) =
                    self.locked(&self.shared)
                        .shared_acquire(id, body, mailboxes.len() as i64)?;
                // Shared lock released: the body is durably appended and
                // its coordinates fixed, so shards may now reference it.
                for mb in mailboxes {
                    self.locked(self.shard_for(mb))
                        .attach_shared(mb, id, offset, len)?;
                }
                Ok(())
            }
        }
    }

    /// Index-only mailbox listing (see [`MfsStore::list_mailbox`]): one
    /// O(1)-hold acquisition of the mailbox's shard, no disk reads.
    pub fn list_mailbox(&self, mailbox: &str) -> Vec<(MailId, u64)> {
        self.locked(self.shard_for(mailbox)).list_mailbox(mailbox)
    }

    /// Reads one mail under one short shard hold (see
    /// [`MfsStore::read_mail`]).
    ///
    /// # Errors
    ///
    /// [`crate::StoreError::NotFound`] when the mailbox has no live mail
    /// with this id; backend read failures.
    pub fn read_mail(&self, mailbox: &str, id: MailId) -> StoreResult<StoredMail> {
        self.locked(self.shard_for(mailbox)).read_mail(mailbox, id)
    }

    /// Reads every live mail in a mailbox, in delivery order. The shard
    /// lock is *not* held across the scan: one short hold snapshots the
    /// key index, then each body is read under its own hold, so concurrent
    /// deliveries to other mailboxes on the same stripe interleave instead
    /// of waiting out O(mailbox) disk reads. A mail deleted between the
    /// snapshot and its read is skipped, which is the same answer a
    /// slightly earlier scan would have given. Shared bodies are read
    /// through the shard's own backend handle: the shared data file is
    /// append-only and coordinates are published only after the append
    /// completed, so no shared lock is needed.
    ///
    /// # Errors
    ///
    /// Propagates backend read failures.
    pub fn read_mailbox(&self, mailbox: &str) -> StoreResult<Vec<StoredMail>> {
        let index = self.list_mailbox(mailbox);
        let mut out = Vec::with_capacity(index.len());
        for (id, _len) in index {
            match self.read_mail(mailbox, id) {
                Ok(mail) => out.push(mail),
                Err(crate::StoreError::NotFound(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// Deletes one mail from one mailbox: tombstone under the shard lock,
    /// then — only if the mail was shared — a refcount release under the
    /// shared lock (never both at once).
    ///
    /// # Errors
    ///
    /// [`crate::StoreError::NotFound`] when the mailbox or id is unknown.
    pub fn delete(&self, mailbox: &str, id: MailId) -> StoreResult<()> {
        let _span = self.metrics.as_ref().map(|m| m.delete_ns.start());
        let freed = self
            .locked(self.shard_for(mailbox))
            .delete_local(mailbox, id)?;
        if let Some((offset, len)) = freed {
            self.locked(&self.shared).shared_release(id, offset, len)?;
        }
        Ok(())
    }

    /// Aggregate statistics summed across all partitions. Consistent only
    /// when quiescent (locks are taken one partition at a time, so a
    /// concurrent delivery may be half-counted — fine for reporting).
    pub fn stats(&self) -> MfsStats {
        let mut total = self.shared.lock().stats();
        for shard in &self.shards {
            let s = shard.lock().stats();
            total.shared_mails += s.shared_mails;
            total.shared_bytes += s.shared_bytes;
            total.freed_shared_bytes += s.freed_shared_bytes;
            total.own_records += s.own_records;
            total.shared_references += s.shared_references;
        }
        total
    }
}

impl<B: Backend> MailStore for ShardedStore<B> {
    fn deliver(&mut self, id: MailId, mailboxes: &[&str], body: DataRef<'_>) -> StoreResult<()> {
        ShardedStore::deliver(self, id, mailboxes, body)
    }

    fn read_mailbox(&mut self, mailbox: &str) -> StoreResult<Vec<StoredMail>> {
        ShardedStore::read_mailbox(self, mailbox)
    }

    fn delete(&mut self, mailbox: &str, id: MailId) -> StoreResult<()> {
        ShardedStore::delete(self, mailbox, id)
    }

    fn layout_name(&self) -> &'static str {
        "mfs-sharded"
    }
}

/// Clonable, thread-safe handle wrapping a single [`Backend`]: every clone
/// locks the same underlying file system for each operation.
///
/// This is how an in-memory backend (one [`crate::MemFs`]) serves all
/// [`ShardedStore`] partitions in tests and benches; [`crate::RealDir`]
/// doesn't need it because independent handles onto one directory already
/// share the files.
#[derive(Debug)]
pub struct SyncBackend<B> {
    inner: Arc<Mutex<B>>,
}

impl<B> SyncBackend<B> {
    /// Wraps a backend for shared multi-handle access.
    pub fn new(backend: B) -> SyncBackend<B> {
        SyncBackend {
            inner: Arc::new(Mutex::new(backend)),
        }
    }
}

impl<B> Clone for SyncBackend<B> {
    fn clone(&self) -> SyncBackend<B> {
        SyncBackend {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<B: Backend> Backend for SyncBackend<B> {
    fn create(&mut self, path: &str) -> StoreResult<()> {
        self.inner.lock().create(path)
    }

    fn append(&mut self, path: &str, data: DataRef<'_>) -> StoreResult<u64> {
        self.inner.lock().append(path, data)
    }

    fn read_at(&mut self, path: &str, offset: u64, len: u64) -> StoreResult<Vec<u8>> {
        self.inner.lock().read_at(path, offset, len)
    }

    fn len(&mut self, path: &str) -> StoreResult<u64> {
        self.inner.lock().len(path)
    }

    fn link(&mut self, src: &str, dst: &str) -> StoreResult<()> {
        self.inner.lock().link(src, dst)
    }

    fn remove(&mut self, path: &str) -> StoreResult<()> {
        self.inner.lock().remove(path)
    }

    fn truncate(&mut self, path: &str, len: u64) -> StoreResult<()> {
        self.inner.lock().truncate(path, len)
    }

    fn exists(&mut self, path: &str) -> bool {
        self.inner.lock().exists(path)
    }

    fn list(&mut self, prefix: &str) -> StoreResult<Vec<String>> {
        self.inner.lock().list(prefix)
    }

    // The defaults would take the lock twice, letting another handle's
    // write interleave inside one logical operation; hold it once instead.
    fn replace(&mut self, path: &str, data: DataRef<'_>) -> StoreResult<()> {
        self.inner.lock().replace(path, data)
    }

    fn append_record(&mut self, path: &str, header: &[u8], body: DataRef<'_>) -> StoreResult<u64> {
        self.inner.lock().append_record(path, header, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemFs;

    fn sharded(n: usize) -> ShardedStore<SyncBackend<MemFs>> {
        let fs = SyncBackend::new(MemFs::new());
        ShardedStore::open_with(n, || Ok(fs.clone())).unwrap()
    }

    #[test]
    fn single_recipient_lands_in_own_shard() {
        let s = sharded(4);
        s.deliver(MailId(1), &["alice"], DataRef::Bytes(b"private"))
            .unwrap();
        let mails = s.read_mailbox("alice").unwrap();
        assert_eq!(mails.len(), 1);
        assert_eq!(mails[0].body, b"private");
        let stats = s.stats();
        assert_eq!(stats.own_records, 1);
        assert_eq!(stats.shared_mails, 0);
    }

    #[test]
    fn multi_recipient_body_stored_once_across_shards() {
        let s = sharded(4);
        s.deliver(MailId(7), &["a", "b", "c"], DataRef::Bytes(b"spam body"))
            .unwrap();
        for mb in ["a", "b", "c"] {
            assert_eq!(s.read_mailbox(mb).unwrap()[0].body, b"spam body");
        }
        let stats = s.stats();
        assert_eq!(stats.shared_mails, 1);
        assert_eq!(stats.shared_references, 3);
        assert_eq!(stats.own_records, 0);
    }

    #[test]
    fn delete_releases_shared_refcount() {
        let s = sharded(4);
        s.deliver(MailId(7), &["a", "b"], DataRef::Bytes(b"twice"))
            .unwrap();
        s.delete("a", MailId(7)).unwrap();
        assert_eq!(s.stats().shared_mails, 1, "b still references the body");
        s.delete("b", MailId(7)).unwrap();
        let stats = s.stats();
        assert_eq!(stats.shared_mails, 0);
        assert_eq!(stats.freed_shared_bytes, 5);
    }

    #[test]
    fn mail_id_collision_detected_across_shards() {
        let s = sharded(4);
        s.deliver(MailId(9), &["a", "b"], DataRef::Bytes(b"first"))
            .unwrap();
        let err = s
            .deliver(MailId(9), &["c", "d"], DataRef::Bytes(b"different-size"))
            .unwrap_err();
        assert!(matches!(err, crate::StoreError::MailIdCollision(_)));
    }

    #[test]
    fn reopen_replays_each_mailbox_into_its_shard() {
        let fs = SyncBackend::new(MemFs::new());
        {
            let s = ShardedStore::open_with(4, || Ok(fs.clone())).unwrap();
            s.deliver(MailId(1), &["alice"], DataRef::Bytes(b"own"))
                .unwrap();
            s.deliver(MailId(2), &["a", "b", "c"], DataRef::Bytes(b"shared"))
                .unwrap();
            s.delete("b", MailId(2)).unwrap();
        }
        // Different shard count: every mailbox must still be found.
        let s = ShardedStore::open_with(7, || Ok(fs.clone())).unwrap();
        assert_eq!(s.read_mailbox("alice").unwrap()[0].body, b"own");
        assert_eq!(s.read_mailbox("a").unwrap()[0].body, b"shared");
        assert!(s.read_mailbox("b").unwrap().is_empty());
        let stats = s.stats();
        assert_eq!(stats.shared_mails, 1);
        assert_eq!(stats.shared_references, 2);
        assert_eq!(stats.own_records, 1);
    }

    #[test]
    fn shard_index_is_stable_and_in_range() {
        for n in [1usize, 2, 4, 8, 13] {
            for mb in ["alice", "bob", "carol", "shmailbox-not", ""] {
                let i = shard_index(mb, n);
                assert!(i < n);
                assert_eq!(i, shard_index(mb, n), "deterministic");
            }
        }
    }

    #[test]
    fn illegal_mailbox_name_rejected() {
        let s = sharded(2);
        assert!(s
            .deliver(MailId(1), &["shmailbox"], DataRef::Bytes(b"x"))
            .is_err());
        assert!(s
            .deliver(MailId(1), &["a/b"], DataRef::Bytes(b"x"))
            .is_err());
    }

    #[test]
    fn parallel_disjoint_mailboxes_do_not_interfere() {
        let s = std::sync::Arc::new(sharded(8));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = std::sync::Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let mb = format!("user{t}");
                for i in 0..50u64 {
                    s.deliver(MailId(t * 1000 + i), &[mb.as_str()], DataRef::Bytes(b"m"))
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..4u64 {
            assert_eq!(s.read_mailbox(&format!("user{t}")).unwrap().len(), 50);
        }
        assert_eq!(s.stats().own_records, 200);
    }
}
