//! Crash injection: a backend wrapper that dies mid-write, for proving
//! the store recovers from every possible torn write.
//!
//! [`FaultyBackend`](crate::FaultyBackend) models an I/O *error* — the
//! operation fails but the process keeps running. [`CrashBackend`] models
//! a *power cut*: at a chosen byte of a chosen write the backend persists
//! only a prefix of the data, the operation errors, and every subsequent
//! operation fails — exactly what the surviving files look like after
//! `kill -9`. The crash-point torture tests sweep every `(write, byte)`
//! pair of a scripted workload and reopen the store from the survivors.

use crate::{Backend, DataRef, StoreError, StoreResult};

/// Where to kill the store: the `byte`-th byte of the `write`-th
/// write-side operation (both 0-based). `byte == 0` loses the whole
/// write; `byte == size` persists it fully but still crashes before the
/// caller sees success.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Index of the write-side operation to interrupt.
    pub write: u64,
    /// Bytes of that operation to let through before dying.
    pub byte: u64,
}

/// A [`Backend`] wrapper that simulates a crash at a [`CrashPoint`].
///
/// In *recording* mode (no crash point armed) it forwards everything and
/// logs the byte size of each write-side operation — the script for an
/// exhaustive sweep. Metadata operations (create/link/remove/truncate)
/// count as 1-byte writes: they either happened or they didn't.
///
/// # Example
///
/// ```
/// use spamaware_mfs::{Backend, CrashBackend, CrashPoint, DataRef, MemFs};
/// let mut fs = CrashBackend::with_plan(MemFs::new(), CrashPoint { write: 1, byte: 2 });
/// fs.append("f", DataRef::Bytes(b"ok"))?;
/// assert!(fs.append("f", DataRef::Bytes(b"doomed")).is_err());
/// assert!(fs.crashed());
/// // Only the first 2 bytes of the torn append survive.
/// let mut survivor = fs.into_inner();
/// assert_eq!(survivor.len("f")?, 4);
/// # Ok::<(), spamaware_mfs::StoreError>(())
/// ```
#[derive(Debug)]
pub struct CrashBackend<B> {
    inner: B,
    plan: Option<CrashPoint>,
    writes_seen: u64,
    crashed: bool,
    write_log: Vec<u64>,
}

impl<B: Backend> CrashBackend<B> {
    /// Wraps a backend in recording mode: nothing fails, every write-side
    /// operation's byte size is logged.
    pub fn new(inner: B) -> CrashBackend<B> {
        CrashBackend {
            inner,
            plan: None,
            writes_seen: 0,
            crashed: false,
            write_log: Vec::new(),
        }
    }

    /// Wraps a backend armed to crash at `point`.
    pub fn with_plan(inner: B, point: CrashPoint) -> CrashBackend<B> {
        CrashBackend {
            plan: Some(point),
            ..CrashBackend::new(inner)
        }
    }

    /// Byte sizes of the write-side operations seen so far, in order.
    pub fn write_log(&self) -> &[u64] {
        &self.write_log
    }

    /// Whether the crash point has fired.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Unwraps the inner backend — "reboots the machine": the surviving
    /// bytes are whatever landed before the crash.
    pub fn into_inner(self) -> B {
        self.inner
    }

    fn dead(&self) -> StoreError {
        StoreError::Io("crashed store".to_owned())
    }

    /// Accounts one write-side operation of `size` bytes. `Ok(None)` lets
    /// it through whole; `Ok(Some(n))` means the crash fires now and only
    /// the first `n` bytes may be persisted.
    fn write_gate(&mut self, size: u64) -> StoreResult<Option<u64>> {
        if self.crashed {
            return Err(self.dead());
        }
        let index = self.writes_seen;
        self.writes_seen += 1;
        self.write_log.push(size);
        if let Some(p) = self.plan {
            if p.write == index {
                self.crashed = true;
                return Ok(Some(p.byte.min(size)));
            }
        }
        Ok(None)
    }

    fn read_gate(&self) -> StoreResult<()> {
        if self.crashed {
            return Err(self.dead());
        }
        Ok(())
    }
}

impl<B: Backend> Backend for CrashBackend<B> {
    fn create(&mut self, path: &str) -> StoreResult<()> {
        match self.write_gate(1)? {
            None => self.inner.create(path),
            Some(cut) => {
                if cut >= 1 {
                    self.inner.create(path)?;
                }
                Err(self.dead())
            }
        }
    }

    fn append(&mut self, path: &str, data: DataRef<'_>) -> StoreResult<u64> {
        match self.write_gate(data.len())? {
            None => self.inner.append(path, data),
            Some(cut) => {
                if cut > 0 {
                    let partial = match data {
                        DataRef::Bytes(b) => DataRef::Bytes(&b[..cut as usize]),
                        DataRef::Zeros(_) => DataRef::Zeros(cut),
                    };
                    self.inner.append(path, partial)?;
                }
                Err(self.dead())
            }
        }
    }

    fn read_at(&mut self, path: &str, offset: u64, len: u64) -> StoreResult<Vec<u8>> {
        self.read_gate()?;
        self.inner.read_at(path, offset, len)
    }

    fn len(&mut self, path: &str) -> StoreResult<u64> {
        self.read_gate()?;
        self.inner.len(path)
    }

    fn link(&mut self, src: &str, dst: &str) -> StoreResult<()> {
        match self.write_gate(1)? {
            None => self.inner.link(src, dst),
            Some(cut) => {
                if cut >= 1 {
                    self.inner.link(src, dst)?;
                }
                Err(self.dead())
            }
        }
    }

    fn remove(&mut self, path: &str) -> StoreResult<()> {
        match self.write_gate(1)? {
            None => self.inner.remove(path),
            Some(cut) => {
                if cut >= 1 {
                    self.inner.remove(path)?;
                }
                Err(self.dead())
            }
        }
    }

    fn truncate(&mut self, path: &str, len: u64) -> StoreResult<()> {
        match self.write_gate(1)? {
            None => self.inner.truncate(path, len),
            Some(cut) => {
                if cut >= 1 {
                    self.inner.truncate(path, len)?;
                }
                Err(self.dead())
            }
        }
    }

    fn exists(&mut self, path: &str) -> bool {
        !self.crashed && self.inner.exists(path)
    }

    fn list(&mut self, prefix: &str) -> StoreResult<Vec<String>> {
        self.read_gate()?;
        self.inner.list(prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MailId, MailStore, MemFs, MfsStore};

    #[test]
    fn recording_mode_logs_write_sizes() -> Result<(), Box<dyn std::error::Error>> {
        let mut fs = CrashBackend::new(MemFs::new());
        fs.append("f", DataRef::Bytes(b"abcd"))?;
        fs.create("g")?;
        fs.remove("g")?;
        fs.truncate("f", 2)?;
        assert_eq!(fs.write_log(), &[4, 1, 1, 1]);
        assert!(!fs.crashed());
        Ok(())
    }

    #[test]
    fn partial_append_persists_prefix_only() -> Result<(), Box<dyn std::error::Error>> {
        let mut fs = CrashBackend::with_plan(MemFs::new(), CrashPoint { write: 0, byte: 3 });
        assert!(fs.append("f", DataRef::Bytes(b"abcdef")).is_err());
        let mut survivor = fs.into_inner();
        assert_eq!(survivor.read_at("f", 0, 3)?, b"abc");
        assert_eq!(survivor.len("f")?, 3);
        Ok(())
    }

    #[test]
    fn zero_byte_cut_loses_the_write() {
        let mut fs = CrashBackend::with_plan(MemFs::new(), CrashPoint { write: 0, byte: 0 });
        assert!(fs.append("f", DataRef::Bytes(b"gone")).is_err());
        let mut survivor = fs.into_inner();
        assert!(!survivor.exists("f"));
    }

    #[test]
    fn full_cut_persists_but_still_errors() -> Result<(), Box<dyn std::error::Error>> {
        let mut fs = CrashBackend::with_plan(MemFs::new(), CrashPoint { write: 0, byte: 99 });
        assert!(fs.append("f", DataRef::Bytes(b"all")).is_err());
        let mut survivor = fs.into_inner();
        assert_eq!(survivor.read_at("f", 0, 3)?, b"all");
        Ok(())
    }

    #[test]
    fn everything_fails_after_the_crash() {
        let mut fs = CrashBackend::with_plan(MemFs::new(), CrashPoint { write: 0, byte: 0 });
        let _ = fs.append("f", DataRef::Bytes(b"x"));
        assert!(fs.append("g", DataRef::Bytes(b"y")).is_err());
        assert!(fs.read_at("f", 0, 1).is_err());
        assert!(fs.len("f").is_err());
        assert!(fs.list("").is_err());
        assert!(fs.create("h").is_err());
        assert!(!fs.exists("f"));
    }

    #[test]
    fn zeros_payload_cut_preserves_size_semantics() -> Result<(), Box<dyn std::error::Error>> {
        let mut fs = CrashBackend::with_plan(MemFs::size_only(), CrashPoint { write: 0, byte: 7 });
        assert!(fs.append("f", DataRef::Zeros(100)).is_err());
        let mut survivor = fs.into_inner();
        assert_eq!(survivor.len("f")?, 7);
        Ok(())
    }

    #[test]
    fn torn_key_append_recovers_on_reopen() -> Result<(), Box<dyn std::error::Error>> {
        // Find the key append for mailbox "a" by recording first.
        let mut rec = MfsStore::new(CrashBackend::new(MemFs::new()));
        rec.deliver(MailId(1), &["a"], DataRef::Bytes(b"mail"))?;
        let writes = rec.backend_mut().write_log().len() as u64;
        assert_eq!(writes, 2, "body append + key append");

        // Crash 5 bytes into the key append: the body survives whole, the
        // key record is torn; replay must drop it.
        let mut store = MfsStore::new(CrashBackend::with_plan(
            MemFs::new(),
            CrashPoint { write: 1, byte: 5 },
        ));
        assert!(store
            .deliver(MailId(1), &["a"], DataRef::Bytes(b"mail"))
            .is_err());
        let survivor =
            std::mem::replace(store.backend_mut(), CrashBackend::new(MemFs::new())).into_inner();
        let mut recovered = MfsStore::open(survivor)?;
        assert_eq!(recovered.recovered_records(), 1);
        assert!(recovered.read_mailbox("a")?.is_empty());
        // The store stays writable after recovery.
        recovered.deliver(MailId(1), &["a"], DataRef::Bytes(b"mail"))?;
        assert_eq!(recovered.read_mailbox("a")?.len(), 1);
        Ok(())
    }
}
