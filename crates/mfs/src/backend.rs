//! The byte-oriented storage backend beneath every mailbox layout.
//!
//! MFS is "a simple application-level extension to any conventional
//! byte-oriented file system" (paper §6.1); the [`Backend`] trait is that
//! conventional file system. Implementations: [`crate::MemFs`] (in-memory,
//! with optional content retention), [`crate::RealDir`] (actual files via
//! `std::fs`), and [`crate::Metered`] (wraps another backend with the
//! operation/cost accounting that drives Figs. 10/11).

use crate::StoreResult;

/// Bytes to write: either real content or a size-only placeholder.
///
/// The discrete-event simulation knows message *sizes* but never
/// materializes bodies; `Zeros(n)` lets it drive the same storage code as
/// the live server without allocating.
#[derive(Debug, Clone, Copy)]
pub enum DataRef<'a> {
    /// Actual content.
    Bytes(&'a [u8]),
    /// `n` zero bytes (size-only simulation).
    Zeros(u64),
}

impl DataRef<'_> {
    /// Length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            DataRef::Bytes(b) => b.len() as u64,
            DataRef::Zeros(n) => *n,
        }
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes the content (zero-filled for [`DataRef::Zeros`]).
    pub fn to_vec(&self) -> Vec<u8> {
        match self {
            DataRef::Bytes(b) => b.to_vec(),
            DataRef::Zeros(n) => vec![0u8; *n as usize],
        }
    }
}

impl<'a> From<&'a [u8]> for DataRef<'a> {
    fn from(b: &'a [u8]) -> DataRef<'a> {
        DataRef::Bytes(b)
    }
}

/// A minimal byte-oriented file system.
///
/// Paths are plain `/`-separated strings relative to the backend root;
/// intermediate directories are implicit (created on demand by
/// implementations that have real directories).
pub trait Backend {
    /// Creates an empty file.
    ///
    /// # Errors
    ///
    /// [`crate::StoreError::AlreadyExists`] if the path is taken.
    fn create(&mut self, path: &str) -> StoreResult<()>;

    /// Appends to a file, creating it if needed. Returns the offset at
    /// which the data landed.
    fn append(&mut self, path: &str, data: DataRef<'_>) -> StoreResult<u64>;

    /// Reads `len` bytes at `offset`.
    ///
    /// # Errors
    ///
    /// [`crate::StoreError::NotFound`] for a missing file;
    /// [`crate::StoreError::OutOfRange`] if the range exceeds the file.
    fn read_at(&mut self, path: &str, offset: u64, len: u64) -> StoreResult<Vec<u8>>;

    /// Current length of a file.
    fn len(&mut self, path: &str) -> StoreResult<u64>;

    /// Creates a hard link `dst` to existing file `src`.
    fn link(&mut self, src: &str, dst: &str) -> StoreResult<()>;

    /// Removes a path (content survives under other hard links).
    fn remove(&mut self, path: &str) -> StoreResult<()>;

    /// Shrinks a file to exactly `len` bytes (crash recovery: a torn
    /// trailing record is cut off so the file ends on a frame boundary).
    ///
    /// # Errors
    ///
    /// [`crate::StoreError::NotFound`] for a missing file;
    /// [`crate::StoreError::OutOfRange`] if `len` exceeds the current
    /// length — truncation never grows a file.
    fn truncate(&mut self, path: &str, len: u64) -> StoreResult<()>;

    /// Whether a path exists.
    fn exists(&mut self, path: &str) -> bool;

    /// Lists existing paths that start with `prefix`, sorted.
    fn list(&mut self, prefix: &str) -> StoreResult<Vec<String>>;

    /// Replaces a file's content wholesale (used by mbox deletion, which
    /// rewrites the mailbox). Creates the file if missing.
    fn replace(&mut self, path: &str, data: DataRef<'_>) -> StoreResult<()> {
        let _ = self.remove(path);
        self.append(path, data)?;
        Ok(())
    }

    /// Appends a framed record (`header` immediately followed by `body`)
    /// as one logical write — what a delivery agent does with `writev`.
    /// Returns the offset of the header.
    fn append_record(&mut self, path: &str, header: &[u8], body: DataRef<'_>) -> StoreResult<u64> {
        let off = self.append(path, DataRef::Bytes(header))?;
        self.append(path, body)?;
        Ok(off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataref_lengths() {
        assert_eq!(DataRef::Bytes(b"abc").len(), 3);
        assert_eq!(DataRef::Zeros(10).len(), 10);
        assert!(DataRef::Bytes(b"").is_empty());
        assert!(!DataRef::Zeros(1).is_empty());
    }

    #[test]
    fn dataref_materializes() {
        assert_eq!(DataRef::Bytes(b"xy").to_vec(), b"xy".to_vec());
        assert_eq!(DataRef::Zeros(3).to_vec(), vec![0, 0, 0]);
    }

    #[test]
    fn dataref_from_slice() {
        let d: DataRef<'_> = b"hello"[..].into();
        assert_eq!(d.len(), 5);
    }
}
