//! Mailbox storage engine: MFS (the paper's single-copy, record-oriented
//! mail file system, §6) plus the three baseline layouts it is evaluated
//! against, all running over pluggable byte-oriented backends.
//!
//! # Layers
//!
//! * **Backends** ([`Backend`]): [`MemFs`] (in-memory, hard links,
//!   optional size-only mode), [`RealDir`] (`std::fs`), and [`Metered`]
//!   (cost/operation accounting under a [`DiskProfile`] — the Ext3/Reiser
//!   models behind Figs. 10/11).
//! * **Layouts** ([`MailStore`]): [`MboxStore`] (vanilla postfix),
//!   [`MaildirStore`], [`HardlinkStore`], and [`MfsStore`].
//! * **Paper API**: [`MfsStore::mail_open`] / [`MfsStore::mail_seek`] /
//!   [`MailFile`] — the §6.2 handle interface.
//!
//! # Example
//!
//! ```
//! use spamaware_mfs::{DiskProfile, MailId, MailStore, MemFs, Metered, MfsStore, MboxStore};
//! use spamaware_mfs::DataRef;
//!
//! // Same 15-recipient spam, two layouts, Ext3 cost model. The first
//! // delivery warms up the per-mailbox files; the second measures
//! // steady-state cost.
//! let boxes: Vec<String> = (0..15).map(|i| format!("user{i}")).collect();
//! let names: Vec<&str> = boxes.iter().map(String::as_str).collect();
//!
//! let mut mfs = MfsStore::new(Metered::new(MemFs::size_only(), DiskProfile::ext3()));
//! mfs.deliver(MailId(1), &names, DataRef::Zeros(4096))?;
//! mfs.backend_mut().reset_accounting();
//! mfs.deliver(MailId(2), &names, DataRef::Zeros(4096))?;
//! let mfs_cost = mfs.backend_mut().take_cost();
//!
//! let mut mbox = MboxStore::new(Metered::new(MemFs::size_only(), DiskProfile::ext3()));
//! mbox.deliver(MailId(1), &names, DataRef::Zeros(4096))?;
//! mbox.backend_mut().reset_accounting();
//! mbox.deliver(MailId(2), &names, DataRef::Zeros(4096))?;
//! let mbox_cost = mbox.backend_mut().take_cost();
//!
//! // The single-copy write is cheaper: that gap is Fig. 10's MFS gain.
//! assert!(mfs_cost < mbox_cost);
//! # Ok::<(), spamaware_mfs::StoreError>(())
//! ```

mod backend;
mod crash;
mod error;
mod faulty;
mod frame;
mod fsck;
mod handle;
mod id;
mod maildir;
mod mbox;
mod memfs;
mod mfs_store;
mod profile;
mod realdir;
mod sharded;
mod store;

pub use backend::{Backend, DataRef};
pub use crash::{CrashBackend, CrashPoint};
pub use error::{StoreError, StoreResult};
pub use faulty::{FaultPlan, FaultyBackend};
pub use fsck::{fsck, FsckReport};
pub use handle::{MailFile, Whence};
pub use id::{MailId, MailIdAllocator};
pub use maildir::{HardlinkStore, MaildirStore};
pub use mbox::MboxStore;
pub use memfs::MemFs;
pub use mfs_store::{MfsStats, MfsStore};
pub use profile::{DiskProfile, Metered, OpCounts};
pub use realdir::RealDir;
pub use sharded::{ShardedStore, SyncBackend};
pub use store::{MailStore, StoredMail};

/// The storage layouts compared in Figs. 10/11, as a value for sweeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Layout {
    /// Vanilla postfix: one mbox file per mailbox.
    Mbox,
    /// One file per mail per mailbox.
    Maildir,
    /// Maildir with hard-linked duplicate bodies.
    Hardlink,
    /// The paper's single-copy mail file system.
    Mfs,
}

impl Layout {
    /// All four layouts in the paper's presentation order.
    pub const ALL: [Layout; 4] = [Layout::Mfs, Layout::Mbox, Layout::Maildir, Layout::Hardlink];

    /// Builds a boxed store of this layout over the given backend.
    pub fn build<B: Backend + 'static>(self, backend: B) -> Box<dyn MailStore> {
        match self {
            Layout::Mbox => Box::new(MboxStore::new(backend)),
            Layout::Maildir => Box::new(MaildirStore::new(backend)),
            Layout::Hardlink => Box::new(HardlinkStore::new(backend)),
            Layout::Mfs => Box::new(MfsStore::new(backend)),
        }
    }

    /// The paper's name for the layout (figure legends).
    pub fn paper_name(self) -> &'static str {
        match self {
            Layout::Mbox => "Postfix",
            Layout::Maildir => "maildir",
            Layout::Hardlink => "hard-link",
            Layout::Mfs => "MFS",
        }
    }
}

impl std::fmt::Display for Layout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.paper_name())
    }
}

#[cfg(test)]
mod layout_tests {
    use super::*;

    #[test]
    fn all_layouts_deliver_and_read_back() {
        for layout in Layout::ALL {
            let mut store = layout.build(MemFs::new());
            store
                .deliver(MailId(1), &["a", "b"], DataRef::Bytes(b"hello"))
                .unwrap();
            for mb in ["a", "b"] {
                let mails = store.read_mailbox(mb).unwrap();
                assert_eq!(mails.len(), 1, "{layout}");
                assert_eq!(mails[0].body, b"hello", "{layout}");
            }
        }
    }

    #[test]
    fn names_match_paper_legends() {
        assert_eq!(Layout::Mbox.to_string(), "Postfix");
        assert_eq!(Layout::Mfs.to_string(), "MFS");
        assert_eq!(Layout::Maildir.to_string(), "maildir");
        assert_eq!(Layout::Hardlink.to_string(), "hard-link");
    }
}
