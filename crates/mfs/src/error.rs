//! Storage errors.

use std::fmt;

/// Errors returned by storage backends and mail stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The named file or mailbox does not exist.
    NotFound(String),
    /// A file that must not exist already does.
    AlreadyExists(String),
    /// A `mail_nwrite` presented a mail-id that is already bound to
    /// different content — the random-guessing attack of paper §6.4.
    MailIdCollision(String),
    /// A stored record failed to decode.
    CorruptRecord(String),
    /// An offset/length fell outside the file.
    OutOfRange(String),
    /// A fixed-width record field could not be read (short buffer).
    TruncatedField(String),
    /// An underlying I/O failure (real-filesystem backend).
    Io(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound(p) => write!(f, "no such file or mailbox: {p}"),
            StoreError::AlreadyExists(p) => write!(f, "file already exists: {p}"),
            StoreError::MailIdCollision(id) => {
                write!(f, "mail-id collision rejected as attack: {id}")
            }
            StoreError::CorruptRecord(d) => write!(f, "corrupt stored record: {d}"),
            StoreError::OutOfRange(d) => write!(f, "access out of range: {d}"),
            StoreError::TruncatedField(d) => write!(f, "truncated record field: {d}"),
            StoreError::Io(e) => write!(f, "storage i/o error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        if e.kind() == std::io::ErrorKind::NotFound {
            StoreError::NotFound(e.to_string())
        } else {
            StoreError::Io(e.to_string())
        }
    }
}

/// Result alias for storage operations.
pub type StoreResult<T> = Result<T, StoreError>;

/// Reads an `N`-byte big-endian field out of a record buffer, turning a
/// short buffer into a typed [`StoreError::TruncatedField`] instead of a
/// panic — decode paths may face hostile or corrupt bytes.
pub(crate) fn be_array<const N: usize>(
    b: &[u8],
    at: usize,
    path: &str,
) -> Result<[u8; N], StoreError> {
    b.get(at..at + N)
        .and_then(|s| <[u8; N]>::try_from(s).ok())
        .ok_or_else(|| StoreError::TruncatedField(format!("{path}: {N}-byte field at offset {at}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let cases: Vec<(StoreError, &str)> = vec![
            (StoreError::NotFound("a".into()), "no such file"),
            (StoreError::AlreadyExists("b".into()), "already exists"),
            (StoreError::MailIdCollision("c".into()), "collision"),
            (StoreError::CorruptRecord("d".into()), "corrupt"),
            (StoreError::OutOfRange("e".into()), "out of range"),
            (StoreError::Io("f".into()), "i/o error"),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }

    #[test]
    fn io_error_conversion_maps_not_found() {
        let nf = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        assert!(matches!(StoreError::from(nf), StoreError::NotFound(_)));
        let other = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied");
        assert!(matches!(StoreError::from(other), StoreError::Io(_)));
    }
}
