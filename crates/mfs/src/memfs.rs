//! In-memory backend with hard-link support.

use crate::{Backend, DataRef, StoreError, StoreResult};
use std::collections::HashMap;

#[derive(Debug, Default, Clone)]
struct Inode {
    data: Vec<u8>,
    len: u64,
    nlink: u32,
}

/// An in-memory file system with hard links.
///
/// With `retain_content` off, only file lengths are tracked (reads return
/// zeros) — the mode used by the simulation, where bodies are size-only.
///
/// `Clone` snapshots the whole file system (hard links preserved) — the
/// crash tests clone a post-crash image to repair it several independent
/// ways.
///
/// # Example
///
/// ```
/// use spamaware_mfs::{Backend, DataRef, MemFs};
/// let mut fs = MemFs::new();
/// let off = fs.append("box/a", DataRef::Bytes(b"hello"))?;
/// assert_eq!(off, 0);
/// assert_eq!(fs.read_at("box/a", 1, 3)?, b"ell");
/// # Ok::<(), spamaware_mfs::StoreError>(())
/// ```
#[derive(Debug, Default, Clone)]
pub struct MemFs {
    paths: HashMap<String, usize>,
    inodes: Vec<Inode>,
    retain: bool,
}

impl MemFs {
    /// Creates an empty in-memory file system that retains content.
    pub fn new() -> MemFs {
        MemFs {
            paths: HashMap::new(),
            inodes: Vec::new(),
            retain: true,
        }
    }

    /// Creates a size-only file system: lengths are tracked, content is
    /// discarded, reads return zeros. Used by cost simulations to avoid
    /// materializing gigabytes of message bodies.
    pub fn size_only() -> MemFs {
        MemFs {
            retain: false,
            ..MemFs::new()
        }
    }

    /// Number of live paths.
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }

    /// Number of live inodes (hard-linked paths share one).
    pub fn inode_count(&self) -> usize {
        self.inodes.iter().filter(|i| i.nlink > 0).count()
    }

    /// Total bytes across live inodes (each counted once regardless of
    /// link count) — the "disk space" statistic.
    pub fn total_bytes(&self) -> u64 {
        self.inodes
            .iter()
            .filter(|i| i.nlink > 0)
            .map(|i| i.len)
            .sum()
    }

    fn inode_of(&mut self, path: &str) -> StoreResult<usize> {
        self.paths
            .get(path)
            .copied()
            .ok_or_else(|| StoreError::NotFound(path.to_owned()))
    }

    fn create_inode(&mut self) -> usize {
        self.inodes.push(Inode {
            nlink: 1,
            ..Inode::default()
        });
        self.inodes.len() - 1
    }
}

impl Backend for MemFs {
    fn create(&mut self, path: &str) -> StoreResult<()> {
        if self.paths.contains_key(path) {
            return Err(StoreError::AlreadyExists(path.to_owned()));
        }
        let ino = self.create_inode();
        self.paths.insert(path.to_owned(), ino);
        Ok(())
    }

    fn append(&mut self, path: &str, data: DataRef<'_>) -> StoreResult<u64> {
        let ino = match self.paths.get(path) {
            Some(&i) => i,
            None => {
                let i = self.create_inode();
                self.paths.insert(path.to_owned(), i);
                i
            }
        };
        let inode = &mut self.inodes[ino];
        let offset = inode.len;
        inode.len += data.len();
        if self.retain {
            match data {
                DataRef::Bytes(b) => inode.data.extend_from_slice(b),
                DataRef::Zeros(n) => inode.data.resize(inode.data.len() + n as usize, 0),
            }
        }
        Ok(offset)
    }

    fn read_at(&mut self, path: &str, offset: u64, len: u64) -> StoreResult<Vec<u8>> {
        let ino = self.inode_of(path)?;
        let inode = &self.inodes[ino];
        if offset + len > inode.len {
            return Err(StoreError::OutOfRange(format!(
                "{path}: {offset}+{len} > {}",
                inode.len
            )));
        }
        if self.retain {
            Ok(inode.data[offset as usize..(offset + len) as usize].to_vec())
        } else {
            Ok(vec![0u8; len as usize])
        }
    }

    fn len(&mut self, path: &str) -> StoreResult<u64> {
        let ino = self.inode_of(path)?;
        Ok(self.inodes[ino].len)
    }

    fn link(&mut self, src: &str, dst: &str) -> StoreResult<()> {
        if self.paths.contains_key(dst) {
            return Err(StoreError::AlreadyExists(dst.to_owned()));
        }
        let ino = self.inode_of(src)?;
        self.inodes[ino].nlink += 1;
        self.paths.insert(dst.to_owned(), ino);
        Ok(())
    }

    fn remove(&mut self, path: &str) -> StoreResult<()> {
        let ino = self
            .paths
            .remove(path)
            .ok_or_else(|| StoreError::NotFound(path.to_owned()))?;
        let inode = &mut self.inodes[ino];
        inode.nlink -= 1;
        if inode.nlink == 0 {
            inode.data = Vec::new();
            inode.len = 0;
        }
        Ok(())
    }

    fn truncate(&mut self, path: &str, len: u64) -> StoreResult<()> {
        let ino = self.inode_of(path)?;
        let inode = &mut self.inodes[ino];
        if len > inode.len {
            return Err(StoreError::OutOfRange(format!(
                "{path}: truncate to {len} > {}",
                inode.len
            )));
        }
        inode.len = len;
        if self.retain {
            inode.data.truncate(len as usize);
        }
        Ok(())
    }

    fn exists(&mut self, path: &str) -> bool {
        self.paths.contains_key(path)
    }

    fn list(&mut self, prefix: &str) -> StoreResult<Vec<String>> {
        let mut out: Vec<String> = self
            .paths
            .keys()
            .filter(|p| p.starts_with(prefix))
            .cloned()
            .collect();
        out.sort_unstable();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_then_append_reads_back() -> Result<(), Box<dyn std::error::Error>> {
        let mut fs = MemFs::new();
        fs.create("f")?;
        assert_eq!(fs.append("f", DataRef::Bytes(b"ab"))?, 0);
        assert_eq!(fs.append("f", DataRef::Bytes(b"cd"))?, 2);
        assert_eq!(fs.read_at("f", 0, 4)?, b"abcd");
        assert_eq!(fs.len("f")?, 4);
        Ok(())
    }

    #[test]
    fn append_creates_implicitly() -> Result<(), Box<dyn std::error::Error>> {
        let mut fs = MemFs::new();
        fs.append("implicit", DataRef::Bytes(b"x"))?;
        assert!(fs.exists("implicit"));
        Ok(())
    }

    #[test]
    fn create_rejects_duplicates() -> Result<(), Box<dyn std::error::Error>> {
        let mut fs = MemFs::new();
        fs.create("f")?;
        assert!(matches!(fs.create("f"), Err(StoreError::AlreadyExists(_))));
        Ok(())
    }

    #[test]
    fn read_bounds_checked() -> Result<(), Box<dyn std::error::Error>> {
        let mut fs = MemFs::new();
        fs.append("f", DataRef::Bytes(b"abc"))?;
        assert!(matches!(
            fs.read_at("f", 1, 3),
            Err(StoreError::OutOfRange(_))
        ));
        assert!(matches!(
            fs.read_at("missing", 0, 1),
            Err(StoreError::NotFound(_))
        ));
        Ok(())
    }

    #[test]
    fn hard_links_share_content() -> Result<(), Box<dyn std::error::Error>> {
        let mut fs = MemFs::new();
        fs.append("a", DataRef::Bytes(b"shared"))?;
        fs.link("a", "b")?;
        assert_eq!(fs.read_at("b", 0, 6)?, b"shared");
        assert_eq!(fs.inode_count(), 1);
        assert_eq!(fs.path_count(), 2);
        // Appending through one name is visible through the other.
        fs.append("b", DataRef::Bytes(b"!"))?;
        assert_eq!(fs.len("a")?, 7);
        Ok(())
    }

    #[test]
    fn remove_honours_link_counts() -> Result<(), Box<dyn std::error::Error>> {
        let mut fs = MemFs::new();
        fs.append("a", DataRef::Bytes(b"x"))?;
        fs.link("a", "b")?;
        fs.remove("a")?;
        assert!(!fs.exists("a"));
        assert_eq!(fs.read_at("b", 0, 1)?, b"x");
        fs.remove("b")?;
        assert_eq!(fs.inode_count(), 0);
        assert_eq!(fs.total_bytes(), 0);
        Ok(())
    }

    #[test]
    fn link_to_taken_name_fails() -> Result<(), Box<dyn std::error::Error>> {
        let mut fs = MemFs::new();
        fs.append("a", DataRef::Bytes(b"x"))?;
        fs.append("b", DataRef::Bytes(b"y"))?;
        assert!(matches!(
            fs.link("a", "b"),
            Err(StoreError::AlreadyExists(_))
        ));
        Ok(())
    }

    #[test]
    fn size_only_mode_tracks_lengths_not_bytes() -> Result<(), Box<dyn std::error::Error>> {
        let mut fs = MemFs::size_only();
        fs.append("f", DataRef::Zeros(1 << 20))?;
        assert_eq!(fs.len("f")?, 1 << 20);
        assert_eq!(fs.read_at("f", 0, 4)?, vec![0; 4]);
        assert_eq!(fs.total_bytes(), 1 << 20);
        Ok(())
    }

    #[test]
    fn total_bytes_counts_linked_inode_once() -> Result<(), Box<dyn std::error::Error>> {
        let mut fs = MemFs::new();
        fs.append("a", DataRef::Bytes(b"12345"))?;
        fs.link("a", "b")?;
        assert_eq!(fs.total_bytes(), 5);
        Ok(())
    }
}
