//! Server-assigned mail identifiers.

use std::fmt;
use std::str::FromStr;

/// A mail id assigned by the MTA when the mail is received (RFC 822
/// message-id analog; paper §6.1: "every mail has its unique ID labeled by
/// the MTA ... which can conveniently serve as the unique index key").
///
/// Rendered as a 12-hex-digit queue id, postfix style. The id is trusted
/// only because *this server* generated it — client-supplied ids are never
/// used as index keys (paper footnote 3).
///
/// # Example
///
/// ```
/// use spamaware_mfs::MailId;
/// let id = MailId(0xA1B2C3);
/// assert_eq!(id.to_string(), "0000A1B2C3");
/// assert_eq!("0000A1B2C3".parse::<MailId>()?, id);
/// # Ok::<(), std::num::ParseIntError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MailId(pub u64);

impl MailId {
    /// The id as its raw integer.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for MailId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:010X}", self.0)
    }
}

impl FromStr for MailId {
    type Err = std::num::ParseIntError;

    fn from_str(s: &str) -> Result<MailId, Self::Err> {
        u64::from_str_radix(s, 16).map(MailId)
    }
}

/// A monotonically increasing [`MailId`] allocator.
#[derive(Debug, Default, Clone)]
pub struct MailIdAllocator {
    next: u64,
}

impl MailIdAllocator {
    /// Creates an allocator starting at 1.
    pub fn new() -> MailIdAllocator {
        MailIdAllocator { next: 1 }
    }

    /// Allocates the next id.
    pub fn allocate(&mut self) -> MailId {
        let id = MailId(self.next);
        self.next += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_roundtrip() {
        for raw in [0u64, 1, 0xDEADBEEF, u64::MAX >> 24] {
            let id = MailId(raw);
            let back: MailId = id.to_string().parse().unwrap();
            assert_eq!(back, id);
        }
    }

    #[test]
    fn allocator_is_monotone_and_unique() {
        let mut a = MailIdAllocator::new();
        let ids: Vec<MailId> = (0..100).map(|_| a.allocate()).collect();
        for w in ids.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
