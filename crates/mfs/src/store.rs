//! The mailbox-layout abstraction: every storage scheme compared in
//! Figs. 10/11 implements [`MailStore`].

use crate::backend::DataRef;
use crate::{MailId, StoreResult};

/// A mail retrieved from a mailbox.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredMail {
    /// The server-assigned mail id.
    pub id: MailId,
    /// The message content (zero-filled under size-only backends).
    pub body: Vec<u8>,
}

/// A mailbox storage layout.
///
/// The four implementations mirror the paper's §6.3 comparison:
///
/// | Layout | Paper name | Duplicate disk I/O for an `n`-recipient mail |
/// |---|---|---|
/// | [`crate::MboxStore`] | "Postfix" (one file per mailbox) | body written `n` times |
/// | [`crate::MaildirStore`] | "maildir" | `n` file creations + `n` body writes |
/// | [`crate::HardlinkStore`] | "hard-link" | 1 creation + 1 body write + `n-1` links |
/// | [`crate::MfsStore`] | "MFS" | 1 body write + `n` tiny key-tuple appends |
pub trait MailStore {
    /// Delivers one mail to all `mailboxes` atomically (w.r.t. this store).
    ///
    /// # Errors
    ///
    /// Layout-specific; [`crate::StoreError::MailIdCollision`] when a
    /// mail-id is reused with different content (MFS attack defence, §6.4).
    fn deliver(&mut self, id: MailId, mailboxes: &[&str], body: DataRef<'_>) -> StoreResult<()>;

    /// Reads every live mail in a mailbox, in delivery order.
    fn read_mailbox(&mut self, mailbox: &str) -> StoreResult<Vec<StoredMail>>;

    /// Deletes one mail from one mailbox. Other recipients' copies (or
    /// shared references) survive.
    fn delete(&mut self, mailbox: &str, id: MailId) -> StoreResult<()>;

    /// Human-readable layout name (for reports).
    fn layout_name(&self) -> &'static str;
}
