//! The maildir layout (one file per mail per mailbox) and its hard-link
//! optimization.

use crate::backend::DataRef;
use crate::{Backend, MailId, MailStore, StoreError, StoreResult, StoredMail};

fn mail_path(mailbox: &str, id: MailId) -> String {
    format!("maildir/{mailbox}/{id}")
}

fn mailbox_prefix(mailbox: &str) -> String {
    format!("maildir/{mailbox}/")
}

fn id_from_path(path: &str) -> StoreResult<MailId> {
    let name = path.rsplit('/').next().unwrap_or("");
    name.parse()
        .map_err(|_| StoreError::CorruptRecord(format!("bad maildir filename: {path}")))
}

/// Plain maildir: every delivery creates a fresh file.
///
/// On a file system where small-file creation is expensive (Ext3-journal),
/// this is the slowest layout in Fig. 10 by a wide margin.
#[derive(Debug)]
pub struct MaildirStore<B> {
    backend: B,
}

impl<B: Backend> MaildirStore<B> {
    /// Creates the store over a backend.
    pub fn new(backend: B) -> MaildirStore<B> {
        MaildirStore { backend }
    }

    /// The underlying backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the underlying backend.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }
}

impl<B: Backend> MailStore for MaildirStore<B> {
    fn deliver(&mut self, id: MailId, mailboxes: &[&str], body: DataRef<'_>) -> StoreResult<()> {
        for mb in mailboxes {
            let path = mail_path(mb, id);
            self.backend.create(&path)?;
            self.backend.append(&path, body)?;
        }
        Ok(())
    }

    fn read_mailbox(&mut self, mailbox: &str) -> StoreResult<Vec<StoredMail>> {
        read_dir_mailbox(&mut self.backend, mailbox)
    }

    fn delete(&mut self, mailbox: &str, id: MailId) -> StoreResult<()> {
        self.backend.remove(&mail_path(mailbox, id))
    }

    fn layout_name(&self) -> &'static str {
        "maildir"
    }
}

/// Maildir with single-instance bodies: the first recipient gets the file,
/// every further recipient gets a hard link to it (the paper's "hard-link"
/// variant).
#[derive(Debug)]
pub struct HardlinkStore<B> {
    backend: B,
}

impl<B: Backend> HardlinkStore<B> {
    /// Creates the store over a backend.
    pub fn new(backend: B) -> HardlinkStore<B> {
        HardlinkStore { backend }
    }

    /// The underlying backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the underlying backend.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }
}

impl<B: Backend> MailStore for HardlinkStore<B> {
    fn deliver(&mut self, id: MailId, mailboxes: &[&str], body: DataRef<'_>) -> StoreResult<()> {
        let Some((first, rest)) = mailboxes.split_first() else {
            return Ok(());
        };
        let first_path = mail_path(first, id);
        self.backend.create(&first_path)?;
        self.backend.append(&first_path, body)?;
        for mb in rest {
            self.backend.link(&first_path, &mail_path(mb, id))?;
        }
        Ok(())
    }

    fn read_mailbox(&mut self, mailbox: &str) -> StoreResult<Vec<StoredMail>> {
        read_dir_mailbox(&mut self.backend, mailbox)
    }

    fn delete(&mut self, mailbox: &str, id: MailId) -> StoreResult<()> {
        // Removing one link leaves the other recipients' copies intact;
        // the inode is freed by the backend when the last link goes.
        self.backend.remove(&mail_path(mailbox, id))
    }

    fn layout_name(&self) -> &'static str {
        "hard-link"
    }
}

fn read_dir_mailbox<B: Backend>(backend: &mut B, mailbox: &str) -> StoreResult<Vec<StoredMail>> {
    let mut out = Vec::new();
    let mut entries: Vec<(MailId, String)> = Vec::new();
    for path in backend.list(&mailbox_prefix(mailbox))? {
        entries.push((id_from_path(&path)?, path));
    }
    // Maildir file names sort lexically; ids are monotone, so sort by id
    // to recover delivery order.
    entries.sort_by_key(|(id, _)| *id);
    for (id, path) in entries {
        let len = backend.len(&path)?;
        let body = backend.read_at(&path, 0, len)?;
        out.push(StoredMail { id, body });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemFs;

    #[test]
    fn maildir_creates_file_per_recipient() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = MaildirStore::new(MemFs::new());
        s.deliver(MailId(1), &["a", "b"], DataRef::Bytes(b"body"))?;
        assert_eq!(s.backend().inode_count(), 2);
        assert_eq!(s.backend().total_bytes(), 8);
        assert_eq!(s.read_mailbox("a")?[0].body, b"body");
        Ok(())
    }

    #[test]
    fn hardlink_shares_one_inode() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = HardlinkStore::new(MemFs::new());
        s.deliver(MailId(1), &["a", "b", "c"], DataRef::Bytes(b"body"))?;
        // One inode, three names: single-instance storage.
        assert_eq!(s.backend().inode_count(), 1);
        assert_eq!(s.backend().total_bytes(), 4);
        for mb in ["a", "b", "c"] {
            assert_eq!(s.read_mailbox(mb)?[0].body, b"body");
        }
        Ok(())
    }

    #[test]
    fn hardlink_delete_preserves_other_recipients() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = HardlinkStore::new(MemFs::new());
        s.deliver(MailId(1), &["a", "b"], DataRef::Bytes(b"x"))?;
        s.delete("a", MailId(1))?;
        assert!(s.read_mailbox("a")?.is_empty());
        assert_eq!(s.read_mailbox("b")?.len(), 1);
        // Deleting the last link frees the inode.
        s.delete("b", MailId(1))?;
        assert_eq!(s.backend().inode_count(), 0);
        Ok(())
    }

    #[test]
    fn maildir_read_order_follows_ids() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = MaildirStore::new(MemFs::new());
        // Deliver out of id order: read-back must sort by id.
        for raw in [3u64, 1, 2] {
            s.deliver(MailId(raw), &["inbox"], DataRef::Bytes(&[raw as u8]))?;
        }
        let ids: Vec<u64> = s.read_mailbox("inbox")?.iter().map(|m| m.id.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        Ok(())
    }

    #[test]
    fn duplicate_delivery_is_rejected() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = MaildirStore::new(MemFs::new());
        s.deliver(MailId(1), &["a"], DataRef::Bytes(b"x"))?;
        assert!(matches!(
            s.deliver(MailId(1), &["a"], DataRef::Bytes(b"x")),
            Err(StoreError::AlreadyExists(_))
        ));
        Ok(())
    }

    #[test]
    fn hardlink_empty_recipient_list_is_noop() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = HardlinkStore::new(MemFs::new());
        s.deliver(MailId(1), &[], DataRef::Bytes(b"x"))?;
        assert_eq!(s.backend().inode_count(), 0);
        Ok(())
    }

    #[test]
    fn delete_missing_errors() {
        let mut s = MaildirStore::new(MemFs::new());
        assert!(matches!(
            s.delete("inbox", MailId(5)),
            Err(StoreError::NotFound(_))
        ));
    }
}
