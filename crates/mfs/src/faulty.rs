//! Fault injection: a backend wrapper that fails on command, for testing
//! the error paths of every layout.

use crate::{Backend, DataRef, StoreError, StoreResult};

/// Which backend operations to fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Fail after this many more successful operations (None = no arming).
    pub fail_after: Option<u64>,
    /// Fail every write-side operation (create/append/link/remove).
    pub fail_writes: bool,
    /// Fail every read-side operation (read_at/len/list).
    pub fail_reads: bool,
}

/// A [`Backend`] wrapper that injects [`StoreError::Io`] failures.
///
/// # Example
///
/// ```
/// use spamaware_mfs::{Backend, DataRef, FaultyBackend, MemFs};
/// let mut fs = FaultyBackend::new(MemFs::new());
/// fs.append("f", DataRef::Bytes(b"ok"))?;
/// fs.plan_mut().fail_writes = true;
/// assert!(fs.append("f", DataRef::Bytes(b"boom")).is_err());
/// # Ok::<(), spamaware_mfs::StoreError>(())
/// ```
#[derive(Debug)]
pub struct FaultyBackend<B> {
    inner: B,
    plan: FaultPlan,
    ops: u64,
}

impl<B: Backend> FaultyBackend<B> {
    /// Wraps a backend with no faults armed.
    pub fn new(inner: B) -> FaultyBackend<B> {
        FaultyBackend {
            inner,
            plan: FaultPlan::default(),
            ops: 0,
        }
    }

    /// The current fault plan.
    pub fn plan_mut(&mut self) -> &mut FaultPlan {
        &mut self.plan
    }

    /// Total operations attempted (successful or failed).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Unwraps the inner backend.
    pub fn into_inner(self) -> B {
        self.inner
    }

    fn gate(&mut self, is_write: bool) -> StoreResult<()> {
        self.ops += 1;
        if let Some(n) = self.plan.fail_after {
            if n == 0 {
                return Err(StoreError::Io("injected fault (countdown)".to_owned()));
            }
            self.plan.fail_after = Some(n - 1);
        }
        if is_write && self.plan.fail_writes {
            return Err(StoreError::Io("injected write fault".to_owned()));
        }
        if !is_write && self.plan.fail_reads {
            return Err(StoreError::Io("injected read fault".to_owned()));
        }
        Ok(())
    }
}

impl<B: Backend> Backend for FaultyBackend<B> {
    fn create(&mut self, path: &str) -> StoreResult<()> {
        self.gate(true)?;
        self.inner.create(path)
    }

    fn append(&mut self, path: &str, data: DataRef<'_>) -> StoreResult<u64> {
        self.gate(true)?;
        self.inner.append(path, data)
    }

    fn read_at(&mut self, path: &str, offset: u64, len: u64) -> StoreResult<Vec<u8>> {
        self.gate(false)?;
        self.inner.read_at(path, offset, len)
    }

    fn len(&mut self, path: &str) -> StoreResult<u64> {
        self.gate(false)?;
        self.inner.len(path)
    }

    fn link(&mut self, src: &str, dst: &str) -> StoreResult<()> {
        self.gate(true)?;
        self.inner.link(src, dst)
    }

    fn remove(&mut self, path: &str) -> StoreResult<()> {
        self.gate(true)?;
        self.inner.remove(path)
    }

    fn truncate(&mut self, path: &str, len: u64) -> StoreResult<()> {
        self.gate(true)?;
        self.inner.truncate(path, len)
    }

    fn exists(&mut self, path: &str) -> bool {
        self.inner.exists(path)
    }

    fn list(&mut self, prefix: &str) -> StoreResult<Vec<String>> {
        self.gate(false)?;
        self.inner.list(prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Layout, MailId, MailStore, MemFs, MfsStore};

    #[test]
    fn countdown_fault_fires_once_armed() {
        let mut fs = FaultyBackend::new(MemFs::new());
        fs.plan_mut().fail_after = Some(2);
        assert!(fs.append("a", DataRef::Bytes(b"1")).is_ok());
        assert!(fs.append("a", DataRef::Bytes(b"2")).is_ok());
        assert!(fs.append("a", DataRef::Bytes(b"3")).is_err());
        assert!(fs.append("a", DataRef::Bytes(b"4")).is_err());
    }

    #[test]
    fn all_layouts_surface_write_faults() {
        for layout in Layout::ALL {
            let mut fs = FaultyBackend::new(MemFs::new());
            fs.plan_mut().fail_writes = true;
            let mut store = layout.build(fs);
            let err = store
                .deliver(MailId(1), &["a", "b"], DataRef::Bytes(b"x"))
                .unwrap_err();
            assert!(matches!(err, StoreError::Io(_)), "{layout}: {err}");
        }
    }

    #[test]
    fn all_layouts_surface_read_faults() -> Result<(), Box<dyn std::error::Error>> {
        for layout in Layout::ALL {
            let mut store = layout.build({
                let mut fs = FaultyBackend::new(MemFs::new());
                fs.plan_mut().fail_reads = false;
                fs
            });
            store.deliver(MailId(1), &["a"], DataRef::Bytes(b"x"))?;
            // No direct plan access after boxing: deliver a read fault by
            // rebuilding instead. Covered per-layout below for MFS.
            let _ = store.read_mailbox("a")?;
        }
        // Focused read-fault check on MFS (the layout with the most read
        // paths: key replay + shared data).
        let mut fs = FaultyBackend::new(MemFs::new());
        let mut store = MfsStore::new(fs);
        store.deliver(MailId(1), &["a", "b"], DataRef::Bytes(b"shared"))?;
        store.backend_mut().plan_mut().fail_reads = true;
        assert!(store.read_mailbox("a").is_err());
        fs = std::mem::replace(store.backend_mut(), FaultyBackend::new(MemFs::new()));
        let _ = fs;
        Ok(())
    }

    #[test]
    fn mfs_partial_write_failure_is_recoverable() -> Result<(), Box<dyn std::error::Error>> {
        // Fail midway through a multi-recipient delivery, then recover by
        // replaying the key files: the store must come back self-consistent
        // (some recipients may have the mail, none may be corrupt).
        let mut fs = FaultyBackend::new(MemFs::new());
        fs.plan_mut().fail_after = Some(4);
        let mut store = MfsStore::new(fs);
        let _ = store.deliver(MailId(1), &["a", "b", "c", "d"], DataRef::Bytes(b"mail"));
        let inner =
            std::mem::replace(store.backend_mut(), FaultyBackend::new(MemFs::new())).into_inner();
        let mut recovered = MfsStore::open(inner)?;
        // Every mailbox either has the complete mail or nothing.
        for mb in ["a", "b", "c", "d"] {
            let mails = recovered.read_mailbox(mb)?;
            assert!(mails.len() <= 1, "{mb}");
            if let Some(m) = mails.first() {
                assert_eq!(m.body, b"mail", "{mb}");
            }
        }
        Ok(())
    }

    #[test]
    fn replay_surfaces_read_faults() -> Result<(), Box<dyn std::error::Error>> {
        let mut store = MfsStore::new(MemFs::new());
        store.deliver(MailId(1), &["a"], DataRef::Bytes(b"x"))?;
        let inner = std::mem::replace(store.backend_mut(), MemFs::new());
        let mut faulty = FaultyBackend::new(inner);
        faulty.plan_mut().fail_reads = true;
        assert!(MfsStore::open(faulty).is_err());
        Ok(())
    }
}
