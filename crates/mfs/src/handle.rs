//! The paper-faithful MFS handle API (§6.2): `mail_open`, `mail_seek`,
//! `mail_nwrite`, `mail_read`, `mail_delete`, `mail_close`.
//!
//! The C API of the paper operates through `mail_file *` descriptors whose
//! seek pointer moves "at the granularity of a mail instead of a byte".
//! The Rust rendering keeps that shape: a [`MailFile`] is a cursor over a
//! mailbox, and all operations go through the owning [`MfsStore`].

use crate::backend::DataRef;
use crate::{Backend, MailId, MailStore, MfsStore, StoreError, StoreResult, StoredMail};

/// Where a [`MailFile`] seek offset is applied from (the paper's `whence`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Whence {
    /// From the first mail.
    Set,
    /// From the current position.
    Cur,
    /// From one past the last mail.
    End,
}

/// An open mailbox with a mail-granularity seek pointer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MailFile {
    mailbox: String,
    cursor: usize,
}

impl MailFile {
    /// The mailbox this handle reads.
    pub fn mailbox(&self) -> &str {
        &self.mailbox
    }

    /// Current position (0 = first mail).
    pub fn position(&self) -> usize {
        self.cursor
    }
}

impl<B: Backend> MfsStore<B> {
    /// Opens a mailbox, creating its key/data files if absent, with the
    /// seek pointer on the first mail (paper `mail_open`).
    pub fn mail_open(&mut self, mailbox: &str) -> StoreResult<MailFile> {
        // Creation is lazy (files appear on first write), matching the
        // paper's "if the file does not exist, the proper ... files are
        // created".
        if mailbox == "shmailbox" || mailbox.is_empty() || mailbox.contains('/') {
            return Err(StoreError::Io(format!("illegal mailbox name: {mailbox:?}")));
        }
        Ok(MailFile {
            mailbox: mailbox.to_owned(),
            cursor: 0,
        })
    }

    /// Moves the seek pointer by `offset` mails from `whence` (paper
    /// `mail_seek`).
    ///
    /// # Errors
    ///
    /// [`StoreError::OutOfRange`] if the target falls outside
    /// `0..=mail_count`.
    pub fn mail_seek(
        &mut self,
        file: &mut MailFile,
        offset: i64,
        whence: Whence,
    ) -> StoreResult<()> {
        let count = self.mail_count(&file.mailbox) as i64;
        let base = match whence {
            Whence::Set => 0,
            Whence::Cur => file.cursor as i64,
            Whence::End => count,
        };
        let target = base + offset;
        if !(0..=count).contains(&target) {
            return Err(StoreError::OutOfRange(format!(
                "seek to {target} in mailbox of {count} mails"
            )));
        }
        file.cursor = target as usize;
        Ok(())
    }

    /// Reads the mail under the seek pointer and advances it (paper
    /// `mail_read`). Returns `None` at end of mailbox.
    pub fn mail_read(&mut self, file: &mut MailFile) -> StoreResult<Option<StoredMail>> {
        let mails = self.read_mailbox(&file.mailbox)?;
        match mails.into_iter().nth(file.cursor) {
            Some(m) => {
                file.cursor += 1;
                Ok(Some(m))
            }
            None => Ok(None),
        }
    }

    /// Writes one mail to every open mailbox in `files` (paper
    /// `mail_nwrite`, whose C signature takes `mail_file **mfd, int nmfd`).
    ///
    /// # Errors
    ///
    /// See [`MfsStore::nwrite`].
    pub fn mail_nwrite(
        &mut self,
        files: &[&MailFile],
        id: MailId,
        body: DataRef<'_>,
    ) -> StoreResult<()> {
        let names: Vec<&str> = files.iter().map(|f| f.mailbox.as_str()).collect();
        self.nwrite(id, &names, body)
    }

    /// Deletes the mail under the seek pointer (paper `mail_delete`).
    /// Later mails shift down; the pointer stays put, now naming the next
    /// mail.
    ///
    /// # Errors
    ///
    /// [`StoreError::OutOfRange`] if the pointer is at end of mailbox.
    pub fn mail_delete(&mut self, file: &mut MailFile) -> StoreResult<()> {
        let mails = self.read_mailbox(&file.mailbox)?;
        let Some(target) = mails.get(file.cursor) else {
            return Err(StoreError::OutOfRange(format!(
                "delete at {} in mailbox of {} mails",
                file.cursor,
                mails.len()
            )));
        };
        let id = target.id;
        self.delete(&file.mailbox, id)
    }

    /// Closes the handle (paper `mail_close`). State is flushed on every
    /// operation, so this is a consuming no-op kept for API parity.
    pub fn mail_close(&mut self, file: MailFile) {
        drop(file);
    }

    fn mail_count(&mut self, mailbox: &str) -> usize {
        self.read_mailbox(mailbox).map(|m| m.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemFs;

    fn store_with_mail() -> (MfsStore<MemFs>, MailFile) {
        let mut s = MfsStore::new(MemFs::new());
        let inbox = s.mail_open("inbox").unwrap();
        for i in 1..=3u64 {
            s.nwrite(MailId(i), &["inbox"], DataRef::Bytes(&[i as u8]))
                .unwrap();
        }
        (s, inbox)
    }

    #[test]
    fn read_iterates_in_order() -> Result<(), Box<dyn std::error::Error>> {
        let (mut s, mut f) = store_with_mail();
        let mut ids = Vec::new();
        while let Some(m) = s.mail_read(&mut f)? {
            ids.push(m.id.0);
        }
        assert_eq!(ids, vec![1, 2, 3]);
        assert!(s.mail_read(&mut f)?.is_none());
        Ok(())
    }

    #[test]
    fn seek_set_cur_end() -> Result<(), Box<dyn std::error::Error>> {
        let (mut s, mut f) = store_with_mail();
        s.mail_seek(&mut f, 2, Whence::Set)?;
        assert_eq!(s.mail_read(&mut f)?.ok_or("eof")?.id, MailId(3));
        s.mail_seek(&mut f, -2, Whence::Cur)?;
        assert_eq!(s.mail_read(&mut f)?.ok_or("eof")?.id, MailId(2));
        s.mail_seek(&mut f, -3, Whence::End)?;
        assert_eq!(s.mail_read(&mut f)?.ok_or("eof")?.id, MailId(1));
        Ok(())
    }

    #[test]
    fn seek_out_of_range_errors() {
        let (mut s, mut f) = store_with_mail();
        assert!(s.mail_seek(&mut f, 4, Whence::Set).is_err());
        assert!(s.mail_seek(&mut f, -1, Whence::Set).is_err());
        assert!(s.mail_seek(&mut f, 1, Whence::End).is_err());
        // Failed seeks leave the cursor untouched.
        assert_eq!(f.position(), 0);
    }

    #[test]
    fn nwrite_through_handles() -> Result<(), Box<dyn std::error::Error>> {
        let mut s = MfsStore::new(MemFs::new());
        let a = s.mail_open("a")?;
        let b = s.mail_open("b")?;
        s.mail_nwrite(&[&a, &b], MailId(9), DataRef::Bytes(b"multi"))?;
        assert_eq!(s.stats().shared_mails, 1);
        let mut a = a;
        assert_eq!(s.mail_read(&mut a)?.ok_or("eof")?.body, b"multi");
        Ok(())
    }

    #[test]
    fn delete_at_cursor_shifts_stream() -> Result<(), Box<dyn std::error::Error>> {
        let (mut s, mut f) = store_with_mail();
        s.mail_seek(&mut f, 1, Whence::Set)?;
        s.mail_delete(&mut f)?;
        // Cursor now points at what was mail 3.
        assert_eq!(s.mail_read(&mut f)?.ok_or("eof")?.id, MailId(3));
        s.mail_seek(&mut f, 0, Whence::Set)?;
        assert_eq!(s.mail_read(&mut f)?.ok_or("eof")?.id, MailId(1));
        Ok(())
    }

    #[test]
    fn delete_at_end_errors() -> Result<(), Box<dyn std::error::Error>> {
        let (mut s, mut f) = store_with_mail();
        s.mail_seek(&mut f, 0, Whence::End)?;
        assert!(matches!(
            s.mail_delete(&mut f),
            Err(StoreError::OutOfRange(_))
        ));
        Ok(())
    }

    #[test]
    fn open_rejects_reserved_names() {
        let mut s = MfsStore::new(MemFs::new());
        assert!(s.mail_open("shmailbox").is_err());
        assert!(s.mail_open("").is_err());
        assert!(s.mail_open("a/b").is_err());
    }

    #[test]
    fn close_consumes_handle() {
        let (mut s, f) = store_with_mail();
        s.mail_close(f);
    }
}
