//! Disk cost profiles and the metering wrapper.
//!
//! Figs. 10/11 compare four mailbox layouts on Ext3-journal and ReiserFS.
//! The decisive difference between those file systems is the cost of
//! creating (and linking) small files versus appending to existing ones:
//! the benchmark the paper cites shows Ext3-journal performing poorly for
//! many-small-file workloads while Reiser excels. [`DiskProfile`] encodes
//! per-operation costs; [`Metered`] wraps any [`Backend`] and accumulates
//! both operation counts and total virtual time, which the DES charges to
//! its disk resource.

use crate::{Backend, DataRef, StoreResult};
use spamaware_sim::Nanos;

/// Per-operation virtual-time costs of a file system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskProfile {
    /// Creating a new file (inode allocation + journaled metadata).
    pub create_file: Nanos,
    /// Creating a hard link.
    pub link: Nanos,
    /// Fixed cost of an append (open/locate/journal transaction).
    pub append_setup: Nanos,
    /// Marginal cost per KiB written.
    pub write_per_kib: Nanos,
    /// Fixed cost of a positioned read.
    pub read_setup: Nanos,
    /// Marginal cost per KiB read.
    pub read_per_kib: Nanos,
    /// Removing a directory entry.
    pub delete: Nanos,
}

impl DiskProfile {
    /// Ext3 journal file system: cheap appends, very expensive small-file
    /// creation and linking (journaled metadata), per the benchmark cited
    /// in paper §6.3 ("for workloads consisting of multiple file creations
    /// of small sizes, Ext3-Journal performs poorly").
    pub fn ext3() -> DiskProfile {
        DiskProfile {
            create_file: Nanos::from_micros(2_200),
            link: Nanos::from_micros(1_800),
            append_setup: Nanos::from_micros(100),
            write_per_kib: Nanos::from_micros(50),
            read_setup: Nanos::from_micros(120),
            read_per_kib: Nanos::from_micros(25),
            delete: Nanos::from_micros(400),
        }
    }

    /// ReiserFS: small-file creation and linking are cheap; appends cost
    /// slightly more than Ext3 ("the Reiser Filesystem performs the best"
    /// for small-file creation, paper §6.3).
    pub fn reiser() -> DiskProfile {
        DiskProfile {
            create_file: Nanos::from_micros(1_000),
            link: Nanos::from_micros(280),
            append_setup: Nanos::from_micros(100),
            write_per_kib: Nanos::from_micros(50),
            read_setup: Nanos::from_micros(130),
            read_per_kib: Nanos::from_micros(28),
            delete: Nanos::from_micros(200),
        }
    }

    /// A zero-cost profile (functional testing without accounting).
    pub fn free() -> DiskProfile {
        DiskProfile {
            create_file: Nanos::ZERO,
            link: Nanos::ZERO,
            append_setup: Nanos::ZERO,
            write_per_kib: Nanos::ZERO,
            read_setup: Nanos::ZERO,
            read_per_kib: Nanos::ZERO,
            delete: Nanos::ZERO,
        }
    }

    fn write_cost(&self, bytes: u64) -> Nanos {
        self.append_setup + self.write_per_kib * bytes.div_ceil(1024)
    }

    fn read_cost(&self, bytes: u64) -> Nanos {
        self.read_setup + self.read_per_kib * bytes.div_ceil(1024)
    }
}

/// Operation counters accumulated by [`Metered`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct OpCounts {
    /// Files created (explicitly or by first append).
    pub creates: u64,
    /// Append operations.
    pub appends: u64,
    /// Bytes appended.
    pub bytes_written: u64,
    /// Read operations.
    pub reads: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Hard links created.
    pub links: u64,
    /// Removals.
    pub deletes: u64,
}

/// Wraps a [`Backend`], accounting per-operation virtual-time costs and
/// operation counts.
///
/// # Example
///
/// ```
/// use spamaware_mfs::{Backend, DataRef, DiskProfile, MemFs, Metered};
/// let mut disk = Metered::new(MemFs::new(), DiskProfile::ext3());
/// disk.append("f", DataRef::Zeros(2048))?;
/// assert_eq!(disk.counts().appends, 1);
/// assert!(disk.cost() > spamaware_sim::Nanos::ZERO);
/// # Ok::<(), spamaware_mfs::StoreError>(())
/// ```
#[derive(Debug)]
pub struct Metered<B> {
    inner: B,
    profile: DiskProfile,
    counts: OpCounts,
    cost: Nanos,
}

impl<B: Backend> Metered<B> {
    /// Wraps `inner` with the given cost profile.
    pub fn new(inner: B, profile: DiskProfile) -> Metered<B> {
        Metered {
            inner,
            profile,
            counts: OpCounts::default(),
            cost: Nanos::ZERO,
        }
    }

    /// Accumulated operation counts.
    pub fn counts(&self) -> OpCounts {
        self.counts
    }

    /// Total accumulated virtual-time cost.
    pub fn cost(&self) -> Nanos {
        self.cost
    }

    /// Returns and resets the accumulated cost (the DES drains this after
    /// each storage action to charge its disk resource).
    pub fn take_cost(&mut self) -> Nanos {
        std::mem::replace(&mut self.cost, Nanos::ZERO)
    }

    /// Resets counts and cost to zero (after pre-warming steady-state
    /// structures like pre-existing mailbox files).
    pub fn reset_accounting(&mut self) {
        self.counts = OpCounts::default();
        self.cost = Nanos::ZERO;
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Mutable access to the wrapped backend (operations through this are
    /// not metered).
    pub fn inner_mut(&mut self) -> &mut B {
        &mut self.inner
    }

    /// Consumes the wrapper, returning the backend.
    pub fn into_inner(self) -> B {
        self.inner
    }
}

impl<B: Backend> Backend for Metered<B> {
    fn create(&mut self, path: &str) -> StoreResult<()> {
        self.inner.create(path)?;
        self.counts.creates += 1;
        self.cost += self.profile.create_file;
        Ok(())
    }

    fn append(&mut self, path: &str, data: DataRef<'_>) -> StoreResult<u64> {
        let implicit_create = !self.inner.exists(path);
        let off = self.inner.append(path, data)?;
        if implicit_create {
            self.counts.creates += 1;
            self.cost += self.profile.create_file;
        }
        self.counts.appends += 1;
        self.counts.bytes_written += data.len();
        self.cost += self.profile.write_cost(data.len());
        Ok(off)
    }

    fn read_at(&mut self, path: &str, offset: u64, len: u64) -> StoreResult<Vec<u8>> {
        let out = self.inner.read_at(path, offset, len)?;
        self.counts.reads += 1;
        self.counts.bytes_read += len;
        self.cost += self.profile.read_cost(len);
        Ok(out)
    }

    fn len(&mut self, path: &str) -> StoreResult<u64> {
        self.inner.len(path)
    }

    fn link(&mut self, src: &str, dst: &str) -> StoreResult<()> {
        self.inner.link(src, dst)?;
        self.counts.links += 1;
        self.cost += self.profile.link;
        Ok(())
    }

    fn remove(&mut self, path: &str) -> StoreResult<()> {
        self.inner.remove(path)?;
        self.counts.deletes += 1;
        self.cost += self.profile.delete;
        Ok(())
    }

    fn truncate(&mut self, path: &str, len: u64) -> StoreResult<()> {
        // Recovery-only metadata operation; charged like a removal.
        self.inner.truncate(path, len)?;
        self.cost += self.profile.delete;
        Ok(())
    }

    fn exists(&mut self, path: &str) -> bool {
        self.inner.exists(path)
    }

    fn list(&mut self, prefix: &str) -> StoreResult<Vec<String>> {
        let out = self.inner.list(prefix)?;
        self.cost += self.profile.read_setup;
        Ok(out)
    }

    fn append_record(&mut self, path: &str, header: &[u8], body: DataRef<'_>) -> StoreResult<u64> {
        // One vectored write: a single setup charge covers header + body.
        let implicit_create = !self.inner.exists(path);
        let off = self.inner.append(path, DataRef::Bytes(header))?;
        self.inner.append(path, body)?;
        if implicit_create {
            self.counts.creates += 1;
            self.cost += self.profile.create_file;
        }
        let total = header.len() as u64 + body.len();
        self.counts.appends += 1;
        self.counts.bytes_written += total;
        self.cost += self.profile.write_cost(total);
        Ok(off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemFs;

    #[test]
    fn ext3_penalizes_creation_reiser_does_not() {
        let e = DiskProfile::ext3();
        let r = DiskProfile::reiser();
        // The Fig. 10/11 mechanism: creating a small file on Ext3 costs
        // several times a 4 KiB append; Reiser halves the creation cost
        // and makes links cheaper than a body append.
        let append_4k = e.write_cost(4096);
        assert!(e.create_file > append_4k * 4);
        assert!(r.create_file * 2 <= e.create_file);
        assert!(r.link < r.write_cost(4096));
        assert!(e.link > r.link * 3);
    }

    #[test]
    fn write_cost_scales_with_size() {
        let p = DiskProfile::ext3();
        let small = p.write_cost(100);
        let big = p.write_cost(100 * 1024);
        assert!(big > small * 10);
        // Setup dominates tiny writes.
        assert_eq!(p.write_cost(1), p.append_setup + p.write_per_kib);
    }

    #[test]
    fn metered_accumulates_counts_and_cost() -> Result<(), Box<dyn std::error::Error>> {
        let mut d = Metered::new(MemFs::new(), DiskProfile::ext3());
        d.create("a")?;
        d.append("a", DataRef::Zeros(2048))?;
        d.link("a", "b")?;
        d.read_at("a", 0, 1024)?;
        d.remove("b")?;
        let c = d.counts();
        assert_eq!(c.creates, 1);
        assert_eq!(c.appends, 1);
        assert_eq!(c.bytes_written, 2048);
        assert_eq!(c.links, 1);
        assert_eq!(c.reads, 1);
        assert_eq!(c.deletes, 1);
        let expected = DiskProfile::ext3().create_file
            + DiskProfile::ext3().write_cost(2048)
            + DiskProfile::ext3().link
            + DiskProfile::ext3().read_cost(1024)
            + DiskProfile::ext3().delete;
        assert_eq!(d.cost(), expected);
        Ok(())
    }

    #[test]
    fn implicit_creation_charged_once() -> Result<(), Box<dyn std::error::Error>> {
        let mut d = Metered::new(MemFs::new(), DiskProfile::reiser());
        d.append("fresh", DataRef::Zeros(10))?;
        d.append("fresh", DataRef::Zeros(10))?;
        assert_eq!(d.counts().creates, 1);
        assert_eq!(d.counts().appends, 2);
        Ok(())
    }

    #[test]
    fn take_cost_drains() -> Result<(), Box<dyn std::error::Error>> {
        let mut d = Metered::new(MemFs::new(), DiskProfile::ext3());
        d.append("f", DataRef::Zeros(1))?;
        let c = d.take_cost();
        assert!(c > Nanos::ZERO);
        assert_eq!(d.cost(), Nanos::ZERO);
        Ok(())
    }

    #[test]
    fn free_profile_costs_nothing() -> Result<(), Box<dyn std::error::Error>> {
        let mut d = Metered::new(MemFs::new(), DiskProfile::free());
        d.append("f", DataRef::Zeros(1 << 20))?;
        assert_eq!(d.cost(), Nanos::ZERO);
        Ok(())
    }

    #[test]
    fn failed_operations_cost_nothing() {
        let mut d = Metered::new(MemFs::new(), DiskProfile::ext3());
        assert!(d.read_at("missing", 0, 1).is_err());
        assert!(d.remove("missing").is_err());
        assert_eq!(d.cost(), Nanos::ZERO);
        assert_eq!(d.counts(), OpCounts::default());
    }
}
