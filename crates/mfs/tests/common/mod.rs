//! Shared machinery for the store property tests: a small scripted-op
//! vocabulary over a fixed mailbox universe (used by `sharded_prop` for
//! observational equivalence and by `crash_prop`/`crash_sweep` for the
//! crash-point torture runs), plus the crash-recovery checker itself.

use proptest::prelude::*;
use spamaware_mfs::{
    fsck, CrashBackend, CrashPoint, DataRef, MailId, MailStore, MemFs, MfsStore, ShardedStore,
    StoredMail, SyncBackend,
};

pub const MAILBOXES: [&str; 5] = ["alice", "bob", "carol", "dave", "erin"];

/// Decoded op: deliver to a recipient subset or delete from a mailbox.
#[derive(Debug, Clone)]
pub enum Op {
    Deliver { id: u64, first: usize, count: usize },
    Delete { mailbox: usize, id: u64 },
}

#[allow(dead_code)]
pub fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..8, 0usize..MAILBOXES.len(), 1usize..=MAILBOXES.len())
            .prop_map(|(id, first, count)| Op::Deliver { id, first, count }),
        (0usize..MAILBOXES.len(), 0u64..8).prop_map(|(mailbox, id)| Op::Delete { mailbox, id }),
    ]
}

/// Recipient slice for a deliver op: `count` mailboxes starting at
/// `first`, wrapping around — exercises both single-recipient (own copy)
/// and multi-recipient (shared copy) paths across shard boundaries.
pub fn recipients(first: usize, count: usize) -> Vec<&'static str> {
    (0..count)
        .map(|i| MAILBOXES[(first + i) % MAILBOXES.len()])
        .collect()
}

/// Body for a deliver op — varies with id so collision checks have teeth.
pub fn body_for(id: u64) -> Vec<u8> {
    vec![b'x'; 4 + (id as usize % 3)]
}

/// Applies one op to a store, ignoring the per-op outcome (legitimate
/// failures like id collisions and not-found deletes are part of the
/// script; both the model and the real store fail them identically).
#[allow(dead_code)]
pub fn apply(store: &mut dyn MailStore, op: &Op) {
    match *op {
        Op::Deliver { id, first, count } => {
            let mbs = recipients(first, count);
            let _ = store.deliver(MailId(id), &mbs, DataRef::Bytes(&body_for(id)));
        }
        Op::Delete { mailbox, id } => {
            let _ = store.delete(MAILBOXES[mailbox], MailId(id));
        }
    }
}

/// The per-mailbox view of a model store after `ops[..n]`.
#[allow(dead_code)]
fn model_view(ops: &[Op], n: usize) -> Vec<Vec<StoredMail>> {
    let mut model = MfsStore::new(MemFs::new());
    for op in &ops[..n] {
        apply(&mut model, op);
    }
    MAILBOXES
        .iter()
        .map(|mb| model.read_mailbox(mb).expect("model read"))
        .collect()
}

/// Records the write-side byte sizes of the full script — the schedule an
/// exhaustive sweep enumerates crash points over.
#[allow(dead_code)]
pub fn record_write_log(ops: &[Op]) -> Vec<u64> {
    let mut store = MfsStore::new(CrashBackend::new(MemFs::new()));
    for op in ops {
        apply(&mut store, op);
    }
    store.backend().write_log().to_vec()
}

/// Runs `ops` into a store that crashes at `point`, reboots from the
/// surviving bytes, and checks every crash-consistency promise:
///
/// * recovery succeeds (via `fsck`) and the repair is idempotent — a
///   second `fsck` over the repaired files reports clean;
/// * the fsck report is deterministic — byte-identical across two
///   independent repairs of the same survivors;
/// * each mailbox reads back as the model after all acknowledged ops,
///   except mailboxes the *crashed* op touched, which may also show it
///   fully applied (a torn multi-recipient delivery legitimately lands in
///   the shards it reached before the cut);
/// * a partitioned reopen ([`ShardedStore::open_with`] — the live
///   server's restart path) shows exactly the same mailbox contents;
/// * the repaired store stays writable.
///
/// Panics (with context) on any violation.
#[allow(dead_code)]
pub fn check_crash_point(ops: &[Op], point: CrashPoint) {
    let mut store = MfsStore::new(CrashBackend::with_plan(MemFs::new(), point));
    let mut acked = ops.len();
    for (i, op) in ops.iter().enumerate() {
        apply(&mut store, op);
        if store.backend().crashed() {
            acked = i;
            break;
        }
    }
    let survivor =
        std::mem::replace(store.backend_mut(), CrashBackend::new(MemFs::new())).into_inner();
    drop(store);

    // Three independent views of the same surviving bytes.
    let (mut repaired, report) = fsck(survivor.clone()).expect("fsck after crash");
    let (_, report2) = fsck(survivor.clone()).expect("second independent fsck");
    assert_eq!(
        report.to_string(),
        report2.to_string(),
        "fsck report must be deterministic at {point:?}"
    );
    let (_, rerun) = fsck(repaired.backend().clone()).expect("fsck of repaired store");
    assert!(
        rerun.is_clean(),
        "fsck must be idempotent at {point:?}; second run: {rerun}"
    );

    // Per-mailbox: the k-op model, or — for mailboxes the crashed op
    // touched — the (k+1)-op model (cut after the bytes landed).
    let before = model_view(ops, acked);
    let after = model_view(ops, (acked + 1).min(ops.len()));
    let sync = SyncBackend::new(survivor);
    let sharded =
        ShardedStore::open_with(3, || Ok(sync.clone())).expect("partitioned reopen after crash");
    for (i, mb) in MAILBOXES.iter().enumerate() {
        let got = repaired.read_mailbox(mb).expect("read after fsck");
        assert!(
            got == before[i] || got == after[i],
            "mailbox {mb} at {point:?}: got {got:?},\n  expected {:?}\n  or {:?}",
            before[i],
            after[i]
        );
        let via_shards = sharded.read_mailbox(mb).expect("sharded read");
        assert_eq!(
            got, via_shards,
            "partitioned reopen diverged from fsck view for {mb} at {point:?}"
        );
    }

    // The repaired store accepts new mail.
    repaired
        .deliver(MailId(9_999), &MAILBOXES, DataRef::Bytes(b"fresh"))
        .expect("repaired store must stay writable");
    for mb in MAILBOXES {
        let mails = repaired.read_mailbox(mb).expect("read fresh");
        assert_eq!(
            mails.last().map(|m| m.id),
            Some(MailId(9_999)),
            "fresh delivery visible in {mb}"
        );
    }
}
