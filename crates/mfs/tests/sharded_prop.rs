//! Observational-equivalence property test: a [`ShardedStore`] driven
//! through an arbitrary op sequence must be indistinguishable from a
//! single-lock [`MfsStore`] given the same sequence — same mailbox
//! contents (ids, bodies, order), same error/success outcomes, same
//! aggregate statistics. Sharding may only change *which operations can
//! run in parallel*, never what any observer reads back.

mod common;

use common::{body_for, op_strategy, recipients, Op, MAILBOXES};
use proptest::prelude::*;
use spamaware_mfs::{DataRef, MailId, MailStore, MemFs, MfsStore, ShardedStore, SyncBackend};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]
    #[test]
    fn sharded_store_is_observationally_equivalent_to_single_lock(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        shards in 1usize..9,
    ) {
        let mut single = MfsStore::new(MemFs::new());
        let fs = SyncBackend::new(MemFs::new());
        let sharded = ShardedStore::open_with(shards, || Ok(fs.clone()))
            .expect("open sharded");

        for op in &ops {
            match *op {
                Op::Deliver { id, first, count } => {
                    let mbs = recipients(first, count);
                    // Body varies with id so a collision check has teeth.
                    let body = body_for(id);
                    let a = single.deliver(MailId(id), &mbs, DataRef::Bytes(&body));
                    let b = sharded.deliver(MailId(id), &mbs, DataRef::Bytes(&body));
                    prop_assert_eq!(a.is_ok(), b.is_ok(), "deliver outcome diverged: {:?}", op);
                }
                Op::Delete { mailbox, id } => {
                    let mb = MAILBOXES[mailbox];
                    let a = single.delete(mb, MailId(id));
                    let b = sharded.delete(mb, MailId(id));
                    prop_assert_eq!(a.is_ok(), b.is_ok(), "delete outcome diverged: {:?}", op);
                }
            }

            // After every op: identical view through every mailbox...
            for mb in MAILBOXES {
                let a = single.read_mailbox(mb).expect("single read");
                let b = sharded.read_mailbox(mb).expect("sharded read");
                prop_assert_eq!(a, b, "mailbox {} diverged", mb);
            }
            // ...and identical aggregate accounting.
            prop_assert_eq!(single.stats(), sharded.stats());
        }
    }
}
