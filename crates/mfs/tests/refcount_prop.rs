//! Property test for MFS shared-mailbox refcounting (paper §6.1).
//!
//! Random interleavings of `mail_nwrite` and `mail_delete` must never
//! drive the shared refcount negative (the store's internal debug
//! assertions fire if they do), must keep the store's statistics in
//! lockstep with an independent model, and must record a shared record's
//! bytes as reclaimable exactly when its last reference is deleted.

use proptest::prelude::*;
use spamaware_mfs::{DataRef, MailId, MailStore, MemFs, MfsStore};
use std::collections::HashMap;

const BODY: &[u8] = b"mailbody";
const MAILBOXES: [&str; 4] = ["a", "b", "c", "d"];

/// One live reference in the model: (mailbox index, mail id, shared?).
type ModelRef = (usize, u64, bool);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn interleaved_writes_and_deletes_keep_refcounts_consistent(
        ops in proptest::collection::vec((0u8..3, 0u64..6, 1usize..5), 1..50)
    ) {
        let mut store = MfsStore::new(MemFs::new());
        // Model: every live reference, plus expected reclaimable bytes.
        let mut live: Vec<ModelRef> = Vec::new();
        let mut freed_expect: u64 = 0;

        for (op, id, n) in ops {
            match op {
                // Multi-recipient write: one shared copy, n references.
                0 => {
                    let n = n.clamp(2, MAILBOXES.len());
                    let mbs: Vec<&str> = MAILBOXES[..n].to_vec();
                    store
                        .deliver(MailId(id), &mbs, DataRef::Bytes(BODY))
                        .expect("shared deliver");
                    for mb in 0..n {
                        live.push((mb, id, true));
                    }
                }
                // Single-recipient write: own copy in the mailbox's file.
                // Own ids live in a disjoint range so a delete-by-id in the
                // store picks the same record kind the model picked.
                1 => {
                    let mb = n % MAILBOXES.len();
                    store
                        .deliver(MailId(id + 1000), &[MAILBOXES[mb]], DataRef::Bytes(BODY))
                        .expect("own deliver");
                    live.push((mb, id + 1000, false));
                }
                // Delete one model-chosen live reference.
                _ => {
                    if live.is_empty() {
                        continue;
                    }
                    let pick = (id as usize + n) % live.len();
                    let (mb, del_id, shared) = live.remove(pick);
                    store.delete(MAILBOXES[mb], MailId(del_id)).expect("delete");
                    // Was that the last reference to the shared copy?
                    if shared && !live.iter().any(|&(_, i, s)| s && i == del_id) {
                        freed_expect += BODY.len() as u64;
                    }
                }
            }

            let stats = store.stats();
            let shared_refs = live.iter().filter(|&&(_, _, s)| s).count();
            let own_refs = live.len() - shared_refs;
            let mut shared_ids: HashMap<u64, ()> = HashMap::new();
            for &(_, i, s) in &live {
                if s {
                    shared_ids.insert(i, ());
                }
            }
            prop_assert_eq!(stats.shared_references as usize, shared_refs);
            prop_assert_eq!(stats.own_records as usize, own_refs);
            prop_assert_eq!(stats.shared_mails as usize, shared_ids.len());
            prop_assert_eq!(stats.freed_shared_bytes, freed_expect);
        }
    }
}
