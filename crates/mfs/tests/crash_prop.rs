//! Crash-point property test: for a random op script and a random
//! `(write, byte)` crash point, a store rebooted from the surviving bytes
//! and repaired by `fsck` must be observationally equivalent to the model
//! after the acknowledged ops (per mailbox, optionally including the op
//! the crash interrupted — its bytes may have landed). `crash_sweep`
//! covers a fixed script exhaustively; this test covers *random* scripts
//! sparsely.

mod common;

use common::{check_crash_point, op_strategy, record_write_log};
use proptest::prelude::*;
use spamaware_mfs::CrashPoint;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn any_crash_point_recovers_to_a_prefix_of_acked_ops(
        ops in proptest::collection::vec(op_strategy(), 1..24),
        write_pick in 0u64..10_000,
        byte_pick in 0u64..10_000,
    ) {
        // The script determines how many writes exist and how big each
        // is; fold the raw picks into that space so every generated case
        // names a crash point that actually fires.
        let log = record_write_log(&ops);
        if log.is_empty() {
            // A script of nothing but rejected ops never writes; there is
            // no crash point to test.
            return Ok(());
        }
        let write = write_pick % log.len() as u64;
        let byte = byte_pick % (log[write as usize] + 1);
        check_crash_point(&ops, CrashPoint { write, byte });
    }
}
