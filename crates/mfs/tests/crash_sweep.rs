//! Exhaustive crash-point sweep: a fixed, representative workload is run
//! once in recording mode to learn its write schedule, then re-run once
//! per possible `(write, byte)` cut — every prefix of every write-side
//! operation, including the zero-byte and full-byte edges. Each cut must
//! reopen into a store equivalent to a prefix of the acknowledged ops
//! (see `common::check_crash_point` for the full promise: fsck
//! determinism and idempotency, partitioned-reopen agreement, continued
//! writability).
//!
//! The default test sweeps a compact script so it stays in tier-1 time
//! budgets; `scripts/check.sh --crash` adds the `#[ignore]`d deep sweep.

mod common;

use common::{check_crash_point, record_write_log, Op};
use spamaware_mfs::CrashPoint;

/// A script touching every write path: own delivery, shared delivery
/// (including one straddling all five mailboxes), legitimate failures
/// (id collision, not-found delete), deletes that release shared refs,
/// and a delete that frees a body entirely.
fn scripted_workload() -> Vec<Op> {
    vec![
        Op::Deliver {
            id: 1,
            first: 0,
            count: 1,
        }, // own copy for alice
        Op::Deliver {
            id: 2,
            first: 1,
            count: 3,
        }, // shared: bob..dave
        Op::Deliver {
            id: 2,
            first: 0,
            count: 2,
        }, // id collision: rejected
        Op::Delete { mailbox: 2, id: 2 }, // carol releases a ref
        Op::Deliver {
            id: 3,
            first: 0,
            count: 5,
        }, // shared: everyone
        Op::Delete { mailbox: 0, id: 7 }, // not found: rejected
        Op::Delete { mailbox: 1, id: 2 }, // bob releases a ref
        Op::Delete { mailbox: 3, id: 2 }, // dave frees the body
        Op::Deliver {
            id: 4,
            first: 4,
            count: 2,
        }, // shared wrapping: erin+alice
    ]
}

fn sweep(ops: &[Op]) {
    let log = record_write_log(ops);
    assert!(!log.is_empty(), "workload must write something");
    let points: u64 = log.iter().map(|s| s + 1).sum();
    println!("sweeping {} crash points over {} writes", points, log.len());
    for (write, &size) in log.iter().enumerate() {
        for byte in 0..=size {
            check_crash_point(
                ops,
                CrashPoint {
                    write: write as u64,
                    byte,
                },
            );
        }
    }
}

#[test]
fn every_crash_point_of_the_scripted_workload_recovers() {
    sweep(&scripted_workload());
}

/// Deep sweep for `scripts/check.sh --crash`: a longer script with more
/// interleaved shares and deletes (hundreds more cut points).
#[test]
#[ignore = "deep sweep; run via scripts/check.sh --crash"]
fn deep_sweep_recovers_everywhere() {
    let mut ops = scripted_workload();
    for id in 10..22u64 {
        ops.push(Op::Deliver {
            id,
            first: (id % 5) as usize,
            count: 1 + (id % 5) as usize,
        });
        if id % 2 == 0 {
            ops.push(Op::Delete {
                mailbox: (id % 5) as usize,
                id: id - 2,
            });
        }
    }
    sweep(&ops);
}
