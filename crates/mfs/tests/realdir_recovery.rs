//! Crash recovery on the real filesystem: the MemFs-based torture tests
//! prove the recovery logic; this suite proves the same logic holds when
//! the surviving bytes live in actual files — raw `std::fs` damage (a
//! partial frame appended by a dying process, flipped bytes mid-file) is
//! inflicted behind the store's back, then replay and `fsck` must repair
//! it through [`RealDir`].

use spamaware_mfs::{fsck, DataRef, MailId, MailStore, MfsStore, RealDir, StoreError};
use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

struct TempRoot(PathBuf);

impl TempRoot {
    fn new(tag: &str) -> TempRoot {
        let p = std::env::temp_dir().join(format!(
            "spamaware-rdr-{tag}-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&p).expect("mkdir temp root");
        TempRoot(p)
    }
}

impl Drop for TempRoot {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn populated(root: &PathBuf) -> MfsStore<RealDir> {
    let mut store = MfsStore::open(RealDir::new(root).expect("open root")).expect("open store");
    store
        .deliver(MailId(1), &["alice"], DataRef::Bytes(b"own mail"))
        .expect("deliver own");
    store
        .deliver(MailId(2), &["alice", "bob"], DataRef::Bytes(b"shared mail"))
        .expect("deliver shared");
    store
}

#[test]
fn torn_tail_on_disk_is_truncated_by_replay() {
    let root = TempRoot::new("torn");
    drop(populated(&root.0));

    // A dying process leaves half a frame at the end of alice's key file.
    let key = root.0.join("mfs/alice.key");
    let mut f = OpenOptions::new().append(true).open(&key).expect("open");
    f.write_all(&[0x01, 0x20, 0xde, 0xad, 0xbe]).expect("tear");
    drop(f);

    let mut store =
        MfsStore::open(RealDir::new(&root.0).expect("reopen")).expect("replay with torn tail");
    assert_eq!(store.recovered_records(), 1);
    assert_eq!(store.read_mailbox("alice").expect("read").len(), 2);
    assert_eq!(store.read_mailbox("bob").expect("read").len(), 1);
    // The truncation is durable: the file shrank back to whole frames
    // (38 bytes each: 2-byte header + 32-byte record + 4-byte CRC).
    let len = std::fs::metadata(&key).expect("stat").len();
    assert_eq!(len % 38, 0, "key file is whole frames again");

    // The recovered store keeps working on the same files.
    store
        .deliver(MailId(3), &["alice"], DataRef::Bytes(b"after recovery"))
        .expect("deliver after recovery");
    drop(store);
    let mut reread = MfsStore::open(RealDir::new(&root.0).expect("reopen")).expect("reopen clean");
    assert_eq!(reread.recovered_records(), 0);
    assert_eq!(reread.read_mailbox("alice").expect("read").len(), 3);
}

#[test]
fn mid_file_corruption_fails_strict_open_and_fsck_repairs() {
    let root = TempRoot::new("corrupt");
    drop(populated(&root.0));

    // Flip bytes inside the *first* frame of alice's key file: strict
    // replay must refuse (this is damage, not a crash artifact).
    let key = root.0.join("mfs/alice.key");
    let mut f = OpenOptions::new()
        .write(true)
        .read(true)
        .open(&key)
        .expect("open");
    f.seek(SeekFrom::Start(10)).expect("seek");
    f.write_all(b"XXXX").expect("corrupt");
    drop(f);

    let err = MfsStore::open(RealDir::new(&root.0).expect("reopen"))
        .expect_err("strict open must refuse mid-file corruption");
    assert!(matches!(err, StoreError::CorruptRecord(_)), "{err:?}");

    let (mut repaired, report) = fsck(RealDir::new(&root.0).expect("reopen")).expect("fsck");
    assert!(!report.is_clean());
    assert_eq!(report.corrupt_frames.len(), 1, "{report}");
    // Everything after the corruption point is gone; bob's mailbox and
    // the shared partition were untouched. The shared body kept exactly
    // bob's reference (alice's was clamped away with the lost key file).
    assert_eq!(repaired.read_mailbox("alice").expect("read").len(), 0);
    assert_eq!(repaired.read_mailbox("bob").expect("read").len(), 1);
    assert_eq!(repaired.stats().shared_references, 1);
    assert_eq!(repaired.stats().shared_mails, 1);
    drop(repaired);

    // The repair is durable: a strict reopen now succeeds, cleanly.
    let mut store = MfsStore::open(RealDir::new(&root.0).expect("reopen")).expect("open repaired");
    assert_eq!(store.recovered_records(), 0);
    assert_eq!(
        store.read_mailbox("bob").expect("read")[0].body,
        b"shared mail"
    );
}

#[test]
fn fsck_report_on_disk_damage_is_deterministic() {
    let build = |tag: &str| -> TempRoot {
        let root = TempRoot::new(tag);
        drop(populated(&root.0));
        let key = root.0.join("mfs/alice.key");
        let mut f = OpenOptions::new().append(true).open(&key).expect("open");
        f.write_all(&[0x01, 0x20, 0x00]).expect("tear");
        root
    };
    let a = build("det-a");
    let b = build("det-b");
    let (_, ra) = fsck(RealDir::new(&a.0).expect("open a")).expect("fsck a");
    let (_, rb) = fsck(RealDir::new(&b.0).expect("open b")).expect("fsck b");
    assert_eq!(ra.to_string(), rb.to_string());
    assert!(ra.to_string().contains("torn tail: mfs/alice.key"), "{ra}");
}

#[test]
fn truncate_backend_contract_holds_on_real_files() {
    let root = TempRoot::new("trunc");
    let mut fs = RealDir::new(&root.0).expect("open");
    use spamaware_mfs::Backend;
    fs.append("f", DataRef::Bytes(b"0123456789")).expect("seed");
    fs.truncate("f", 4).expect("shrink");
    assert_eq!(fs.len("f").expect("len"), 4);
    assert_eq!(fs.read_at("f", 0, 4).expect("read"), b"0123");
    assert!(matches!(
        fs.truncate("f", 100),
        Err(StoreError::OutOfRange(_))
    ));
    assert!(matches!(
        fs.truncate("missing", 0),
        Err(StoreError::NotFound(_))
    ));
    // Raw on-disk size agrees.
    let mut buf = Vec::new();
    std::fs::File::open(root.0.join("f"))
        .expect("open raw")
        .read_to_end(&mut buf)
        .expect("read raw");
    assert_eq!(buf, b"0123");
}
