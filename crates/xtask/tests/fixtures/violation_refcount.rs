// Fixture: invariant violation — refcount mutation outside mfs_store.rs
// (scanned as if it lived in crates/mfs/src/).
pub fn leak_a_reference(entry: &mut SharedEntry) {
    entry.refs += 1;
}
