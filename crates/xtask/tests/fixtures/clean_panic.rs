// Fixture: panic-free error handling the pass must accept. Decoys live in
// strings ("don't .unwrap() me"), comments (panic!(…)), and tests.
pub fn parse(input: &str) -> Result<u32, String> {
    let n: u32 = input
        .parse()
        .map_err(|e| format!("bad id {input:?}: {e} — do not .unwrap() this"))?;
    if n == 0 {
        return Err("zero is not a valid id".to_owned());
    }
    Ok(n)
}

pub fn first(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(super::parse("7").unwrap(), 7);
    }
}
