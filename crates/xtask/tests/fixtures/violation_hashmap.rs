// Fixture: determinism violation — hash iteration order leaks into an
// ordered output vector.
use std::collections::HashMap;

pub struct Cache {
    entries: HashMap<u32, u64>,
}

impl Cache {
    pub fn dump(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for v in self.entries.values() {
            out.push(*v);
        }
        out
    }
}
