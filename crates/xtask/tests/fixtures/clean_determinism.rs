// Fixture: deterministic code the pass must accept, including decoys in
// strings, comments, and test modules: SystemTime::now, thread_rng.
use std::collections::BTreeMap;

pub struct Cache {
    entries: BTreeMap<u32, u64>,
    histogram: std::collections::HashMap<u32, u64>,
}

impl Cache {
    pub fn dump(&self) -> Vec<u64> {
        // BTreeMap iteration is ordered; no finding.
        self.entries.values().copied().collect()
    }

    pub fn total(&self) -> u64 {
        // lint:allow(hashmap-iter): commutative sum, order-independent
        self.histogram.values().sum()
    }

    pub fn describe(&self) -> &'static str {
        "uses Instant::now for nothing; env::var is only a string here"
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn wall_clock_is_fine_in_tests() {
        let _ = std::time::Instant::now();
    }
}
