// Fixture: determinism violation — ambient RNG instead of a seeded one.
pub fn roll() -> u8 {
    use rand::Rng;
    rand::thread_rng().gen()
}
