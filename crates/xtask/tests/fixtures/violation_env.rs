// Fixture: determinism violation — behavior branches on the environment.
pub fn fast_mode() -> bool {
    std::env::var("SPAMAWARE_FAST").is_ok()
}
