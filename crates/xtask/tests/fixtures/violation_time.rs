// Fixture: determinism violation — wall-clock read in simulation code.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
