// Fixture: documented unsafe the audit must accept, plus an `unsafe_code`
// lint-attribute decoy that must not be mistaken for the keyword.
#![deny(unsafe_code)]

pub fn read_raw(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` is non-null, aligned, and valid
    // for reads for the lifetime of the call.
    unsafe { *p }
}
