//! Seeded blocking-reachability violation: the master accept loop
//! reaches a UDP receive two call hops down. The blocking pass must
//! report the leaf with the full call chain.

fn master_loop() {
    admit();
}

fn admit() {
    lookup();
}

fn lookup() {
    sock.recv_from(&mut buf);
}
