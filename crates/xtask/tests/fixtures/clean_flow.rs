//! Clean fixture for the three flow passes: sequential (never nested)
//! partition acquisition, a master loop whose only blocking leaf lives
//! on a spawned thread, and a counter that is registered, used, and
//! documented in the fixture design doc.

struct S {
    shared: Mutex<MfsStore<B>>,
    shards: Vec<Mutex<MfsStore<B>>>,
}

impl S {
    fn good(&self) {
        let x = self.shared.lock().probe();
        for shard in &self.shards {
            shard.lock().touch(x);
        }
    }
}

fn master_loop(r: &Registry) {
    let accepted = r.counter("live.accepted");
    accepted.inc();
    thread::spawn(move || worker());
}

fn worker() {
    rx.recv();
}

fn snapshot(r: &Registry) -> String {
    r.render()
}
