// Fixture: a budgeted waiver — accepted, but counted against the budget.
pub fn checked(xs: &[u32]) -> u32 {
    assert!(!xs.is_empty(), "caller guarantees nonempty");
    // lint:allow(panic): guarded by the assert above
    *xs.first().expect("nonempty")
}
