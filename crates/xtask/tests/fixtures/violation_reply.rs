// Fixture: invariant violation — ad-hoc reply construction outside
// smtp/src/reply.rs (scanned as if it lived in crates/server/src/).
pub fn greet() -> Reply {
    Reply::new(220, "mx.example ESMTP ad-hoc")
}
