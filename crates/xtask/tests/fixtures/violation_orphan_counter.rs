//! Seeded metrics-provenance violation: `live.ghost` is registered and
//! incremented but never documented, so operators reading DESIGN.md
//! would never learn it exists. The provenance pass must flag the
//! registration site.

fn setup(r: &Registry) {
    let ghost = r.counter("live.ghost");
    ghost.inc();
}
