// Fixture: panic-safety violations — unwrap/expect/panic in non-test code.
pub fn parse(input: &str) -> u32 {
    let n: u32 = input.parse().unwrap();
    if n == 0 {
        panic!("zero is not a valid id");
    }
    n
}

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().expect("nonempty")
}
