//! Seeded blocking-under-lock violation: a thread sleep while a store
//! partition lock is held stalls every other thread queued on the
//! partition. The blocking pass must flag the sleep.

struct S {
    shared: Mutex<MfsStore<B>>,
}

impl S {
    fn bad(&self) {
        let g = self.shared.lock();
        std::thread::sleep(d);
        g.done();
    }
}
