// Fixture: unsafe-audit violation — no SAFETY comment anywhere near.
pub fn read_raw(p: *const u8) -> u8 {
    unsafe { *p }
}
