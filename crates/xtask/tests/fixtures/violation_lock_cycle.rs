//! Seeded lock-order violation: two functions acquire the same pair of
//! locks in opposite orders, so a thread interleaving exists that
//! deadlocks. The lock-order pass must report a cycle.

struct S {
    a_lock: Mutex<u8>,
    b_lock: Mutex<u8>,
}

impl S {
    fn ab(&self) {
        let g = self.a_lock.lock();
        self.b_lock.lock().touch();
        g.done();
    }

    fn ba(&self) {
        let g = self.b_lock.lock();
        self.a_lock.lock().touch();
        g.done();
    }
}
