//! Property tests for the call-graph builder: edge extraction must be
//! deterministic (identical input → byte-identical dump, regardless of
//! the order files are presented in) and stable under formatting-only
//! rewrites (blank lines, comments, trailing whitespace, statement
//! indentation — none of which change the call structure).

use proptest::prelude::*;
use spamaware_xtask::callgraph::Workspace;

/// Renders `calls` (callee indices per function) as one source file,
/// one `fn f<i>` per entry calling each listed `f<j>`.
fn render(calls: &[Vec<usize>]) -> String {
    let n = calls.len();
    let mut out = String::new();
    for (i, callees) in calls.iter().enumerate() {
        out.push_str(&format!("fn f{i}() {{\n"));
        for &c in callees {
            out.push_str(&format!("    f{}();\n", c % n));
        }
        out.push_str("}\n");
    }
    out
}

/// Re-renders the same functions with formatting-only noise driven by
/// `seed`: extra blank lines, interleaved comments, trailing spaces,
/// and deeper statement indentation.
fn render_noisy(calls: &[Vec<usize>], seed: u64) -> String {
    let n = calls.len();
    let mut state = seed | 1;
    let mut next = move |bound: u64| {
        // Small deterministic LCG: the property must not depend on
        // ambient randomness.
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % bound
    };
    let mut out = String::new();
    for (i, callees) in calls.iter().enumerate() {
        for _ in 0..next(3) {
            out.push('\n');
        }
        if next(2) == 1 {
            out.push_str("// formatting noise: a comment between items\n");
        }
        out.push_str(&format!("fn f{i}() {{\n"));
        for &c in callees {
            let indent = " ".repeat(4 + next(8) as usize);
            let trail = " ".repeat(next(3) as usize);
            if next(3) == 0 {
                out.push_str(&format!("{indent}// call below\n"));
            }
            out.push_str(&format!("{indent}f{}();{trail}\n", c % n));
        }
        out.push_str("}\n");
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn edge_extraction_is_deterministic_and_order_independent(
        calls in proptest::collection::vec(
            proptest::collection::vec(0usize..8, 0..4),
            2..8,
        ),
        split in 1usize..7,
    ) {
        let split = split.min(calls.len() - 1);
        let (a, b) = calls.split_at(split);
        let src_a = render(a);
        // The second file's functions keep their global indices so the
        // call targets stay meaningful across the file boundary.
        let mut src_b = String::new();
        for (off, callees) in b.iter().enumerate() {
            let i = split + off;
            src_b.push_str(&format!("fn f{i}() {{\n"));
            for &c in callees {
                src_b.push_str(&format!("    f{}();\n", c % calls.len()));
            }
            src_b.push_str("}\n");
        }
        let forward = Workspace::from_sources(&[
            ("crates/alpha/src/lib.rs", &src_a),
            ("crates/beta/src/lib.rs", &src_b),
        ]);
        let reversed = Workspace::from_sources(&[
            ("crates/beta/src/lib.rs", &src_b),
            ("crates/alpha/src/lib.rs", &src_a),
        ]);
        // Same input twice → byte-identical dump; file presentation
        // order must not leak into the (sorted) edge set.
        prop_assert_eq!(forward.dump_edges(), forward.dump_edges());
        prop_assert_eq!(forward.dump_edges(), reversed.dump_edges());
    }

    #[test]
    fn edge_extraction_is_stable_under_formatting_rewrites(
        calls in proptest::collection::vec(
            proptest::collection::vec(0usize..8, 0..4),
            2..8,
        ),
        seed in 0u64..u64::MAX,
    ) {
        let canonical = render(&calls);
        let noisy = render_noisy(&calls, seed);
        let ws_canon = Workspace::from_sources(&[("crates/demo/src/lib.rs", &canonical)]);
        let ws_noisy = Workspace::from_sources(&[("crates/demo/src/lib.rs", &noisy)]);
        prop_assert_eq!(ws_canon.dump_edges(), ws_noisy.dump_edges());
    }
}
