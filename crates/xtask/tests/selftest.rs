//! Self-test corpus: every pass must catch its seeded violation fixture and
//! accept its clean fixture, and the full workspace lint must come back
//! clean (this is the same check `scripts/check.sh` runs pre-PR).

use spamaware_xtask::scan::scan_source;
use spamaware_xtask::{determinism, invariants, panics, unsafety};

fn fixture(name: &str, path: &str) -> spamaware_xtask::scan::SourceFile {
    let text = match name {
        "violation_time" => include_str!("fixtures/violation_time.rs"),
        "violation_rng" => include_str!("fixtures/violation_rng.rs"),
        "violation_env" => include_str!("fixtures/violation_env.rs"),
        "violation_hashmap" => include_str!("fixtures/violation_hashmap.rs"),
        "clean_determinism" => include_str!("fixtures/clean_determinism.rs"),
        "violation_panic" => include_str!("fixtures/violation_panic.rs"),
        "waived_panic" => include_str!("fixtures/waived_panic.rs"),
        "clean_panic" => include_str!("fixtures/clean_panic.rs"),
        "violation_unsafe" => include_str!("fixtures/violation_unsafe.rs"),
        "clean_unsafe" => include_str!("fixtures/clean_unsafe.rs"),
        "violation_reply" => include_str!("fixtures/violation_reply.rs"),
        "violation_refcount" => include_str!("fixtures/violation_refcount.rs"),
        other => panic!("unknown fixture {other}"),
    };
    scan_source(path, text)
}

#[test]
fn determinism_catches_each_seeded_violation() {
    for name in [
        "violation_time",
        "violation_rng",
        "violation_env",
        "violation_hashmap",
    ] {
        let f = fixture(name, "crates/server/src/fixture.rs");
        let found = determinism::check(&f);
        assert_eq!(
            found.len(),
            1,
            "{name}: expected exactly one finding, got {found:?}"
        );
    }
}

#[test]
fn determinism_accepts_clean_fixture() {
    let f = fixture("clean_determinism", "crates/server/src/fixture.rs");
    let found = determinism::check(&f);
    assert!(found.is_empty(), "clean fixture flagged: {found:?}");
}

#[test]
fn panic_safety_catches_seeded_violations() {
    let f = fixture("violation_panic", "crates/mfs/src/fixture.rs");
    let scan = panics::check(&f);
    assert_eq!(
        scan.findings.len(),
        3,
        "unwrap, panic!, expect: {:?}",
        scan.findings
    );
    assert_eq!(scan.waivers_used, 0);
}

#[test]
fn panic_safety_accepts_clean_and_counts_waivers() {
    let clean = panics::check(&fixture("clean_panic", "crates/mfs/src/fixture.rs"));
    assert!(
        clean.findings.is_empty(),
        "clean fixture flagged: {:?}",
        clean.findings
    );
    assert_eq!(clean.waivers_used, 0);

    let waived = panics::check(&fixture("waived_panic", "crates/mfs/src/fixture.rs"));
    assert!(
        waived.findings.is_empty(),
        "waiver ignored: {:?}",
        waived.findings
    );
    assert_eq!(waived.waivers_used, 1);
}

#[test]
fn unsafe_audit_requires_safety_comment() {
    let bad = unsafety::check(&fixture("violation_unsafe", "crates/sim/src/fixture.rs"));
    assert_eq!(bad.len(), 1, "{bad:?}");

    let good = unsafety::check(&fixture("clean_unsafe", "crates/sim/src/fixture.rs"));
    assert!(good.is_empty(), "documented unsafe flagged: {good:?}");
}

#[test]
fn invariant_lint_catches_reply_and_refcount_escapes() {
    let reply = invariants::check(&fixture("violation_reply", "crates/server/src/fixture.rs"));
    assert_eq!(reply.len(), 1, "{reply:?}");
    assert_eq!(reply[0].rule, "reply-provenance");

    let refs = invariants::check(&fixture("violation_refcount", "crates/mfs/src/fixture.rs"));
    assert_eq!(refs.len(), 1, "{refs:?}");
    assert_eq!(refs[0].rule, "mfs-refcount");
}

#[test]
fn invariant_lint_exempts_the_home_modules() {
    let f = fixture("violation_reply", "crates/smtp/src/reply.rs");
    assert!(invariants::check(&f).is_empty());

    let f = fixture("violation_refcount", "crates/mfs/src/mfs_store.rs");
    assert!(invariants::check(&f).is_empty());
}

/// The real workspace must lint clean — this is the acceptance gate for
/// `cargo run -p spamaware-xtask -- lint`.
#[test]
fn workspace_lints_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root");
    let report = spamaware_xtask::lint_workspace(root).expect("scan workspace");
    assert!(
        report.files_scanned > 40,
        "expected the full tree, saw {}",
        report.files_scanned
    );
    let rendered: Vec<String> = report.findings.iter().map(ToString::to_string).collect();
    assert!(
        report.findings.is_empty(),
        "workspace lint violations:\n{}",
        rendered.join("\n")
    );
}
