//! Self-test corpus: every pass must catch its seeded violation fixture and
//! accept its clean fixture, and the full workspace lint must come back
//! clean (this is the same check `scripts/check.sh` runs pre-PR).

use spamaware_xtask::callgraph::Workspace;
use spamaware_xtask::scan::scan_source;
use spamaware_xtask::{blocking, determinism, invariants, locks, panics, provenance, unsafety};

fn fixture(name: &str, path: &str) -> spamaware_xtask::scan::SourceFile {
    let text = match name {
        "violation_time" => include_str!("fixtures/violation_time.rs"),
        "violation_rng" => include_str!("fixtures/violation_rng.rs"),
        "violation_env" => include_str!("fixtures/violation_env.rs"),
        "violation_hashmap" => include_str!("fixtures/violation_hashmap.rs"),
        "clean_determinism" => include_str!("fixtures/clean_determinism.rs"),
        "violation_panic" => include_str!("fixtures/violation_panic.rs"),
        "waived_panic" => include_str!("fixtures/waived_panic.rs"),
        "clean_panic" => include_str!("fixtures/clean_panic.rs"),
        "violation_unsafe" => include_str!("fixtures/violation_unsafe.rs"),
        "clean_unsafe" => include_str!("fixtures/clean_unsafe.rs"),
        "violation_reply" => include_str!("fixtures/violation_reply.rs"),
        "violation_refcount" => include_str!("fixtures/violation_refcount.rs"),
        other => panic!("unknown fixture {other}"),
    };
    scan_source(path, text)
}

#[test]
fn determinism_catches_each_seeded_violation() {
    for name in [
        "violation_time",
        "violation_rng",
        "violation_env",
        "violation_hashmap",
    ] {
        let f = fixture(name, "crates/server/src/fixture.rs");
        let found = determinism::check(&f);
        assert_eq!(
            found.len(),
            1,
            "{name}: expected exactly one finding, got {found:?}"
        );
    }
}

#[test]
fn determinism_accepts_clean_fixture() {
    let f = fixture("clean_determinism", "crates/server/src/fixture.rs");
    let found = determinism::check(&f);
    assert!(found.is_empty(), "clean fixture flagged: {found:?}");
}

#[test]
fn panic_safety_catches_seeded_violations() {
    let f = fixture("violation_panic", "crates/mfs/src/fixture.rs");
    let scan = panics::check(&f);
    assert_eq!(
        scan.findings.len(),
        3,
        "unwrap, panic!, expect: {:?}",
        scan.findings
    );
    assert_eq!(scan.waivers_used, 0);
}

#[test]
fn panic_safety_accepts_clean_and_counts_waivers() {
    let clean = panics::check(&fixture("clean_panic", "crates/mfs/src/fixture.rs"));
    assert!(
        clean.findings.is_empty(),
        "clean fixture flagged: {:?}",
        clean.findings
    );
    assert_eq!(clean.waivers_used, 0);

    let waived = panics::check(&fixture("waived_panic", "crates/mfs/src/fixture.rs"));
    assert!(
        waived.findings.is_empty(),
        "waiver ignored: {:?}",
        waived.findings
    );
    assert_eq!(waived.waivers_used, 1);
}

#[test]
fn unsafe_audit_requires_safety_comment() {
    let bad = unsafety::check(&fixture("violation_unsafe", "crates/sim/src/fixture.rs"));
    assert_eq!(bad.len(), 1, "{bad:?}");

    let good = unsafety::check(&fixture("clean_unsafe", "crates/sim/src/fixture.rs"));
    assert!(good.is_empty(), "documented unsafe flagged: {good:?}");
}

#[test]
fn invariant_lint_catches_reply_and_refcount_escapes() {
    let reply = invariants::check(&fixture("violation_reply", "crates/server/src/fixture.rs"));
    assert_eq!(reply.len(), 1, "{reply:?}");
    assert_eq!(reply[0].rule, "reply-provenance");

    let refs = invariants::check(&fixture("violation_refcount", "crates/mfs/src/fixture.rs"));
    assert_eq!(refs.len(), 1, "{refs:?}");
    assert_eq!(refs[0].rule, "mfs-refcount");
}

#[test]
fn invariant_lint_exempts_the_home_modules() {
    let f = fixture("violation_reply", "crates/smtp/src/reply.rs");
    assert!(invariants::check(&f).is_empty());

    let f = fixture("violation_refcount", "crates/mfs/src/mfs_store.rs");
    assert!(invariants::check(&f).is_empty());
}

/// Loads a flow-pass fixture as a one-file workspace rooted in `core`.
fn flow_fixture(name: &str) -> Workspace {
    let text = match name {
        "violation_lock_cycle" => include_str!("fixtures/violation_lock_cycle.rs"),
        "violation_master_blocking" => include_str!("fixtures/violation_master_blocking.rs"),
        "violation_sleep_under_lock" => include_str!("fixtures/violation_sleep_under_lock.rs"),
        "violation_orphan_counter" => include_str!("fixtures/violation_orphan_counter.rs"),
        "clean_flow" => include_str!("fixtures/clean_flow.rs"),
        other => panic!("unknown flow fixture {other}"),
    };
    Workspace::from_sources(&[("crates/core/src/fixture.rs", text)])
}

#[test]
fn lock_order_catches_seeded_cycle() {
    let ws = flow_fixture("violation_lock_cycle");
    let la = locks::check(&ws);
    assert!(
        la.findings
            .iter()
            .any(|f| f.rule == "lock-order" && f.message.contains("lock-order cycle")),
        "seeded deadlock cycle not found: {:?}",
        la.findings
    );
}

#[test]
fn blocking_catches_seeded_master_leaf() {
    let ws = flow_fixture("violation_master_blocking");
    let ba = blocking::check(&ws, &locks::check(&ws));
    assert!(
        ba.findings.iter().any(|f| f.rule == "blocking"
            && f.message.contains("recv_from")
            && f.message.contains("master_loop → admit → lookup")),
        "seeded master-reachable blocking leaf not found: {:?}",
        ba.findings
    );
}

#[test]
fn blocking_catches_seeded_sleep_under_lock() {
    let ws = flow_fixture("violation_sleep_under_lock");
    let ba = blocking::check(&ws, &locks::check(&ws));
    assert!(
        ba.findings
            .iter()
            .any(|f| f.rule == "blocking" && f.message.contains("sleep")),
        "seeded sleep under a partition hold not found: {:?}",
        ba.findings
    );
}

#[test]
fn provenance_catches_seeded_orphan_counter() {
    let ws = flow_fixture("violation_orphan_counter");
    let design = "no ghost here\n";
    let rep = provenance::check(&ws, design, "DESIGN.md");
    assert!(
        rep.findings
            .iter()
            .any(|f| f.message.contains("live.ghost") && f.message.contains("not documented")),
        "seeded orphan counter not found: {:?}",
        rep.findings
    );
}

#[test]
fn flow_passes_accept_clean_fixture() {
    let ws = flow_fixture("clean_flow");
    let la = locks::check(&ws);
    assert!(
        la.findings.is_empty(),
        "clean lock order flagged: {:?}",
        la.findings
    );
    let ba = blocking::check(&ws, &la);
    assert!(
        ba.findings.is_empty(),
        "clean blocking flagged: {:?}",
        ba.findings
    );
    let design = "connections are counted in `live.accepted`.\n";
    let rep = provenance::check(&ws, design, "DESIGN.md");
    assert!(
        rep.findings.is_empty(),
        "clean provenance flagged: {:?}",
        rep.findings
    );
}

/// The real workspace must come back clean from the three flow passes —
/// the acceptance gate for `cargo run -p spamaware-xtask -- lock-order
/// blocking metrics-provenance` — and the graph dumps must be
/// byte-identical across runs.
#[test]
fn workspace_flow_is_clean_and_deterministic() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root");
    let flow = spamaware_xtask::flow_workspace(root).expect("flow analysis");
    for pass in &flow.passes {
        let rendered: Vec<String> = pass.findings.iter().map(ToString::to_string).collect();
        assert!(
            pass.findings.is_empty(),
            "{} violations:\n{}",
            pass.pass,
            rendered.join("\n")
        );
    }
    let again = spamaware_xtask::flow_workspace(root).expect("flow analysis, second run");
    assert_eq!(
        flow.lock_dump, again.lock_dump,
        "lock dump not deterministic"
    );
    assert_eq!(
        flow.provenance_dump, again.provenance_dump,
        "provenance dump not deterministic"
    );
}

/// The real workspace must lint clean — this is the acceptance gate for
/// `cargo run -p spamaware-xtask -- lint`.
#[test]
fn workspace_lints_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root");
    let report = spamaware_xtask::lint_workspace(root).expect("scan workspace");
    assert!(
        report.files_scanned > 40,
        "expected the full tree, saw {}",
        report.files_scanned
    );
    let rendered: Vec<String> = report.findings.iter().map(ToString::to_string).collect();
    assert!(
        report.findings.is_empty(),
        "workspace lint violations:\n{}",
        rendered.join("\n")
    );
}
