//! Blocking-reachability lint.
//!
//! The paper's §5 fork-after-trust architecture lives on two promises:
//! the master accept thread never blocks, and no thread blocks while it
//! holds a store partition lock. This pass makes both checkable:
//!
//! 1. **Blocking leaves** are classified by token: `thread::sleep`, UDP
//!    `send_to`/`recv_from`, blocking-read socket configuration
//!    (`set_read_timeout`), channel `recv`/`recv_timeout`, no-argument
//!    `.join()`, readiness waits (`.wait(`, `poll2(`), stream writes
//!    (`.write_all(`, `Write::write(`), and file I/O (`File::open`,
//!    `fs::*`, `sync_all`, …).
//! 2. **`blocking` (master)**: no blocking leaf of any kind may be
//!    reachable from `master_loop` along call edges. Edges through a
//!    `spawn(…)` call site are cut — a spawned closure blocks its own
//!    thread, not the master. Two pinned exceptions: the reactor wait
//!    ([`SANCTIONED_WAITS`]) — the §5 master *parks* in exactly one
//!    readiness wait — and the pre-trust `OutBuf`'s single raw socket
//!    write ([`SANCTIONED_WRITES`]), which is only ever issued against a
//!    nonblocking fd and returns `WouldBlock` instead of stalling. Every
//!    other write on the master path is a regression: `write_all` on a
//!    blocking socket hands the master's fate to one peer's read loop.
//! 3. **`blocking` (under lock)**: sleep / network / channel / join
//!    leaves may not execute while any discovered lock class is held
//!    (from [`crate::locks`]'s held-line map). File I/O under a store
//!    lock is allowed — the append *is* the critical section.
//! 4. **`lock-io-loop`**: file-*read* I/O (direct or through callees)
//!    inside a loop, where a partition lock was already held when the
//!    loop began — the "POP3 scan holds the stripe for O(mailbox) disk
//!    reads" latency bug. Per-iteration acquire/release is fine; holding
//!    one lock across the whole scan is not.
//!
//! Waivers: `lint:allow(blocking)` / `lint:allow(lock-io-loop)`, budgeted
//! per crate in `crates/xtask/concurrency-waivers.budget`.

use crate::callgraph::{CallSite, FnId, Workspace};
use crate::findings::Finding;
use crate::locks::LockAnalysis;
use std::collections::{BTreeMap, BTreeSet};

/// Crates in blocking-lint scope. `sim` and `bench` drive simulated or
/// measurement workloads where sleeping is the point; `xtask` is the
/// analyzer itself.
pub const BLOCKING_SCOPE: &[&str] = &["core", "server", "smtp", "mfs", "dnsbl", "metrics"];

/// Files pinned into scope explicitly, so the guarantee survives even if
/// the crate-level scope above is ever narrowed (same pattern as
/// `DETERMINISM_FILES`): the DNSBL circuit breaker and the sharded store
/// are the two places a blocking call under a hold becomes a §5 collapse.
pub const BLOCKING_FILES: &[&str] = &["crates/dnsbl/src/breaker.rs", "crates/mfs/src/sharded.rs"];

/// Readiness waits the master path is *allowed* to park in, as
/// `(file suffix, line substring)` pairs. The §5 master must block in
/// exactly one place — the reactor's `epoll_wait` — and these entries pin
/// that place: the engine's single `reactor.wait(…)` call and the
/// [`Poller::wait`] leaf it dispatches to. A `.wait(`/`poll2(` anywhere
/// else on the master path is a regression to ad-hoc blocking.
pub const SANCTIONED_WAITS: &[(&str, &str)] = &[
    ("crates/core/src/reactor/os.rs", ".wait("),
    ("crates/core/src/pretrust.rs", "reactor.wait("),
];

/// Socket-write sites the master path is *allowed* to reach, as
/// `(file suffix, line substring)` pairs. The pre-trust engine funnels
/// every outbound byte through its bounded `OutBuf`, whose flush bottoms
/// out in exactly one raw write against a nonblocking fd — `WouldBlock`
/// comes back as data, not as a stall. Any other write token on the
/// master path (a stray `write_all`, a second raw write site) bypasses
/// the backpressure state machine and must fail the pass.
pub const SANCTIONED_WRITES: &[(&str, &str)] =
    &[("crates/core/src/pretrust.rs", "Write::write(self, buf)")];

/// What a blocking leaf does, which decides where it is forbidden.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// `thread::sleep` — unconditionally blocking.
    Sleep,
    /// Network syscalls and blocking-read socket configuration.
    Net,
    /// Channel `recv`/`recv_timeout` — blocks on another thread.
    Channel,
    /// `.join()` — blocks on a whole thread's lifetime.
    Join,
    /// Readiness waits (`.wait(`, `poll2(`) — blocking, but sanctioned at
    /// the [`SANCTIONED_WAITS`] sites where parking is the design.
    Wait,
    /// Stream writes (`.write_all(`, `Write::write(`) — blocking on a
    /// full socket buffer; sanctioned only at the [`SANCTIONED_WRITES`]
    /// nonblocking raw-write site on the master path. Allowed under a
    /// store lock (the mfs append *is* the critical section).
    SockWrite,
    /// File reads (allowed under a store lock, but not in a held loop).
    FileRead,
    /// File writes / metadata (the store's critical sections).
    FileWrite,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::Sleep => "thread::sleep",
            Kind::Net => "network I/O",
            Kind::Channel => "channel recv",
            Kind::Join => "thread join",
            Kind::Wait => "readiness wait",
            Kind::SockWrite => "stream write",
            Kind::FileRead => "file read",
            Kind::FileWrite => "file write",
        }
    }

    /// Kinds that must not run while a lock is held. File I/O is exempt:
    /// appending under the partition lock is the store's design.
    fn forbidden_under_lock(self) -> bool {
        matches!(
            self,
            Kind::Sleep | Kind::Net | Kind::Channel | Kind::Join | Kind::Wait
        )
    }
}

const NET_TOKENS: &[&str] = &[
    ".send_to(",
    ".recv_from(",
    ".set_read_timeout(",
    ".set_write_timeout(",
];
const CHANNEL_TOKENS: &[&str] = &[".recv()", ".recv_timeout("];
const WAIT_TOKENS: &[&str] = &[".wait(", "poll2("];
/// `Write::write_all(` is covered by neither of the others (UFCS has no
/// leading dot; `Write::write(` requires the paren right after `write`),
/// so all three spellings are listed.
const WRITE_TOKENS: &[&str] = &[".write_all(", "Write::write_all(", "Write::write("];
const FILE_READ_TOKENS: &[&str] = &[
    "File::open(",
    "fs::read",
    ".read_exact(",
    ".read_to_end(",
    ".read_dir(",
];
const FILE_WRITE_TOKENS: &[&str] = &[
    "File::create(",
    "OpenOptions::new(",
    "fs::write",
    "fs::rename",
    "fs::remove",
    "fs::create_dir",
    ".sync_all(",
    ".sync_data(",
];

/// Blocking tokens on one line of code text, with byte offsets.
fn classify_line(code: &str) -> Vec<(usize, Kind, &'static str)> {
    let mut out = Vec::new();
    let mut push_all = |tokens: &[&'static str], kind: Kind| {
        for &tok in tokens {
            let mut from = 0;
            while let Some(rel) = code[from..].find(tok) {
                let at = from + rel;
                from = at + tok.len();
                out.push((at, kind, tok));
            }
        }
    };
    push_all(NET_TOKENS, Kind::Net);
    push_all(CHANNEL_TOKENS, Kind::Channel);
    push_all(WAIT_TOKENS, Kind::Wait);
    push_all(WRITE_TOKENS, Kind::SockWrite);
    push_all(FILE_READ_TOKENS, Kind::FileRead);
    push_all(FILE_WRITE_TOKENS, Kind::FileWrite);
    // `sleep(` with a non-ident char before it (`thread::sleep(`, bare
    // `sleep(`, `.sleep(`).
    let mut from = 0;
    while let Some(rel) = code[from..].find("sleep(") {
        let at = from + rel;
        from = at + 6;
        let ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if ok {
            out.push((at, Kind::Sleep, "sleep("));
        }
    }
    // No-argument `.join()` — a thread join. (`slice.join(sep)` takes an
    // argument and never matches.)
    let mut from = 0;
    while let Some(rel) = code[from..].find(".join()") {
        let at = from + rel;
        from = at + 7;
        out.push((at, Kind::Join, ".join()"));
    }
    out.sort_by_key(|&(at, _, _)| at);
    out
}

/// Result of the pass.
pub struct BlockingAnalysis {
    /// `blocking` and `lock-io-loop` violations.
    pub findings: Vec<Finding>,
    /// Waivers consumed, keyed `<rule>/<crate>`.
    pub waivers_used: BTreeMap<String, usize>,
}

/// Runs the pass. Needs the lock analysis for held-line information.
pub fn check(ws: &Workspace, locks: &LockAnalysis) -> BlockingAnalysis {
    let mut findings = Vec::new();
    let mut waivers_used: BTreeMap<String, usize> = BTreeMap::new();

    let in_scope = |file_idx: usize| -> bool {
        BLOCKING_SCOPE.iter().any(|c| *c == ws.crates[file_idx])
            || BLOCKING_FILES
                .iter()
                .any(|f| ws.files[file_idx].path.ends_with(f))
    };

    let mut waive = |file_idx: usize, line: usize, rule: &'static str| -> bool {
        if ws.files[file_idx].waived(line, rule) {
            let key = format!("{rule}/{}", ws.crates[file_idx]);
            *waivers_used.entry(key).or_insert(0) += 1;
            true
        } else {
            false
        }
    };

    // --- Rule 1: nothing blocking reachable from the master loop. ---
    let roots: Vec<FnId> = ws
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.is_test && f.name == "master_loop")
        .map(|(id, _)| id)
        .collect();
    let came_from = reachable_no_spawn(ws, &roots);
    let mut master_set: BTreeSet<FnId> = roots.iter().copied().collect();
    master_set.extend(came_from.keys().copied());
    for &f in &master_set {
        let info = &ws.fns[f];
        if !in_scope(info.file) {
            continue;
        }
        let file = &ws.files[info.file];
        for li in info.body_start..=info.end.min(file.lines.len().saturating_sub(1)) {
            if file.in_test[li] {
                continue;
            }
            for (_, kind, tok) in classify_line(&file.lines[li].code) {
                // The one sanctioned park: the reactor wait, at the
                // pinned sites only.
                if kind == Kind::Wait
                    && SANCTIONED_WAITS.iter().any(|&(suffix, pat)| {
                        file.path.ends_with(suffix) && file.lines[li].code.contains(pat)
                    })
                {
                    continue;
                }
                // The one sanctioned write: the OutBuf's raw nonblocking
                // write, at its pinned site only.
                if kind == Kind::SockWrite
                    && SANCTIONED_WRITES.iter().any(|&(suffix, pat)| {
                        file.path.ends_with(suffix) && file.lines[li].code.contains(pat)
                    })
                {
                    continue;
                }
                if waive(info.file, li, "blocking") {
                    continue;
                }
                findings.push(Finding::new(
                    &file.path,
                    li + 1,
                    "blocking",
                    format!(
                        "`{tok}` ({}) reachable from the master accept loop \
                         via {} — §5 requires a non-blocking master",
                        kind.label(),
                        ws.chain_to(&came_from, f),
                    ),
                ));
            }
        }
    }

    // --- Rule 2: no sleep/net/channel/join while a lock is held. ---
    for (&f, lines) in &locks.held_lines {
        let info = &ws.fns[f];
        if info.is_test || !in_scope(info.file) {
            continue;
        }
        let file = &ws.files[info.file];
        for (&li, held) in lines {
            let Some(line) = file.lines.get(li) else {
                continue;
            };
            for (_, kind, tok) in classify_line(&line.code) {
                if !kind.forbidden_under_lock() {
                    continue;
                }
                if waive(info.file, li, "blocking") {
                    continue;
                }
                let held_names: Vec<&str> = held
                    .iter()
                    .map(|&c| locks.classes[c].name.as_str())
                    .collect();
                findings.push(Finding::new(
                    &file.path,
                    li + 1,
                    "blocking",
                    format!(
                        "`{tok}` ({}) while holding lock `{}` in `{}` — \
                         blocking under a hold stalls every waiter",
                        kind.label(),
                        held_names.join("`, `"),
                        info.name,
                    ),
                ));
            }
        }
    }

    // --- Rule 3: file-read I/O in a loop entered with a partition held. ---
    let does_read = transitive_read_io(ws);
    for f in 0..ws.fns.len() {
        let info = &ws.fns[f];
        if info.is_test || !in_scope(info.file) {
            continue;
        }
        let file = &ws.files[info.file];
        let Some(held_lines) = locks.held_lines.get(&f) else {
            continue;
        };
        let loops = loop_spans(ws, f);
        for li in info.body_start..=info.end.min(file.lines.len().saturating_sub(1)) {
            // Innermost loop containing this line, if any.
            let Some(&(header, _)) = loops
                .iter()
                .filter(|&&(h, e)| h < li && li <= e)
                .max_by_key(|&&(h, _)| h)
            else {
                continue;
            };
            // Partition classes already held when the loop began: held at
            // the loop header (covers entry-held and outer-scope guards,
            // but not per-iteration acquire/release inside the body).
            let held_at_header: BTreeSet<usize> = held_lines
                .get(&header)
                .into_iter()
                .flatten()
                .copied()
                .filter(|&c| locks.classes[c].partition)
                .collect();
            if held_at_header.is_empty() {
                continue;
            }
            let line = &file.lines[li];
            let direct = classify_line(&line.code)
                .iter()
                .any(|&(_, k, _)| k == Kind::FileRead);
            let via_call = ws.calls[f]
                .iter()
                .filter(|s| s.line == li)
                .any(|s| ws.callees(s).iter().any(|&c| does_read[c]));
            if !(direct || via_call) {
                continue;
            }
            if waive(info.file, li, "lock-io-loop") {
                continue;
            }
            let names: Vec<&str> = held_at_header
                .iter()
                .map(|&c| locks.classes[c].name.as_str())
                .collect();
            findings.push(Finding::new(
                &file.path,
                li + 1,
                "lock-io-loop",
                format!(
                    "file read inside a loop entered while holding `{}` in \
                     `{}` — the scan holds the partition for O(n) disk reads",
                    names.join("`, `"),
                    info.name,
                ),
            ));
        }
    }

    BlockingAnalysis {
        findings,
        waivers_used,
    }
}

/// BFS over call edges from `roots`, cutting edges whose call site sits on
/// a `spawn(…)` line: the spawned closure runs on another thread.
fn reachable_no_spawn(ws: &Workspace, roots: &[FnId]) -> BTreeMap<FnId, CallSite> {
    let mut came_from = BTreeMap::new();
    let mut seen: BTreeSet<FnId> = roots.iter().copied().collect();
    let mut queue: Vec<FnId> = roots.to_vec();
    while let Some(f) = queue.pop() {
        let file = &ws.files[ws.fns[f].file];
        for site in &ws.calls[f] {
            let on_spawn_line = file
                .lines
                .get(site.line)
                .is_some_and(|l| l.code.contains("spawn("));
            if on_spawn_line {
                continue;
            }
            for callee in ws.callees(site) {
                if seen.insert(callee) {
                    came_from.insert(callee, site.clone());
                    queue.push(callee);
                }
            }
        }
    }
    came_from
}

/// Per function: does it (transitively) perform file-read I/O? Fixpoint
/// over call edges, seeded by [`FILE_READ_TOKENS`]. Spawn-site edges are
/// cut here too — a read in a spawned thread is not a read in the caller.
fn transitive_read_io(ws: &Workspace) -> Vec<bool> {
    let mut does = vec![false; ws.fns.len()];
    for (f, info) in ws.fns.iter().enumerate() {
        let file = &ws.files[info.file];
        for li in info.body_start..=info.end.min(file.lines.len().saturating_sub(1)) {
            if classify_line(&file.lines[li].code)
                .iter()
                .any(|&(_, k, _)| k == Kind::FileRead)
            {
                does[f] = true;
                break;
            }
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for f in 0..ws.fns.len() {
            if does[f] {
                continue;
            }
            let file = &ws.files[ws.fns[f].file];
            let hit = ws.calls[f].iter().any(|site| {
                let on_spawn_line = file
                    .lines
                    .get(site.line)
                    .is_some_and(|l| l.code.contains("spawn("));
                !on_spawn_line && ws.callees(site).iter().any(|&c| does[c])
            });
            if hit {
                does[f] = true;
                changed = true;
            }
        }
    }
    does
}

/// Loop spans `(header-line, end-line)` inside one function, by brace
/// tracking from `for`/`while`/`loop` tokens.
fn loop_spans(ws: &Workspace, f: FnId) -> Vec<(usize, usize)> {
    let info = &ws.fns[f];
    let file = &ws.files[info.file];
    let mut out = Vec::new();
    let mut depth: i64 = 0;
    // Open loops: (header line, out index, depth before the loop `{`).
    let mut stack: Vec<(usize, i64)> = Vec::new();
    let mut pending: Option<usize> = None;
    for li in info.body_start..=info.end.min(file.lines.len().saturating_sub(1)) {
        let code = &file.lines[li].code;
        if ["for", "while", "loop"]
            .iter()
            .any(|kw| crate::scan::find_token(code, kw).is_some())
        {
            pending = Some(li);
        }
        for c in code.chars() {
            match c {
                '{' => {
                    if let Some(header) = pending.take() {
                        out.push((header, li));
                        stack.push((out.len() - 1, depth));
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    while stack.last().is_some_and(|&(_, d)| d == depth) {
                        let (idx, _) = stack.pop().unwrap_or_default();
                        out[idx].1 = li;
                    }
                }
                _ => {}
            }
        }
    }
    let last = info.end.min(file.lines.len().saturating_sub(1));
    while let Some((idx, _)) = stack.pop() {
        out[idx].1 = last;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locks;

    fn analyze(src: &str) -> (Workspace, BlockingAnalysis) {
        let ws = Workspace::from_sources(&[("crates/core/src/lib.rs", src)]);
        let lock = locks::check(&ws);
        let blocking = check(&ws, &lock);
        (ws, blocking)
    }

    #[test]
    fn classification_covers_all_kinds() {
        let kinds: Vec<Kind> = classify_line(
            "sock.send_to(b, a); rx.recv(); h.join(); thread::sleep(d); File::open(p);",
        )
        .iter()
        .map(|&(_, k, _)| k)
        .collect();
        assert_eq!(
            kinds,
            [
                Kind::Net,
                Kind::Channel,
                Kind::Join,
                Kind::Sleep,
                Kind::FileRead
            ]
        );
        // `slice.join(", ")` takes an argument: not a thread join.
        assert!(classify_line("v.join(\", \")").is_empty());
    }

    #[test]
    fn planted_blocking_reachable_from_master_is_found() {
        let src = "\
fn master_loop() {
    handle();
}
fn handle() {
    lookup();
}
fn lookup() {
    sock.recv_from(&mut buf);
}
";
        let (_, a) = analyze(src);
        assert!(
            a.findings.iter().any(|f| f.rule == "blocking"
                && f.message.contains("recv_from")
                && f.message.contains("master_loop → handle → lookup")),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn spawned_thread_does_not_taint_the_master() {
        let src = "\
fn master_loop() {
    thread::spawn(move || worker());
}
fn worker() {
    rx.recv();
}
";
        let (_, a) = analyze(src);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn sleep_under_a_lock_is_found() {
        let src = "\
struct S {
    shared: Mutex<MfsStore<B>>,
}
impl S {
    fn bad(&self) {
        let g = self.shared.lock();
        std::thread::sleep(d);
        g.done();
    }
}
";
        let (_, a) = analyze(src);
        assert!(
            a.findings
                .iter()
                .any(|f| f.rule == "blocking" && f.message.contains("sleep")),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn file_append_under_a_lock_is_allowed() {
        let src = "\
struct S {
    shared: Mutex<MfsStore<B>>,
}
impl S {
    fn good(&self) {
        let g = self.shared.lock();
        fs::write(path, data);
        g.done();
    }
}
";
        let (_, a) = analyze(src);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn read_loop_under_partition_hold_is_found() {
        let src = "\
struct S {
    shards: Vec<Mutex<MfsStore<B>>>,
}
impl S {
    fn scan(&self) {
        for shard in &self.shards {
            let g = shard.lock();
            for e in g.entries() {
                let body = fs::read_at(path, e.offset);
                use_it(body);
            }
            drop(g);
        }
    }
}
fn use_it(b: u8) {}
";
        let (_, a) = analyze(src);
        assert!(
            a.findings.iter().any(|f| f.rule == "lock-io-loop"),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn per_iteration_acquisition_is_not_a_held_loop() {
        let src = "\
struct S {
    shards: Vec<Mutex<MfsStore<B>>>,
}
impl S {
    fn scan(&self) {
        for shard in &self.shards {
            let n = shard.lock().quick_len();
            use_it(n);
        }
    }
}
fn use_it(b: u8) {}
";
        let (_, a) = analyze(src);
        assert!(
            a.findings.iter().all(|f| f.rule != "lock-io-loop"),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn unsanctioned_wait_reachable_from_master_is_found() {
        let src = "\
fn master_loop() {
    helper();
}
fn helper() {
    cond.wait(guard);
}
";
        let (_, a) = analyze(src);
        assert!(
            a.findings
                .iter()
                .any(|f| f.rule == "blocking" && f.message.contains("readiness wait")),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn sanctioned_reactor_wait_on_master_path_is_clean() {
        // Same shape as the real engine: the master parks in
        // `reactor.wait(…)` inside pretrust.rs — the pinned site.
        let ws = Workspace::from_sources(&[(
            "crates/core/src/pretrust.rs",
            "\
fn master_loop() {
    run_pretrust();
}
fn run_pretrust() {
    reactor.wait(timeout_ns, &mut ready);
}
",
        )]);
        let lock = locks::check(&ws);
        let a = check(&ws, &lock);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn poll2_on_the_master_path_is_found() {
        // `poll2` is the worker/admin parking primitive; the master must
        // use the reactor, so even in pretrust.rs it is a violation.
        let ws = Workspace::from_sources(&[(
            "crates/core/src/pretrust.rs",
            "\
fn master_loop() {
    rawpoll::poll2(a, false, b, None);
}
",
        )]);
        let lock = locks::check(&ws);
        let a = check(&ws, &lock);
        assert!(
            a.findings
                .iter()
                .any(|f| f.rule == "blocking" && f.message.contains("poll2")),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn write_all_reachable_from_master_is_found() {
        let src = "\
fn master_loop() {
    greet();
}
fn greet(stream: &mut TcpStream) {
    stream.write_all(b\"220 ready\\r\\n\");
}
";
        let (_, a) = analyze(src);
        assert!(
            a.findings.iter().any(|f| f.rule == "blocking"
                && f.message.contains("write_all")
                && f.message.contains("stream write")),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn sanctioned_outbuf_raw_write_on_master_path_is_clean() {
        // Same shape as the real engine: the OutBuf flush bottoms out in
        // one raw nonblocking write inside pretrust.rs — the pinned site.
        let ws = Workspace::from_sources(&[(
            "crates/core/src/pretrust.rs",
            "\
fn master_loop() {
    flush();
}
fn flush(&mut self) {
    Write::write(self, buf);
}
",
        )]);
        let lock = locks::check(&ws);
        let a = check(&ws, &lock);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn ufcs_write_all_on_the_master_path_is_found() {
        // Even in pretrust.rs, only the pinned raw-write line is allowed;
        // a UFCS `write_all` spelling must not slip through.
        let ws = Workspace::from_sources(&[(
            "crates/core/src/pretrust.rs",
            "\
fn master_loop() {
    Write::write_all(stream, bytes);
}
",
        )]);
        let lock = locks::check(&ws);
        let a = check(&ws, &lock);
        assert!(
            a.findings
                .iter()
                .any(|f| f.rule == "blocking" && f.message.contains("write_all")),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn stream_write_under_a_store_lock_is_allowed() {
        // The mfs append under the partition lock is the critical
        // section; only the master path bans write tokens.
        let src = "\
struct S {
    shared: Mutex<MfsStore<B>>,
}
impl S {
    fn append(&self) {
        let g = self.shared.lock();
        g.file.write_all(record);
        g.done();
    }
}
";
        let (_, a) = analyze(src);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn wait_under_a_lock_is_found() {
        let src = "\
struct S {
    shared: Mutex<MfsStore<B>>,
}
impl S {
    fn bad(&self) {
        let g = self.shared.lock();
        reactor.wait(t, &mut out);
        g.done();
    }
}
";
        let (_, a) = analyze(src);
        assert!(
            a.findings
                .iter()
                .any(|f| f.rule == "blocking" && f.message.contains("readiness wait")),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn waived_line_counts_against_the_budget() {
        let src = "\
fn master_loop() {
    // lint:allow(blocking) — poll backoff, see ROADMAP item 1 (epoll).
    thread::sleep(d);
}
";
        let (_, a) = analyze(src);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
        assert_eq!(a.waivers_used.get("blocking/core"), Some(&1));
    }

    #[test]
    fn out_of_scope_crates_are_ignored() {
        let ws = Workspace::from_sources(&[(
            "crates/bench/src/lib.rs",
            "fn master_loop() {\n    thread::sleep(d);\n}\n",
        )]);
        let lock = locks::check(&ws);
        let a = check(&ws, &lock);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }
}
