//! `spamaware-xtask` — workspace static analysis, run as
//! `cargo run -p spamaware-xtask -- lint`.
//!
//! Four token/line-level passes over `crates/*/src` (deliberately
//! dependency-free — no `syn`, no network):
//!
//! | pass            | scope                          | rule |
//! |-----------------|--------------------------------|------|
//! | `determinism`   | sim, server, dnsbl, metrics, bench, plus `mfs`'s frame/crash/fsck files | no wall clock, ambient RNG, env branching, or hash-order leaks |
//! | `panic-safety`  | server, smtp, mfs, dnsbl, metrics, core | no `unwrap`/`expect`/`panic!` in non-test code; budgeted waivers |
//! | `unsafe-audit`  | every crate                    | `unsafe` requires an adjacent `// SAFETY:` comment |
//! | `invariants`    | every crate                    | replies built in `smtp/src/reply.rs`; MFS refcounts mutated only in `mfs_store.rs`/`fsck.rs` |
//!
//! See `DESIGN.md` § "Invariants & static analysis" for the rationale and
//! the waiver syntax. The self-test corpus under `crates/xtask/tests/`
//! seeds one violation per rule and one clean fixture per pass.

pub mod blocking;
pub mod callgraph;
pub mod determinism;
pub mod findings;
pub mod invariants;
pub mod locks;
pub mod panics;
pub mod provenance;
pub mod report;
pub mod scan;
pub mod unsafety;

use findings::Finding;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose simulation output must be a pure function of seed + trace.
/// `bench` rides along so experiment binaries stay reproducible; its one
/// legitimate wall-clock read (live throughput measurement) is waived.
pub const DETERMINISM_SCOPE: &[&str] = &["sim", "server", "dnsbl", "metrics", "bench"];
/// Individual files outside the determinism-scoped crates that must
/// nonetheless be deterministic: the crash-recovery layer, whose `mfsck`
/// reports are pinned byte-for-byte by golden fixtures. (The rest of the
/// `mfs` crate is exempt — backends legitimately touch the real world.)
pub const DETERMINISM_FILES: &[&str] = &[
    "crates/mfs/src/frame.rs",
    "crates/mfs/src/crash.rs",
    "crates/mfs/src/fsck.rs",
    // The DNSBL circuit breaker's backoff schedule must replay exactly
    // under a ManualClock; pinned here explicitly so the guarantee
    // survives even if the crate-level `dnsbl` scope is ever narrowed.
    "crates/dnsbl/src/breaker.rs",
    // The timer wheel and the simulated reactor are the replay substrate
    // for the pre-trust event loop: a wall-clock read or ambient
    // randomness in either breaks byte-identical SimReactor runs.
    "crates/core/src/reactor/wheel.rs",
    "crates/core/src/reactor/sim.rs",
];
/// Crates that must not panic on hostile input. `core` contains the live
/// TCP servers, which face the most hostile input of all.
pub const PANIC_SCOPE: &[&str] = &["server", "smtp", "mfs", "dnsbl", "metrics", "core"];
/// Waiver budget file, relative to the workspace root.
pub const BUDGET_FILE: &str = "crates/xtask/panic-waivers.budget";
/// Waiver budget file for the flow passes (lock-order / blocking /
/// metrics-provenance), keyed `<rule>/<crate>`.
pub const CONCURRENCY_BUDGET_FILE: &str = "crates/xtask/concurrency-waivers.budget";

/// Outcome of a full workspace lint.
pub struct LintReport {
    /// All violations, in path order.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// `lint:allow(panic)` waivers consumed, per crate.
    pub waivers_used: BTreeMap<String, usize>,
}

/// Lints every `crates/*/src/**/*.rs` under `root`.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in std::fs::read_dir(&crates_dir)? {
        let entry = entry?;
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    files.sort();

    let mut findings = Vec::new();
    let mut waivers_used: BTreeMap<String, usize> = BTreeMap::new();
    for path in &files {
        let file = scan::scan_file(path)?;
        let krate = crate_of(root, path);
        let det_file = DETERMINISM_FILES
            .iter()
            .any(|f| path.ends_with(Path::new(f)));
        if det_file || DETERMINISM_SCOPE.iter().any(|c| *c == krate) {
            findings.extend(determinism::check(&file));
        }
        if PANIC_SCOPE.iter().any(|c| *c == krate) {
            let scan = panics::check(&file);
            findings.extend(scan.findings);
            if scan.waivers_used > 0 {
                *waivers_used.entry(krate.clone()).or_insert(0) += scan.waivers_used;
            }
        }
        findings.extend(unsafety::check(&file));
        findings.extend(invariants::check(&file));
    }

    let budget_path = root.join(BUDGET_FILE);
    let budget_text = std::fs::read_to_string(&budget_path).unwrap_or_default();
    match panics::parse_budget(&budget_text) {
        Ok(budget) => {
            findings.extend(panics::check_budget(&waivers_used, &budget, BUDGET_FILE));
        }
        Err(e) => findings.push(Finding::new(BUDGET_FILE, 0, "panic-budget", e)),
    }

    Ok(LintReport {
        findings,
        files_scanned: files.len(),
        waivers_used,
    })
}

/// Outcome of the concurrency/provenance flow passes (call-graph-based).
pub struct FlowReport {
    /// One [`report::PassResult`] per pass, in `lock-order`, `blocking`,
    /// `metrics-provenance` order, each with its slice of the shared
    /// concurrency waiver budget already checked in.
    pub passes: Vec<report::PassResult>,
    /// Deterministic lock-order graph dump (classes, edges, entry-held sets).
    pub lock_dump: String,
    /// Deterministic provenance dump (registered/template/documented names).
    pub provenance_dump: String,
}

/// Budget findings for one flow pass: both the used-waiver map and the budget
/// file are filtered to `<rule>/…` keys so running a single pass never
/// reports another pass's budget entries as stale.
fn flow_budget_findings(
    rule: &str,
    used: &BTreeMap<String, usize>,
    budget: &BTreeMap<String, usize>,
) -> Vec<Finding> {
    let prefix = format!("{rule}/");
    let slice = |m: &BTreeMap<String, usize>| -> BTreeMap<String, usize> {
        m.iter()
            .filter(|(k, _)| k.starts_with(&prefix))
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    };
    panics::check_budget_as(
        &slice(used),
        &slice(budget),
        CONCURRENCY_BUDGET_FILE,
        "concurrency-budget",
        rule,
    )
}

/// Runs the three call-graph flow passes over `crates/*/src` under `root`,
/// plus the shared shrink-only waiver budget.
pub fn flow_workspace(root: &Path) -> io::Result<FlowReport> {
    let ws = callgraph::Workspace::load(root)?;
    let la = locks::check(&ws);
    let ba = blocking::check(&ws, &la);
    let design = std::fs::read_to_string(root.join("DESIGN.md")).unwrap_or_default();
    let pa = provenance::check(&ws, &design, "DESIGN.md");

    let budget_text =
        std::fs::read_to_string(root.join(CONCURRENCY_BUDGET_FILE)).unwrap_or_default();
    let (budget, mut budget_err) = match panics::parse_budget(&budget_text) {
        Ok(b) => (b, Vec::new()),
        Err(e) => (
            BTreeMap::new(),
            vec![Finding::new(
                CONCURRENCY_BUDGET_FILE,
                0,
                "concurrency-budget",
                e,
            )],
        ),
    };

    let lock_dump = la.dump(&ws);
    let provenance_dump = pa.dump();
    let mut passes = Vec::new();
    for (name, mut findings, waivers_used) in [
        ("lock-order", la.findings, la.waivers_used),
        ("blocking", ba.findings, ba.waivers_used),
        ("metrics-provenance", pa.findings, pa.waivers_used),
    ] {
        findings.extend(flow_budget_findings(name, &waivers_used, &budget));
        findings.append(&mut budget_err); // parse error surfaces once, on the first pass
        passes.push(report::PassResult {
            pass: name.to_owned(),
            findings,
            waivers_used,
        });
    }

    Ok(FlowReport {
        passes,
        lock_dump,
        provenance_dump,
    })
}

/// The crate name (directory under `crates/`) owning `path`.
pub(crate) fn crate_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root.join("crates"))
        .ok()
        .and_then(|rel| rel.components().next())
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .unwrap_or_default()
}

pub(crate) fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_name_extraction() {
        let root = Path::new("/repo");
        assert_eq!(
            crate_of(root, Path::new("/repo/crates/mfs/src/mbox.rs")),
            "mfs"
        );
        assert_eq!(
            crate_of(root, Path::new("/repo/crates/server/src/a/b.rs")),
            "server"
        );
    }
}
