//! CLI for the workspace lint: `cargo run -p spamaware-xtask -- lint`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some(other) => {
            eprintln!("unknown command `{other}`");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!("usage: spamaware-xtask lint [--root <workspace-root>]");
}

fn lint(args: &[String]) -> ExitCode {
    let root = match parse_root(args) {
        Ok(root) => root,
        Err(msg) => {
            eprintln!("{msg}");
            usage();
            return ExitCode::from(2);
        }
    };
    match spamaware_xtask::lint_workspace(&root) {
        Ok(report) => {
            for finding in &report.findings {
                println!("{finding}");
            }
            let waived: usize = report.waivers_used.values().sum();
            if report.findings.is_empty() {
                println!(
                    "lint clean: {} files scanned, {waived} budgeted panic waivers in use",
                    report.files_scanned
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "lint failed: {} finding(s) across {} files",
                    report.findings.len(),
                    report.files_scanned
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("lint error: {e}");
            ExitCode::from(2)
        }
    }
}

/// `--root <path>` if given, else the workspace root containing this crate
/// (via `CARGO_MANIFEST_DIR`), else the current directory.
fn parse_root(args: &[String]) -> Result<PathBuf, String> {
    let mut it = args.iter();
    if let Some(arg) = it.next() {
        return match arg.as_str() {
            "--root" => it
                .next()
                .map(PathBuf::from)
                .ok_or_else(|| "--root needs a path".to_owned()),
            other => Err(format!("unknown flag `{other}`")),
        };
    }
    if let Some(manifest) = std::env::var_os("CARGO_MANIFEST_DIR") {
        let manifest = PathBuf::from(manifest);
        if let Some(root) = manifest.parent().and_then(|p| p.parent()) {
            return Ok(root.to_owned());
        }
    }
    Ok(PathBuf::from("."))
}
