//! CLI for the workspace static analysis.
//!
//! ```text
//! cargo run -p spamaware-xtask -- lint
//! cargo run -p spamaware-xtask -- lock-order blocking metrics-provenance
//! cargo run -p spamaware-xtask -- lock-order --dump
//! cargo run -p spamaware-xtask -- report --json
//! ```
//!
//! Several pass names may be given in one invocation; the process exits
//! non-zero if any pass produced findings. `report --json` runs every pass
//! and merges the findings into `results/xtask_report.json` plus a summary
//! table on stdout.

use spamaware_xtask::report::PassResult;
use std::path::PathBuf;
use std::process::ExitCode;

const PASSES: &[&str] = &[
    "lint",
    "lock-order",
    "blocking",
    "metrics-provenance",
    "report",
];

struct Cli {
    commands: Vec<String>,
    root: Option<PathBuf>,
    dump: bool,
    json: bool,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            usage();
            return ExitCode::from(2);
        }
    };
    if cli.commands.is_empty() {
        usage();
        return ExitCode::from(2);
    }
    let root = resolve_root(cli.root.clone());
    run(&cli, &root)
}

fn usage() {
    eprintln!(
        "usage: spamaware-xtask <pass>... [--root <workspace-root>] [--dump] [--json]\n\
         passes: lint | lock-order | blocking | metrics-provenance | report"
    );
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        commands: Vec::new(),
        root: None,
        dump: false,
        json: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                cli.root = Some(
                    it.next()
                        .map(PathBuf::from)
                        .ok_or_else(|| "--root needs a path".to_owned())?,
                );
            }
            "--dump" => cli.dump = true,
            "--json" => cli.json = true,
            name if PASSES.contains(&name) => cli.commands.push(name.to_owned()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(cli)
}

/// `--root` if given, else the workspace root containing this crate (via
/// `CARGO_MANIFEST_DIR`), else the current directory.
fn resolve_root(explicit: Option<PathBuf>) -> PathBuf {
    if let Some(root) = explicit {
        return root;
    }
    if let Some(manifest) = std::env::var_os("CARGO_MANIFEST_DIR") {
        let manifest = PathBuf::from(manifest);
        if let Some(root) = manifest.parent().and_then(|p| p.parent()) {
            return root.to_owned();
        }
    }
    PathBuf::from(".")
}

fn lint_pass(root: &std::path::Path) -> Result<PassResult, String> {
    let report = spamaware_xtask::lint_workspace(root).map_err(|e| format!("lint error: {e}"))?;
    println!("lint: {} files scanned", report.files_scanned);
    Ok(PassResult {
        pass: "lint".to_owned(),
        findings: report.findings,
        waivers_used: report.waivers_used,
    })
}

fn run(cli: &Cli, root: &std::path::Path) -> ExitCode {
    let want_report = cli.commands.iter().any(|c| c == "report");
    let want = |name: &str| want_report || cli.commands.iter().any(|c| c == name);
    let need_flow = want("lock-order") || want("blocking") || want("metrics-provenance");

    let mut results: Vec<PassResult> = Vec::new();
    if want("lint") {
        match lint_pass(root) {
            Ok(r) => results.push(r),
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::from(2);
            }
        }
    }
    if need_flow {
        let flow = match spamaware_xtask::flow_workspace(root) {
            Ok(flow) => flow,
            Err(e) => {
                eprintln!("flow analysis error: {e}");
                return ExitCode::from(2);
            }
        };
        if cli.dump {
            print!("{}", flow.lock_dump);
            if want("metrics-provenance") {
                print!("{}", flow.provenance_dump);
            }
        }
        for pass in flow.passes {
            if want(&pass.pass) {
                results.push(pass);
            }
        }
    }

    for r in &results {
        for finding in &r.findings {
            println!("{finding}");
        }
    }
    let total: usize = results.iter().map(|r| r.findings.len()).sum();

    if want_report {
        let json = spamaware_xtask::report::render_json(&results);
        if cli.json {
            let dir = root.join("results");
            let path = dir.join("xtask_report.json");
            if let Err(e) =
                std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &json))
            {
                eprintln!("report write error: {e}");
                return ExitCode::from(2);
            }
            println!("wrote {}", path.display());
        }
        print!("{}", spamaware_xtask::report::summary_table(&results));
    }

    if total == 0 {
        let waived: usize = results.iter().flat_map(|r| r.waivers_used.values()).sum();
        println!(
            "analysis clean: {} pass(es), {waived} budgeted waivers in use",
            results.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("analysis failed: {total} finding(s)");
        ExitCode::FAILURE
    }
}
