//! Comment- and string-aware source scanner.
//!
//! The lint passes operate on *code text* (source with comment bodies and
//! string/char contents blanked out) plus the *comment text* carried by each
//! line, so that a forbidden token inside a doc example or a string literal
//! never fires, while `// SAFETY:` and `// lint:allow(...)` annotations stay
//! visible. The scanner is a hand-rolled character state machine — no `syn`,
//! no external dependencies — which keeps it fast and honest about being a
//! token/line-level tool.

/// One physical source line after scanning.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// Source text with comment bodies and string/char-literal contents
    /// removed. Delimiters (`"`, `'`) are preserved so call shapes such as
    /// `.expect("")` remain recognizable.
    pub code: String,
    /// Concatenated comment text appearing on this line (line comments and
    /// the per-line slices of block comments).
    pub comment: String,
    /// Contents of string literals starting or continuing on this line, in
    /// source order (multi-line literals contribute one entry per line).
    /// Kept separate from `code` so passes that care about literal values
    /// (metrics provenance) can see them without un-blanking the code text.
    pub strings: Vec<String>,
}

/// A scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path as given to [`scan_file`] / [`scan_source`].
    pub path: String,
    /// Scanned lines, index 0 = line 1.
    pub lines: Vec<Line>,
    /// `true` for lines inside a `#[cfg(test)]` item or a `#[test]` fn.
    pub in_test: Vec<bool>,
}

impl SourceFile {
    /// Whether `rule` is waived on line `idx` (0-based) via a
    /// `lint:allow(<rule>)` comment on the same line or the line above.
    pub fn waived(&self, idx: usize, rule: &str) -> bool {
        let tag = format!("lint:allow({rule})");
        if self.lines[idx].comment.contains(&tag) {
            return true;
        }
        // A waiver on its own comment line covers the line below; a trailing
        // comment on a *code* line covers only that line.
        idx > 0 && {
            let prev = &self.lines[idx - 1];
            prev.comment.contains(&tag) && prev.code.trim().is_empty()
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nested block comments; the payload is the nesting depth.
    BlockComment(u32),
    Str,
    /// Raw string; the payload is the number of `#` delimiters.
    RawStr(u32),
    CharLit,
}

/// Reads and scans a file from disk.
pub fn scan_file(path: &std::path::Path) -> std::io::Result<SourceFile> {
    let text = std::fs::read_to_string(path)?;
    Ok(scan_source(&path.display().to_string(), &text))
}

/// Scans in-memory source text (used by the fixture self-tests).
pub fn scan_source(path: &str, text: &str) -> SourceFile {
    let lines = split_lines(text);
    let in_test = mark_test_regions(&lines);
    SourceFile {
        path: path.to_owned(),
        lines,
        in_test,
    }
}

#[allow(clippy::too_many_lines)]
fn split_lines(text: &str) -> Vec<Line> {
    let mut lines = Vec::new();
    let mut cur = Line::default();
    let mut cur_str = String::new();
    let mut in_str = false;
    let mut state = State::Code;
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            if in_str {
                // Multi-line literal: each line carries its own slice.
                cur.strings.push(std::mem::take(&mut cur_str));
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                    continue;
                }
                if c == '"' {
                    cur.code.push('"');
                    state = State::Str;
                    in_str = true;
                    i += 1;
                    continue;
                }
                // Raw strings: r"..", r#".."#, and byte-raw br#".."#.
                if (c == 'r' || c == 'b') && !prev_is_ident(&cur.code) {
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    if c == 'b' && chars.get(j) == Some(&'"') && j == i + 1 {
                        // b"..": plain byte string.
                        cur.code.push_str("b\"");
                        state = State::Str;
                        in_str = true;
                        i = j + 1;
                        continue;
                    }
                    let mut hashes = 0;
                    while chars.get(j + hashes as usize) == Some(&'#') {
                        hashes += 1;
                    }
                    if (c == 'r' || j > i + 1) && chars.get(j + hashes as usize) == Some(&'"') {
                        cur.code.push(c);
                        cur.code.push('"');
                        state = State::RawStr(hashes);
                        in_str = true;
                        i = j + hashes as usize + 1;
                        continue;
                    }
                }
                if c == '\'' {
                    // Distinguish char literals from lifetimes: `'a` followed
                    // by an identifier char but no closing quote is a
                    // lifetime; `'x'` and `'\n'` are char literals.
                    let is_char_lit = match next {
                        Some('\\') => true,
                        Some('\'') => true,
                        Some(n) => chars.get(i + 2) == Some(&'\'') || !is_ident_char(n),
                        None => false,
                    };
                    if is_char_lit {
                        cur.code.push('\'');
                        state = State::CharLit;
                        i += 1;
                        continue;
                    }
                    cur.code.push('\'');
                    i += 1;
                    continue;
                }
                cur.code.push(c);
                i += 1;
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    cur_str.push(c);
                    if let Some(&esc) = chars.get(i + 1) {
                        cur_str.push(esc);
                    }
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    cur.strings.push(std::mem::take(&mut cur_str));
                    in_str = false;
                    state = State::Code;
                    i += 1;
                } else {
                    cur_str.push(c);
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        cur.code.push('"');
                        cur.strings.push(std::mem::take(&mut cur_str));
                        in_str = false;
                        state = State::Code;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                cur_str.push(c);
                i += 1;
            }
            State::CharLit => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    cur.code.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    if in_str {
        cur.strings.push(std::mem::take(&mut cur_str));
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() || !cur.strings.is_empty() {
        lines.push(cur);
    }
    lines
}

fn prev_is_ident(code: &str) -> bool {
    code.chars().last().is_some_and(is_ident_char)
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Marks lines belonging to `#[cfg(test)]` items or `#[test]` functions by
/// brace tracking: the region opened by the first `{` after the attribute
/// runs until its matching `}` closes.
fn mark_test_regions(lines: &[Line]) -> Vec<bool> {
    let mut out = vec![false; lines.len()];
    let mut depth: i64 = 0;
    let mut pending_attr = false;
    let mut region_floor: Option<i64> = None;
    for (i, line) in lines.iter().enumerate() {
        if region_floor.is_some() {
            out[i] = true;
        }
        if line.code.contains("#[cfg(test)]") || line.code.contains("#[test]") {
            pending_attr = true;
            out[i] = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending_attr {
                        // The brace consumes the attribute either way; only
                        // open a region if one is not already active, but
                        // never let the flag leak past an enclosing region.
                        if region_floor.is_none() {
                            region_floor = Some(depth - 1);
                            out[i] = true;
                        }
                        pending_attr = false;
                    }
                }
                '}' => {
                    depth -= 1;
                    if region_floor.is_some_and(|floor| depth <= floor) {
                        region_floor = None;
                    }
                }
                // `#[cfg(test)] use …;` — attribute applied to a
                // braceless item ends here.
                ';' if pending_attr => pending_attr = false,
                _ => {}
            }
        }
    }
    out
}

/// Whether `token` occurs in `code` as a standalone token (no identifier
/// character on either side).
pub fn has_token(code: &str, token: &str) -> bool {
    find_token(code, token).is_some()
}

/// Finds the byte offset of a standalone occurrence of `token` in `code`.
pub fn find_token(code: &str, token: &str) -> Option<usize> {
    let token_starts_ident = token.chars().next().is_some_and(is_ident_char);
    let token_ends_ident = token.chars().next_back().is_some_and(is_ident_char);
    let mut start = 0;
    while let Some(pos) = code[start..].find(token) {
        let at = start + pos;
        let before_ok = !token_starts_ident
            || at == 0
            || !code[..at].chars().next_back().is_some_and(is_ident_char);
        let after = at + token.len();
        let after_ok =
            !token_ends_ident || !code[after..].chars().next().is_some_and(is_ident_char);
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + token.len().max(1);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = scan_source(
            "t.rs",
            "let x = \"SystemTime::now()\"; // Instant::now in comment\nlet y = 1;\n",
        );
        assert!(!f.lines[0].code.contains("SystemTime"));
        assert!(f.lines[0].comment.contains("Instant::now"));
        assert_eq!(f.lines[1].code, "let y = 1;");
    }

    #[test]
    fn raw_strings_and_chars() {
        let f = scan_source(
            "t.rs",
            "let p = r#\"panic!(\"x\")\"#;\nlet c = '\"';\nlet lt: &'static str = \"\";\n",
        );
        assert!(!f.lines[0].code.contains("panic!"));
        assert!(f.lines[1].code.contains("let c ="));
        assert!(f.lines[2].code.contains("'static str"));
    }

    #[test]
    fn block_comments_span_lines() {
        let f = scan_source("t.rs", "/* a\nunwrap()\n*/ let z = 0;\n");
        assert!(f.lines[1].code.is_empty());
        assert!(f.lines[1].comment.contains("unwrap"));
        assert!(f.lines[2].code.contains("let z"));
    }

    #[test]
    fn test_region_marking() {
        let src =
            "fn a() { 1; }\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let f = scan_source("t.rs", src);
        assert!(!f.in_test[0]);
        assert!(f.in_test[1] && f.in_test[2] && f.in_test[3] && f.in_test[4]);
        assert!(!f.in_test[5]);
    }

    #[test]
    fn inner_test_attr_does_not_leak_past_module_end() {
        // A `#[test]` inside an already-active `#[cfg(test)]` region must
        // not mark the next brace-block after the module closes.
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn b() {}\n}\nimpl S {\n    fn c(&self) { x.unwrap(); }\n}\n";
        let f = scan_source("t.rs", src);
        assert!(f.in_test[2] && f.in_test[3]);
        assert!(!f.in_test[5], "impl after test module marked as test");
        assert!(!f.in_test[6], "post-module body marked as test");
    }

    #[test]
    fn string_contents_are_collected_per_line() {
        let f = scan_source(
            "t.rs",
            "let a = reg.counter(\"live.accepted\");\nlet b = r#\"raw.name\"#;\nlet c = \"multi\nline\";\n",
        );
        assert_eq!(f.lines[0].strings, vec!["live.accepted".to_owned()]);
        assert_eq!(f.lines[1].strings, vec!["raw.name".to_owned()]);
        assert_eq!(f.lines[2].strings, vec!["multi".to_owned()]);
        assert_eq!(f.lines[3].strings, vec!["line".to_owned()]);
    }

    #[test]
    fn token_boundaries() {
        assert!(has_token("x.unwrap()", ".unwrap()"));
        assert!(!has_token("unsafe_code", "unsafe"));
        assert!(has_token("unsafe fn x()", "unsafe"));
        assert!(!has_token("my_thread_rng_fn()", "thread_rng"));
    }

    #[test]
    fn waiver_applies_to_same_and_next_line() {
        let src = "// lint:allow(panic): scheduler invariant\nx.unwrap();\ny.unwrap(); // lint:allow(panic): ok\nz.unwrap();\n";
        let f = scan_source("t.rs", src);
        assert!(f.waived(1, "panic"));
        assert!(f.waived(2, "panic"));
        assert!(!f.waived(3, "panic"));
    }
}
