//! Intra-workspace call-graph builder.
//!
//! Grows the line-level source model in [`crate::scan`] into a whole-
//! workspace flow model: per-function spans (by brace tracking), call
//! edges (by bare-name resolution within the workspace), and a crate
//! dependency map parsed from each crate's `Cargo.toml` so edges never
//! point into crates the caller cannot link against.
//!
//! Resolution is a deliberate over-approximation, in the same spirit as
//! the token-level lints: a method call `.name(…)` resolves to *every*
//! workspace function called `name` that takes `self` (trait methods
//! included), and a qualified call `Type::name(…)` to every function
//! called `name` implemented on a workspace type named `Type` (so
//! `File::open(…)` never resolves to `MfsStore::open`). That direction
//! of error is safe for the passes built on top (lock order, blocking
//! reachability): they may report a path that the types would rule out,
//! but they cannot miss a real one through the names they model. Calls
//! into non-workspace code (std, vendored crates) produce no edges; the
//! passes classify those leaves by token patterns instead.

use crate::scan::{find_token, SourceFile};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::Path;

/// Index into [`Workspace::fns`].
pub type FnId = usize;

/// One function (or default trait method) with a body.
#[derive(Debug)]
pub struct FnInfo {
    /// Bare name, e.g. `deliver`.
    pub name: String,
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// 0-based line of the `fn` keyword.
    pub start: usize,
    /// 0-based line where the body `{` opens (≥ `start`).
    pub body_start: usize,
    /// 0-based line of the closing `}` (inclusive).
    pub end: usize,
    /// Declared inside a `#[cfg(test)]` region or `#[test]` fn.
    pub is_test: bool,
    /// Signature mentions `self` (method / associated method with receiver).
    pub has_self: bool,
    /// Joined signature text from the `fn` keyword to the body `{`.
    pub sig: String,
    /// Self type of the enclosing `impl` block (or name of the enclosing
    /// `trait` for default methods); `None` for free functions.
    pub owner: Option<String>,
}

/// One syntactic call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Calling function.
    pub caller: FnId,
    /// 0-based line in the caller's file.
    pub line: usize,
    /// Byte offset of the callee name within the line's code text.
    pub byte: usize,
    /// Bare callee name.
    pub name: String,
    /// `.name(…)` method-call form.
    pub method: bool,
    /// `Qual::name(…)` — the last path segment before the name, if any.
    pub qualifier: Option<String>,
}

/// The scanned workspace plus its call graph.
pub struct Workspace {
    /// Scanned source files, in path order.
    pub files: Vec<SourceFile>,
    /// Crate (directory under `crates/`) of each file, parallel to `files`.
    pub crates: Vec<String>,
    /// Transitive workspace dependencies per crate, including the crate
    /// itself. Missing entries mean "depends on everything" (fixtures).
    pub deps: BTreeMap<String, BTreeSet<String>>,
    /// All functions, in (file, body-open) order.
    pub fns: Vec<FnInfo>,
    /// Call sites grouped by caller, each sorted by (line, byte).
    pub calls: Vec<Vec<CallSite>>,
    /// Bare name → functions with that name.
    pub by_name: BTreeMap<String, Vec<FnId>>,
}

impl Workspace {
    /// Loads `crates/*/src/**/*.rs` under `root` and builds the graph,
    /// with crate dependencies parsed from each crate's `Cargo.toml`.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut paths = Vec::new();
        let crates_dir = root.join("crates");
        for entry in std::fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                crate::collect_rs_files(&src, &mut paths)?;
            }
        }
        paths.sort();
        let mut files = Vec::new();
        let mut crate_names = Vec::new();
        for p in &paths {
            files.push(crate::scan::scan_file(p)?);
            crate_names.push(crate::crate_of(root, p));
        }
        let deps = crate_deps(root)?;
        Ok(Workspace::build(files, crate_names, deps))
    }

    /// Builds a workspace from in-memory sources (fixture self-tests and
    /// property tests). Crates are inferred from `crates/<name>/src` path
    /// segments; every crate is assumed to depend on every other.
    pub fn from_sources(sources: &[(&str, &str)]) -> Workspace {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(p, t)| crate::scan::scan_source(p, t))
            .collect();
        let crates = files.iter().map(|f| path_crate(&f.path)).collect();
        Workspace::build(files, crates, BTreeMap::new())
    }

    fn build(
        files: Vec<SourceFile>,
        crates: Vec<String>,
        deps: BTreeMap<String, BTreeSet<String>>,
    ) -> Workspace {
        let mut fns = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            extract_fns(fi, file, &mut fns);
        }
        let mut by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        for (id, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(id);
        }
        // Innermost owning function per (file, line).
        let mut owner: Vec<Vec<Option<FnId>>> =
            files.iter().map(|f| vec![None; f.lines.len()]).collect();
        for (id, f) in fns.iter().enumerate() {
            for line in f.body_start..=f.end.min(owner[f.file].len().saturating_sub(1)) {
                owner[f.file][line] = Some(id);
            }
        }
        let mut calls: Vec<Vec<CallSite>> = vec![Vec::new(); fns.len()];
        for (fi, file) in files.iter().enumerate() {
            for (li, line) in file.lines.iter().enumerate() {
                let Some(caller) = owner[fi][li] else {
                    continue;
                };
                // The decl line of the owner must not read its own name
                // as a call; extract_calls skips `fn `-preceded idents.
                for mut site in extract_calls(&line.code) {
                    site.caller = caller;
                    site.line = li;
                    calls[caller].push(site);
                }
            }
        }
        Workspace {
            files,
            crates,
            deps,
            fns,
            calls,
            by_name,
        }
    }

    /// Resolves a call site to workspace functions: same bare name,
    /// non-test, reachable through the caller's crate dependencies, and
    /// (for method calls) taking `self`. Method calls with ubiquitous
    /// std-container names ([`COMMON_METHODS`]) resolve to nothing — a
    /// `.len()` on a `Vec` must not grow an edge to every workspace type
    /// with a `len` method; the flow passes model those receivers (lock
    /// guards, store backends) through their own token patterns instead.
    ///
    /// A *method* call never resolves back to its own caller: wrappers
    /// delegating to a same-named inner method (`self.inner.lock().f()`
    /// inside `fn f`) are everywhere in this workspace, and the self-edge
    /// would report every such delegation as recursion under lock. The
    /// cost is missing genuinely recursive methods that re-lock — direct
    /// recursion via a plain `f()` call still keeps its edge.
    pub fn callees(&self, site: &CallSite) -> Vec<FnId> {
        if site.method && COMMON_METHODS.contains(&site.name.as_str()) {
            return Vec::new();
        }
        let caller = &self.fns[site.caller];
        let caller_crate = &self.crates[caller.file];
        let allowed = self.deps.get(caller_crate);
        self.by_name
            .get(&site.name)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&id| {
                        let f = &self.fns[id];
                        if f.is_test {
                            return false;
                        }
                        if site.method && (!f.has_self || id == site.caller) {
                            return false;
                        }
                        // A qualified call resolves by owner: `Type::f(…)`
                        // only to fns implemented on a `Type`, `Self::f(…)`
                        // to the caller's own impl block, and module paths
                        // (`frame::encode(…)`) only to free functions.
                        if let Some(q) = &site.qualifier {
                            let ok = if q == "Self" {
                                caller.owner.is_none() || f.owner == caller.owner
                            } else if q.starts_with(char::is_uppercase) {
                                f.owner.as_deref() == Some(q.as_str())
                            } else {
                                f.owner.is_none()
                            };
                            if !ok {
                                return false;
                            }
                        }
                        match allowed {
                            Some(set) => set.contains(&self.crates[f.file]),
                            None => true,
                        }
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// All non-test functions with the given bare name.
    pub fn fns_named(&self, name: &str) -> Vec<FnId> {
        self.by_name
            .get(name)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&id| !self.fns[id].is_test)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Breadth-first reachability from `roots` along call edges. Returns
    /// predecessor call sites for path reconstruction: `came_from[f]` is
    /// the call site through which `f` was first reached (roots absent).
    pub fn reachable(&self, roots: &[FnId]) -> BTreeMap<FnId, CallSite> {
        let mut came_from = BTreeMap::new();
        let mut seen: BTreeSet<FnId> = roots.iter().copied().collect();
        let mut queue: Vec<FnId> = roots.to_vec();
        while let Some(f) = queue.pop() {
            for site in &self.calls[f] {
                for callee in self.callees(site) {
                    if seen.insert(callee) {
                        came_from.insert(callee, site.clone());
                        queue.push(callee);
                    }
                }
            }
        }
        came_from
    }

    /// Human-readable call chain ending at `target`, e.g.
    /// `master_loop → handle → lookup`, reconstructed from [`Workspace::reachable`].
    pub fn chain_to(&self, came_from: &BTreeMap<FnId, CallSite>, target: FnId) -> String {
        let mut names = vec![self.fns[target].name.clone()];
        let mut cur = target;
        while let Some(site) = came_from.get(&cur) {
            cur = site.caller;
            names.push(self.fns[cur].name.clone());
            if names.len() > self.fns.len() {
                break;
            }
        }
        names.reverse();
        names.join(" → ")
    }

    /// Deterministic dump of every resolved edge, one per line:
    /// `file:caller -> file:callee`, sorted and deduplicated. Byte-identical
    /// across runs and stable under formatting-only rewrites of the input.
    pub fn dump_edges(&self) -> String {
        let mut rows = BTreeSet::new();
        for sites in &self.calls {
            for site in sites {
                let from = &self.fns[site.caller];
                for callee in self.callees(site) {
                    let to = &self.fns[callee];
                    rows.insert(format!(
                        "{}:{} -> {}:{}",
                        self.files[from.file].path, from.name, self.files[to.file].path, to.name
                    ));
                }
            }
        }
        let mut out = String::new();
        for r in rows {
            out.push_str(&r);
            out.push('\n');
        }
        out
    }
}

/// Crate name from a `crates/<name>/src/…` path (fixtures).
fn path_crate(path: &str) -> String {
    let norm = path.replace('\\', "/");
    norm.split("crates/")
        .nth(1)
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("")
        .to_owned()
}

/// Parses `crates/*/Cargo.toml` `[dependencies]` sections for
/// `path = "../<crate>"` entries and closes them transitively. Only
/// workspace-internal paths count; vendored deps are outside the model.
fn crate_deps(root: &Path) -> io::Result<BTreeMap<String, BTreeSet<String>>> {
    // Workspace-inherited deps (`spamaware-dnsbl.workspace = true`) name
    // the *package*; map package names to crate directories via the root
    // manifest's `[workspace.dependencies]` path entries.
    let mut pkg_to_dir: BTreeMap<String, String> = BTreeMap::new();
    if let Ok(text) = std::fs::read_to_string(root.join("Cargo.toml")) {
        let mut in_ws_deps = false;
        for line in text.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                in_ws_deps = line == "[workspace.dependencies]";
                continue;
            }
            if !in_ws_deps {
                continue;
            }
            if let (Some(pkg), Some(rest)) = (
                line.split('=').next(),
                line.split("path = \"crates/").nth(1),
            ) {
                if let Some(dir) = rest.split('"').next() {
                    if !dir.is_empty() && !dir.contains('/') {
                        pkg_to_dir.insert(pkg.trim().to_owned(), dir.to_owned());
                    }
                }
            }
        }
    }
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let crates_dir = root.join("crates");
    for entry in std::fs::read_dir(&crates_dir)? {
        let dir = entry?.path();
        let manifest = dir.join("Cargo.toml");
        if !manifest.is_file() {
            continue;
        }
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let text = std::fs::read_to_string(&manifest)?;
        let mut in_deps = false;
        let mut deps = BTreeSet::new();
        deps.insert(name.clone());
        for line in text.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                in_deps = line == "[dependencies]";
                continue;
            }
            if !in_deps {
                continue;
            }
            if let Some(rest) = line.split("path = \"../").nth(1) {
                if let Some(dep) = rest.split('"').next() {
                    // "../../vendor/x" re-splits to a leading slash — only
                    // sibling crates ("../<dir>") are workspace deps.
                    if !dep.is_empty() && !dep.starts_with('/') && !dep.contains("..") {
                        deps.insert(dep.trim_end_matches('/').to_owned());
                    }
                }
            }
            // `spamaware-dnsbl.workspace = true` /
            // `spamaware-dnsbl = { workspace = true }` forms.
            let pkg = line
                .split(['.', '=', ' '])
                .next()
                .unwrap_or_default()
                .trim();
            if let Some(dir) = pkg_to_dir.get(pkg) {
                deps.insert(dir.clone());
            }
        }
        direct.insert(name, deps);
    }
    // Transitive closure (the workspace is small; iterate to fixpoint).
    let mut changed = true;
    while changed {
        changed = false;
        let snapshot = direct.clone();
        for deps in direct.values_mut() {
            let mut add = BTreeSet::new();
            for d in deps.iter() {
                if let Some(dd) = snapshot.get(d) {
                    add.extend(dd.iter().cloned());
                }
            }
            let before = deps.len();
            deps.extend(add);
            changed |= deps.len() != before;
        }
    }
    Ok(direct)
}

/// A function declaration seen but whose body `{` has not opened yet.
struct Pending {
    name: String,
    start: usize,
    /// `(`/`[` nesting inside the signature, so `;` inside `[u8; 4]` does
    /// not end the declaration.
    nest: i64,
}

fn extract_fns(file_idx: usize, file: &SourceFile, out: &mut Vec<FnInfo>) {
    let mut depth: i64 = 0;
    let mut pending: Option<Pending> = None;
    // Open functions: (index into `out`, brace depth before the body `{`).
    let mut stack: Vec<(usize, i64)> = Vec::new();
    // Open `impl`/`trait` blocks: (self-type name, depth before the `{`).
    let mut impl_stack: Vec<(Option<String>, i64)> = Vec::new();
    // `impl`/`trait` header seen, `{` not yet: accumulated header text.
    let mut pending_impl: Option<String> = None;
    for (li, line) in file.lines.iter().enumerate() {
        let code = &line.code;
        if pending.is_none() {
            let header_slice = code.find('{').map_or(code.as_str(), |i| &code[..i]);
            if let Some(header) = pending_impl.as_mut() {
                header.push(' ');
                header.push_str(header_slice);
            } else if let Some(at) = find_token(code, "impl").or_else(|| find_token(code, "trait"))
            {
                // Not `impl Trait` inside a fn signature on this line.
                let first_decl = fn_decl_positions(code).keys().min().copied();
                if at < code.find('{').unwrap_or(usize::MAX) && first_decl.is_none_or(|d| at < d) {
                    pending_impl = Some(code[at..code.find('{').unwrap_or(code.len())].to_owned());
                }
            }
        }
        let decls = fn_decl_positions(code);
        for (pos, c) in code.char_indices() {
            if let Some(p) = pending.as_mut() {
                match c {
                    '(' | '[' => p.nest += 1,
                    ')' | ']' => p.nest -= 1,
                    ';' if p.nest == 0 => pending = None,
                    '{' => {
                        let p = pending.take().unwrap_or(Pending {
                            name: String::new(),
                            start: li,
                            nest: 0,
                        });
                        let sig = join_sig(file, p.start, li);
                        let has_self = find_token(&sig, "self").is_some();
                        out.push(FnInfo {
                            name: p.name,
                            file: file_idx,
                            start: p.start,
                            body_start: li,
                            end: li,
                            is_test: file.in_test[p.start],
                            has_self,
                            sig,
                            owner: impl_stack.last().and_then(|(o, _)| o.clone()),
                        });
                        stack.push((out.len() - 1, depth));
                        depth += 1;
                    }
                    _ => {}
                }
                continue;
            }
            if let Some(name) = decls.get(&pos) {
                pending = Some(Pending {
                    name: name.clone(),
                    start: li,
                    nest: 0,
                });
                continue;
            }
            match c {
                '{' => {
                    if let Some(header) = pending_impl.take() {
                        impl_stack.push((impl_self_type(&header), depth));
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    while stack.last().is_some_and(|&(_, d)| d == depth) {
                        let (id, _) = stack.pop().unwrap_or_default();
                        out[id].end = li;
                    }
                    while impl_stack.last().is_some_and(|&(_, d)| d == depth) {
                        impl_stack.pop();
                    }
                }
                _ => {}
            }
        }
    }
    // Unbalanced input (truncated fixture): close remaining spans at EOF.
    let last = file.lines.len().saturating_sub(1);
    while let Some((id, _)) = stack.pop() {
        out[id].end = last;
    }
}

/// Extracts the self-type name from an `impl`/`trait` header: the first
/// type identifier after the generics, taking the segment after ` for `
/// when present. `impl<B: Backend> Backend for SyncBackend<B>` →
/// `SyncBackend`; `trait Backend: Send` → `Backend`.
fn impl_self_type(header: &str) -> Option<String> {
    let rest = header.trim_start();
    let rest = rest
        .strip_prefix("impl")
        .or_else(|| rest.strip_prefix("trait"))?;
    let mut rest = rest.trim_start();
    if rest.starts_with('<') {
        let mut depth = 0i64;
        let mut after = rest.len();
        for (i, c) in rest.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        after = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = &rest[after..];
    }
    let target = match rest.rfind(" for ") {
        Some(i) => &rest[i + 5..],
        None => rest,
    };
    // First type identifier, skipping `&`/`dyn`/`mut` and leading path
    // segments (`crate::Type`, `module::Type` → `Type`).
    let mut t = target.trim_start();
    loop {
        if let Some(stripped) = t.strip_prefix('&') {
            t = stripped.trim_start();
            continue;
        }
        if let Some(stripped) = t.strip_prefix("dyn ").or_else(|| t.strip_prefix("mut ")) {
            t = stripped.trim_start();
            continue;
        }
        let end = t
            .find(|c: char| !(c.is_alphanumeric() || c == '_'))
            .unwrap_or(t.len());
        if end == 0 {
            return None;
        }
        if t[end..].starts_with("::") {
            t = &t[end + 2..];
            continue;
        }
        return Some(t[..end].to_owned());
    }
}

fn join_sig(file: &SourceFile, start: usize, body_line: usize) -> String {
    let mut sig = String::new();
    for li in start..=body_line.min(file.lines.len() - 1) {
        let code = &file.lines[li].code;
        let slice = if li == body_line {
            code.split('{').next().unwrap_or(code)
        } else {
            code
        };
        sig.push_str(slice.trim());
        sig.push(' ');
    }
    sig
}

/// Byte offset of each `fn` declaration's *name* on this line → the name.
fn fn_decl_positions(code: &str) -> BTreeMap<usize, String> {
    let mut out = BTreeMap::new();
    let mut from = 0;
    while let Some(rel) = code[from..].find("fn") {
        let at = from + rel;
        from = at + 2;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = &code[at + 2..];
        if !before_ok || !after.starts_with([' ', '\t']) {
            continue;
        }
        let rest = after.trim_start();
        let name: String = rest
            .chars()
            .take_while(|&c| c.is_alphanumeric() || c == '_')
            .collect();
        if name.is_empty() {
            continue;
        }
        let name_at = at + 2 + (after.len() - rest.len());
        out.insert(name_at, name);
    }
    out
}

/// Method names that are overwhelmingly std-container / std-trait calls;
/// resolving them by bare name would connect nearly every function to
/// every collection-like workspace type. Excluded from *method-call*
/// resolution only — free and `Type::name` calls still resolve.
pub const COMMON_METHODS: &[&str] = &[
    "len",
    "is_empty",
    "push",
    "pop",
    "get",
    "get_mut",
    "insert",
    "remove",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "clone",
    "clear",
    "entry",
    "extend",
    "drain",
    "retain",
    "split",
    "join",
    "lock",
    "read",
    "write",
    "flush",
    "send",
    "recv",
    "new",
    "default",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "drop",
    "as_ref",
    "as_mut",
    "as_str",
    "as_bytes",
    "to_owned",
    "to_string",
    "to_vec",
    "into",
    "from",
    "map",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok",
    "err",
    "take",
    "replace",
    "start",
    "stop",
    "record",
    "add",
    "inc",
    "set",
    "max",
    "min",
    "sum",
    "count",
    "keys",
    "values",
    "sort",
    "last",
    "first",
    "find",
    "filter",
    "any",
    "all",
    "position",
    "starts_with",
    "ends_with",
    "trim",
    "parse",
    "resize",
    "truncate",
    // Dispatcher names implemented by unrelated types in several crates
    // (the SMTP command parser, the sim engine's actor trait, span
    // handles); bare-name resolution would route the live master into
    // the discrete-event simulation's delivery path.
    "handle",
];

const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "in", "as", "loop", "move", "fn", "let", "else",
    "impl", "where", "pub", "dyn", "use", "mod", "ref", "mut", "box", "await", "async", "unsafe",
];

/// Extracts `name(`, `.name(`, and `Qual::name(` call shapes from one
/// line of code text. `caller`/`line` are left for the builder to fill.
pub(crate) fn extract_calls(code: &str) -> Vec<CallSite> {
    let mut out = Vec::new();
    if code.trim_start().starts_with("#[") || code.trim_start().starts_with("#![") {
        return out;
    }
    for (pos, c) in code.char_indices() {
        if c != '(' {
            continue;
        }
        let head = &code[..pos];
        let name: String = head
            .chars()
            .rev()
            .take_while(|&c| c.is_alphanumeric() || c == '_')
            .collect::<String>()
            .chars()
            .rev()
            .collect();
        if name.is_empty()
            || name.chars().next().is_some_and(char::is_numeric)
            || KEYWORDS.contains(&name.as_str())
        {
            continue;
        }
        let name_at = pos - name.len();
        let before = &code[..name_at];
        // `fn name(` is the declaration, not a call.
        let head_trim = before.trim_end();
        if head_trim.ends_with("fn")
            && !head_trim[..head_trim.len() - 2]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            continue;
        }
        let (method, qualifier) = if before.ends_with('.') {
            (true, None)
        } else if let Some(head) = before.strip_suffix("::") {
            let q: String = head
                .chars()
                .rev()
                .take_while(|&c| c.is_alphanumeric() || c == '_')
                .collect::<String>()
                .chars()
                .rev()
                .collect();
            (false, (!q.is_empty()).then_some(q))
        } else {
            (false, None)
        };
        out.push(CallSite {
            caller: 0,
            line: 0,
            byte: name_at,
            name,
            method,
            qualifier,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "\
pub struct S;
impl S {
    pub fn alpha(&self) -> u8 {
        self.beta()
    }
    fn beta(&self) -> u8 {
        helper(1)
    }
}
fn helper(x: u8) -> u8 {
    x
}
#[cfg(test)]
mod tests {
    fn t() {
        helper(2);
    }
}
";

    fn ws() -> Workspace {
        Workspace::from_sources(&[("crates/demo/src/lib.rs", SRC)])
    }

    #[test]
    fn spans_and_names() {
        let ws = ws();
        let names: Vec<&str> = ws.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["alpha", "beta", "helper", "t"]);
        assert!(ws.fns[0].has_self && !ws.fns[2].has_self);
        assert!(ws.fns[3].is_test && !ws.fns[2].is_test);
        assert_eq!(ws.fns[2].start, 9);
        assert_eq!(ws.fns[2].end, 11);
    }

    #[test]
    fn edges_resolve_methods_to_self_fns_only() {
        let ws = ws();
        let alpha_calls = &ws.calls[0];
        assert_eq!(alpha_calls.len(), 1);
        assert!(alpha_calls[0].method);
        assert_eq!(ws.callees(&alpha_calls[0]), vec![1]);
        let beta_calls = &ws.calls[1];
        assert_eq!(ws.callees(&beta_calls[0]), vec![2]);
    }

    #[test]
    fn test_fns_produce_no_resolvable_targets() {
        let ws = ws();
        // `t` calls helper, but helper is reachable; what must not happen
        // is resolution *into* test fns from non-test code.
        let site = CallSite {
            caller: 2,
            line: 0,
            byte: 0,
            name: "t".to_owned(),
            method: false,
            qualifier: None,
        };
        assert!(ws.callees(&site).is_empty());
    }

    #[test]
    fn reachability_and_chain() {
        let ws = ws();
        let came = ws.reachable(&[0]);
        assert!(came.contains_key(&2), "alpha → beta → helper");
        assert_eq!(ws.chain_to(&came, 2), "alpha → beta → helper");
    }

    #[test]
    fn trait_decls_without_bodies_are_skipped() {
        let ws = Workspace::from_sources(&[(
            "crates/demo/src/lib.rs",
            "trait T {\n    fn decl(&self, x: [u8; 4]) -> u8;\n    fn with_default(&self) -> u8 {\n        1\n    }\n}\n",
        )]);
        let names: Vec<&str> = ws.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["with_default"]);
    }

    #[test]
    fn multiline_signatures_open_where_the_brace_is() {
        let ws = Workspace::from_sources(&[(
            "crates/demo/src/lib.rs",
            "fn long(\n    a: u8,\n    b: u8,\n) -> u8\nwhere\n    u8: Copy,\n{\n    a + b\n}\n",
        )]);
        assert_eq!(ws.fns.len(), 1);
        assert_eq!(ws.fns[0].start, 0);
        assert_eq!(ws.fns[0].body_start, 6);
        assert_eq!(ws.fns[0].end, 8);
    }

    #[test]
    fn call_shapes() {
        let sites = extract_calls("let x = Reply::new(a.len(), helper(1));");
        let names: Vec<(&str, bool, Option<&str>)> = sites
            .iter()
            .map(|s| (s.name.as_str(), s.method, s.qualifier.as_deref()))
            .collect();
        assert_eq!(
            names,
            [
                ("new", false, Some("Reply")),
                ("len", true, None),
                ("helper", false, None)
            ]
        );
        assert!(extract_calls("foo!(bar)").is_empty());
        assert!(extract_calls("if (a) {}").is_empty());
        assert!(extract_calls("#[derive(Debug)]").is_empty());
    }

    #[test]
    fn dump_is_sorted_and_stable() {
        let a = ws().dump_edges();
        let b = ws().dump_edges();
        assert_eq!(a, b);
        assert!(a.contains("alpha -> crates/demo/src/lib.rs:beta"));
    }
}
