//! Domain-invariant lint.
//!
//! Two repo-specific rules that the type system alone does not fully close
//! off:
//!
//! 1. **Reply provenance** — SMTP reply codes are part of the protocol
//!    surface the paper's figures depend on (550 bounces drive Fig. 8, 250
//!    acknowledgements drive goodput). Every reply must come from a named
//!    constructor in `crates/smtp/src/reply.rs`; ad-hoc `Reply::new(…)`
//!    calls elsewhere scatter code/text pairs and drift out of RFC shape.
//!    Waive deliberate pass-throughs with `lint:allow(reply-ctor)`.
//!
//! 2. **MFS refcount confinement** — the shared-record refcount fields
//!    (`KeyRecord::delta`, `SharedEntry::refs`) implement §6.1's "a shared
//!    record cannot be deleted until it is deleted from all MFS files that
//!    share it". All mutation must stay inside `crates/mfs/src/mfs_store.rs`
//!    (the log-structured replay logic) or `crates/mfs/src/fsck.rs` (the
//!    offline repair pass that rebuilds the same accounting from disk);
//!    the fields are crate-private, and this pass keeps textual
//!    regressions (e.g. a helper moved to another module) from reopening
//!    the hole. Waive with `lint:allow(mfs-refcount)`.

use crate::findings::Finding;
use crate::scan::SourceFile;

const REPLY_HOME: &str = "smtp/src/reply.rs";
const REFCOUNT_HOMES: &[&str] = &["mfs/src/mfs_store.rs", "mfs/src/fsck.rs"];
const REFCOUNT_FIELDS: &[&str] = &["refs", "delta"];

/// Runs both invariant rules over one file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let norm = file.path.replace('\\', "/");
    if !norm.ends_with(REPLY_HOME) {
        check_reply_provenance(file, &mut out);
    }
    if norm.contains("mfs/src/") && !REFCOUNT_HOMES.iter().any(|h| norm.ends_with(h)) {
        check_refcount_confinement(file, &mut out);
    }
    out
}

fn check_reply_provenance(file: &SourceFile, out: &mut Vec<Finding>) {
    for (i, line) in file.lines.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        for ctor in ["Reply::new(", "Reply::multiline("] {
            if line.code.contains(ctor) && !file.waived(i, "reply-ctor") {
                out.push(Finding::new(
                    &file.path,
                    i + 1,
                    "reply-provenance",
                    format!(
                        "`{ctor}…)` outside smtp/src/reply.rs — add a named constructor there \
                         so the code/text pair is defined once"
                    ),
                ));
            }
        }
    }
}

fn check_refcount_confinement(file: &SourceFile, out: &mut Vec<Finding>) {
    for (i, line) in file.lines.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        for field in REFCOUNT_FIELDS {
            if (mutates_field(&line.code, field) || initializes_field(&line.code, field))
                && !file.waived(i, "mfs-refcount")
            {
                out.push(Finding::new(
                    &file.path,
                    i + 1,
                    "mfs-refcount",
                    format!(
                        "refcount field `{field}` touched outside mfs_store.rs — §6.1 refcount \
                         accounting must stay next to the replay logic"
                    ),
                ));
            }
        }
    }
}

/// `….field = …`, `+=`, `-=` — but not `==`.
fn mutates_field(code: &str, field: &str) -> bool {
    let pat = format!(".{field}");
    let mut from = 0;
    while let Some(pos) = code[from..].find(&pat) {
        let after = from + pos + pat.len();
        from = after;
        let rest = code[after..].trim_start();
        if let Some(op) = rest.chars().next() {
            let two: String = rest.chars().take(2).collect();
            if two == "+=" || two == "-=" || (op == '=' && !two.starts_with("==")) {
                return true;
            }
        }
    }
    false
}

/// Struct-literal initialization `field: value` (outside a type context is
/// indistinguishable at token level, so any `refs:`/`delta:` init counts).
fn initializes_field(code: &str, field: &str) -> bool {
    let pat = format!("{field}:");
    let mut from = 0;
    while let Some(pos) = code[from..].find(&pat) {
        let at = from + pos;
        from = at + pat.len();
        let boundary = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '.');
        // `field::` is a path, not an initializer.
        if boundary && !code[at + pat.len()..].starts_with(':') {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_source;

    #[test]
    fn ad_hoc_reply_is_flagged_outside_home() {
        let f = scan_source(
            "crates/smtp/src/session.rs",
            "fn a() -> Reply { Reply::new(452, \"\") }\n",
        );
        assert_eq!(check(&f).len(), 1);
    }

    #[test]
    fn reply_home_is_exempt() {
        let f = scan_source(
            "crates/smtp/src/reply.rs",
            "pub fn ok() -> Reply { Reply::new(250, \"\") }\n",
        );
        assert!(check(&f).is_empty());
    }

    #[test]
    fn refcount_mutation_flagged_outside_store() {
        let f = scan_source(
            "crates/mfs/src/compact.rs",
            "fn a(e: &mut SharedEntry) { e.refs -= 1; }\n",
        );
        assert_eq!(check(&f).len(), 1);
    }

    #[test]
    fn refcount_comparison_is_fine() {
        let f = scan_source(
            "crates/mfs/src/compact.rs",
            "fn a(e: &SharedEntry) -> bool { e.refs == 0 && e.delta <= 1 }\n",
        );
        assert!(check(&f).is_empty());
    }

    #[test]
    fn waivers_apply() {
        let src = "// lint:allow(reply-ctor): proxying a parsed upstream code\nfn a(c: u16) -> Reply { Reply::new(c, \"\") }\n";
        let f = scan_source("crates/core/src/live.rs", src);
        assert!(check(&f).is_empty());
    }

    #[test]
    fn unrelated_fields_do_not_match() {
        let f = scan_source(
            "crates/mfs/src/other.rs",
            "fn a(s: &mut Stats) { s.prefs = 1; s.refsx = 2; }\n",
        );
        assert!(check(&f).is_empty());
    }
}
