//! Panic-safety lint.
//!
//! A mail server must not abort on malformed input (paper §4: the harvesting
//! attack is exactly a stream of hostile input). Non-test code in the scoped
//! crates (`server`, `smtp`, `mfs`, `dnsbl`) may not call `.unwrap()` /
//! `.expect(…)` or invoke `panic!` / `unreachable!` / `todo!` /
//! `unimplemented!`; errors travel as typed `Result`s instead.
//!
//! Genuine internal invariants (e.g. scheduler bookkeeping that cannot fail
//! without a bug in the engine itself) are waived per line with
//! `// lint:allow(panic): <why>`. Waivers are budgeted: the checked-in
//! budget file caps the waiver count per crate and may only shrink — adding
//! a waiver without raising the discussion in review fails the lint, and a
//! stale (too-high) budget fails too, forcing the ratchet downward.

use crate::findings::Finding;
use crate::scan::{find_token, SourceFile};
use std::collections::BTreeMap;

const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// Result of the pass over one file: findings plus the waivers it consumed.
pub struct PanicScan {
    /// Unwaived panic sites.
    pub findings: Vec<Finding>,
    /// Number of `lint:allow(panic)` waivers actually covering a panic site.
    pub waivers_used: usize,
}

/// Runs the panic-safety pass over one scoped file.
pub fn check(file: &SourceFile) -> PanicScan {
    let mut findings = Vec::new();
    let mut waivers_used = 0;
    for (i, line) in file.lines.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        let mut hits = 0;
        for tok in PANIC_TOKENS {
            let mut from = 0;
            while let Some(pos) = line.code[from..].find(tok) {
                hits += 1;
                from += pos + tok.len();
            }
        }
        if hits == 0 {
            continue;
        }
        if file.waived(i, "panic") {
            waivers_used += 1;
        } else {
            findings.push(Finding::new(
                &file.path,
                i + 1,
                "panic-safety",
                format!(
                    "{hits} panic site(s) in non-test code — return a typed error, or waive \
                     a true invariant with lint:allow(panic) and budget it"
                ),
            ));
        }
    }
    PanicScan {
        findings,
        waivers_used,
    }
}

/// Parses the shrink-only waiver budget file: `crate = count` lines,
/// `#` comments.
pub fn parse_budget(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let mut out = BTreeMap::new();
    for (n, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or_default().trim();
        if line.is_empty() {
            continue;
        }
        let Some((name, count)) = line.split_once('=') else {
            return Err(format!("budget line {}: expected `crate = count`", n + 1));
        };
        let count: usize = count
            .trim()
            .parse()
            .map_err(|e| format!("budget line {}: {e}", n + 1))?;
        out.insert(name.trim().to_owned(), count);
    }
    Ok(out)
}

/// Compares used waivers against the budget. Exceeding the budget fails
/// (shrink-only); a budget above actual use fails too, so the ceiling
/// ratchets down as waivers are removed.
pub fn check_budget(
    used: &BTreeMap<String, usize>,
    budget: &BTreeMap<String, usize>,
    budget_path: &str,
) -> Vec<Finding> {
    check_budget_as(used, budget, budget_path, "panic-budget", "panic")
}

/// [`check_budget`] with a configurable rule name and waiver kind, so the
/// concurrency passes (lock-order / blocking / metrics-provenance) can reuse
/// the same shrink-only ratchet with `<rule>/<crate>` budget keys.
pub fn check_budget_as(
    used: &BTreeMap<String, usize>,
    budget: &BTreeMap<String, usize>,
    budget_path: &str,
    rule: &'static str,
    what: &str,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for (krate, &n) in used {
        let allowed = budget.get(krate).copied().unwrap_or(0);
        if n > allowed {
            out.push(Finding::new(
                budget_path,
                0,
                rule,
                format!(
                    "crate `{krate}` uses {n} {what} waivers, budget allows {allowed} (shrink-only)"
                ),
            ));
        }
    }
    for (krate, &allowed) in budget {
        let n = used.get(krate).copied().unwrap_or(0);
        if n < allowed {
            out.push(Finding::new(
                budget_path,
                0,
                rule,
                format!("crate `{krate}` budget is stale: {allowed} allowed but only {n} used — ratchet it down"),
            ));
        }
    }
    out
}

/// True when a code line contains any panic token (used by fixtures).
pub fn has_panic_token(code: &str) -> bool {
    PANIC_TOKENS
        .iter()
        .any(|t| find_token(code, t).is_some() || code.contains(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_source;

    #[test]
    fn flags_unwrap_outside_tests_only() {
        let src = "fn a(x: Option<u8>) -> u8 { x.unwrap() }\n#[cfg(test)]\nmod tests { fn b() { Some(1).unwrap(); } }\n";
        let f = scan_source("t.rs", src);
        let scan = check(&f);
        assert_eq!(scan.findings.len(), 1);
        assert_eq!(scan.findings[0].line, 1);
    }

    #[test]
    fn waiver_consumes_budget() {
        let src = "fn a() {\n    // lint:allow(panic): impossible by construction\n    x.unwrap();\n    y.expect(\"\");\n}\n";
        let f = scan_source("t.rs", src);
        let scan = check(&f);
        assert_eq!(scan.waivers_used, 1);
        assert_eq!(scan.findings.len(), 1);
    }

    #[test]
    fn budget_is_shrink_only_in_both_directions() {
        let mut used = BTreeMap::new();
        used.insert("server".to_owned(), 3);
        let budget = parse_budget("# waivers\nserver = 2\nmfs = 1\n").expect("parses");
        let findings = check_budget(&used, &budget, "budget.txt");
        assert_eq!(findings.len(), 2, "over-use and stale entry both fail");
    }

    #[test]
    fn budget_exact_match_is_clean() {
        let mut used = BTreeMap::new();
        used.insert("server".to_owned(), 2);
        let budget = parse_budget("server = 2\n").expect("parses");
        assert!(check_budget(&used, &budget, "b").is_empty());
    }

    #[test]
    fn strings_do_not_count() {
        let f = scan_source("t.rs", "fn a() { let s = \"don't .unwrap() me\"; }\n");
        assert!(check(&f).findings.is_empty());
    }
}
