//! Determinism lint.
//!
//! Simulation results must be a pure function of the trace and the seed
//! (ROADMAP: reproducible figures). This pass forbids, inside the scoped
//! crates (`sim`, `server`, `dnsbl`):
//!
//! * wall-clock reads (`SystemTime::now`, `Instant::now`),
//! * ambient randomness (`thread_rng`, `from_entropy`, `rand::random`),
//! * environment-dependent branching (`env::var`, `env::vars`, `var_os`),
//! * iteration over `HashMap`/`HashSet` values declared in the same file,
//!   whose order can leak into ordered output.
//!
//! Order-independent uses (commutative folds, tie-broken selection) are
//! waived per line with `// lint:allow(hashmap-iter): <why>`; the other
//! rules use `lint:allow(time|rng|env)`.

use crate::findings::Finding;
use crate::scan::{find_token, SourceFile};
use std::collections::BTreeSet;

const TIME_TOKENS: &[&str] = &["SystemTime::now", "Instant::now"];
const RNG_TOKENS: &[&str] = &["thread_rng", "from_entropy", "rand::random"];
const ENV_TOKENS: &[&str] = &["env::var", "env::vars", "var_os"];

/// Methods whose results depend on hash iteration order.
const ORDERED_SINKS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain(",
];

/// Runs the determinism pass over one scoped file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let hash_names = hash_container_names(file);
    for (i, line) in file.lines.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        for (rule, tokens) in [
            ("time", TIME_TOKENS),
            ("rng", RNG_TOKENS),
            ("env", ENV_TOKENS),
        ] {
            for tok in tokens {
                if find_token(&line.code, tok).is_some() && !file.waived(i, rule) {
                    out.push(Finding::new(
                        &file.path,
                        i + 1,
                        "determinism",
                        format!("nondeterministic `{tok}` in simulation-scoped crate"),
                    ));
                }
            }
        }
        for name in &hash_names {
            // Method chains wrap across lines (`self\n.cache\n.iter()`), so
            // match against a short window of trimmed lines joined together,
            // anchored at the line naming the container.
            if find_token(&line.code, name).is_none() {
                continue;
            }
            let window = chain_window(file, i);
            let anchor_len = line.code.trim().len();
            if iterates_container(&window, name).is_some_and(|at| at < anchor_len)
                && !file.waived(i, "hashmap-iter")
            {
                out.push(Finding::new(
                    &file.path,
                    i + 1,
                    "determinism",
                    format!(
                        "iteration over hash container `{name}` — order may leak into output \
                         (sort, use BTreeMap, or waive with lint:allow(hashmap-iter))"
                    ),
                ));
            }
        }
    }
    out
}

/// Joins the trimmed code of lines `i..i+3` so wrapped method chains read
/// as one expression.
fn chain_window(file: &SourceFile, i: usize) -> String {
    file.lines[i..(i + 3).min(file.lines.len())]
        .iter()
        .map(|l| l.code.trim())
        .collect::<Vec<_>>()
        .join("")
}

/// Names of bindings/fields declared with a `HashMap<…>` / `HashSet<…>` type
/// or initialized from `HashMap::new()` / `HashSet::new()` in this file.
fn hash_container_names(file: &SourceFile) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for line in &file.lines {
        let code = &line.code;
        for ty in ["HashMap", "HashSet"] {
            let mut start = 0;
            while let Some(pos) = code[start..].find(ty) {
                let at = start + pos;
                start = at + ty.len();
                // `name: HashMap<…>` (field or typed let) — walk back over
                // the path prefix and a `:` to the identifier.
                if let Some(name) = decl_name_before(code, at) {
                    names.insert(name);
                }
            }
        }
        // `let name = HashMap::new()` / `= HashSet::with_capacity(…)`.
        if let Some(eq) = code.find('=') {
            let rhs = &code[eq + 1..];
            if rhs.contains("HashMap::") || rhs.contains("HashSet::") {
                if let Some(name) = let_binding_name(&code[..eq]) {
                    names.insert(name);
                }
            }
        }
    }
    names
}

/// For `… name: [std::collections::]HashMap` with `ty_at` pointing at the
/// type name, extracts `name`.
fn decl_name_before(code: &str, ty_at: usize) -> Option<String> {
    let mut head = code[..ty_at].trim_end();
    // Strip a path prefix like `std::collections::`.
    while let Some(stripped) = head.strip_suffix("::") {
        let trimmed = stripped.trim_end_matches(|c: char| c.is_alphanumeric() || c == '_');
        head = trimmed.trim_end();
    }
    let head = head.strip_suffix(':')?.trim_end();
    let name: String = head
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    (!name.is_empty() && !name.chars().next().is_some_and(|c| c.is_numeric())).then_some(name)
}

/// For `… let [mut] name …`, extracts `name`.
fn let_binding_name(lhs: &str) -> Option<String> {
    let at = lhs.rfind("let ")?;
    let rest = lhs[at + 4..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// Finds where `code` starts iterating over the named container, if at all.
fn iterates_container(code: &str, name: &str) -> Option<usize> {
    for sink in ORDERED_SINKS {
        let pat = format!("{name}{sink}");
        if let Some(at) = code.find(&pat) {
            // Require a non-identifier char before the name so `ip_cache`
            // does not match `big_ip_cache`.
            let boundary = at == 0
                || !code[..at]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            if boundary {
                return Some(at);
            }
        }
    }
    // `for … in &name` / `for … in &mut name` / `for … in name`.
    if code.contains("for ") {
        for pre in ["in &mut ", "in &", "in "] {
            if let Some(at) = code.find(&format!("{pre}{name}")) {
                let after = at + pre.len() + name.len();
                let after_ok = !code[after..]
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '.');
                if after_ok {
                    return Some(at + pre.len());
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_source;

    #[test]
    fn flags_wall_clock_and_rng() {
        let f = scan_source(
            "t.rs",
            "fn a() { let t = std::time::Instant::now(); let r = rand::thread_rng(); }\n",
        );
        let found = check(&f);
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn ignores_strings_comments_and_tests() {
        let src = "fn a() { let s = \"Instant::now\"; } // thread_rng\n#[cfg(test)]\nmod tests { fn b() { let t = std::time::Instant::now(); } }\n";
        let f = scan_source("t.rs", src);
        assert!(check(&f).is_empty());
    }

    #[test]
    fn flags_hashmap_iteration_and_accepts_waiver() {
        let src = "struct S { cache: HashMap<u32, u64> }\nfn a(s: &S) { for v in s.cache.values() { use_it(v); } }\nfn b(s: &S) {\n    // lint:allow(hashmap-iter): commutative sum\n    let t: u64 = s.cache.values().sum();\n}\n";
        let f = scan_source("t.rs", src);
        let found = check(&f);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn env_branching_flagged() {
        let f = scan_source("t.rs", "fn a() { if std::env::var(\"X\").is_ok() { } }\n");
        assert_eq!(check(&f).len(), 1);
    }

    #[test]
    fn decl_name_extraction() {
        let f = scan_source(
            "t.rs",
            "struct S { ip_cache: std::collections::HashMap<u32, u8> }\nfn f() { let mut seen = HashSet::new(); for x in &seen { } }\n",
        );
        let names = hash_container_names(&f);
        assert!(names.contains("ip_cache"));
        assert!(names.contains("seen"));
        assert_eq!(check(&f).len(), 1);
    }
}
