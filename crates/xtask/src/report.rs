//! Machine-readable findings report.
//!
//! `cargo run -p spamaware-xtask -- report --json` runs every pass and merges
//! the findings into `results/xtask_report.json` (hand-rolled JSON — the
//! workspace is dependency-free) plus a one-line-per-pass summary table on
//! stdout. CI archives the JSON; humans read the table.

use crate::findings::Finding;
use std::collections::BTreeMap;

/// Outcome of one analysis pass, as fed to the report.
#[derive(Debug, Default)]
pub struct PassResult {
    /// Pass name (`lint`, `lock-order`, `blocking`, `metrics-provenance`).
    pub pass: String,
    /// Violations, in path order.
    pub findings: Vec<Finding>,
    /// Waivers consumed, keyed `<rule>/<crate>` (or `<crate>` for the
    /// legacy panic budget).
    pub waivers_used: BTreeMap<String, usize>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the merged report as pretty-printed JSON. Deterministic: passes
/// appear in input order, findings and waiver keys are already sorted by the
/// passes themselves.
pub fn render_json(results: &[PassResult]) -> String {
    let mut out = String::from("{\n  \"passes\": [\n");
    for (pi, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"pass\": \"{}\",\n", json_escape(&r.pass)));
        out.push_str(&format!(
            "      \"findings_count\": {},\n",
            r.findings.len()
        ));
        out.push_str("      \"findings\": [\n");
        for (fi, f) in r.findings.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}{}\n",
                json_escape(&f.file),
                f.line,
                json_escape(f.rule),
                json_escape(&f.message),
                if fi + 1 < r.findings.len() { "," } else { "" }
            ));
        }
        out.push_str("      ],\n");
        out.push_str("      \"waivers_used\": {");
        let mut first = true;
        for (k, v) in &r.waivers_used {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!("\"{}\": {v}", json_escape(k)));
        }
        out.push_str("}\n");
        out.push_str(&format!(
            "    }}{}\n",
            if pi + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let total: usize = results.iter().map(|r| r.findings.len()).sum();
    out.push_str(&format!("  \"total_findings\": {total},\n"));
    out.push_str(&format!(
        "  \"ok\": {}\n",
        if total == 0 { "true" } else { "false" }
    ));
    out.push_str("}\n");
    out
}

/// One line per pass: name, finding count, waiver count, PASS/FAIL.
pub fn summary_table(results: &[PassResult]) -> String {
    let mut out = String::new();
    let width = results
        .iter()
        .map(|r| r.pass.len())
        .max()
        .unwrap_or(4)
        .max(4);
    out.push_str(&format!(
        "{:<width$}  {:>8}  {:>7}  result\n",
        "pass", "findings", "waivers"
    ));
    for r in results {
        let waivers: usize = r.waivers_used.values().sum();
        out.push_str(&format!(
            "{:<width$}  {:>8}  {:>7}  {}\n",
            r.pass,
            r.findings.len(),
            waivers,
            if r.findings.is_empty() {
                "PASS"
            } else {
                "FAIL"
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<PassResult> {
        vec![
            PassResult {
                pass: "lint".into(),
                findings: vec![],
                waivers_used: BTreeMap::from([("core".to_owned(), 2)]),
            },
            PassResult {
                pass: "lock-order".into(),
                findings: vec![Finding::new(
                    "crates/mfs/src/sharded.rs",
                    10,
                    "lock-order",
                    "cycle \"a\" -> \"b\"".to_owned(),
                )],
                waivers_used: BTreeMap::new(),
            },
        ]
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let json = render_json(&sample());
        assert!(json.contains("\"pass\": \"lock-order\""));
        assert!(json.contains("\\\"a\\\" -> \\\"b\\\""));
        assert!(json.contains("\"total_findings\": 1"));
        assert!(json.contains("\"ok\": false"));
        // Balanced braces/brackets (cheap well-formedness check given the
        // escaping above keeps delimiters out of string values).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn summary_marks_pass_and_fail() {
        let table = summary_table(&sample());
        assert!(table.contains("lint"));
        assert!(table
            .lines()
            .any(|l| l.starts_with("lint") && l.ends_with("PASS")));
        assert!(table
            .lines()
            .any(|l| l.starts_with("lock-order") && l.ends_with("FAIL")));
    }

    #[test]
    fn json_is_deterministic() {
        let a = render_json(&sample());
        let b = render_json(&sample());
        assert_eq!(a, b);
    }
}
