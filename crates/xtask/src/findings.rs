//! Lint diagnostics.

use std::fmt;

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File the violation is in.
    pub file: String,
    /// 1-based line number; 0 for file-level findings.
    pub line: usize,
    /// Pass name (`determinism`, `panic-safety`, `unsafe-audit`, …).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// Builds a finding.
    pub fn new(file: &str, line: usize, rule: &'static str, message: String) -> Finding {
        Finding {
            file: file.to_owned(),
            line,
            rule,
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.file, self.rule, self.message)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file, self.line, self.rule, self.message
            )
        }
    }
}
