//! Unsafe-audit lint.
//!
//! Every `unsafe` block, function, impl, or trait must carry an adjacent
//! `// SAFETY:` comment explaining why the contract holds — on the same
//! line or within the three lines above. The workspace currently contains
//! no unsafe code at all (and `[workspace.lints]` denies `unsafe_code`),
//! so this pass is a tripwire for the day that changes: the justification
//! has to land in the same diff as the `unsafe` itself.

use crate::findings::Finding;
use crate::scan::{has_token, SourceFile};

/// How many lines above an `unsafe` token a `SAFETY:` comment may sit.
const SAFETY_WINDOW: usize = 3;

/// Runs the unsafe-audit pass over one file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        if !has_token(&line.code, "unsafe") {
            continue;
        }
        let lo = i.saturating_sub(SAFETY_WINDOW);
        let documented = (lo..=i).any(|j| file.lines[j].comment.contains("SAFETY:"));
        if !documented {
            out.push(Finding::new(
                &file.path,
                i + 1,
                "unsafe-audit",
                "`unsafe` without an adjacent `// SAFETY:` comment".to_owned(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_source;

    #[test]
    fn undocumented_unsafe_is_flagged() {
        let f = scan_source("t.rs", "fn a(p: *const u8) -> u8 { unsafe { *p } }\n");
        assert_eq!(check(&f).len(), 1);
    }

    #[test]
    fn safety_comment_satisfies_the_audit() {
        let src = "fn a(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid for reads.\n    unsafe { *p }\n}\n";
        let f = scan_source("t.rs", src);
        assert!(check(&f).is_empty());
    }

    #[test]
    fn lint_attr_name_is_not_unsafe_code() {
        let f = scan_source("t.rs", "#![deny(unsafe_code)]\n");
        assert!(check(&f).is_empty());
    }

    #[test]
    fn applies_inside_tests_too() {
        let src = "#[cfg(test)]\nmod tests { fn b() { unsafe { core::hint::unreachable_unchecked() } } }\n";
        let f = scan_source("t.rs", src);
        assert_eq!(check(&f).len(), 1);
    }
}
