//! Lock-order analysis.
//!
//! Turns DESIGN.md §11's "singular lock holds only, deadlock-free" claim
//! into a checked invariant. The pass:
//!
//! 1. discovers every named lock field (`name: Mutex<…>` / `RwLock<…>`,
//!    including striped `Vec<Mutex<…>>` arrays) as a **lock class**;
//! 2. finds every acquisition site (`.lock()` / `.read()` / `.write()`
//!    on a resolved receiver, plus guard-returning helper calls such as
//!    `ShardedStore::locked(part)` and `Registry::lock()`), tracking the
//!    guard's extent (statement for temporaries, scope or `drop()` for
//!    `let` bindings);
//! 3. propagates held-lock sets along call edges to a fixpoint;
//! 4. records every *acquisition under a hold* as a directed edge in the
//!    global lock-order graph, and fails on cycles or on edges that
//!    violate the canonical hierarchy (DESIGN.md §14) — in particular,
//!    any second partition acquisition inside a stripe hold (the two
//!    partition classes share a rank, so nesting them can never be
//!    ordered).
//!
//! The graph dump ([`LockAnalysis::dump`]) is fully sorted and therefore
//! byte-identical across runs on identical input.

use crate::callgraph::{FnId, Workspace};
use crate::findings::Finding;
use crate::scan::find_token;
use std::collections::{BTreeMap, BTreeSet};

/// Canonical lock hierarchy (documented in DESIGN.md §14). Lower ranks
/// are acquired first; an observed edge to an equal or lower rank is a
/// violation. Classes not listed here (fixtures, future locks) are
/// checked for cycles and self-acquisition only.
pub const HIERARCHY: &[(&str, u8)] = &[
    // Store partition locks: the shmailbox partition and the per-mailbox
    // stripes. Equal rank — holding one while taking another is exactly
    // the deadlock §11 rules out.
    ("shared", 1),
    ("shards", 1),
    // The process-wide shared backend (SyncBackend): a leaf taken under
    // one partition hold for the duration of a single file operation.
    ("inner", 2),
    // The connection buffer pool freelist.
    ("free", 3),
    // The metrics registry name table — registration-time only, but
    // modelled as the deepest leaf so instrumentation can never invert
    // an order.
    ("metrics", 4),
];

/// One discovered lock class (a named `Mutex`/`RwLock` field).
#[derive(Debug)]
pub struct LockClass {
    /// Field name — the class identity. Same-named fields across types
    /// merge into one class (conservative).
    pub name: String,
    /// Declaration site (first seen): file index and 0-based line.
    pub file: usize,
    /// 0-based declaration line.
    pub line: usize,
    /// `Vec<Mutex<…>>` / array — a stripe of locks behind one name.
    pub striped: bool,
    /// `RwLock` rather than `Mutex` (acquired via `.read()`/`.write()`).
    pub rwlock: bool,
    /// Guards an `MfsStore` partition (type mentions `MfsStore`).
    pub partition: bool,
    /// Canonical rank, if the class is in [`HIERARCHY`].
    pub rank: Option<u8>,
}

/// One edge in the lock-order graph: `from` was held while `to` was
/// acquired at `file:line`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct OrderEdge {
    /// Held class index.
    pub from: usize,
    /// Acquired class index.
    pub to: usize,
    /// File index of the acquisition.
    pub file: usize,
    /// 0-based acquisition line.
    pub line: usize,
}

/// Result of the pass over a workspace.
pub struct LockAnalysis {
    /// Discovered classes, sorted by name.
    pub classes: Vec<LockClass>,
    /// Observed order edges (held → acquired), deduplicated and sorted.
    pub edges: BTreeSet<OrderEdge>,
    /// Per function: the set of class indices held on entry on some path.
    pub entry_held: Vec<BTreeSet<usize>>,
    /// Per function: lines (0-based) with at least one lock held, and the
    /// classes held there. Includes entry-held classes on every body line.
    pub held_lines: BTreeMap<FnId, BTreeMap<usize, BTreeSet<usize>>>,
    /// Cycle / hierarchy violations.
    pub findings: Vec<Finding>,
    /// `lint:allow(lock-order)` waivers consumed, keyed `lock-order/<crate>`.
    pub waivers_used: BTreeMap<String, usize>,
}

impl LockAnalysis {
    /// Deterministic text dump of the lock-order graph: classes with
    /// attributes, then edges with one provenance site each.
    pub fn dump(&self, ws: &Workspace) -> String {
        let mut out = String::from("lock-order graph\nclasses:\n");
        for c in &self.classes {
            let mut attrs = Vec::new();
            if c.striped {
                attrs.push("striped".to_owned());
            }
            if c.partition {
                attrs.push("partition".to_owned());
            }
            if c.rwlock {
                attrs.push("rwlock".to_owned());
            }
            match c.rank {
                Some(r) => attrs.push(format!("rank {r}")),
                None => attrs.push("unranked".to_owned()),
            }
            out.push_str(&format!(
                "  {} ({}) — {}:{}\n",
                c.name,
                attrs.join(", "),
                ws.files[c.file].path,
                c.line + 1
            ));
        }
        out.push_str("edges:\n");
        let mut seen = BTreeSet::new();
        for e in &self.edges {
            if seen.insert((e.from, e.to)) {
                out.push_str(&format!(
                    "  {} -> {} — {}:{}\n",
                    self.classes[e.from].name,
                    self.classes[e.to].name,
                    ws.files[e.file].path,
                    e.line + 1
                ));
            }
        }
        out
    }
}

/// Kinds of receiver an acquisition token can have.
enum Receiver {
    /// Resolved to one or more lock classes (an alias of a lock-returning
    /// helper can cover several).
    Classes(BTreeSet<usize>),
    /// A lock-typed parameter of the enclosing fn.
    Param,
    Unknown(String),
}

/// Per-function facts the walker needs.
#[derive(Default, Clone)]
struct FnFacts {
    /// Classes this fn's body acquires directly on `self` fields.
    direct_classes: BTreeSet<usize>,
    /// Fn has at least one lock-typed parameter that it acquires.
    acquires_param: bool,
    /// Sig returns a guard (`MutexGuard`/`RwLock…Guard`).
    returns_guard: bool,
    /// Sig returns a lock reference (`-> … &Mutex<…>`); `classes` are the
    /// lock fields its body mentions.
    returns_lock: bool,
    /// Lock classes mentioned as `self.<field>` anywhere in the body.
    mentioned_classes: BTreeSet<usize>,
    /// Names of lock-typed parameters.
    lock_params: BTreeSet<String>,
    /// Local aliases: variable → classes (for-loop bindings over stripe
    /// fields, `let v = &self.field`, `let v = self.shard_for(…)`).
    aliases: BTreeMap<String, BTreeSet<usize>>,
}

/// Runs the pass.
pub fn check(ws: &Workspace) -> LockAnalysis {
    let classes = discover_classes(ws);
    let class_by_name: BTreeMap<&str, usize> = classes
        .iter()
        .enumerate()
        .map(|(i, c)| (c.name.as_str(), i))
        .collect();

    let mut facts: Vec<FnFacts> = (0..ws.fns.len())
        .map(|f| fn_facts(ws, f, &classes, &class_by_name))
        .collect();

    // Second phase: `let v = self.<helper>(…)` where the helper returns a
    // lock reference aliases `v` to the helper's lock fields.
    let mut lock_returning: BTreeMap<String, BTreeSet<usize>> = BTreeMap::new();
    for (id, f) in ws.fns.iter().enumerate() {
        if !f.is_test && facts[id].returns_lock {
            lock_returning
                .entry(f.name.clone())
                .or_default()
                .extend(facts[id].mentioned_classes.iter().copied());
        }
    }
    for (f, fact) in facts.iter_mut().enumerate() {
        let info = &ws.fns[f];
        let file = &ws.files[info.file];
        let mut extra: Vec<(String, BTreeSet<usize>)> = Vec::new();
        for li in info.body_start..=info.end.min(file.lines.len().saturating_sub(1)) {
            let code = &file.lines[li].code;
            let Some(pos) = find_token(code, "let") else {
                continue;
            };
            let rest = &code[pos + 3..];
            let Some((lhs, rhs)) = rest.split_once('=') else {
                continue;
            };
            let var = lhs.trim().trim_start_matches("mut ").trim().to_owned();
            if var.is_empty() || !var.chars().all(|c| c.is_alphanumeric() || c == '_') {
                continue;
            }
            for (helper, cls) in &lock_returning {
                if rhs.contains(&format!("self.{helper}(")) || rhs.contains(&format!("{helper}(")) {
                    extra.push((var.clone(), cls.clone()));
                }
            }
        }
        for (var, cls) in extra {
            fact.aliases.entry(var).or_default().extend(cls);
        }
    }

    // Guard-returning helpers, by bare name: a call to one is an
    // acquisition at the call site of (its direct classes) ∪ (the classes
    // its lock-typed arguments resolve to).
    let mut guard_helpers: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
    for (id, f) in ws.fns.iter().enumerate() {
        if !f.is_test && facts[id].returns_guard {
            guard_helpers.entry(f.name.as_str()).or_default().push(id);
        }
    }

    // Fixpoint over entry-held sets.
    let mut entry_held: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); ws.fns.len()];
    let mut work: Vec<FnId> = (0..ws.fns.len()).filter(|&f| !ws.fns[f].is_test).collect();
    while let Some(f) = work.pop() {
        let mut sink = NullSink;
        let updates = walk_fn(
            ws,
            f,
            &classes,
            &class_by_name,
            &facts,
            &guard_helpers,
            &entry_held[f].clone(),
            &mut sink,
        );
        for (callee, held) in updates {
            if ws.fns[callee].is_test {
                continue;
            }
            let before = entry_held[callee].len();
            entry_held[callee].extend(held.iter().copied());
            if entry_held[callee].len() != before {
                work.push(callee);
            }
        }
    }

    // Final pass: collect edges, held lines, and violations.
    let mut sink = CollectSink {
        classes: &classes,
        ws,
        edges: BTreeSet::new(),
        held_lines: BTreeMap::new(),
        findings: Vec::new(),
        waivers_used: BTreeMap::new(),
    };
    for (f, entry) in entry_held.iter().enumerate() {
        if ws.fns[f].is_test {
            continue;
        }
        let entry = entry.clone();
        walk_fn(
            ws,
            f,
            &classes,
            &class_by_name,
            &facts,
            &guard_helpers,
            &entry,
            &mut sink,
        );
    }

    let mut findings = sink.findings;
    let edges = sink.edges;
    let held_lines = sink.held_lines;
    let waivers_used = sink.waivers_used;
    detect_cycles(&classes, &edges, ws, &mut findings);

    LockAnalysis {
        classes,
        edges,
        entry_held,
        held_lines,
        findings,
        waivers_used,
    }
}

/// Observer for the walk: the fixpoint loop uses a null sink; the final
/// pass collects edges and findings.
trait Sink {
    fn acquisition(&mut self, _f: FnId, _line: usize, _class: usize, _held: &BTreeSet<usize>) {}
    fn held_line(&mut self, _f: FnId, _line: usize, _held: &BTreeSet<usize>) {}
}

struct NullSink;
impl Sink for NullSink {}

struct CollectSink<'a> {
    classes: &'a [LockClass],
    ws: &'a Workspace,
    edges: BTreeSet<OrderEdge>,
    held_lines: BTreeMap<FnId, BTreeMap<usize, BTreeSet<usize>>>,
    findings: Vec<Finding>,
    waivers_used: BTreeMap<String, usize>,
}

impl Sink for CollectSink<'_> {
    fn acquisition(&mut self, f: FnId, line: usize, class: usize, held: &BTreeSet<usize>) {
        let file_idx = self.ws.fns[f].file;
        let file = &self.ws.files[file_idx];
        for &h in held {
            self.edges.insert(OrderEdge {
                from: h,
                to: class,
                file: file_idx,
                line,
            });
            let violation = if h == class {
                Some(if self.classes[class].striped {
                    format!(
                        "`{}` re-acquired while already held — two stripes of one \
                         array cannot be ordered",
                        self.classes[class].name
                    )
                } else {
                    format!(
                        "`{}` re-acquired while already held (self-deadlock)",
                        self.classes[class].name
                    )
                })
            } else if self.classes[h].partition && self.classes[class].partition {
                Some(format!(
                    "partition lock `{}` acquired inside a `{}` hold — §11 allows \
                     singular partition holds only",
                    self.classes[class].name, self.classes[h].name
                ))
            } else {
                match (self.classes[h].rank, self.classes[class].rank) {
                    (Some(rh), Some(rc)) if rc <= rh => Some(format!(
                        "`{}` (rank {rc}) acquired while holding `{}` (rank {rh}) — \
                         violates the canonical order in DESIGN.md §14",
                        self.classes[class].name, self.classes[h].name
                    )),
                    _ => None,
                }
            };
            if let Some(msg) = violation {
                if file.waived(line, "lock-order") {
                    let krate = &self.ws.crates[file_idx];
                    *self
                        .waivers_used
                        .entry(format!("lock-order/{krate}"))
                        .or_insert(0) += 1;
                } else {
                    self.findings
                        .push(Finding::new(&file.path, line + 1, "lock-order", msg));
                }
            }
        }
    }

    fn held_line(&mut self, f: FnId, line: usize, held: &BTreeSet<usize>) {
        if !held.is_empty() {
            self.held_lines
                .entry(f)
                .or_default()
                .entry(line)
                .or_default()
                .extend(held.iter().copied());
        }
    }
}

fn discover_classes(ws: &Workspace) -> Vec<LockClass> {
    let mut found: BTreeMap<String, LockClass> = BTreeMap::new();
    for (fi, file) in ws.files.iter().enumerate() {
        // Lines inside fn signatures are parameter/return types, not fields.
        let mut sig_lines = vec![false; file.lines.len()];
        for f in &ws.fns {
            if f.file == fi {
                let hi = f.body_start.min(file.lines.len() - 1);
                for flag in &mut sig_lines[f.start..=hi] {
                    *flag = true;
                }
            }
        }
        for (li, line) in file.lines.iter().enumerate() {
            if file.in_test[li] || sig_lines[li] {
                continue;
            }
            let code = &line.code;
            for (tok, rwlock) in [("Mutex<", false), ("RwLock<", true)] {
                let Some(at) = code.find(tok) else { continue };
                let before = &code[..at];
                if before.contains("->") || find_token(code, "fn").is_some() {
                    continue;
                }
                // Walk back over wrapper types (`Vec<`, `Arc<`, paths) to
                // the field's `name:`.
                // The field colon is the last single `:` (a `::` path
                // separator has a neighbouring colon on one side).
                let bytes = before.as_bytes();
                let Some(colon) = (0..bytes.len()).rev().find(|&i| {
                    bytes[i] == b':'
                        && (i == 0 || bytes[i - 1] != b':')
                        && bytes.get(i + 1) != Some(&b':')
                }) else {
                    continue;
                };
                let head = &before[..colon];
                let name: String = head
                    .chars()
                    .rev()
                    .take_while(|&c| c.is_alphanumeric() || c == '_')
                    .collect::<String>()
                    .chars()
                    .rev()
                    .collect();
                if name.is_empty() || name == "let" {
                    continue;
                }
                let between = &before[colon..];
                let striped = between.contains("Vec<") || between.contains('[');
                let after = &code[at..];
                // A lock over a bare generic parameter (`Mutex<B>`) is not a
                // class: every instantiation is its own lock, the guard never
                // outlives one wrapper statement, and class-level reasoning
                // would report each delegating wrapper as self-deadlocking.
                let payload: String = after[tok.len()..]
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if payload.len() <= 2 && payload.chars().next().is_some_and(char::is_uppercase) {
                    continue;
                }
                let partition = after.contains("MfsStore");
                let rank = HIERARCHY.iter().find(|(n, _)| *n == name).map(|&(_, r)| r);
                found.entry(name.clone()).or_insert(LockClass {
                    name,
                    file: fi,
                    line: li,
                    striped,
                    rwlock,
                    partition,
                    rank,
                });
            }
        }
    }
    found.into_values().collect()
}

/// Builds the per-fn facts: lock params, returned locks/guards, aliases,
/// and directly acquired classes.
fn fn_facts(
    ws: &Workspace,
    f: FnId,
    classes: &[LockClass],
    by_name: &BTreeMap<&str, usize>,
) -> FnFacts {
    let info = &ws.fns[f];
    let file = &ws.files[info.file];
    let mut facts = FnFacts::default();

    let sig = &info.sig;
    let ret = sig.split("->").nth(1).unwrap_or("");
    facts.returns_guard = ret.contains("Guard");
    facts.returns_lock = ret.contains("Mutex<") || ret.contains("RwLock<");
    let params = sig.split("->").next().unwrap_or(sig);
    for tok in ["Mutex<", "RwLock<"] {
        let mut from = 0;
        while let Some(rel) = params[from..].find(tok) {
            let at = from + rel;
            from = at + tok.len();
            let before = &params[..at];
            let Some(colon) = before.rfind(": ") else {
                continue;
            };
            let name: String = before[..colon]
                .chars()
                .rev()
                .take_while(|&c| c.is_alphanumeric() || c == '_')
                .collect::<String>()
                .chars()
                .rev()
                .collect();
            if !name.is_empty() {
                facts.lock_params.insert(name);
            }
        }
    }

    for li in info.body_start..=info.end.min(file.lines.len() - 1) {
        let code = &file.lines[li].code;
        // `self.<field>` mentions of lock classes.
        let mut from = 0;
        while let Some(rel) = code[from..].find("self.") {
            let at = from + rel + "self.".len();
            from = at;
            let ident: String = code[at..]
                .chars()
                .take_while(|&c| c.is_alphanumeric() || c == '_')
                .collect();
            if let Some(&ci) = by_name.get(ident.as_str()) {
                facts.mentioned_classes.insert(ci);
            }
        }
        // `for v in &self.<field>` / `for v in self.<field>.iter…()`.
        if let Some(pos) = find_token(code, "for") {
            let rest = &code[pos + 3..];
            let mut it = rest.split_whitespace();
            if let (Some(var), Some("in")) = (it.next(), it.next()) {
                let tail: String = it.collect::<Vec<_>>().join(" ");
                for (ci, c) in classes.iter().enumerate() {
                    if c.striped && tail.contains(&format!("self.{}", c.name)) {
                        facts
                            .aliases
                            .entry(var.trim_start_matches('&').to_owned())
                            .or_default()
                            .insert(ci);
                    }
                }
            }
        }
        // `let v = &self.<field>` / `let v = self.<lock-returning>(…)`.
        if let Some(pos) = find_token(code, "let") {
            let rest = &code[pos + 3..];
            if let Some((lhs, rhs)) = rest.split_once('=') {
                let var = lhs.trim().trim_start_matches("mut ").trim().to_owned();
                if var.chars().all(|c| c.is_alphanumeric() || c == '_') && !var.is_empty() {
                    for (ci, c) in classes.iter().enumerate() {
                        let field = format!("self.{}", c.name);
                        if rhs.contains(&field) && !rhs.contains(".lock()") {
                            facts.aliases.entry(var.clone()).or_default().insert(ci);
                        }
                    }
                }
            }
        }
        // Direct acquisitions on self fields.
        for tok in [".lock()", ".read()", ".write()"] {
            let mut from = 0;
            while let Some(rel) = code[from..].find(tok) {
                let at = from + rel;
                from = at + tok.len();
                match resolve_receiver(code, at, &facts, classes, by_name) {
                    Receiver::Classes(cs) => {
                        for ci in cs {
                            if acquisition_matches(tok, &classes[ci]) {
                                facts.direct_classes.insert(ci);
                            }
                        }
                    }
                    Receiver::Param => facts.acquires_param = true,
                    Receiver::Unknown(_) => {}
                }
            }
        }
    }
    facts
}

fn acquisition_matches(tok: &str, class: &LockClass) -> bool {
    if class.rwlock {
        tok == ".read()" || tok == ".write()"
    } else {
        tok == ".lock()"
    }
}

/// Resolves the receiver expression ending at byte `at` (the `.` of the
/// acquisition token).
fn resolve_receiver(
    code: &str,
    at: usize,
    facts: &FnFacts,
    classes: &[LockClass],
    by_name: &BTreeMap<&str, usize>,
) -> Receiver {
    let mut end = at;
    let bytes = code.as_bytes();
    // Skip a trailing index `[…]`.
    if end > 0 && bytes[end - 1] == b']' {
        let mut depth = 0i64;
        while end > 0 {
            end -= 1;
            match bytes[end] {
                b']' => depth += 1,
                b'[' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    let head = &code[..end];
    let ident: String = head
        .chars()
        .rev()
        .take_while(|&c| c.is_alphanumeric() || c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    if ident.is_empty() {
        return Receiver::Unknown(String::new());
    }
    let before = &head[..head.len() - ident.len()];
    if before.ends_with("self.") {
        if let Some(&ci) = by_name.get(ident.as_str()) {
            return Receiver::Classes(BTreeSet::from([ci]));
        }
        return Receiver::Unknown(ident);
    }
    if before.ends_with('.') || before.ends_with(':') {
        // Deeper chain (`a.b.lock()` with b unknown) or a path.
        return Receiver::Unknown(ident);
    }
    if facts.lock_params.contains(&ident) {
        return Receiver::Param;
    }
    if let Some(cs) = facts.aliases.get(&ident) {
        let _ = classes;
        return Receiver::Classes(cs.clone());
    }
    Receiver::Unknown(ident)
}

/// An active hold during the walk.
struct Hold {
    class: usize,
    /// `let`-bound guard: name and brace depth of the binding; expires on
    /// `drop(name)` or when depth drops below `depth`.
    let_name: Option<String>,
    /// Brace depth at acquisition; statement temporaries expire at the
    /// first `;` at this depth (outside parens), `let` guards when the
    /// scope closes.
    depth: i64,
}

/// True when an acquisition expression is the entire right-hand side of
/// its statement — `rest` is the line tail after the guard-producing
/// token. An empty tail means the statement continues on the next line;
/// a leading `.` there is a method chain, so the guard is a statement
/// temporary, not the `let` binding.
fn rhs_is_whole(rest: &str, next: Option<&crate::scan::Line>) -> bool {
    let rest = rest.trim_start();
    if rest.is_empty() {
        return !next.is_some_and(|l| l.code.trim_start().starts_with('.'));
    }
    rest.starts_with(';') || rest.starts_with('?')
}

enum Event {
    Open,
    Close,
    Semi,
    Let(String),
    Drop(String),
    /// Acquisition of a class; `bound` when the guard itself is the whole
    /// right-hand side of a `let` (so it lives to end of scope) rather
    /// than a chained temporary (dropped at the statement's `;`).
    Acq(usize, bool),
    Call(usize),
}

/// Walks one fn propagating holds; reports `(callee, held-at-call)` pairs
/// and feeds acquisitions / held lines to the sink.
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn walk_fn(
    ws: &Workspace,
    f: FnId,
    classes: &[LockClass],
    by_name: &BTreeMap<&str, usize>,
    facts: &[FnFacts],
    guard_helpers: &BTreeMap<&str, Vec<FnId>>,
    entry: &BTreeSet<usize>,
    sink: &mut dyn Sink,
) -> Vec<(FnId, BTreeSet<usize>)> {
    let info = &ws.fns[f];
    let file = &ws.files[info.file];
    let my_facts = &facts[f];
    let mut holds: Vec<Hold> = Vec::new();
    let mut depth: i64 = 0;
    let mut paren: i64 = 0;
    let mut pending_let: Option<String> = None;
    let mut updates: Vec<(FnId, BTreeSet<usize>)> = Vec::new();

    let held_set = |holds: &[Hold], entry: &BTreeSet<usize>| -> BTreeSet<usize> {
        let mut s = entry.clone();
        s.extend(holds.iter().map(|h| h.class));
        s
    };

    let calls = &ws.calls[f];
    let mut call_idx = 0usize;

    for li in info.body_start..=info.end.min(file.lines.len().saturating_sub(1)) {
        let code = &file.lines[li].code;
        let mut events: Vec<(usize, Event)> = Vec::new();

        // Brace / paren / semicolon / let / drop events by byte offset.
        let mut p = paren;
        for (pos, c) in code.char_indices() {
            match c {
                '{' => events.push((pos, Event::Open)),
                '}' => events.push((pos, Event::Close)),
                '(' => p += 1,
                ')' => p -= 1,
                ';' if p == 0 => events.push((pos, Event::Semi)),
                _ => {}
            }
        }
        if let Some(pos) = find_token(code, "let") {
            let boundary_ok = code[..pos]
                .trim_end()
                .chars()
                .next_back()
                .is_none_or(|c| matches!(c, ';' | '{' | '}'));
            if boundary_ok {
                let rest = &code[pos + 3..];
                let name: String = rest
                    .trim_start()
                    .trim_start_matches("mut ")
                    .chars()
                    .take_while(|&c| c.is_alphanumeric() || c == '_')
                    .collect();
                if !name.is_empty() {
                    events.push((pos, Event::Let(name)));
                }
            }
        }
        let mut from = 0;
        while let Some(rel) = code[from..].find("drop(") {
            let at = from + rel;
            from = at + 5;
            let ok = at == 0
                || !code[..at]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '.');
            if ok {
                let name: String = code[at + 5..]
                    .chars()
                    .take_while(|&c| c.is_alphanumeric() || c == '_')
                    .collect();
                events.push((at, Event::Drop(name)));
            }
        }

        // Direct acquisition tokens.
        for tok in [".lock()", ".read()", ".write()"] {
            let mut from = 0;
            while let Some(rel) = code[from..].find(tok) {
                let at = from + rel;
                from = at + tok.len();
                let bound = rhs_is_whole(&code[at + tok.len()..], file.lines.get(li + 1));
                match resolve_receiver(code, at, my_facts, classes, by_name) {
                    Receiver::Classes(cs) => {
                        for ci in cs {
                            if acquisition_matches(tok, &classes[ci]) {
                                events.push((at, Event::Acq(ci, bound)));
                            }
                        }
                    }
                    Receiver::Param => {}
                    Receiver::Unknown(recv) => {
                        // `self.lock()` — a guard-returning helper method of
                        // this workspace (e.g. `Registry::lock`).
                        if recv == "self" {
                            let method = tok.trim_start_matches('.').trim_end_matches("()");
                            for &h in guard_helpers.get(method).into_iter().flatten() {
                                for &ci in &facts[h].direct_classes {
                                    events.push((at, Event::Acq(ci, bound)));
                                }
                            }
                        }
                    }
                }
            }
        }

        // Call sites on this line: guard-returning helper calls with
        // arguments (`self.locked(part)`) acquire at the call site; every
        // resolved call propagates the held set into the callee.
        while call_idx < calls.len() && calls[call_idx].line < li {
            call_idx += 1;
        }
        for (i, site) in calls.iter().enumerate().skip(call_idx) {
            if site.line != li {
                break;
            }
            // `lock`/`read`/`write` sites are already handled by the token
            // path above; resolving them as guard helpers here would charge
            // `Registry::lock`'s class to every `part.lock()` call.
            let token_handled = matches!(site.name.as_str(), "lock" | "read" | "write");
            if let Some(helpers) = (!token_handled)
                .then(|| guard_helpers.get(site.name.as_str()))
                .flatten()
            {
                let mut acquired = BTreeSet::new();
                for &h in helpers {
                    acquired.extend(facts[h].direct_classes.iter().copied());
                    if facts[h].acquires_param {
                        acquired
                            .extend(resolve_args(ws, f, site, classes, by_name, facts, my_facts));
                    }
                }
                // Guard is `let`-bound only when the helper call is the
                // whole right-hand side (nothing but `;`/`?` after its
                // closing paren on this line).
                let bound = {
                    let mut depth = 0i64;
                    let mut close = None;
                    for (pos, c) in code[site.byte..].char_indices() {
                        match c {
                            '(' => depth += 1,
                            ')' => {
                                depth -= 1;
                                if depth == 0 {
                                    close = Some(site.byte + pos + 1);
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    match close {
                        Some(end) => rhs_is_whole(&code[end..], file.lines.get(li + 1)),
                        // Call spans lines — keep the hold conservatively.
                        None => true,
                    }
                };
                for ci in acquired {
                    events.push((site.byte, Event::Acq(ci, bound)));
                }
            }
            events.push((site.byte, Event::Call(i)));
        }

        // Acquisitions sort before calls at the same byte (the helper call
        // *is* the acquisition; the callee then runs under the hold).
        events.sort_by_key(|(pos, e)| {
            (
                *pos,
                match e {
                    Event::Let(_) => 0,
                    Event::Acq(..) => 1,
                    Event::Call(_) => 2,
                    Event::Drop(_) => 3,
                    Event::Open => 4,
                    Event::Close => 5,
                    Event::Semi => 6,
                },
            )
        });

        sink.held_line(f, li, &held_set(&holds, entry));

        for (_, ev) in events {
            match ev {
                Event::Open => depth += 1,
                Event::Close => {
                    depth -= 1;
                    holds.retain(|h| h.depth <= depth);
                }
                Event::Semi => {
                    holds.retain(|h| h.let_name.is_some() || h.depth != depth);
                    pending_let = None;
                }
                Event::Let(name) => pending_let = Some(name),
                Event::Drop(name) => {
                    holds.retain(|h| h.let_name.as_deref() != Some(name.as_str()));
                }
                Event::Acq(ci, bound) => {
                    let held = held_set(&holds, entry);
                    sink.acquisition(f, li, ci, &held);
                    holds.push(Hold {
                        class: ci,
                        let_name: if bound { pending_let.clone() } else { None },
                        depth,
                    });
                }
                Event::Call(i) => {
                    let held = held_set(&holds, entry);
                    if !held.is_empty() {
                        for callee in ws.callees(&calls[i]) {
                            updates.push((callee, held.clone()));
                        }
                    }
                    sink.held_line(f, li, &held);
                }
            }
        }

        // Track parens across lines for multi-line statements.
        for c in code.chars() {
            match c {
                '(' => paren += 1,
                ')' => paren -= 1,
                _ => {}
            }
        }
        sink.held_line(f, li, &held_set(&holds, entry));
    }
    // Entry-held classes apply to every body line even without local holds.
    if !entry.is_empty() {
        for li in info.body_start..=info.end.min(file.lines.len().saturating_sub(1)) {
            sink.held_line(f, li, entry);
        }
    }
    updates
}

/// Resolves the lock classes named by the arguments of a helper call:
/// `self.locked(self.shard_for(mb))` → the classes `shard_for` returns;
/// `self.locked(&self.shared)` → `shared`.
#[allow(clippy::too_many_arguments)]
fn resolve_args(
    ws: &Workspace,
    f: FnId,
    site: &crate::callgraph::CallSite,
    classes: &[LockClass],
    by_name: &BTreeMap<&str, usize>,
    facts: &[FnFacts],
    my_facts: &FnFacts,
) -> BTreeSet<usize> {
    let info = &ws.fns[f];
    let file = &ws.files[info.file];
    // Join up to three lines from the call site so wrapped arguments stay
    // visible (the same window determinism.rs uses for chains).
    let mut text = String::new();
    for li in site.line..(site.line + 3).min(file.lines.len()) {
        text.push_str(&file.lines[li].code);
        text.push(' ');
    }
    let start = site.byte + site.name.len();
    let args: String = text
        .get(start..)
        .map(|rest| {
            let mut depth = 0i64;
            let mut out = String::new();
            for c in rest.chars() {
                match c {
                    '(' => {
                        depth += 1;
                        if depth == 1 {
                            continue;
                        }
                    }
                    ')' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if depth >= 1 {
                    out.push(c);
                }
            }
            out
        })
        .unwrap_or_default();

    let mut out = BTreeSet::new();
    // `self.<field>` direct references.
    let mut from = 0;
    while let Some(rel) = args[from..].find("self.") {
        let at = from + rel + 5;
        from = at;
        let ident: String = args[at..]
            .chars()
            .take_while(|&c| c.is_alphanumeric() || c == '_')
            .collect();
        if let Some(&ci) = by_name.get(ident.as_str()) {
            out.insert(ci);
        }
        // `self.<lock_returning_helper>(…)`.
        for id in ws.fns_named(&ident) {
            if facts[id].returns_lock {
                out.extend(facts[id].mentioned_classes.iter().copied());
            }
        }
    }
    // Bare alias variables.
    for (var, cs) in &my_facts.aliases {
        if find_token(&args, var).is_some() {
            out.extend(cs.iter().copied());
        }
    }
    let _ = classes;
    out
}

/// DFS cycle detection over the class-level edge graph.
fn detect_cycles(
    classes: &[LockClass],
    edges: &BTreeSet<OrderEdge>,
    ws: &Workspace,
    findings: &mut Vec<Finding>,
) {
    let mut adj: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    let mut provenance: BTreeMap<(usize, usize), (usize, usize)> = BTreeMap::new();
    for e in edges {
        adj.entry(e.from).or_default().insert(e.to);
        provenance.entry((e.from, e.to)).or_insert((e.file, e.line));
    }
    // Colors: 0 = unvisited, 1 = on stack, 2 = done.
    let mut color = vec![0u8; classes.len()];
    let mut stack: Vec<usize> = Vec::new();
    let mut reported: BTreeSet<Vec<usize>> = BTreeSet::new();

    fn dfs(
        v: usize,
        adj: &BTreeMap<usize, BTreeSet<usize>>,
        color: &mut [u8],
        stack: &mut Vec<usize>,
        cycles: &mut Vec<Vec<usize>>,
    ) {
        color[v] = 1;
        stack.push(v);
        for &w in adj.get(&v).into_iter().flatten() {
            if color[w] == 1 {
                let at = stack.iter().position(|&x| x == w).unwrap_or(0);
                cycles.push(stack[at..].to_vec());
            } else if color[w] == 0 {
                dfs(w, adj, color, stack, cycles);
            }
        }
        stack.pop();
        color[v] = 2;
    }

    let mut cycles = Vec::new();
    for v in 0..classes.len() {
        if color[v] == 0 {
            dfs(v, &adj, &mut color, &mut stack, &mut cycles);
        }
    }
    for cycle in cycles {
        let mut canon = cycle.clone();
        canon.sort_unstable();
        if !reported.insert(canon) {
            continue;
        }
        let names: Vec<&str> = cycle
            .iter()
            .chain(cycle.first())
            .map(|&i| classes[i].name.as_str())
            .collect();
        let (file, line) = cycle
            .first()
            .zip(cycle.get(1).or(cycle.first()))
            .and_then(|(&a, &b)| provenance.get(&(a, b)).copied())
            .unwrap_or((0, 0));
        findings.push(Finding::new(
            &ws.files[file].path,
            line + 1,
            "lock-order",
            format!(
                "lock-order cycle: {} — a thread interleaving exists that deadlocks",
                names.join(" -> ")
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> (Workspace, LockAnalysis) {
        let ws = Workspace::from_sources(&[("crates/demo/src/lib.rs", src)]);
        let analysis = check(&ws);
        (ws, analysis)
    }

    #[test]
    fn discovers_classes_with_attributes() {
        let src = "\
struct S {
    shared: Mutex<MfsStore<B>>,
    shards: Vec<Mutex<MfsStore<B>>>,
    cache: RwLock<u8>,
}
";
        let (_, a) = analyze(src);
        let names: Vec<&str> = a.classes.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["cache", "shards", "shared"]);
        let shards = a.classes.iter().find(|c| c.name == "shards").unwrap();
        assert!(shards.striped && shards.partition && shards.rank == Some(1));
        let cache = a.classes.iter().find(|c| c.name == "cache").unwrap();
        assert!(cache.rwlock && !cache.partition);
    }

    #[test]
    fn nested_partition_acquisition_is_flagged() {
        let src = "\
struct S {
    shared: Mutex<MfsStore<B>>,
    shards: Vec<Mutex<MfsStore<B>>>,
}
impl S {
    fn bad(&self) {
        let g = self.shared.lock();
        for shard in &self.shards {
            shard.lock().touch();
        }
        g.done();
    }
}
";
        let (_, a) = analyze(src);
        assert!(
            a.findings
                .iter()
                .any(|f| f.rule == "lock-order" && f.message.contains("singular partition")),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn sequential_acquisition_is_clean() {
        let src = "\
struct S {
    shared: Mutex<MfsStore<B>>,
    shards: Vec<Mutex<MfsStore<B>>>,
}
impl S {
    fn good(&self) {
        let x = self.shared.lock().probe();
        for shard in &self.shards {
            shard.lock().touch(x);
        }
    }
}
";
        let (_, a) = analyze(src);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn planted_cycle_is_detected() {
        let src = "\
struct S {
    a_lock: Mutex<u8>,
    b_lock: Mutex<u8>,
}
impl S {
    fn ab(&self) {
        let g = self.a_lock.lock();
        self.b_lock.lock().touch();
        g.done();
    }
    fn ba(&self) {
        let g = self.b_lock.lock();
        self.a_lock.lock().touch();
        g.done();
    }
}
";
        let (_, a) = analyze(src);
        assert!(
            a.findings
                .iter()
                .any(|f| f.message.contains("lock-order cycle")),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn propagation_sees_acquisition_in_callee() {
        let src = "\
struct S {
    shared: Mutex<MfsStore<B>>,
    shards: Vec<Mutex<MfsStore<B>>>,
}
impl S {
    fn outer(&self) {
        let g = self.shared.lock();
        self.helper();
        g.done();
    }
    fn helper(&self) {
        for shard in &self.shards {
            shard.lock().touch();
        }
    }
}
";
        let (_, a) = analyze(src);
        assert!(
            a.findings
                .iter()
                .any(|f| f.rule == "lock-order" && f.message.contains("singular partition")),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn statement_temporaries_release_at_semicolon() {
        let src = "\
struct S {
    shared: Mutex<MfsStore<B>>,
    shards: Vec<Mutex<MfsStore<B>>>,
}
impl S {
    fn good(&self) {
        let n = self.shared.lock().count();
        for shard in &self.shards {
            let m = shard.lock().count();
            use_it(n, m);
        }
    }
}
fn use_it(a: u8, b: u8) {}
";
        let (_, a) = analyze(src);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn guard_helper_call_counts_as_acquisition() {
        let src = "\
struct S {
    shared: Mutex<MfsStore<B>>,
    shards: Vec<Mutex<MfsStore<B>>>,
}
impl S {
    fn locked<'a>(&self, part: &'a Mutex<MfsStore<B>>) -> MutexGuard<'a, MfsStore<B>> {
        part.lock()
    }
    fn shard_for(&self, mb: &str) -> &Mutex<MfsStore<B>> {
        &self.shards[0]
    }
    fn bad(&self) {
        let g = self.locked(&self.shared);
        let h = self.locked(self.shard_for(\"x\"));
        g.done(h);
    }
    fn good(&self) {
        self.locked(&self.shared).probe();
        self.locked(self.shard_for(\"x\")).touch();
    }
}
";
        let (_, a) = analyze(src);
        let nested: Vec<&Finding> = a
            .findings
            .iter()
            .filter(|f| f.message.contains("singular partition"))
            .collect();
        assert_eq!(nested.len(), 1, "{:?}", a.findings);
        assert_eq!(nested[0].line, 14, "flagged inside `bad`, not `good`");
    }

    #[test]
    fn drop_releases_a_let_guard() {
        let src = "\
struct S {
    shared: Mutex<MfsStore<B>>,
    shards: Vec<Mutex<MfsStore<B>>>,
}
impl S {
    fn good(&self) {
        let g = self.shared.lock();
        drop(g);
        for shard in &self.shards {
            shard.lock().touch();
        }
    }
}
";
        let (_, a) = analyze(src);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn dump_is_deterministic() {
        let src = "\
struct S {
    free: Mutex<Vec<u8>>,
    metrics: Mutex<u8>,
}
impl S {
    fn ok(&self) {
        let g = self.free.lock();
        self.metrics.lock().touch();
        g.done();
    }
}
";
        let ws = Workspace::from_sources(&[("crates/demo/src/lib.rs", src)]);
        let a1 = check(&ws);
        let a2 = check(&ws);
        assert_eq!(a1.dump(&ws), a2.dump(&ws));
        assert!(a1.dump(&ws).contains("free -> metrics"));
        assert!(a1.findings.is_empty(), "{:?}", a1.findings);
    }
}
