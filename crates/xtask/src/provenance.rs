//! Metrics provenance pass.
//!
//! Every metric in the `live.*` / `dnsbl.*` / `mfs.*` namespaces must form a
//! closed loop: **registered** against the `metrics::Registry` (which makes
//! it snapshot-visible — `render()` iterates the registry), **used** somewhere
//! in non-test code (incremented/recorded through its handle, or read by
//! name), and **documented** in `DESIGN.md`. The pass walks string literals
//! (via [`crate::scan::Line::strings`], so blanked code text is no obstacle)
//! and reports any break in the loop:
//!
//! * registered but not documented in `DESIGN.md`;
//! * documented but never registered (stale docs);
//! * registered but never touched again (dead counter);
//! * read by name (`counter_value(...)` etc.) but never registered.
//!
//! Template registrations such as `format!("{prefix}.write_ns")` are matched
//! to documentation by suffix: the template is satisfied if *some* documented
//! name in a known prefix namespace ends in `.write_ns`, and conversely a
//! documented `mfs.write_ns` is satisfied by the template plus an
//! instantiation site passing the literal prefix `"mfs"`.
//!
//! Waive with `// lint:allow(metrics-provenance)` on the registration line;
//! waivers are budgeted per crate in `concurrency-waivers.budget` under the
//! key `metrics-provenance/<crate>`.

use crate::callgraph::Workspace;
use crate::findings::Finding;
use crate::scan::find_token;
use std::collections::{BTreeMap, BTreeSet};

/// Metric namespaces under provenance control. Other prefixes (bench
/// experiment tags, `smtp.verb.*`, `master.*`, `worker.*`) are operational
/// detail and stay out of the documentation contract.
pub const NAMESPACES: &[&str] = &["live", "dnsbl", "mfs"];

/// Registry call shapes that register a metric.
const REG_TOKENS: &[&str] = &[".counter(", ".gauge(", ".histogram(", ".span("];

/// Call shapes that *read* a metric by name (registration not implied).
const READ_TOKENS: &[&str] = &[
    ".counter_value(",
    ".gauge_value(",
    ".histogram_count(",
    ".histogram_max(",
];

/// One registration site.
#[derive(Debug, Clone)]
struct Registration {
    /// Full metric name, or `{prefix}.suffix` template form.
    name: String,
    file: String,
    /// 1-based line.
    line: usize,
    krate: String,
    /// Local binding the handle is stored in (`let x =` or `field:`), if
    /// recognizable; used for the dead-counter check.
    binding: Option<String>,
    waived: bool,
}

/// Outcome of the provenance pass.
#[derive(Debug, Default)]
pub struct ProvenanceReport {
    /// All violations.
    pub findings: Vec<Finding>,
    /// Waivers consumed, keyed `metrics-provenance/<crate>`.
    pub waivers_used: BTreeMap<String, usize>,
    /// Fully-literal registered names (diagnostic output).
    pub registered: BTreeSet<String>,
    /// Template suffixes registered via `{prefix}.suffix`.
    pub template_suffixes: BTreeSet<String>,
    /// Names documented in `DESIGN.md`.
    pub documented: BTreeSet<String>,
}

impl ProvenanceReport {
    /// Deterministic text dump of the registered/documented sets, for
    /// byte-identical re-run comparison.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for n in &self.registered {
            out.push_str(&format!("registered {n}\n"));
        }
        for s in &self.template_suffixes {
            out.push_str(&format!("template {{prefix}}.{s}\n"));
        }
        for n in &self.documented {
            out.push_str(&format!("documented {n}\n"));
        }
        out
    }
}

/// `true` if `s` is a well-formed metric name in a controlled namespace:
/// `live.x`, `dnsbl.x_y.z`, … Final segment `rs` is excluded so file names
/// (`live.rs`) in prose never parse as metrics.
fn is_metric_name(s: &str) -> bool {
    let mut parts = s.split('.');
    let Some(ns) = parts.next() else { return false };
    if !NAMESPACES.contains(&ns) {
        return false;
    }
    let rest: Vec<&str> = parts.collect();
    if rest.is_empty() || rest.last() == Some(&"rs") {
        return false;
    }
    rest.iter().all(|seg| {
        !seg.is_empty()
            && seg
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    })
}

/// `Some(suffix)` if `s` is a `{prefix}.suffix` template registration name.
fn template_suffix(s: &str) -> Option<&str> {
    let rest = s.strip_prefix("{prefix}.")?;
    (!rest.is_empty()
        && rest
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'))
    .then_some(rest)
}

/// Extracts the binding a registration is stored into: `let x = r.counter(…)`
/// or `x: r.counter(…)` (struct literal field). `None` for anything fancier.
fn binding_of(code: &str) -> Option<String> {
    let trimmed = code.trim_start();
    if let Some(rest) = trimmed.strip_prefix("let ") {
        let name: String = rest
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        return (!name.is_empty()).then_some(name);
    }
    // Struct-literal field: `ident: <expr>` with no `let`.
    let colon = trimmed.find(':')?;
    let name = &trimmed[..colon];
    (!name.is_empty()
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !trimmed[colon..].starts_with("::"))
    .then(|| name.to_owned())
}

/// Scans `text` (DESIGN.md) for metric names; returns name → first line.
fn documented_names(text: &str) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for (li, line) in text.lines().enumerate() {
        let bytes = line.as_bytes();
        for ns in NAMESPACES {
            let mut start = 0;
            while let Some(pos) = line[start..].find(ns) {
                let at = start + pos;
                start = at + ns.len();
                // Standalone namespace word followed by '.'
                let before_ok = at == 0
                    || !(bytes[at - 1].is_ascii_alphanumeric()
                        || bytes[at - 1] == b'_'
                        || bytes[at - 1] == b'.');
                let after = &line[at + ns.len()..];
                if !before_ok || !after.starts_with('.') {
                    continue;
                }
                let name_len = after
                    .char_indices()
                    .take_while(|(_, c)| {
                        c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '_' || *c == '.'
                    })
                    .map(|(i, c)| i + c.len_utf8())
                    .last()
                    .unwrap_or(0);
                let mut cand = &after[..name_len];
                // Trim trailing dots (sentence punctuation).
                while cand.ends_with('.') {
                    cand = &cand[..cand.len() - 1];
                }
                let full = format!("{ns}{cand}");
                if is_metric_name(&full) {
                    out.entry(full).or_insert(li + 1);
                }
            }
        }
    }
    out
}

/// Runs the provenance pass over a loaded workspace plus the `DESIGN.md`
/// text. `design_path` is used for findings anchored in the docs.
pub fn check(ws: &Workspace, design: &str, design_path: &str) -> ProvenanceReport {
    let mut report = ProvenanceReport::default();
    let mut regs: Vec<Registration> = Vec::new();
    // Names read by READ_TOKENS in non-test code → first (file, line).
    let mut read_names: BTreeMap<String, (String, usize)> = BTreeMap::new();
    // Literal namespace prefixes passed at `with_metrics` instantiation
    // sites (plus namespaces seen in literal registrations).
    let mut known_prefixes: BTreeSet<String> = BTreeSet::new();

    for (fi, file) in ws.files.iter().enumerate() {
        let krate = &ws.crates[fi];
        for (li, line) in file.lines.iter().enumerate() {
            if file.in_test[li] || line.strings.is_empty() {
                continue;
            }
            let is_reg = REG_TOKENS.iter().any(|t| line.code.contains(t));
            let is_read = READ_TOKENS.iter().any(|t| line.code.contains(t));
            if line.code.contains(".with_metrics(") {
                for s in &line.strings {
                    if NAMESPACES.contains(&s.as_str()) {
                        known_prefixes.insert(s.clone());
                    }
                }
            }
            for s in &line.strings {
                if is_metric_name(s) {
                    if is_reg {
                        known_prefixes.insert(s.split('.').next().unwrap_or("").to_owned());
                        regs.push(Registration {
                            name: s.clone(),
                            file: file.path.clone(),
                            line: li + 1,
                            krate: krate.clone(),
                            binding: binding_of(&line.code),
                            waived: file.waived(li, "metrics-provenance"),
                        });
                    } else if is_read {
                        read_names
                            .entry(s.clone())
                            .or_insert_with(|| (file.path.clone(), li + 1));
                    }
                } else if is_reg {
                    if let Some(suffix) = template_suffix(s) {
                        regs.push(Registration {
                            name: s.clone(),
                            file: file.path.clone(),
                            line: li + 1,
                            krate: krate.clone(),
                            binding: binding_of(&line.code),
                            waived: file.waived(li, "metrics-provenance"),
                        });
                        report.template_suffixes.insert(suffix.to_owned());
                    }
                }
            }
        }
    }
    for r in &regs {
        if template_suffix(&r.name).is_none() {
            report.registered.insert(r.name.clone());
        }
    }

    let documented = documented_names(design);
    report.documented = documented.keys().cloned().collect();

    let waive = |report: &mut ProvenanceReport, r: &Registration| {
        *report
            .waivers_used
            .entry(format!("metrics-provenance/{}", r.krate))
            .or_insert(0) += 1;
    };

    // Registered → documented.
    for r in &regs {
        let ok = if let Some(suffix) = template_suffix(&r.name) {
            documented
                .keys()
                .any(|d| d.ends_with(&format!(".{suffix}")))
        } else {
            documented.contains_key(&r.name)
        };
        if ok {
            continue;
        }
        if r.waived {
            waive(&mut report, r);
            continue;
        }
        report.findings.push(Finding::new(
            &r.file,
            r.line,
            "metrics-provenance",
            format!(
                "metric `{}` is registered here but not documented in DESIGN.md",
                r.name
            ),
        ));
    }

    // Documented → registered.
    for (name, line) in &documented {
        let (ns, rest) = name.split_once('.').unwrap_or((name.as_str(), ""));
        let ok = report.registered.contains(name)
            || (known_prefixes.contains(ns) && report.template_suffixes.contains(rest));
        if !ok {
            report.findings.push(Finding::new(
                design_path,
                *line,
                "metrics-provenance",
                format!("metric `{name}` is documented here but never registered"),
            ));
        }
    }

    // Read-by-name → registered.
    for (name, (file, line)) in &read_names {
        let (ns, rest) = name.split_once('.').unwrap_or((name.as_str(), ""));
        let ok = report.registered.contains(name)
            || (known_prefixes.contains(ns) && report.template_suffixes.contains(rest));
        if !ok {
            report.findings.push(Finding::new(
                file,
                *line,
                "metrics-provenance",
                format!("metric `{name}` is read here but never registered"),
            ));
        }
    }

    // Dead counters: the handle binding is never touched again and the name
    // is never read back.
    for r in &regs {
        let name_read = read_names.contains_key(&r.name)
            || template_suffix(&r.name).is_some_and(|suffix| {
                read_names
                    .keys()
                    .any(|n| n.ends_with(&format!(".{suffix}")))
            });
        if name_read {
            continue;
        }
        let Some(binding) = &r.binding else {
            // Registration feeding straight into an expression (e.g. a
            // constructor argument) is a use in itself.
            continue;
        };
        let used = ws.files.iter().any(|file| {
            file.lines.iter().enumerate().any(|(li, line)| {
                if file.in_test[li] {
                    return false;
                }
                if REG_TOKENS.iter().any(|t| line.code.contains(t)) {
                    return false;
                }
                let Some(at) = find_token(&line.code, binding) else {
                    return false;
                };
                // Method call on the handle (`x.inc()`), field access
                // through a stats struct (`stats.x` — including the
                // borrow-as-argument form `f(&stats.x)`), or wrapping the
                // handle in an expression all count as uses.
                line.code[at + binding.len()..].starts_with('.') || line.code[..at].ends_with('.')
            })
        });
        if used {
            continue;
        }
        if r.waived {
            waive(&mut report, r);
            continue;
        }
        report.findings.push(Finding::new(
            &r.file,
            r.line,
            "metrics-provenance",
            format!(
                "metric `{}` (binding `{binding}`) is registered here but never incremented or read — dead counter",
                r.name
            ),
        ));
    }

    // Snapshot visibility: registration implies render-visibility because
    // `Registry::render` iterates the registry, but only if something in the
    // live server actually renders. Require one non-test `.render(` in core.
    let rendered = ws.files.iter().enumerate().any(|(fi, file)| {
        ws.crates[fi] == "core"
            && file
                .lines
                .iter()
                .enumerate()
                .any(|(li, line)| !file.in_test[li] && line.code.contains(".render("))
    });
    if !rendered && ws.crates.iter().any(|c| c == "core") {
        report.findings.push(Finding::new(
            "crates/core",
            0,
            "metrics-provenance",
            "no non-test `render()` call in crate `core` — registered metrics are never snapshot-visible".to_owned(),
        ));
    }

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::Workspace;

    const DESIGN: &str = "\
## Metrics\n\
The server counts accepted connections in `live.accepted` and records\n\
store write latency in `mfs.write_ns`.\n";

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_sources(files)
    }

    #[test]
    fn closed_loop_is_clean() {
        let src = r#"
fn setup(r: &Registry) {
    let accepted = r.counter("live.accepted");
    accepted.inc();
}
fn snapshot(r: &Registry) -> String {
    r.render()
}
"#;
        let design = "connections are counted in `live.accepted`.\n";
        let w = ws(&[("crates/core/src/live.rs", src)]);
        let rep = check(&w, design, "DESIGN.md");
        assert!(rep.findings.is_empty(), "{:?}", rep.findings);
        assert!(rep.registered.contains("live.accepted"));
    }

    #[test]
    fn undocumented_registration_is_found() {
        let src = r#"
fn setup(r: &Registry) {
    let ghost = r.counter("live.ghost");
    ghost.inc();
}
"#;
        let w = ws(&[("crates/core/src/live.rs", src)]);
        let rep = check(&w, DESIGN, "DESIGN.md");
        assert!(rep
            .findings
            .iter()
            .any(|f| f.line == 3 && f.message.contains("not documented")));
    }

    #[test]
    fn documented_but_unregistered_is_found() {
        let design = "see `live.phantom` for details\n";
        let w = ws(&[("crates/core/src/live.rs", "fn f() {}\n")]);
        let rep = check(&w, design, "DESIGN.md");
        assert!(rep
            .findings
            .iter()
            .any(|f| f.file == "DESIGN.md" && f.message.contains("never registered")));
    }

    #[test]
    fn dead_counter_is_found() {
        let src = r#"
fn setup(r: &Registry) {
    let orphan = r.counter("live.accepted");
}
"#;
        let w = ws(&[("crates/core/src/live.rs", src)]);
        let rep = check(&w, DESIGN, "DESIGN.md");
        assert!(
            rep.findings
                .iter()
                .any(|f| f.line == 3 && f.message.contains("dead counter")),
            "{:?}",
            rep.findings
        );
    }

    #[test]
    fn struct_field_registration_used_via_field_access_is_live() {
        let src = r#"
struct Stats { accepted: Arc<Counter> }
fn setup(r: &Registry) -> Stats {
    Stats {
        accepted: r.counter("live.accepted"),
    }
}
fn bump(s: &Stats) {
    s.accepted.inc();
}
"#;
        let w = ws(&[("crates/core/src/live.rs", src)]);
        let rep = check(&w, DESIGN, "DESIGN.md");
        assert!(
            !rep.findings.iter().any(|f| f.message.contains("dead")),
            "{:?}",
            rep.findings
        );
    }

    #[test]
    fn template_registration_matches_documented_suffix() {
        let store = r#"
fn with_metrics(r: &Registry, prefix: &str) {
    let write_ns = r.span(&format!("{prefix}.write_ns"));
    write_ns.record(1);
}
"#;
        let caller = r#"
fn serve(r: &Registry) {
    store().with_metrics(r, "mfs");
}
fn snapshot(r: &Registry) -> String {
    r.render()
}
"#;
        let design = "store write latency is recorded in `mfs.write_ns`.\n";
        let w = ws(&[
            ("crates/mfs/src/mfs_store.rs", store),
            ("crates/core/src/live.rs", caller),
        ]);
        let rep = check(&w, design, "DESIGN.md");
        assert!(rep.findings.is_empty(), "{:?}", rep.findings);
        assert!(rep.template_suffixes.contains("write_ns"));
    }

    #[test]
    fn read_of_unregistered_name_is_found() {
        let src = r#"
fn peek(r: &Registry) -> Option<u64> {
    r.counter_value("live.typo")
}
"#;
        let w = ws(&[("crates/core/src/live.rs", src)]);
        let rep = check(&w, DESIGN, "DESIGN.md");
        assert!(rep.findings.iter().any(|f| f
            .message
            .contains("`live.typo` is read here but never registered")));
    }

    #[test]
    fn waived_registration_counts_against_the_budget() {
        let src = r#"
fn setup(r: &Registry) {
    let x = r.counter("live.secret"); // lint:allow(metrics-provenance)
    x.inc();
}
"#;
        let w = ws(&[("crates/core/src/live.rs", src)]);
        let rep = check(&w, DESIGN, "DESIGN.md");
        assert!(!rep
            .findings
            .iter()
            .any(|f| f.message.contains("live.secret")));
        assert_eq!(rep.waivers_used.get("metrics-provenance/core"), Some(&1));
    }

    #[test]
    fn test_code_is_ignored() {
        let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let r = Registry::new();
        let x = r.counter("live.test_only");
        assert_eq!(r.counter_value("live.never_registered"), None);
    }
}
"#;
        let w = ws(&[("crates/core/src/live.rs", src)]);
        let rep = check(&w, DESIGN, "DESIGN.md");
        assert!(
            !rep.findings
                .iter()
                .any(|f| f.message.contains("test_only") || f.message.contains("never_registered")),
            "{:?}",
            rep.findings
        );
    }

    #[test]
    fn file_names_in_prose_are_not_metrics() {
        let design = "implemented in `live.rs`, counted by `live.accepted`\n";
        let names = documented_names(design);
        assert!(names.contains_key("live.accepted"));
        assert!(!names.keys().any(|n| n.ends_with(".rs")));
    }
}
