//! The three instrument kinds: counters, gauges, and log2 histograms.
//!
//! Everything is lock-free (`AtomicU64`/`AtomicI64` with relaxed ordering)
//! so the hot paths of the live server — the master's accept loop and the
//! worker pool — never contend on a metrics mutex. Reads taken while
//! writers are active are individually atomic but not a consistent cut;
//! reports are rendered at quiescence (tests) or accepted as approximate
//! (the admin socket).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous level (queue depth, live connections, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the level by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Lowers the level by one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Moves the level by a signed delta (byte-count gauges shift by
    /// whole buffers, not single steps).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of buckets: one per power of two of a `u64`, plus the zero bucket.
pub const BUCKETS: usize = 65;

/// A fixed-bucket log2 histogram over `u64` samples (typically nanoseconds).
///
/// Bucket `0` holds exact zeros; bucket `i` (`1 ..= 64`) holds samples in
/// `[2^(i-1), 2^i)`, i.e. one bucket per bit position. Quantiles report the
/// inclusive upper edge of the covering bucket (`2^i - 1`), so the answer
/// is within 2× of the true quantile — plenty for steering optimization
/// work, and exactly reproducible: identical sample multisets render
/// identical reports byte for byte.
///
/// # Example
///
/// ```
/// use spamaware_metrics::LogHistogram;
/// let h = LogHistogram::new();
/// for v in [100, 200, 400, 100_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.quantile(50), 255); // 200 lands in [128, 256)
/// assert_eq!(h.max(), 100_000);
/// ```
#[derive(Debug)]
pub struct LogHistogram {
    counts: [AtomicU64; BUCKETS],
    total: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Inclusive upper edge of bucket `i`.
    fn bucket_edge(i: usize) -> u64 {
        match i {
            0 => 0,
            1..=63 => (1u64 << i) - 1,
            _ => u64::MAX,
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.counts[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The value at or below which `percent`% of samples fall, reported as
    /// the covering bucket's upper edge (0 when empty). `percent` is
    /// clamped to `0..=100`.
    pub fn quantile(&self, percent: u64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let percent = percent.min(100);
        // Ceiling of total * percent / 100 in u128 to dodge overflow.
        let target = ((total as u128 * percent as u128).div_ceil(100)).max(1) as u64;
        let mut acc = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            acc = acc.saturating_add(c.load(Ordering::Relaxed));
            if acc >= target {
                return Self::bucket_edge(i);
            }
        }
        self.max()
    }
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn buckets_cover_the_u64_range() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 64);
        assert_eq!(LogHistogram::bucket_edge(0), 0);
        assert_eq!(LogHistogram::bucket_edge(1), 1);
        assert_eq!(LogHistogram::bucket_edge(10), 1023);
        assert_eq!(LogHistogram::bucket_edge(64), u64::MAX);
    }

    #[test]
    fn quantiles_bracket_truth_within_a_bucket() {
        let h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(50);
        assert!((500..=1023).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(99);
        assert!((990..=1023).contains(&p99), "p99 {p99}");
        assert_eq!(h.quantile(100), 1023);
    }

    #[test]
    fn zeros_land_in_the_zero_bucket() {
        let h = LogHistogram::new();
        h.record(0);
        h.record(0);
        h.record(8);
        assert_eq!(h.quantile(50), 0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 8);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(50), 0);
        assert_eq!(h.max(), 0);
    }
}
