//! Scoped span timers: measure a region's duration into a histogram.

use crate::{Clock, LogHistogram};
use std::sync::Arc;

/// A pre-resolved `(clock, histogram)` pair for timing one kind of span.
///
/// Resolve the handle once at startup ([`crate::Registry::span`]) and keep
/// it on the hot path; starting a span is then two atomic reads and no
/// locks.
///
/// # Example
///
/// ```
/// use spamaware_metrics::{ManualClock, Registry};
/// use std::sync::Arc;
///
/// let clock = ManualClock::new();
/// let registry = Registry::new(Arc::new(clock.clone()));
/// let handle = registry.span("disk.write_ns");
/// {
///     let _span = handle.start();
///     clock.advance(1_500); // the timed work
/// } // dropped: 1500 ns recorded
/// assert_eq!(registry.histogram_count("disk.write_ns"), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct SpanHandle {
    clock: Arc<dyn Clock>,
    hist: Arc<LogHistogram>,
}

impl SpanHandle {
    pub(crate) fn new(clock: Arc<dyn Clock>, hist: Arc<LogHistogram>) -> SpanHandle {
        SpanHandle { clock, hist }
    }

    /// The clock's current nanosecond reading — for spans whose start and
    /// end live in different stack frames (use with
    /// [`SpanHandle::record_since`]).
    pub fn now(&self) -> u64 {
        self.clock.now_nanos()
    }

    /// Records a span that started at `start_ns` and ends now. Clock
    /// regression saturates to zero.
    pub fn record_since(&self, start_ns: u64) {
        self.hist
            .record(self.clock.now_nanos().saturating_sub(start_ns));
    }

    /// Starts an RAII span: the elapsed time is recorded when the guard
    /// drops.
    pub fn start(&self) -> SpanGuard {
        SpanGuard {
            handle: self.clone(),
            start_ns: self.clock.now_nanos(),
            armed: true,
        }
    }
}

/// An in-flight span; records its duration on drop.
#[derive(Debug)]
pub struct SpanGuard {
    handle: SpanHandle,
    start_ns: u64,
    armed: bool,
}

impl SpanGuard {
    /// Abandons the span without recording (e.g. the operation failed and
    /// its duration would pollute the latency distribution).
    pub fn cancel(mut self) {
        self.armed = false;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            self.handle.record_since(self.start_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ManualClock;

    fn handle(clock: &ManualClock) -> SpanHandle {
        SpanHandle::new(Arc::new(clock.clone()), Arc::new(LogHistogram::new()))
    }

    #[test]
    fn guard_records_elapsed_on_drop() {
        let clock = ManualClock::new();
        let h = handle(&clock);
        {
            let _g = h.start();
            clock.advance(640);
        }
        assert_eq!(h.hist.count(), 1);
        assert_eq!(h.hist.sum(), 640);
    }

    #[test]
    fn cancelled_guard_records_nothing() {
        let clock = ManualClock::new();
        let h = handle(&clock);
        let g = h.start();
        clock.advance(640);
        g.cancel();
        assert_eq!(h.hist.count(), 0);
    }

    #[test]
    fn record_since_saturates_on_regression() {
        let clock = ManualClock::new();
        clock.set(100);
        let h = handle(&clock);
        h.record_since(500);
        assert_eq!(h.hist.sum(), 0);
        assert_eq!(h.hist.count(), 1);
    }
}
