//! `spamaware-metrics` — dependency-free observability for the mail
//! server.
//!
//! The paper's argument (§4–§7) is quantitative: it rests on knowing where
//! a spam-dominated workload spends its time, stage by stage. This crate
//! is the measurement layer that the live server, the MFS store, and the
//! DNSBL resolver all report into:
//!
//! * [`Counter`] / [`Gauge`] — lock-free event counts and levels;
//! * [`LogHistogram`] — fixed-bucket log2 latency histograms with
//!   p50/p95/p99;
//! * [`SpanHandle`] / [`SpanGuard`] — scoped timers over an injectable
//!   [`Clock`], so the live server measures wall time while simulations
//!   and tests inject a [`ManualClock`] and stay byte-deterministic;
//! * [`Registry`] — a named collection of the above with a canonical,
//!   deterministic text rendering ([`Registry::render`]) served by the
//!   live server's `METRICS` admin command.
//!
//! # Example
//!
//! ```
//! use spamaware_metrics::{ManualClock, Registry};
//! use std::sync::Arc;
//!
//! let clock = ManualClock::new();
//! let registry = Registry::new(Arc::new(clock.clone()));
//! let accepted = registry.counter("live.accepted");
//! let lookups = registry.span("dnsbl.lookup_ns");
//!
//! accepted.inc();
//! let span = lookups.start();
//! clock.advance(42_000);
//! drop(span);
//!
//! let report = registry.render();
//! assert!(report.contains("counter live.accepted 1"));
//! assert!(report.contains("histogram dnsbl.lookup_ns count=1"));
//! ```

mod clock;
mod instruments;
mod span;

pub use clock::{Clock, ManualClock, WallClock};
pub use instruments::{Counter, Gauge, LogHistogram, BUCKETS};
pub use span::{SpanGuard, SpanHandle};

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<LogHistogram>),
}

/// A named collection of instruments sharing one injected [`Clock`].
///
/// Instruments are registered on first use (`counter`/`gauge`/`histogram`
/// are get-or-create) and held by `Arc`, so hot paths resolve a handle
/// once and never touch the registry lock again. Rendering walks the
/// names in sorted order, making the report a deterministic function of
/// the recorded values.
#[derive(Debug)]
pub struct Registry {
    clock: Arc<dyn Clock>,
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Creates a registry over an injected clock.
    pub fn new(clock: Arc<dyn Clock>) -> Registry {
        Registry {
            clock,
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    /// Creates a registry over real elapsed time (the live server's
    /// default).
    pub fn with_wall_clock() -> Registry {
        Registry::new(Arc::new(WallClock::new()))
    }

    /// The injected clock.
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock)
    }

    /// The clock's current nanosecond reading.
    pub fn now_nanos(&self) -> u64 {
        self.clock.now_nanos()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Metric>> {
        // A poisoned metrics map only means a panic elsewhere mid-update of
        // an atomic we can still read; keep serving.
        self.metrics.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Gets or creates the named counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.lock();
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => {
                debug_assert!(false, "metric {name} registered with another kind");
                Arc::new(Counter::new())
            }
        }
    }

    /// Gets or creates the named gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.lock();
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => {
                debug_assert!(false, "metric {name} registered with another kind");
                Arc::new(Gauge::new())
            }
        }
    }

    /// Gets or creates the named histogram.
    pub fn histogram(&self, name: &str) -> Arc<LogHistogram> {
        let mut map = self.lock();
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Arc::new(LogHistogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => {
                debug_assert!(false, "metric {name} registered with another kind");
                Arc::new(LogHistogram::new())
            }
        }
    }

    /// Gets or creates the named histogram bound to this registry's clock
    /// as a span timer.
    pub fn span(&self, name: &str) -> SpanHandle {
        SpanHandle::new(Arc::clone(&self.clock), self.histogram(name))
    }

    /// Reads a counter's value, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.lock().get(name) {
            Some(Metric::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// Reads a gauge's level, if registered.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        match self.lock().get(name) {
            Some(Metric::Gauge(g)) => Some(g.get()),
            _ => None,
        }
    }

    /// Reads a histogram's sample count, if registered.
    pub fn histogram_count(&self, name: &str) -> Option<u64> {
        match self.lock().get(name) {
            Some(Metric::Histogram(h)) => Some(h.count()),
            _ => None,
        }
    }

    /// Reads a histogram's maximum recorded value, if registered — the
    /// handle overload tests use to assert a latency stayed bounded
    /// (e.g. "no DNSBL check took longer than its budget").
    pub fn histogram_max(&self, name: &str) -> Option<u64> {
        match self.lock().get(name) {
            Some(Metric::Histogram(h)) => Some(h.max()),
            _ => None,
        }
    }

    /// Renders every instrument as one line of plain text, sorted by name:
    ///
    /// ```text
    /// counter live.accepted 12
    /// gauge worker.queue_depth 0
    /// histogram mfs.write_ns count=3 sum=9300 p50=4095 p95=4095 p99=4095 max=4000
    /// ```
    ///
    /// All values are integers (nanoseconds for span histograms); given
    /// identical recorded values the output is byte-identical.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, metric) in self.lock().iter() {
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("counter {name} {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("gauge {name} {}\n", g.get()));
                }
                Metric::Histogram(h) => {
                    out.push_str(&format!(
                        "histogram {name} count={} sum={} p50={} p95={} p99={} max={}\n",
                        h.count(),
                        h.sum(),
                        h.quantile(50),
                        h.quantile(95),
                        h.quantile(99),
                        h.max(),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_instrument() {
        let r = Registry::new(Arc::new(ManualClock::new()));
        r.counter("a").inc();
        r.counter("a").inc();
        assert_eq!(r.counter_value("a"), Some(2));
    }

    #[test]
    fn histogram_max_reads_back() {
        let r = Registry::new(Arc::new(ManualClock::new()));
        let h = r.histogram("lat_ns");
        h.record(5);
        h.record(900);
        h.record(40);
        assert_eq!(r.histogram_max("lat_ns"), Some(900));
        assert_eq!(r.histogram_max("absent"), None);
    }

    #[test]
    fn render_is_sorted_and_complete() {
        let r = Registry::new(Arc::new(ManualClock::new()));
        r.counter("z.last").add(3);
        r.gauge("m.middle").set(-1);
        r.histogram("a.first").record(7);
        let report = r.render();
        let lines: Vec<&str> = report.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("histogram a.first count=1 sum=7"));
        assert_eq!(lines[1], "gauge m.middle -1");
        assert_eq!(lines[2], "counter z.last 3");
    }

    #[test]
    fn identical_recordings_render_identically() {
        let build = || {
            let clock = ManualClock::new();
            let r = Registry::new(Arc::new(clock.clone()));
            let span = r.span("op_ns");
            for step in [10u64, 20, 40] {
                let g = span.start();
                clock.advance(step);
                drop(g);
            }
            r.counter("ops").add(3);
            r.render()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn kind_mismatch_yields_detached_instrument_in_release() {
        let r = Registry::new(Arc::new(ManualClock::new()));
        r.counter("x").inc();
        // In release builds a kind mismatch must not clobber the original.
        if !cfg!(debug_assertions) {
            let _ = r.gauge("x");
            assert_eq!(r.counter_value("x"), Some(1));
        }
    }
}
