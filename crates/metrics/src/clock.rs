//! Injectable time sources for span timers.
//!
//! The live server measures real elapsed time ([`WallClock`]); simulations
//! and deterministic tests inject a [`ManualClock`] (or the DES kernel's
//! scheduler-backed clock) so that every recorded duration — and therefore
//! every rendered report — is a pure function of the workload.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonic nanosecond time source.
///
/// Implementations must be cheap (called on every span start/stop) and
/// monotone non-decreasing; span timers saturate on regression rather than
/// panic.
pub trait Clock: std::fmt::Debug + Send + Sync {
    /// Nanoseconds since an arbitrary epoch fixed at construction.
    fn now_nanos(&self) -> u64;
}

/// Real elapsed time since the clock was created.
///
/// This is the one deliberate wall-clock read in the workspace's
/// instrumented path: the live TCP server measures real durations.
/// Deterministic runs must inject a [`ManualClock`] instead — the
/// determinism static-analysis pass enforces that no *other* wall-clock
/// read sneaks into scoped crates.
#[derive(Debug)]
pub struct WallClock {
    epoch: std::time::Instant,
}

impl WallClock {
    /// Creates a wall clock whose epoch is "now".
    pub fn new() -> WallClock {
        WallClock {
            // lint:allow(time): the single sanctioned wall-clock source; sim runs inject ManualClock
            epoch: std::time::Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> WallClock {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_nanos(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-advanced clock for tests and simulations.
///
/// Cloning shares the underlying instant, so a simulation driver can keep
/// one handle to advance while registries and spans read through another.
///
/// # Example
///
/// ```
/// use spamaware_metrics::{Clock, ManualClock};
/// let clock = ManualClock::new();
/// clock.advance(250);
/// assert_eq!(clock.now_nanos(), 250);
/// clock.set(1_000);
/// assert_eq!(clock.now_nanos(), 1_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ManualClock(Arc<AtomicU64>);

impl ManualClock {
    /// Creates a clock frozen at nanosecond zero.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Jumps the clock to an absolute nanosecond value.
    pub fn set(&self, ns: u64) {
        self.0.store(ns, Ordering::Relaxed);
    }

    /// Moves the clock forward by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.0.fetch_add(ns, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_is_shared_across_clones() {
        let c = ManualClock::new();
        let view = c.clone();
        c.advance(7);
        assert_eq!(view.now_nanos(), 7);
    }
}
