//! Synthetic university-department trace generator ("Univ" in the paper).
//!
//! Reproduces the paper's one-month departmental workload (Table 1):
//! ~1.86 M connections, ~621 K unique client IPs in ~345 K /24 prefixes,
//! 400 mailboxes, 67% of delivered mail flagged spam. Legitimate mail comes
//! from a small population of long-lived static sender MTAs (which is why
//! prefix-based DNSBL caching gains less on this trace, §8); spam comes
//! from a very large, lightly-used bot population (≈1.5 connections per
//! bot over the month — the low-volume-per-origin botnet behaviour of
//! §4.3).
//!
//! The raw Univ trace "contains no information about unfinished SMTP
//! connections" (paper §3); bounce and unfinished connections are injected
//! at the ECN-measured rates so the combined §8 experiment sees the full
//! workload. Set the fractions to zero for the delivery-only view.

use crate::{ConnectionKind, ConnectionSpec, MailSizeModel, MailSpec, RcptCountModel, Trace};
use rand::Rng;
use spamaware_netaddr::{Ipv4, Prefix24};
use spamaware_sim::dist::{poisson, Exponential, Sample};
use spamaware_sim::{det_rng, Nanos};
use std::collections::HashSet;

/// Configuration for [`UnivTrace`] generation.
#[derive(Debug, Clone, PartialEq)]
pub struct UnivConfig {
    /// RNG seed.
    pub seed: u64,
    /// Total connections of all kinds (paper: 1,862,349).
    pub connections: usize,
    /// Fraction of connections that are bounce connections (ECN Fig. 3
    /// level; the raw Univ trace does not record these).
    pub bounce_fraction: f64,
    /// Fraction of connections that are unfinished transactions.
    pub unfinished_fraction: f64,
    /// Of the delivered mails, the fraction flagged spam (paper: 0.67).
    pub spam_mail_fraction: f64,
    /// Trace span in days (paper: November 2007 = 30).
    pub days: u32,
    /// Mailboxes hosted (paper: "over 400").
    pub mailbox_count: u32,
    /// Bot /24 prefixes (paper total prefixes: 344,679).
    pub spam_prefixes: usize,
    /// Ham sender MTAs (long-lived static IPs).
    pub ham_senders: usize,
    /// Probability a bot is already blacklisted.
    pub bot_listed_probability: f64,
}

impl UnivConfig {
    /// The paper's trace dimensions.
    pub fn paper() -> UnivConfig {
        UnivConfig {
            seed: 0x0041_5EED,
            connections: 1_862_349,
            bounce_fraction: 0.20,
            unfinished_fraction: 0.08,
            spam_mail_fraction: 0.67,
            days: 30,
            mailbox_count: 400,
            spam_prefixes: 342_000,
            ham_senders: 4_000,
            bot_listed_probability: 0.85,
        }
    }

    /// A proportionally scaled-down config (for fast tests).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn scaled(factor: f64) -> UnivConfig {
        assert!(factor > 0.0 && factor <= 1.0, "factor out of range");
        let p = UnivConfig::paper();
        UnivConfig {
            connections: ((p.connections as f64 * factor) as usize).max(256),
            spam_prefixes: ((p.spam_prefixes as f64 * factor) as usize).max(64),
            ham_senders: ((p.ham_senders as f64 * factor) as usize).max(8),
            ..p
        }
    }

    /// Generates the trace.
    ///
    /// # Panics
    ///
    /// Panics if the fractions are outside `[0, 1]` or sum past 1.
    pub fn generate(&self) -> UnivTrace {
        assert!((0.0..=1.0).contains(&self.bounce_fraction));
        assert!((0.0..=1.0).contains(&self.unfinished_fraction));
        assert!(self.bounce_fraction + self.unfinished_fraction < 1.0);
        assert!((0.0..=1.0).contains(&self.spam_mail_fraction));

        let mut rng = det_rng(self.seed);
        let span = Nanos::from_secs(self.days as u64 * 86_400);

        let mail_conns = (self.connections as f64
            * (1.0 - self.bounce_fraction - self.unfinished_fraction))
            as usize;
        let spam_conns = (mail_conns as f64 * self.spam_mail_fraction) as usize;
        let ham_conns = mail_conns - spam_conns;
        let bounce_conns = (self.connections as f64 * self.bounce_fraction) as usize;
        let unfinished_conns = self.connections - mail_conns - bounce_conns;

        // Bot population: ~1.8 bots per prefix. Bots in the same /24 are
        // recruited by the same campaign, so they share an activity
        // window — the spatial+temporal locality that prefix-level DNSBL
        // caching exploits (weaker here than in the sinkhole trace, hence
        // the paper's smaller 20% query reduction on Univ).
        let mut prefixes = HashSet::with_capacity(self.spam_prefixes);
        let mut bots: Vec<Ipv4> = Vec::new();
        let mut bot_window: Vec<(Nanos, Nanos)> = Vec::new();
        let span_total = Nanos::from_secs(self.days as u64 * 86_400);
        let window_dist = Exponential::with_mean(2.0 * 86_400.0);
        while prefixes.len() < self.spam_prefixes {
            let a = rng.gen_range(1..=223u8);
            if a == 10 || a == 127 {
                continue;
            }
            let p = Prefix24::new(a, rng.gen(), rng.gen());
            if !prefixes.insert(p) {
                continue;
            }
            let n = 1 + poisson(&mut rng, 0.8) as usize;
            let mut used = HashSet::with_capacity(n);
            while used.len() < n.min(254) {
                used.insert(rng.gen_range(1..255u8));
            }
            let mut octets: Vec<u8> = used.into_iter().collect();
            octets.sort_unstable();
            let w = Nanos::from_secs_f64(window_dist.sample(&mut rng).max(3600.0)).min(span_total);
            let latest = span_total.saturating_sub(w);
            let start = Nanos::from_nanos(rng.gen_range(0..=latest.as_nanos()));
            for o in octets {
                bots.push(p.nth(o));
                bot_window.push((start, w));
            }
        }
        let blacklisted: Vec<Ipv4> = bots
            .iter()
            .copied()
            .filter(|_| rng.gen::<f64>() < self.bot_listed_probability)
            .collect();

        // Ham senders: stable MTAs, clustered a few per /24.
        let mut ham_ips: Vec<Ipv4> = Vec::with_capacity(self.ham_senders);
        while ham_ips.len() < self.ham_senders {
            let a = rng.gen_range(1..=223u8);
            if a == 10 || a == 127 {
                continue;
            }
            ham_ips.push(Ipv4::new(a, rng.gen(), rng.gen(), rng.gen_range(1..255)));
        }

        let spam_rcpts = RcptCountModel::spam();
        let ham_rcpts = RcptCountModel::ham();
        let spam_sizes = MailSizeModel::spam();
        let ham_sizes = MailSizeModel::ham();

        let mut connections = Vec::with_capacity(self.connections);

        // Spam deliveries: each drawn from a bot active in its prefix's
        // shared campaign window, so a bot's few connections cluster in
        // time (low volume per origin) and /24 neighbours co-occur.
        let conns_per_bot = spam_conns as f64 / bots.len() as f64;
        let mut emitted = 0usize;
        'outer: loop {
            for (bi, &bot) in bots.iter().enumerate() {
                let n = if conns_per_bot < 1.0 {
                    usize::from(rng.gen::<f64>() < conns_per_bot)
                } else {
                    1 + poisson(&mut rng, conns_per_bot - 1.0) as usize
                };
                if n == 0 {
                    continue;
                }
                let (start, w) = bot_window[bi];
                for _ in 0..n {
                    if emitted >= spam_conns {
                        break 'outer;
                    }
                    let at = start + Nanos::from_nanos(rng.gen_range(0..=w.as_nanos()));
                    let n_rcpts = spam_rcpts.sample(&mut rng).min(self.mailbox_count as u8);
                    connections.push(ConnectionSpec {
                        arrival: at,
                        client_ip: bot,
                        kind: ConnectionKind::Mail(vec![MailSpec {
                            valid_rcpts: crate::draw_distinct_mailboxes(
                                &mut rng,
                                n_rcpts,
                                self.mailbox_count,
                            ),
                            invalid_rcpts: 0,
                            size: spam_sizes.sample(&mut rng),
                            spam: true,
                        }]),
                    });
                    emitted += 1;
                }
            }
            if emitted >= spam_conns {
                break;
            }
        }

        // Ham deliveries: stable senders, uniform over the month.
        for _ in 0..ham_conns {
            let ip = ham_ips[rng.gen_range(0..ham_ips.len())];
            let n_rcpts = ham_rcpts.sample(&mut rng);
            connections.push(ConnectionSpec {
                arrival: Nanos::from_nanos(rng.gen_range(0..=span.as_nanos())),
                client_ip: ip,
                kind: ConnectionKind::Mail(vec![MailSpec {
                    valid_rcpts: crate::draw_distinct_mailboxes(
                        &mut rng,
                        n_rcpts,
                        self.mailbox_count,
                    ),
                    invalid_rcpts: 0,
                    size: ham_sizes.sample(&mut rng),
                    spam: false,
                }]),
            });
        }

        // Bounce and unfinished connections come from the bot ecosystem.
        for _ in 0..bounce_conns {
            let ip = bots[rng.gen_range(0..bots.len())];
            connections.push(ConnectionSpec {
                arrival: Nanos::from_nanos(rng.gen_range(0..=span.as_nanos())),
                client_ip: ip,
                kind: ConnectionKind::Bounce {
                    rcpt_attempts: 1 + poisson(&mut rng, 0.6) as u8,
                },
            });
        }
        for _ in 0..unfinished_conns {
            let ip = bots[rng.gen_range(0..bots.len())];
            connections.push(ConnectionSpec {
                arrival: Nanos::from_nanos(rng.gen_range(0..=span.as_nanos())),
                client_ip: ip,
                kind: ConnectionKind::Unfinished {
                    handshake_commands: rng.gen_range(0..3),
                },
            });
        }

        connections.sort_by_key(|c| c.arrival);
        let trace = Trace {
            connections,
            mailbox_count: self.mailbox_count,
            span,
        };
        trace.validate();
        UnivTrace { trace, blacklisted }
    }
}

/// A generated Univ workload plus its blacklist database.
#[derive(Debug, Clone)]
pub struct UnivTrace {
    /// The connection trace (spam + ham deliveries, bounces, unfinished).
    pub trace: Trace,
    /// Blacklisted client IPs (a subset of the bots).
    pub blacklisted: Vec<Ipv4>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SessionMix;

    fn small() -> UnivTrace {
        UnivConfig::scaled(0.005).generate()
    }

    #[test]
    fn connection_count_hits_target() {
        let cfg = UnivConfig::scaled(0.005);
        let t = small();
        let got = t.trace.connections.len() as f64;
        assert!(
            (got / cfg.connections as f64 - 1.0).abs() < 0.02,
            "got {got} want {}",
            cfg.connections
        );
    }

    #[test]
    fn spam_fraction_of_mails_matches() {
        let t = small();
        let mails: Vec<&MailSpec> = t.trace.connections.iter().flat_map(|c| c.mails()).collect();
        let spam = mails.iter().filter(|m| m.spam).count() as f64 / mails.len() as f64;
        assert!((0.62..=0.72).contains(&spam), "spam fraction {spam}");
    }

    #[test]
    fn mix_fractions_match_config() {
        let t = small();
        let mix = SessionMix::of(&t.trace);
        assert!((mix.bounce_fraction() - 0.20).abs() < 0.03);
        assert!((mix.unfinished_fraction() - 0.08).abs() < 0.03);
    }

    #[test]
    fn ham_comes_from_few_stable_ips() {
        let t = small();
        let mut ham_ips = HashSet::new();
        let mut ham_conns = 0usize;
        for c in &t.trace.connections {
            if c.mails().iter().any(|m| !m.spam) {
                ham_ips.insert(c.client_ip);
                ham_conns += 1;
            }
        }
        // Stable senders: many connections per ham IP on average.
        assert!(
            ham_conns as f64 / ham_ips.len() as f64 > 5.0,
            "{ham_conns} conns from {} ips",
            ham_ips.len()
        );
    }

    #[test]
    fn spam_ips_are_low_volume() {
        let t = small();
        let mut per_ip = std::collections::HashMap::new();
        let mut spam_conns = 0usize;
        for c in &t.trace.connections {
            if c.mails().iter().any(|m| m.spam) {
                *per_ip.entry(c.client_ip).or_insert(0u32) += 1;
                spam_conns += 1;
            }
        }
        let mean = spam_conns as f64 / per_ip.len() as f64;
        assert!(mean < 3.0, "mean spam conns per IP {mean}");
    }

    #[test]
    fn deterministic() {
        let a = UnivConfig::scaled(0.002).generate();
        let b = UnivConfig::scaled(0.002).generate();
        assert_eq!(a.trace.connections, b.trace.connections);
    }

    #[test]
    fn zero_fractions_give_delivery_only_trace() {
        let cfg = UnivConfig {
            bounce_fraction: 0.0,
            unfinished_fraction: 0.0,
            ..UnivConfig::scaled(0.002)
        };
        let t = cfg.generate();
        assert!(t.trace.connections.iter().all(|c| c.kind.delivers()));
    }
}
