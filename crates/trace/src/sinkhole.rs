//! Synthetic spam-sinkhole trace generator.
//!
//! Reproduces the marginal statistics of the paper's two-month sinkhole
//! trace (Table 1) and the spatial/temporal locality the DNSBL experiments
//! depend on (Figs. 12, 13, 15):
//!
//! * ~101,692 connections over 61 days from ~19,492 bots in ~8,832 /24
//!   prefixes;
//! * per-/24 blacklist populations that are heavy-tailed (Pareto with
//!   `P(>10) ≈ 0.40`, `P(>100) ≈ 0.03` — Fig. 12's two anchor points);
//! * bots send in *campaigns*: bursts of a few hours during which every
//!   bot in a prefix emits a few mails, giving /24-level interarrivals
//!   much shorter than per-IP interarrivals (Fig. 13) and making a 24 h
//!   DNSBL cache miss ≈26% of connections at IP granularity vs ≈16% at
//!   /25 granularity (Fig. 15).
//!
//! The generator is self-calibrating: campaign counts and per-bot mail
//! counts are drawn first, then the mean mails-per-bot is solved so the
//! expected connection total hits the configured target.

use crate::{ConnectionKind, ConnectionSpec, MailSizeModel, MailSpec, RcptCountModel, Trace};
use rand::seq::SliceRandom;
use rand::Rng;
use spamaware_netaddr::{Ipv4, Prefix24};
use spamaware_sim::dist::{poisson, Exponential, Pareto, Sample};
use spamaware_sim::{det_rng, Nanos};
use std::collections::HashSet;

/// Configuration for [`SinkholeTrace`] generation.
#[derive(Debug, Clone, PartialEq)]
pub struct SinkholeConfig {
    /// RNG seed; every run with the same config is identical.
    pub seed: u64,
    /// Number of distinct /24 prefixes hosting bots (paper: 8,832).
    pub prefixes: usize,
    /// Target unique bot IPs (paper: 19,492).
    pub unique_ips: usize,
    /// Target total connections (paper: 101,692).
    pub connections: usize,
    /// Trace span in days (paper: May–June 2007 ≈ 61).
    pub days: u32,
    /// Mailboxes hosted by the sinkhole (any local part accepted; this
    /// bounds the id space used for recipient generation).
    pub mailbox_count: u32,
    /// Mean number of *extra* campaigns per prefix beyond the first
    /// (Poisson). Drives the cache-miss calibration: IP-level misses ≈
    /// `(1 + extra) × unique_ips / connections`.
    pub extra_campaigns_mean: f64,
    /// Mean campaign duration in hours.
    pub campaign_hours: f64,
    /// Pareto shape of per-/24 blacklist population (Fig. 12).
    pub blacklist_alpha: f64,
    /// Pareto scale of per-/24 blacklist population (Fig. 12).
    pub blacklist_xm: f64,
}

impl SinkholeConfig {
    /// The paper's trace dimensions.
    pub fn paper() -> SinkholeConfig {
        SinkholeConfig {
            seed: 0x5EED_51AE,
            prefixes: 8_832,
            unique_ips: 19_492,
            connections: 101_692,
            days: 61,
            mailbox_count: 5_000,
            extra_campaigns_mean: 0.37,
            campaign_hours: 4.0,
            // Solved from Fig. 12's anchors: P(>10)=0.40, P(>100)=0.03.
            blacklist_alpha: 1.125,
            blacklist_xm: 4.43,
        }
    }

    /// A proportionally scaled-down config (for fast tests), keeping all
    /// ratios intact.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn scaled(factor: f64) -> SinkholeConfig {
        assert!(factor > 0.0 && factor <= 1.0, "factor out of range");
        let p = SinkholeConfig::paper();
        SinkholeConfig {
            prefixes: ((p.prefixes as f64 * factor) as usize).max(16),
            unique_ips: ((p.unique_ips as f64 * factor) as usize).max(32),
            connections: ((p.connections as f64 * factor) as usize).max(64),
            ..p
        }
    }

    /// Generates the trace.
    ///
    /// # Panics
    ///
    /// Panics if `unique_ips < prefixes` (each prefix needs ≥ 1 bot) or any
    /// count is zero.
    pub fn generate(&self) -> SinkholeTrace {
        assert!(self.prefixes > 0 && self.connections > 0);
        assert!(
            self.unique_ips >= self.prefixes,
            "need at least one bot per prefix"
        );
        let mut rng = det_rng(self.seed);
        let span = Nanos::from_secs(self.days as u64 * 86_400);

        // 1. Distinct /24 prefixes, avoiding reserved space for realism.
        let prefixes = draw_prefixes(&mut rng, self.prefixes);

        // 2. Per-prefix blacklist populations (Fig. 12's Pareto).
        let pareto = Pareto::new(self.blacklist_xm, self.blacklist_alpha);
        let listed_counts: Vec<u32> = (0..self.prefixes)
            .map(|_| (pareto.sample(&mut rng).round() as u32).clamp(1, 254))
            .collect();
        let listed_total: u64 = listed_counts.iter().map(|&c| c as u64).sum();

        // 3. Bots: one per prefix plus extras drawn proportionally to the
        //    blacklist population, so bot-rich /24s are blacklist-rich.
        let extra_target = (self.unique_ips - self.prefixes) as f64;
        let headroom: u64 = listed_counts.iter().map(|&c| (c - 1) as u64).sum();
        let q = if headroom == 0 {
            0.0
        } else {
            (extra_target / headroom as f64).min(1.0)
        };
        let _ = listed_total;

        let mut blacklisted = Vec::new();
        let mut prefix_bots: Vec<Vec<Ipv4>> = Vec::with_capacity(self.prefixes);
        let mut per_prefix_listed = Vec::with_capacity(self.prefixes);
        let mut octets: Vec<u8> = (1..255).collect();
        for (p, &listed) in prefixes.iter().zip(&listed_counts) {
            // Choose distinct host octets for the blacklisted population.
            octets.shuffle(&mut rng);
            let hosts: Vec<Ipv4> = octets[..listed as usize]
                .iter()
                .map(|&o| p.nth(o))
                .collect();
            blacklisted.extend_from_slice(&hosts);
            per_prefix_listed.push((*p, listed));
            // Bots are a subset of the blacklisted hosts: the first, plus
            // each further host with probability q.
            let mut bots = vec![hosts[0]];
            for &h in &hosts[1..] {
                if rng.gen::<f64>() < q {
                    bots.push(h);
                }
            }
            prefix_bots.push(bots);
        }

        // 4. Campaign schedule: every prefix campaigns at least once.
        let mut campaigns: Vec<(usize, Nanos, Nanos)> = Vec::new(); // (prefix idx, start, dur)
        let dur_dist = Exponential::with_mean(self.campaign_hours * 3600.0);
        for idx in 0..self.prefixes {
            let n = 1 + poisson(&mut rng, self.extra_campaigns_mean);
            for _ in 0..n {
                let dur_s = dur_dist.sample(&mut rng).max(600.0);
                let dur = Nanos::from_secs_f64(dur_s);
                let latest = span.saturating_sub(dur);
                let start = Nanos::from_nanos(rng.gen_range(0..=latest.as_nanos()));
                campaigns.push((idx, start, dur));
            }
        }

        // 5. Solve mean mails-per-bot-per-campaign so expected connections
        //    hit the target, then emit connections.
        let bot_slots: u64 = campaigns
            .iter()
            .map(|&(idx, _, _)| prefix_bots[idx].len() as u64)
            .sum();
        let mails_mean = (self.connections as f64 / bot_slots as f64 - 1.0).max(0.0);

        let rcpt_model = RcptCountModel::spam();
        let size_model = MailSizeModel::spam();
        let mut connections = Vec::with_capacity(self.connections + self.connections / 8);
        for &(idx, start, dur) in &campaigns {
            for &bot in &prefix_bots[idx] {
                let mails = 1 + poisson(&mut rng, mails_mean);
                for _ in 0..mails {
                    let offset = Nanos::from_nanos(rng.gen_range(0..=dur.as_nanos()));
                    let rcpts = rcpt_model.sample(&mut rng);
                    let valid = crate::draw_distinct_mailboxes(&mut rng, rcpts, self.mailbox_count);
                    connections.push(ConnectionSpec {
                        arrival: start + offset,
                        client_ip: bot,
                        kind: ConnectionKind::Mail(vec![MailSpec {
                            valid_rcpts: valid,
                            invalid_rcpts: 0,
                            size: size_model.sample(&mut rng),
                            spam: true,
                        }]),
                    });
                }
            }
        }
        connections.sort_by_key(|c| c.arrival);

        let trace = Trace {
            connections,
            mailbox_count: self.mailbox_count,
            span,
        };
        trace.validate();
        SinkholeTrace {
            trace,
            blacklisted,
            per_prefix_listed,
        }
    }
}

/// A generated sinkhole workload plus the blacklist database behind it.
#[derive(Debug, Clone)]
pub struct SinkholeTrace {
    /// The connection trace (all spam deliveries).
    pub trace: Trace,
    /// Every blacklisted IP (bots are a subset; the rest are quiet listed
    /// neighbours, which is what makes Fig. 12's counts exceed the trace's
    /// per-prefix bot counts).
    pub blacklisted: Vec<Ipv4>,
    /// Blacklisted-host count per /24 (the Fig. 12 population).
    pub per_prefix_listed: Vec<(Prefix24, u32)>,
}

impl SinkholeTrace {
    /// Unique client IPs appearing in the trace.
    pub fn unique_ips(&self) -> usize {
        let set: HashSet<Ipv4> = self.trace.connections.iter().map(|c| c.client_ip).collect();
        set.len()
    }

    /// Unique /24 prefixes appearing in the trace.
    pub fn unique_prefixes(&self) -> usize {
        let set: HashSet<Prefix24> = self
            .trace
            .connections
            .iter()
            .map(|c| c.client_ip.prefix24())
            .collect();
        set.len()
    }
}

fn draw_prefixes<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<Prefix24> {
    let mut seen = HashSet::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        // First octet 1–223 excluding loopback/private-ish 10; keeps the
        // addresses plausible-unicast without real-world significance.
        let a = rng.gen_range(1..=223u8);
        if a == 10 || a == 127 {
            continue;
        }
        let p = Prefix24::new(a, rng.gen(), rng.gen());
        if seen.insert(p) {
            out.push(p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SinkholeTrace {
        SinkholeConfig::scaled(0.05).generate()
    }

    #[test]
    fn counts_track_targets() {
        let cfg = SinkholeConfig::scaled(0.05);
        let t = small();
        let conns = t.trace.connections.len() as f64;
        assert!(
            (conns / cfg.connections as f64 - 1.0).abs() < 0.10,
            "connections {} vs target {}",
            conns,
            cfg.connections
        );
        let ips = t.unique_ips() as f64;
        assert!(
            (ips / cfg.unique_ips as f64 - 1.0).abs() < 0.10,
            "ips {} vs target {}",
            ips,
            cfg.unique_ips
        );
        assert_eq!(t.unique_prefixes(), cfg.prefixes);
    }

    #[test]
    fn blacklist_tail_matches_fig12_anchors() {
        // Needs the full prefix population for a stable tail estimate.
        let t = SinkholeConfig::scaled(0.25).generate();
        let n = t.per_prefix_listed.len() as f64;
        let over10 = t.per_prefix_listed.iter().filter(|(_, c)| *c > 10).count() as f64 / n;
        let over100 = t.per_prefix_listed.iter().filter(|(_, c)| *c > 100).count() as f64 / n;
        assert!((0.30..=0.50).contains(&over10), "P(>10) = {over10}");
        assert!((0.015..=0.05).contains(&over100), "P(>100) = {over100}");
    }

    #[test]
    fn bots_are_blacklisted() {
        let t = small();
        let listed: HashSet<Ipv4> = t.blacklisted.iter().copied().collect();
        for c in &t.trace.connections {
            assert!(listed.contains(&c.client_ip), "{} unlisted", c.client_ip);
        }
    }

    #[test]
    fn all_connections_deliver_spam() {
        let t = small();
        for c in &t.trace.connections {
            assert!(c.kind.delivers());
            for m in c.mails() {
                assert!(m.spam);
                assert!(!m.valid_rcpts.is_empty());
            }
        }
    }

    #[test]
    fn recipients_are_distinct_within_a_mail() {
        let t = small();
        for c in &t.trace.connections {
            for m in c.mails() {
                let set: HashSet<_> = m.valid_rcpts.iter().collect();
                assert_eq!(set.len(), m.valid_rcpts.len());
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SinkholeConfig::scaled(0.02).generate();
        let b = SinkholeConfig::scaled(0.02).generate();
        assert_eq!(a.trace.connections, b.trace.connections);
        assert_eq!(a.blacklisted, b.blacklisted);
    }

    #[test]
    fn arrivals_span_most_of_the_trace_window() {
        let t = small();
        let span = t.trace.span;
        let last = t.trace.connections.last().unwrap().arrival;
        assert!(last > span * 0.8, "last arrival {last} of span {span}");
    }

    #[test]
    fn mean_recipients_near_seven() {
        let t = small();
        let (sum, n) = t
            .trace
            .connections
            .iter()
            .flat_map(|c| c.mails())
            .fold((0u64, 0u64), |(s, n), m| {
                (s + m.valid_rcpts.len() as u64, n + 1)
            });
        let mean = sum as f64 / n as f64;
        assert!((6.2..=7.8).contains(&mean), "mean rcpts {mean}");
    }
}
