//! Derived synthetic traces: the bounce-ratio sweep of Fig. 8 and the
//! 15-mailbox delivery sequences of Figs. 10/11.

use crate::{
    ConnectionKind, ConnectionSpec, MailSizeModel, MailSpec, MailboxId, RcptCountModel, Trace,
};
use rand::Rng;
use spamaware_sim::{det_rng, Nanos};

/// Builds the Fig. 8 workload: a pool of connections of which a fraction
/// `bounce_ratio` are bounce connections (random-guessing spam hitting
/// non-existent mailboxes) and the rest deliver a single mail whose size
/// follows the Univ trace's distribution.
///
/// The closed-system client consumes connections from the pool as fast as
/// the server completes them, so arrivals are nominal (uniform over an
/// hour).
///
/// # Panics
///
/// Panics if `bounce_ratio` is outside `[0, 1]` or `connections == 0`.
///
/// # Example
///
/// ```
/// use spamaware_trace::bounce_sweep_trace;
/// let t = bounce_sweep_trace(7, 1000, 0.5, 400);
/// let bounces = t.connections.iter().filter(|c| !c.kind.delivers()).count();
/// assert!((400..600).contains(&bounces));
/// ```
pub fn bounce_sweep_trace(
    seed: u64,
    connections: usize,
    bounce_ratio: f64,
    mailbox_count: u32,
) -> Trace {
    assert!((0.0..=1.0).contains(&bounce_ratio), "bounce ratio range");
    assert!(connections > 0, "need at least one connection");
    let mut rng = det_rng(seed ^ 0xF168);
    let span = Nanos::from_secs(3600);
    // Univ mail sizes: a 67/33 spam/ham mixture (paper §3: the synthetic
    // trace "follows the mail sizes in the Univ trace").
    let spam_sizes = MailSizeModel::spam();
    let ham_sizes = MailSizeModel::ham();
    let ham_rcpts = RcptCountModel::ham();

    let mut out = Vec::with_capacity(connections);
    for i in 0..connections {
        let arrival = span * (i as u64) / (connections as u64);
        let ip = spamaware_netaddr::Ipv4::new(
            rng.gen_range(1..=223),
            rng.gen(),
            rng.gen(),
            rng.gen_range(1..255),
        );
        let kind = if rng.gen::<f64>() < bounce_ratio {
            ConnectionKind::Bounce {
                rcpt_attempts: 1 + spamaware_sim::dist::poisson(&mut rng, 0.6) as u8,
            }
        } else {
            let spam = rng.gen::<f64>() < 0.67;
            let size = if spam {
                spam_sizes.sample(&mut rng)
            } else {
                ham_sizes.sample(&mut rng)
            };
            let n_rcpts = ham_rcpts.sample(&mut rng);
            ConnectionKind::Mail(vec![MailSpec {
                valid_rcpts: crate::draw_distinct_mailboxes(&mut rng, n_rcpts, mailbox_count),
                invalid_rcpts: 0,
                size,
                spam,
            }])
        };
        out.push(ConnectionSpec {
            arrival,
            client_ip: ip,
            kind,
        });
    }
    let trace = Trace {
        connections: out,
        mailbox_count,
        span,
    };
    trace.validate();
    trace
}

/// Builds the Figs. 10/11 storage workload: repeated sequences in which one
/// mail body (size drawn from the Univ distribution) is delivered to all
/// `sequence_mailboxes` distinct mailboxes, using `rcpts_per_connection`
/// `RCPT TO` fields per connection — so each sequence takes
/// `ceil(m / r)` connections (paper §6.3: "using 5 rcpt-to fields per
/// connection, a client needs 3 separate connections to send each sequence").
///
/// # Panics
///
/// Panics if any argument is zero or `rcpts_per_connection >
/// sequence_mailboxes`.
pub fn mfs_sequence_trace(
    seed: u64,
    sequences: usize,
    rcpts_per_connection: u8,
    sequence_mailboxes: u8,
) -> Trace {
    assert!(sequences > 0 && rcpts_per_connection > 0 && sequence_mailboxes > 0);
    assert!(
        rcpts_per_connection <= sequence_mailboxes,
        "rcpts per connection exceeds mailboxes per sequence"
    );
    let mut rng = det_rng(seed ^ 0x3F5);
    let sizes = MailSizeModel::ham();
    let span = Nanos::from_secs(3600);
    let mut out = Vec::new();
    let total_conns =
        sequences * (sequence_mailboxes as usize).div_ceil(rcpts_per_connection as usize);
    let mut conn_index = 0u64;
    for _ in 0..sequences {
        let size = sizes.sample(&mut rng);
        let ip = spamaware_netaddr::Ipv4::new(
            rng.gen_range(1..=223),
            rng.gen(),
            rng.gen(),
            rng.gen_range(1..255),
        );
        let mailboxes: Vec<MailboxId> = (0..sequence_mailboxes as u32).map(MailboxId).collect();
        for chunk in mailboxes.chunks(rcpts_per_connection as usize) {
            let arrival = span * conn_index / (total_conns as u64);
            conn_index += 1;
            out.push(ConnectionSpec {
                arrival,
                client_ip: ip,
                kind: ConnectionKind::Mail(vec![MailSpec {
                    valid_rcpts: chunk.to_vec(),
                    invalid_rcpts: 0,
                    size,
                    spam: true,
                }]),
            });
        }
    }
    let trace = Trace {
        connections: out,
        mailbox_count: sequence_mailboxes as u32,
        span,
    };
    trace.validate();
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounce_ratio_is_respected() {
        for ratio in [0.0, 0.3, 0.9, 1.0] {
            let t = bounce_sweep_trace(1, 4000, ratio, 400);
            let bounces =
                t.connections.iter().filter(|c| !c.kind.delivers()).count() as f64 / 4000.0;
            assert!(
                (bounces - ratio).abs() < 0.03,
                "ratio {ratio} got {bounces}"
            );
        }
    }

    #[test]
    fn sweep_mails_have_single_recipient_mostly() {
        let t = bounce_sweep_trace(2, 2000, 0.0, 400);
        let mean = t.total_deliveries() as f64 / t.total_mails() as f64;
        assert!((1.0..1.06).contains(&mean), "mean rcpts {mean}");
    }

    #[test]
    fn mfs_sequences_chunk_correctly() {
        // 15 mailboxes with 5 rcpts per connection → 3 connections/sequence.
        let t = mfs_sequence_trace(3, 10, 5, 15);
        assert_eq!(t.connections.len(), 30);
        assert_eq!(t.total_deliveries(), 150);
        for c in &t.connections {
            assert_eq!(c.mails()[0].valid_rcpts.len(), 5);
        }
    }

    #[test]
    fn mfs_sequences_share_size_within_sequence() {
        let t = mfs_sequence_trace(4, 5, 4, 15);
        // ceil(15/4) = 4 connections per sequence.
        assert_eq!(t.connections.len(), 20);
        for seq in t.connections.chunks(4) {
            let first = seq[0].mails()[0].size;
            assert!(seq.iter().all(|c| c.mails()[0].size == first));
            // Last chunk carries the remainder (15 - 3*4 = 3 recipients).
            assert_eq!(seq[3].mails()[0].valid_rcpts.len(), 3);
        }
    }

    #[test]
    fn mfs_sequence_covers_every_mailbox_once() {
        let t = mfs_sequence_trace(5, 1, 7, 15);
        let mut seen = std::collections::HashSet::new();
        for c in &t.connections {
            for r in &c.mails()[0].valid_rcpts {
                assert!(seen.insert(*r), "duplicate delivery to {r:?}");
            }
        }
        assert_eq!(seen.len(), 15);
    }

    #[test]
    #[should_panic(expected = "exceeds mailboxes")]
    fn mfs_rejects_oversized_chunk() {
        mfs_sequence_trace(6, 1, 16, 15);
    }

    #[test]
    fn extreme_ratios_still_validate() {
        bounce_sweep_trace(7, 100, 1.0, 400).validate();
        bounce_sweep_trace(8, 100, 0.0, 400).validate();
    }
}
