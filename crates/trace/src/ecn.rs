//! The ECN bounce-statistics model (paper Fig. 3).
//!
//! The paper measured the Purdue Engineering Computer Network mail server
//! (≈20,000 users) for ~13 months starting December 15, 2006 and found
//! 20–25% of mails bounced (with a slight upward trend over the year) and
//! 5–15% of connections left unfinished. This module generates a daily
//! series with those levels, used both to regenerate Fig. 3 and to pick
//! the bounce ratio of the §8 combined workload.

use rand::Rng;
use spamaware_sim::det_rng;
use spamaware_sim::dist::standard_normal;

/// One day of ECN-style bounce statistics.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EcnDay {
    /// Day index from the start of the measurement (0-based).
    pub day: u32,
    /// Fraction of mails that bounced (550 User unknown).
    pub bounce_ratio: f64,
    /// Fraction of connections that were unfinished SMTP transactions.
    pub unfinished_ratio: f64,
}

/// The full daily series.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EcnSeries {
    /// One entry per day.
    pub days: Vec<EcnDay>,
}

impl EcnSeries {
    /// Generates `n_days` of daily statistics (the paper's window is ~395
    /// days).
    ///
    /// # Panics
    ///
    /// Panics if `n_days == 0`.
    pub fn generate(seed: u64, n_days: u32) -> EcnSeries {
        assert!(n_days > 0, "need at least one day");
        let mut rng = det_rng(seed ^ 0xEC4);
        let mut days = Vec::with_capacity(n_days as usize);
        for day in 0..n_days {
            let t = day as f64 / 365.0;
            // Bounce: ~21% rising to ~25% over the year, weekly ripple.
            let weekly = 0.008 * (day as f64 * std::f64::consts::TAU / 7.0).sin();
            let bounce = 0.21 + 0.035 * t + weekly + 0.012 * standard_normal(&mut rng);
            // Unfinished: 5–15%, slow oscillation (campaign-driven).
            let slow = 0.035 * (day as f64 * std::f64::consts::TAU / 53.0).sin();
            let unfinished = 0.095 + slow + 0.015 * standard_normal(&mut rng);
            days.push(EcnDay {
                day,
                bounce_ratio: bounce.clamp(0.16, 0.30),
                unfinished_ratio: unfinished.clamp(0.04, 0.16),
            });
            let _ = rng.gen::<u8>(); // decorrelate consecutive days slightly
        }
        EcnSeries { days }
    }

    /// Mean bounce ratio over the series.
    pub fn mean_bounce(&self) -> f64 {
        self.days.iter().map(|d| d.bounce_ratio).sum::<f64>() / self.days.len() as f64
    }

    /// Mean unfinished ratio over the series.
    pub fn mean_unfinished(&self) -> f64 {
        self.days.iter().map(|d| d.unfinished_ratio).sum::<f64>() / self.days.len() as f64
    }

    /// The combined "bounce connection" level (paper: bounces plus
    /// unfinished, 25–45% over the measurement period), used for the §8
    /// combined workload.
    pub fn mean_bounce_connections(&self) -> f64 {
        self.mean_bounce() + self.mean_unfinished()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> EcnSeries {
        EcnSeries::generate(1, 395)
    }

    #[test]
    fn levels_match_paper_bands() {
        let s = series();
        for d in &s.days {
            assert!(
                (0.15..=0.31).contains(&d.bounce_ratio),
                "day {} bounce {}",
                d.day,
                d.bounce_ratio
            );
            assert!(
                (0.03..=0.17).contains(&d.unfinished_ratio),
                "day {} unfinished {}",
                d.day,
                d.unfinished_ratio
            );
        }
        assert!((0.20..=0.26).contains(&s.mean_bounce()));
        assert!((0.07..=0.13).contains(&s.mean_unfinished()));
    }

    #[test]
    fn bounce_trends_upward() {
        // Paper: "a slight increase in the percentage of bounces within a
        // year's time frame".
        let s = series();
        let first_q: f64 = s.days[..90].iter().map(|d| d.bounce_ratio).sum::<f64>() / 90.0;
        let last_q: f64 = s.days[305..].iter().map(|d| d.bounce_ratio).sum::<f64>() / 90.0;
        assert!(last_q > first_q + 0.01, "first {first_q} last {last_q}");
    }

    #[test]
    fn combined_level_in_ecn_band() {
        // Paper §4.1: "bounces and rogue connections currently stands
        // between 25 and 45%".
        let s = series();
        let combined = s.mean_bounce_connections();
        assert!((0.25..=0.45).contains(&combined), "combined {combined}");
    }

    #[test]
    fn deterministic_and_daylength() {
        let a = EcnSeries::generate(9, 100);
        let b = EcnSeries::generate(9, 100);
        assert_eq!(a, b);
        assert_eq!(a.days.len(), 100);
        assert_eq!(a.days[99].day, 99);
    }
}
